//! Property-based tests for workload generators: structural invariants of
//! patterns, collectives and trace sampling.

use proptest::prelude::*;

use netsim::rng::Rng64;
use workloads::collectives::{alltoall, butterfly_allreduce, ring_allreduce};
use workloads::patterns::{derangement, incast, permutation, tornado};
use workloads::traces::SizeCdf;

proptest! {
    /// Derangements are permutations without fixed points, for any size.
    #[test]
    fn derangement_invariants(n in 2u32..300, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let d = derangement(n, &mut rng);
        prop_assert_eq!(d.len(), n as usize);
        let mut sorted = d.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        prop_assert!(d.iter().enumerate().all(|(i, &x)| i as u32 != x));
    }

    /// Permutation workloads validate and cover every host exactly once as
    /// sender and receiver.
    #[test]
    fn permutation_validates(n in 2u32..200, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let w = permutation(n, 1 << 16, &mut rng);
        prop_assert!(w.validate(n).is_ok());
        prop_assert_eq!(w.len(), n as usize);
    }

    /// Tornado pairs are symmetric for even splits.
    #[test]
    fn tornado_validates(half in 1u32..100) {
        let n = half * 2;
        let w = tornado(n, 4096);
        prop_assert!(w.validate(n).is_ok());
        for f in &w.flows {
            prop_assert_eq!(f.dst.0, (f.src.0 + n / 2) % n);
        }
    }

    /// Incast validates for any degree below the host count.
    #[test]
    fn incast_validates(n in 3u32..200, deg_frac in 1u32..100, recv in any::<u32>()) {
        let degree = 1 + deg_frac % (n - 1);
        let receiver = netsim::ids::HostId(recv % n);
        let w = incast(n, degree, receiver, 1000);
        prop_assert!(w.validate(n).is_ok());
        prop_assert_eq!(w.len(), degree as usize);
    }

    /// Ring AllReduce dependency graphs validate and conserve data volume.
    #[test]
    fn ring_allreduce_validates(n in 2u32..64, mib in 1u64..16) {
        let bytes = mib << 20;
        let w = ring_allreduce(n, bytes);
        prop_assert!(w.validate(n).is_ok());
        // 2(n-1) phases of n chunk-sized messages.
        let chunk = (bytes / n as u64).max(1);
        prop_assert_eq!(w.total_bytes(), 2 * (n as u64 - 1) * n as u64 * chunk);
    }

    /// Butterfly AllReduce validates for every power-of-two size.
    #[test]
    fn butterfly_validates(log_n in 1u32..7, mib in 1u64..16) {
        let n = 1 << log_n;
        let w = butterfly_allreduce(n, mib << 20);
        prop_assert!(w.validate(n).is_ok());
        prop_assert_eq!(w.len(), (2 * log_n * n) as usize);
    }

    /// AllToAll validates for any window and covers all ordered pairs.
    #[test]
    fn alltoall_validates(n in 2u32..40, window in 1u32..40) {
        let w = alltoall(n, 4096, window);
        prop_assert!(w.validate(n).is_ok());
        prop_assert_eq!(w.len(), (n * (n - 1)) as usize);
    }

    /// Trace sampling respects the distribution's support and the
    /// quantile/CDF functions are mutually consistent.
    #[test]
    fn cdf_sampling_in_support(seed in any::<u64>(), u in 0.0f64..1.0) {
        let cdf = SizeCdf::websearch();
        let mut rng = Rng64::new(seed);
        let s = cdf.sample(&mut rng);
        prop_assert!((1_000..=30_000_000).contains(&s), "sample {s} out of support");
        let q = cdf.quantile(u);
        let back = cdf.cdf_at(q);
        prop_assert!((back - u).abs() < 0.05, "u={u} q={q} back={back}");
    }
}
