//! AI training collectives (§4.2): ring/butterfly AllReduce and windowed
//! AllToAll, expressed as dependency-linked message graphs.

use netsim::ids::HostId;
use netsim::time::Time;

use crate::spec::{StartRule, Workload};

/// Ring AllReduce over `n` nodes of a `bytes` buffer.
///
/// The classic 2(n−1)-phase ring: each phase, node `i` sends one `bytes/n`
/// chunk to `(i+1) % n`, and may only send phase `p` after receiving the
/// phase `p−1` chunk from its predecessor. The first `n−1` phases
/// reduce-scatter; the rest all-gather. By design congestion never
/// accumulates — the paper's observation that all balancers tie here.
pub fn ring_allreduce(n: u32, bytes: u64) -> Workload {
    assert!(n >= 2);
    let chunk = (bytes / n as u64).max(1);
    let mut w = Workload::new(format!("ring-allreduce-{bytes}B"));
    let phases = 2 * (n - 1);
    // Tag layout: phase * n + sender.
    for phase in 0..phases {
        for i in 0..n {
            let dst = HostId((i + 1) % n);
            let start = if phase == 0 {
                StartRule::At(Time::ZERO)
            } else {
                // Node i received the phase-1 chunk from its predecessor.
                let pred = (i + n - 1) % n;
                StartRule::OnReceive {
                    tag: ((phase - 1) * n + pred) as u64,
                }
            };
            let spec = w.push(HostId(i), dst, chunk, start);
            // Overwrite the auto-assigned tag with the phase layout.
            let idx = spec.flow.index();
            w.flows[idx].tag = (phase * n + i) as u64;
        }
    }
    w
}

/// Butterfly (recursive halving/doubling) AllReduce over `n` nodes.
///
/// log2(n) reduce-scatter rounds with shrinking messages, then log2(n)
/// all-gather rounds growing back. Partner in round `r` is `i XOR 2^r`.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
pub fn butterfly_allreduce(n: u32, bytes: u64) -> Workload {
    assert!(
        n.is_power_of_two() && n >= 2,
        "butterfly needs a power of two"
    );
    let rounds = n.trailing_zeros();
    let mut w = Workload::new(format!("butterfly-allreduce-{bytes}B"));
    let total_rounds = 2 * rounds;
    // Tag layout: round * n + sender.
    for round in 0..total_rounds {
        // Reduce-scatter halves the payload every round; all-gather doubles.
        let size = if round < rounds {
            (bytes >> (round + 1)).max(1)
        } else {
            let back = round - rounds;
            (bytes >> (rounds - back)).max(1)
        };
        let stage_bit = if round < rounds {
            round
        } else {
            total_rounds - 1 - round
        };
        for i in 0..n {
            let partner = HostId(i ^ (1 << stage_bit));
            let start = if round == 0 {
                StartRule::At(Time::ZERO)
            } else {
                // Wait for the partner exchange of the previous round.
                let prev_bit = if round <= rounds {
                    round - 1
                } else {
                    total_rounds - round
                };
                let prev_partner = i ^ (1 << prev_bit);
                StartRule::OnReceive {
                    tag: ((round - 1) * n + prev_partner) as u64,
                }
            };
            let spec = w.push(HostId(i), partner, size, start);
            let idx = spec.flow.index();
            w.flows[idx].tag = (round * n + i) as u64;
        }
    }
    w
}

/// AllToAll with at most `window` concurrent connections per node (§4.2's
/// "n connections" parameter).
///
/// Node `i` sends `bytes` to `(i + k) % n` for `k = 1..n`, the classic
/// shift schedule; send `k` starts when send `k − window` completes.
pub fn alltoall(n: u32, bytes: u64, window: u32) -> Workload {
    assert!(n >= 2);
    let window = window.max(1);
    let mut w = Workload::new(format!("alltoall-n{window}-{bytes}B"));
    // Tag layout: sender * n + shift.
    for i in 0..n {
        for k in 1..n {
            let dst = HostId((i + k) % n);
            let start = if k <= window {
                StartRule::At(Time::ZERO)
            } else {
                StartRule::OnSendComplete {
                    tag: (i * n + (k - window)) as u64,
                }
            };
            let spec = w.push(HostId(i), dst, bytes, start);
            let idx = spec.flow.index();
            w.flows[idx].tag = (i * n + k) as u64;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape_and_dependencies() {
        let n = 8;
        let w = ring_allreduce(n, 4 << 20);
        assert_eq!(w.len(), (2 * (n - 1) * n) as usize);
        assert!(w.validate(n).is_ok());
        // Phase 0 flows start immediately; all others on receive.
        let immediate = w
            .flows
            .iter()
            .filter(|f| matches!(f.start, StartRule::At(_)))
            .count();
        assert_eq!(immediate, n as usize);
        // Data conservation: 2(n-1) phases of n chunks of bytes/n.
        assert_eq!(w.total_bytes(), 2 * (n as u64 - 1) * (4 << 20));
    }

    #[test]
    fn ring_dependency_follows_the_ring() {
        let n = 4;
        let w = ring_allreduce(n, 1 << 20);
        // Flow of node 2 in phase 1 awaits node 1's phase-0 chunk.
        let f = w
            .flows
            .iter()
            .find(|f| f.tag == (n + 2) as u64)
            .expect("phase1/node2");
        assert_eq!(f.start, StartRule::OnReceive { tag: 1 });
    }

    #[test]
    fn butterfly_shape() {
        let n = 16;
        let w = butterfly_allreduce(n, 16 << 20);
        assert!(w.validate(n).is_ok());
        // 2*log2(16)=8 rounds of n messages.
        assert_eq!(w.len(), (8 * n) as usize);
        // Round 0 sends bytes/2 to the XOR-1 partner.
        assert_eq!(w.flows[0].dst, HostId(1));
        assert_eq!(w.flows[0].bytes, 8 << 20);
        // Sizes shrink then grow symmetrically.
        let sizes: Vec<u64> = (0..8).map(|r| w.flows[(r * n) as usize].bytes).collect();
        assert_eq!(
            sizes,
            vec![
                8 << 20,
                4 << 20,
                2 << 20,
                1 << 20,
                1 << 20,
                2 << 20,
                4 << 20,
                8 << 20
            ]
        );
    }

    #[test]
    fn butterfly_requires_power_of_two() {
        let r = std::panic::catch_unwind(|| butterfly_allreduce(12, 1024));
        assert!(r.is_err());
    }

    #[test]
    fn alltoall_window_limits_initial_sends() {
        let n = 8;
        for window in [1u32, 4, 16] {
            let w = alltoall(n, 1 << 20, window);
            assert!(w.validate(n).is_ok(), "window {window}");
            assert_eq!(w.len(), (n * (n - 1)) as usize);
            let immediate = w
                .flows
                .iter()
                .filter(|f| matches!(f.start, StartRule::At(_)))
                .count();
            let expected = (n * window.min(n - 1)) as usize;
            assert_eq!(immediate, expected, "window {window}");
        }
    }

    #[test]
    fn alltoall_covers_all_pairs() {
        let n = 6;
        let w = alltoall(n, 100, 2);
        let mut pairs = std::collections::HashSet::new();
        for f in &w.flows {
            pairs.insert((f.src.0, f.dst.0));
        }
        assert_eq!(pairs.len(), (n * (n - 1)) as usize);
    }
}
