//! Datacenter trace workloads (§4.2, Appendix D).
//!
//! The paper replays production web-search traces (the DCTCP distribution)
//! and a Facebook-style distribution: mostly sub-100 KB flows with a heavy
//! tail. We embed the published piecewise CDFs (Fig. 24's shape) and draw
//! flow sizes from them, with Poisson arrivals scaled to a target load.

use netsim::ids::HostId;
use netsim::rng::Rng64;
use netsim::time::Time;

use crate::spec::{StartRule, Workload};

/// A piecewise-linear flow-size CDF.
#[derive(Debug, Clone)]
pub struct SizeCdf {
    /// `(bytes, cumulative probability)` points, strictly increasing in both.
    points: Vec<(f64, f64)>,
    name: &'static str,
}

impl SizeCdf {
    /// Builds a CDF from `(bytes, probability)` points.
    ///
    /// # Panics
    ///
    /// Panics unless points are strictly increasing and end at probability 1.
    pub fn new(name: &'static str, points: &[(u64, f64)]) -> SizeCdf {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "bytes must increase");
            assert!(w[0].1 <= w[1].1, "probability must not decrease");
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1"
        );
        SizeCdf {
            points: points.iter().map(|&(b, p)| (b as f64, p)).collect(),
            name,
        }
    }

    /// The web-search distribution from the DCTCP paper, as replayed by the
    /// paper's DC-trace experiments: most flows under 100 KB, a few huge.
    pub fn websearch() -> SizeCdf {
        SizeCdf::new(
            "WebSearch",
            &[
                (1_000, 0.00),
                (2_000, 0.15),
                (3_000, 0.20),
                (5_000, 0.30),
                (7_000, 0.40),
                (10_000, 0.53),
                (20_000, 0.60),
                (30_000, 0.70),
                (50_000, 0.80),
                (80_000, 0.90),
                (200_000, 0.95),
                (1_000_000, 0.98),
                (2_000_000, 0.99),
                (30_000_000, 1.00),
            ],
        )
    }

    /// A Facebook-style distribution: dominated by small messages with a
    /// shorter tail than web search (Appendix D).
    pub fn facebook() -> SizeCdf {
        SizeCdf::new(
            "Facebook",
            &[
                (100, 0.00),
                (300, 0.20),
                (600, 0.40),
                (1_000, 0.55),
                (2_000, 0.65),
                (5_000, 0.75),
                (10_000, 0.82),
                (50_000, 0.90),
                (100_000, 0.94),
                (1_000_000, 0.98),
                (10_000_000, 1.00),
            ],
        )
    }

    /// Distribution name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Samples one flow size in bytes.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let u = rng.gen_f64();
        self.quantile(u)
    }

    /// The `u`-quantile (inverse CDF), linearly interpolated.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let mut prev = self.points[0];
        for &(b, p) in &self.points[1..] {
            if u <= p {
                if p <= prev.1 {
                    return b as u64;
                }
                let frac = (u - prev.1) / (p - prev.1);
                return (prev.0 + frac * (b - prev.0)) as u64;
            }
            prev = (b, p);
        }
        self.points.last().unwrap().0 as u64
    }

    /// Mean flow size in bytes (by trapezoidal integration of the quantile).
    pub fn mean_bytes(&self) -> f64 {
        let mut mean = 0.0;
        let mut prev = self.points[0];
        for &(b, p) in &self.points[1..] {
            mean += (p - prev.1) * (b + prev.0) / 2.0;
            prev = (b, p);
        }
        mean
    }

    /// Evaluates the CDF at `bytes` (for Fig. 24-style reporting).
    pub fn cdf_at(&self, bytes: u64) -> f64 {
        let x = bytes as f64;
        if x <= self.points[0].0 {
            return self.points[0].1;
        }
        let mut prev = self.points[0];
        for &(b, p) in &self.points[1..] {
            if x <= b {
                let frac = (x - prev.0) / (b - prev.0);
                return prev.1 + frac * (p - prev.1);
            }
            prev = (b, p);
        }
        1.0
    }
}

/// Generates a Poisson-arrival trace workload at a given `load` (fraction of
/// per-host link capacity), running for `duration` of arrivals.
///
/// Each flow picks a uniformly random sender and an independent random
/// receiver (the paper: "for each node we select randomly the receiver").
pub fn poisson_trace(
    n_hosts: u32,
    load: f64,
    duration: Time,
    link_bps: u64,
    cdf: &SizeCdf,
    rng: &mut Rng64,
) -> Workload {
    assert!(n_hosts >= 2);
    assert!(load > 0.0 && load <= 1.2, "load {load} out of range");
    let mut w = Workload::new(format!("dctrace-{}-{:.0}%", cdf.name(), load * 100.0));
    // Aggregate arrival rate in flows/second across the fabric.
    let bytes_per_sec = load * n_hosts as f64 * link_bps as f64 / 8.0;
    let flows_per_sec = bytes_per_sec / cdf.mean_bytes();
    let mean_gap_ps = 1e12 / flows_per_sec;
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival.
        let u: f64 = rng.gen_f64();
        t += -mean_gap_ps * (1.0 - u).ln();
        if t >= duration.as_ps() as f64 {
            break;
        }
        let src = HostId(rng.gen_range(n_hosts as u64) as u32);
        let mut dst = HostId(rng.gen_range(n_hosts as u64) as u32);
        while dst == src {
            dst = HostId(rng.gen_range(n_hosts as u64) as u32);
        }
        let bytes = cdf.sample(rng).max(1);
        w.push(src, dst, bytes, StartRule::At(Time::from_ps(t as u64)));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn websearch_quantiles_match_published_points() {
        let cdf = SizeCdf::websearch();
        assert_eq!(cdf.quantile(0.15), 2_000);
        assert_eq!(cdf.quantile(0.53), 10_000);
        assert_eq!(cdf.quantile(1.0), 30_000_000);
        // Between points: interpolated.
        let q = cdf.quantile(0.175);
        assert!((2_000..3_000).contains(&q), "q={q}");
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        let cdf = SizeCdf::websearch();
        for u in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let b = cdf.quantile(u);
            let back = cdf.cdf_at(b);
            assert!((back - u).abs() < 0.02, "u={u} b={b} back={back}");
        }
    }

    #[test]
    fn most_websearch_flows_are_small_but_tail_is_heavy() {
        let cdf = SizeCdf::websearch();
        let mut rng = Rng64::new(3);
        let sizes: Vec<u64> = (0..20_000).map(|_| cdf.sample(&mut rng)).collect();
        let small = sizes.iter().filter(|&&s| s < 100_000).count() as f64 / sizes.len() as f64;
        assert!(small > 0.85, "small fraction {small}");
        assert!(*sizes.iter().max().unwrap() > 1_000_000, "tail missing");
    }

    #[test]
    fn sample_mean_tracks_analytic_mean() {
        let cdf = SizeCdf::websearch();
        let mut rng = Rng64::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| cdf.sample(&mut rng) as f64).sum();
        let sample_mean = sum / n as f64;
        let analytic = cdf.mean_bytes();
        let rel = (sample_mean - analytic).abs() / analytic;
        assert!(rel < 0.1, "sample {sample_mean} vs analytic {analytic}");
    }

    #[test]
    fn facebook_is_smaller_than_websearch() {
        assert!(SizeCdf::facebook().mean_bytes() < SizeCdf::websearch().mean_bytes());
    }

    #[test]
    fn poisson_trace_load_scaling() {
        let mut rng = Rng64::new(9);
        let cdf = SizeCdf::websearch();
        let dur = Time::from_ms(2);
        let w40 = poisson_trace(128, 0.4, dur, 400_000_000_000, &cdf, &mut rng);
        let w100 = poisson_trace(128, 1.0, dur, 400_000_000_000, &cdf, &mut rng);
        assert!(w40.validate(128).is_ok());
        assert!(w100.validate(128).is_ok());
        // Offered bytes should scale roughly linearly with load.
        let ratio = w100.total_bytes() as f64 / w40.total_bytes() as f64;
        assert!((1.8..3.5).contains(&ratio), "ratio {ratio}");
        // Offered load sanity: bytes over duration ≈ 40% of aggregate capacity.
        let cap_bytes = 0.4 * 128.0 * 400e9 / 8.0 * dur.as_secs_f64();
        let rel = w40.total_bytes() as f64 / cap_bytes;
        assert!((0.6..1.6).contains(&rel), "offered/target {rel}");
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_in_range() {
        let mut rng = Rng64::new(11);
        let cdf = SizeCdf::facebook();
        let dur = Time::from_ms(1);
        let w = poisson_trace(64, 0.5, dur, 400_000_000_000, &cdf, &mut rng);
        let mut last = Time::ZERO;
        for f in &w.flows {
            let StartRule::At(t) = f.start else {
                panic!("trace flows start at fixed times")
            };
            assert!(t >= last, "arrivals must be sorted");
            assert!(t < dur);
            last = t;
        }
    }
}
