//! Workload descriptions: messages, start rules, dependencies.
//!
//! A [`Workload`] is a pure data structure — a list of messages with start
//! rules — that the harness installs onto transport endpoints. Start rules
//! express the dependency structure of collectives: a message can start at a
//! wall-clock time, when its sender *receives* a tagged message (ring/
//! butterfly neighbor data), or when an earlier *send* of the same host
//! completes (windowed AllToAll).

use netsim::ids::{FlowId, HostId};
use netsim::time::Time;

/// When a message may start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartRule {
    /// At an absolute simulation time.
    At(Time),
    /// When the sending host has fully received the message tagged `tag`.
    OnReceive {
        /// Tag of the awaited inbound message.
        tag: u64,
    },
    /// When this host's own send tagged `tag` has been fully acknowledged.
    OnSendComplete {
        /// Tag of the awaited outbound message.
        tag: u64,
    },
}

/// One application message.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Unique flow id (also used in completion records).
    pub flow: FlowId,
    /// Sender.
    pub src: HostId,
    /// Receiver.
    pub dst: HostId,
    /// Payload bytes.
    pub bytes: u64,
    /// Globally-unique tag (dependency key; carried on the wire).
    pub tag: u64,
    /// Start rule.
    pub start: StartRule,
}

/// A complete workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name for reports.
    pub name: String,
    /// All messages.
    pub flows: Vec<FlowSpec>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Workload {
        Workload {
            name: name.into(),
            flows: Vec::new(),
        }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total payload bytes across all messages.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Appends a flow, assigning the next flow id and tag.
    pub fn push(&mut self, src: HostId, dst: HostId, bytes: u64, start: StartRule) -> FlowSpec {
        let id = self.flows.len() as u32;
        let spec = FlowSpec {
            flow: FlowId(id),
            src,
            dst,
            bytes,
            tag: id as u64,
            start,
        };
        self.flows.push(spec);
        spec
    }

    /// Validates internal consistency against a fabric of `n_hosts`.
    ///
    /// Checks host ranges, self-sends, tag uniqueness and that every
    /// dependency tag exists.
    pub fn validate(&self, n_hosts: u32) -> Result<(), String> {
        let mut tags = std::collections::HashSet::new();
        for f in &self.flows {
            if f.src.0 >= n_hosts || f.dst.0 >= n_hosts {
                return Err(format!("flow {} out of host range", f.flow));
            }
            if f.src == f.dst {
                return Err(format!("flow {} sends to itself", f.flow));
            }
            if !tags.insert(f.tag) {
                return Err(format!("duplicate tag {}", f.tag));
            }
        }
        for f in &self.flows {
            match f.start {
                StartRule::At(_) => {}
                StartRule::OnReceive { tag } => {
                    // The awaited message must exist and be addressed to us.
                    let Some(dep) = self.flows.iter().find(|d| d.tag == tag) else {
                        return Err(format!("flow {} awaits unknown tag {tag}", f.flow));
                    };
                    if dep.dst != f.src {
                        return Err(format!(
                            "flow {} awaits tag {tag} which is not addressed to {}",
                            f.flow, f.src
                        ));
                    }
                }
                StartRule::OnSendComplete { tag } => {
                    let Some(dep) = self.flows.iter().find(|d| d.tag == tag) else {
                        return Err(format!("flow {} awaits unknown tag {tag}", f.flow));
                    };
                    if dep.src != f.src {
                        return Err(format!(
                            "flow {} chains on tag {tag} sent by a different host",
                            f.flow
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_sequential_ids_and_tags() {
        let mut w = Workload::new("t");
        let a = w.push(HostId(0), HostId(1), 100, StartRule::At(Time::ZERO));
        let b = w.push(HostId(1), HostId(2), 200, StartRule::At(Time::ZERO));
        assert_eq!(a.flow, FlowId(0));
        assert_eq!(b.flow, FlowId(1));
        assert_eq!(b.tag, 1);
        assert_eq!(w.total_bytes(), 300);
    }

    #[test]
    fn validate_catches_self_send() {
        let mut w = Workload::new("t");
        w.push(HostId(0), HostId(0), 1, StartRule::At(Time::ZERO));
        assert!(w.validate(4).is_err());
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut w = Workload::new("t");
        w.push(HostId(0), HostId(9), 1, StartRule::At(Time::ZERO));
        assert!(w.validate(4).is_err());
    }

    #[test]
    fn validate_checks_receive_dependency_addressing() {
        let mut w = Workload::new("t");
        let first = w.push(HostId(0), HostId(1), 1, StartRule::At(Time::ZERO));
        // Host 1 received the message, so host 1 may chain on it.
        w.push(
            HostId(1),
            HostId(2),
            1,
            StartRule::OnReceive { tag: first.tag },
        );
        assert!(w.validate(4).is_ok());
        // Host 3 never receives tag 0: invalid.
        w.push(
            HostId(3),
            HostId(2),
            1,
            StartRule::OnReceive { tag: first.tag },
        );
        assert!(w.validate(4).is_err());
    }

    #[test]
    fn validate_checks_send_chaining() {
        let mut w = Workload::new("t");
        let first = w.push(HostId(0), HostId(1), 1, StartRule::At(Time::ZERO));
        w.push(
            HostId(0),
            HostId(2),
            1,
            StartRule::OnSendComplete { tag: first.tag },
        );
        assert!(w.validate(4).is_ok());
        w.push(
            HostId(1),
            HostId(2),
            1,
            StartRule::OnSendComplete { tag: first.tag },
        );
        assert!(w.validate(4).is_err());
    }
}
