//! Workload generators for the REPS evaluation (§4.2, Appendix D).
//!
//! Workloads are pure message graphs ([`spec::Workload`]): lists of flows
//! with start rules (fixed time, on-receive, on-send-complete) that the
//! harness installs onto transport endpoints.
//!
//! * [`patterns`] — incast, permutation, tornado;
//! * [`traces`] — WebSearch/Facebook flow-size CDFs with Poisson arrivals
//!   at a target load;
//! * [`collectives`] — ring and butterfly AllReduce, windowed AllToAll.

pub mod collectives;
pub mod patterns;
pub mod spec;
pub mod traces;

pub use collectives::{alltoall, butterfly_allreduce, ring_allreduce};
pub use patterns::{incast, permutation, tornado};
pub use spec::{FlowSpec, StartRule, Workload};
pub use traces::{poisson_trace, SizeCdf};
