//! Synthetic traffic patterns: incast, permutation, tornado (§4.2).

use netsim::ids::HostId;
use netsim::rng::Rng64;
use netsim::time::Time;

use crate::spec::{StartRule, Workload};

/// `degree`:1 incast: hosts `receiver+1 ..= receiver+degree` (mod `n`) all
/// send `bytes` to `receiver` at time zero.
///
/// # Panics
///
/// Panics if `degree >= n`.
pub fn incast(n: u32, degree: u32, receiver: HostId, bytes: u64) -> Workload {
    assert!(degree < n, "incast degree must leave room for the receiver");
    let mut w = Workload::new(format!("incast-{degree}:1-{bytes}B"));
    for i in 1..=degree {
        let src = HostId((receiver.0 + i) % n);
        w.push(src, receiver, bytes, StartRule::At(Time::ZERO));
    }
    w
}

/// Random permutation: every host sends `bytes` to a distinct host, nobody
/// receives twice, nobody sends to itself (a seeded derangement).
pub fn permutation(n: u32, bytes: u64, rng: &mut Rng64) -> Workload {
    let mut w = Workload::new(format!("permutation-{bytes}B"));
    let targets = derangement(n, rng);
    for (src, &dst) in targets.iter().enumerate() {
        w.push(
            HostId(src as u32),
            HostId(dst),
            bytes,
            StartRule::At(Time::ZERO),
        );
    }
    w
}

/// Tornado: node `i` sends to its twin `(i + n/2) % n` — every packet must
/// traverse the full tree, the paper's load-balancing worst case.
pub fn tornado(n: u32, bytes: u64) -> Workload {
    let mut w = Workload::new(format!("tornado-{bytes}B"));
    for i in 0..n {
        let dst = HostId((i + n / 2) % n);
        w.push(HostId(i), dst, bytes, StartRule::At(Time::ZERO));
    }
    w
}

/// A uniformly random derangement of `0..n` (no fixed points), by rejection.
pub fn derangement(n: u32, rng: &mut Rng64) -> Vec<u32> {
    assert!(n >= 2, "derangement needs at least two elements");
    loop {
        let mut v: Vec<u32> = (0..n).collect();
        rng.shuffle(&mut v);
        if v.iter().enumerate().all(|(i, &x)| i as u32 != x) {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_shape() {
        let w = incast(128, 8, HostId(0), 4 << 20);
        assert_eq!(w.len(), 8);
        assert!(w.flows.iter().all(|f| f.dst == HostId(0)));
        assert!(w.validate(128).is_ok());
    }

    #[test]
    fn incast_wraps_around_host_space() {
        let w = incast(8, 7, HostId(6), 100);
        assert!(w.validate(8).is_ok());
        let srcs: std::collections::HashSet<u32> = w.flows.iter().map(|f| f.src.0).collect();
        assert_eq!(srcs.len(), 7);
        assert!(!srcs.contains(&6));
    }

    #[test]
    fn permutation_is_a_derangement() {
        let mut rng = Rng64::new(42);
        let w = permutation(128, 1 << 20, &mut rng);
        assert_eq!(w.len(), 128);
        assert!(w.validate(128).is_ok());
        let mut dsts: Vec<u32> = w.flows.iter().map(|f| f.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(
            dsts,
            (0..128).collect::<Vec<_>>(),
            "every host receives once"
        );
    }

    #[test]
    fn tornado_pairs_twins() {
        let w = tornado(128, 16 << 20);
        assert!(w.validate(128).is_ok());
        assert_eq!(w.flows[0].dst, HostId(64));
        assert_eq!(w.flows[64].dst, HostId(0));
        assert_eq!(w.flows[1].dst, HostId(65));
    }

    #[test]
    fn derangement_has_no_fixed_points() {
        let mut rng = Rng64::new(7);
        for n in [2u32, 3, 10, 100] {
            let d = derangement(n, &mut rng);
            assert!(d.iter().enumerate().all(|(i, &x)| i as u32 != x));
            let mut sorted = d.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }
}
