use baselines::kind::LbKind;
use harness::experiment::Experiment;
use netsim::time::Time;
use netsim::topology::FatTreeConfig;
use workloads::patterns;

fn main() {
    let w = patterns::tornado(128, 2 << 20);
    let mut exp = Experiment::new(
        "t",
        FatTreeConfig::two_tier(16, 1),
        LbKind::Ops { evs_size: 1 << 16 },
        w,
    );
    exp.seed = 11;
    exp.deadline = Time::from_secs(1);
    let mut engine = exp.build();
    let host_up = engine.topo.host_up[0];
    let tor_up = engine.topo.switches[0].up_links;
    engine.stats.track_link(host_up);
    for l in tor_up.iter() {
        engine.stats.track_link(l);
    }
    engine.run_until(Time::from_ms(1));
    let bw = engine.stats.bucket_width;
    let series = engine.stats.link_series(host_up).unwrap();
    let gb: Vec<String> = series
        .bucket_bytes
        .iter()
        .map(|&b| format!("{:.0}", netsim::stats::bucket_gbps(b, bw)))
        .collect();
    println!("host0 uplink Gbps/bucket: {}", gb.join(" "));
    let mut sum = 0.0;
    let mut cnt = 0;
    for l in tor_up.iter() {
        let s = engine.stats.link_series(l).unwrap();
        let mid: u64 = s.bucket_bytes.iter().skip(1).take(3).sum();
        sum += netsim::stats::bucket_gbps(mid / 3, bw);
        cnt += 1;
    }
    println!("avg ToR uplink Gbps (buckets 1-3): {:.0}", sum / cnt as f64);
    println!("flows done: {} / 128", engine.stats.flows.len());
}
