//! FPGA-testbed figures (§4.4, Figs. 10 and 11), reproduced in simulation.
//!
//! The paper's testbed is a 2-tier 100 Gbps fabric with 8 KiB-MTU
//! FPGA-based NICs; per DESIGN.md we substitute a simulated fabric with the
//! same shape ([`netsim::config::SimConfig::fpga_testbed`]) and check the
//! same *shape* claims: goodput vs the ideal share, the FCT distribution
//! under asymmetry, and total drops under an abrupt link failure.

use baselines::kind::LbKind;
use harness::experiment::Experiment;
use harness::Scale;
use netsim::config::SimConfig;
use netsim::failures::{Failure, FailurePlan};
use netsim::ids::SwitchId;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use reps::reps::RepsConfig;
use workloads::{collectives, patterns};

fn fpga_experiment(
    name: &str,
    fabric: FatTreeConfig,
    lb: LbKind,
    w: workloads::spec::Workload,
    failures: FailurePlan,
    seed: u64,
) -> harness::RunResult {
    let mut exp = Experiment::new(name, fabric, lb, w);
    exp.sim = SimConfig::fpga_testbed();
    exp.failures = failures;
    exp.seed = seed;
    exp.deadline = Time::from_secs(5);
    exp.run()
}

/// Fig. 10: per-flow goodput, symmetric (setup-1 / setup-2) and asymmetric.
pub fn fig10(scale: Scale) {
    println!("=== Fig. 10: FPGA-profile goodput ===");
    // (a) Symmetric: 2 ToRs, ring AllReduce crossing the spine.
    // setup-1: all endpoints active; setup-2: 40 of 64 active.
    for (setup, hosts_per_tor) in [("setup-1", 32u32), ("setup-2", 20u32)] {
        let fabric = FatTreeConfig::two_tier_custom(2, hosts_per_tor, 8);
        let n = fabric.n_hosts();
        // Chunk = buffer/n must dwarf the ~12 us RTT for goodput to reflect
        // bandwidth rather than dependency latency (the testbed runs
        // collectives back to back; we size one collective accordingly).
        let ar_bytes: u64 = scale.pick(n as u64 * (1 << 20), n as u64 * (4 << 20));
        // Lay the ring out across the two ToRs so every hop crosses T1.
        let w = collectives::ring_allreduce(n, ar_bytes);
        println!("## Symmetric {setup} ({n} endpoints), ring AllReduce");
        for lb in [
            LbKind::Ops { evs_size: 1 << 16 },
            LbKind::Reps(RepsConfig::default()),
        ] {
            let res = fpga_experiment(
                "fig10-sym",
                fabric.clone(),
                lb,
                w.clone(),
                FailurePlan::none(),
                83,
            );
            let s = &res.summary;
            println!(
                "{:<8} avg flow goodput {:>7.1} Gbps | runtime {:>9.1} us | drops {}",
                s.lb,
                s.avg_goodput_gbps,
                s.makespan.as_us_f64(),
                s.counters.total_drops()
            );
        }
        println!("   (ideal share: ~100 Gbps NIC line rate per flow)");
    }

    // (b) Asymmetric: 16 endpoints, 2 ToRs, 4 spine links, one at 50%.
    let fabric = FatTreeConfig::two_tier_custom(2, 8, 4);
    let topo = Topology::build(fabric.clone(), 89);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
    let failures = FailurePlan::none().with(Failure::Degrade {
        pair,
        at: Time::ZERO,
        bps: 50_000_000_000,
    });
    let bytes: u64 = scale.pick(1 << 20, 8 << 20);
    let w = patterns::tornado(fabric.n_hosts(), bytes);
    println!("## Asymmetric (one spine link at half rate), tornado");
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let res = fpga_experiment(
            "fig10-asym",
            fabric.clone(),
            lb,
            w.clone(),
            failures.clone(),
            89,
        );
        let s = &res.summary;
        println!(
            "{:<8} avg flow goodput {:>7.1} Gbps | max FCT {:>9.1} us",
            s.lb,
            s.avg_goodput_gbps,
            s.max_fct.as_us_f64()
        );
    }
    println!("(paper: OPS capped by the slow link; REPS within ~5% of fair share)");
}

/// Fig. 11: FCT distribution under asymmetry, and packet drops when a
/// spine link abruptly fails mid-run.
pub fn fig11(scale: Scale) {
    println!("=== Fig. 11: FPGA-profile FCT distribution and failure drops ===");
    // (a) FCT distribution in the asymmetric setup, many small messages.
    let fabric = FatTreeConfig::two_tier_custom(2, 8, 4);
    let topo = Topology::build(fabric.clone(), 97);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
    let degrade = FailurePlan::none().with(Failure::Degrade {
        pair,
        at: Time::ZERO,
        bps: 50_000_000_000,
    });
    let msg: u64 = scale.pick(256 << 10, 1 << 20);
    println!("## Asymmetric FCT quantiles (tornado, {msg} B messages)");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "LB", "p50(us)", "p99(us)", "max(us)"
    );
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let w = patterns::tornado(fabric.n_hosts(), msg);
        let res = fpga_experiment("fig11-fct", fabric.clone(), lb, w, degrade.clone(), 97);
        let st = &res.engine.stats;
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>10.1}",
            res.summary.lb,
            st.fct_quantile(0.5).as_us_f64(),
            st.fct_quantile(0.99).as_us_f64(),
            res.summary.max_fct.as_us_f64()
        );
    }

    // (b) Drops under an abrupt spine-link failure, 128 endpoints (2 ToRs,
    // 8 T1s), averaged over several seeds (the paper's min/max bars).
    println!("## Packet drops under a mid-run spine link failure (128 EP)");
    let fabric = FatTreeConfig::two_tier_custom(2, 64, 8);
    let msg: u64 = scale.pick(2 << 20, 8 << 20);
    let fail_at = scale.pick(Time::from_us(60), Time::from_us(200));
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let mut drops = Vec::new();
        for seed in [101u64, 103, 105] {
            let topo = Topology::build(fabric.clone(), seed);
            let pair = topo.tor_uplink_pairs(SwitchId(0))[2];
            let failures = FailurePlan::none().with(Failure::Cable {
                pair,
                at: fail_at,
                duration: None,
            });
            let mut rng = Rng64::new(seed);
            let w = patterns::permutation(fabric.n_hosts(), msg, &mut rng);
            let res = fpga_experiment("fig11-drops", fabric.clone(), lb.clone(), w, failures, seed);
            drops.push(res.summary.counters.total_drops());
        }
        println!(
            "{:<8} drops min {:>8} max {:>8}",
            lb.label(),
            drops.iter().min().unwrap(),
            drops.iter().max().unwrap()
        );
    }
    println!("(paper: REPS suffers a small fraction of OPS' drops and recovers within ~an RTO)");
}
