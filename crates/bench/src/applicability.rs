//! Applicability figures: ACK coalescing, EVS size, CC choice, topology
//! scale, freezing ablation (Figs. 12, 13, 15, 16, 23).

use baselines::kind::LbKind;
use harness::experiment::Experiment;
use harness::Scale;
use netsim::failures::FailurePlan;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use reps::reps::RepsConfig;
use transport::cc::CcKind;
use transport::config::{CoalesceConfig, CoalesceVariant};
use workloads::patterns;

use crate::common::macro_fabric;

/// Applicability figures keep quarter-size messages at quick scale so that
/// failures injected mid-transfer actually overlap the transfer.
fn app_bytes(scale: Scale, full_mib: u64) -> u64 {
    scale.pick((full_mib << 20) / 4, full_mib << 20)
}

/// Failure onset: a quarter of the way into the (scaled) transfer.
fn failure_onset(scale: Scale) -> Time {
    scale.pick(Time::from_us(8), Time::from_us(30))
}

fn run_one(
    fabric: &FatTreeConfig,
    lb: LbKind,
    cc: CcKind,
    coalesce: CoalesceConfig,
    failures: &FailurePlan,
    bytes: u64,
    seed: u64,
) -> harness::Summary {
    let mut rng = Rng64::new(seed);
    let w = patterns::permutation(fabric.n_hosts(), bytes, &mut rng);
    let mut exp = Experiment::new("app", fabric.clone(), lb, w);
    exp.cc = cc;
    exp.coalesce = coalesce;
    exp.failures = failures.clone();
    exp.seed = seed;
    exp.deadline = Time::from_secs(2);
    exp.run().summary
}

/// A failure plan killing 5 % of cables shortly into the run (Fig. 12's
/// right panel).
fn five_pct_failures(fabric: &FatTreeConfig, scale: Scale, seed: u64) -> FailurePlan {
    let topo = Topology::build(fabric.clone(), seed);
    let cables = topo.cable_pairs();
    let mut rng = Rng64::new(seed);
    FailurePlan::random_cables(&cables, 0.05, failure_onset(scale), None, &mut rng)
}

/// Fig. 12: ACK coalescing ratios 1:1–16:1, healthy and with 5 % failures.
pub fn fig12(scale: Scale) {
    println!("=== Fig. 12: ACK coalescing ratios (8MiB permutation) ===");
    let fabric = macro_fabric(scale);
    let bytes = app_bytes(scale, 8);
    for (panel, failures) in [
        ("No failures", FailurePlan::none()),
        ("5% cable failures", five_pct_failures(&fabric, scale, 59)),
    ] {
        println!("## {panel}");
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>14}",
            "ratio", "REPS max(us)", "REPS p99(us)", "OPS max(us)", "OPS p99(us)"
        );
        for ratio in [1u32, 2, 4, 8, 16] {
            let co = CoalesceConfig::ratio(ratio, CoalesceVariant::Plain);
            let r = run_one(
                &fabric,
                LbKind::Reps(RepsConfig::default()),
                CcKind::Dctcp,
                co,
                &failures,
                bytes,
                59,
            );
            let o = run_one(
                &fabric,
                LbKind::Ops { evs_size: 1 << 16 },
                CcKind::Dctcp,
                co,
                &failures,
                bytes,
                59,
            );
            println!(
                "{:<8} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
                format!("{ratio}:1"),
                r.max_fct.as_us_f64(),
                r.p99_fct.as_us_f64(),
                o.max_fct.as_us_f64(),
                o.p99_fct.as_us_f64()
            );
        }
    }
    println!("(paper: REPS holds its edge to 8:1; at 16:1 parity when healthy, 5x under failures)");
}

/// Fig. 13: coalescing variants (plain / Carry EVs / Reuse EVs) at 16:1.
pub fn fig13(scale: Scale) {
    println!("=== Fig. 13: REPS coalescing variants at 16:1 ===");
    let fabric = macro_fabric(scale);
    let bytes = app_bytes(scale, 8);
    let asym = {
        let topo = Topology::build(fabric.clone(), 61);
        let pairs = topo.tor_uplink_pairs(netsim::ids::SwitchId(0));
        FailurePlan::none().with(netsim::failures::Failure::Degrade {
            pair: pairs[0],
            at: Time::ZERO,
            bps: 200_000_000_000,
        })
    };
    let scenarios = [
        ("Symmetric", FailurePlan::none()),
        ("Asymmetric", asym),
        ("Sym+Failures", five_pct_failures(&fabric, scale, 61)),
    ];
    let variants: [(&str, LbKind, CoalesceVariant); 4] = [
        (
            "REPS",
            LbKind::Reps(RepsConfig::default()),
            CoalesceVariant::Plain,
        ),
        (
            "REPS+Carry EVs",
            LbKind::Reps(RepsConfig::default()),
            CoalesceVariant::CarryEvs,
        ),
        (
            "REPS+Reuse EVs",
            LbKind::Reps(RepsConfig::default()),
            CoalesceVariant::ReuseEvs,
        ),
        (
            "OPS",
            LbKind::Ops { evs_size: 1 << 16 },
            CoalesceVariant::Plain,
        ),
    ];
    print!("{:<18}", "Variant");
    for (name, _) in scenarios.iter().map(|(n, f)| (n, f)) {
        print!(" {name:>14}");
    }
    println!("  (max FCT, us)");
    for (vname, lb, variant) in &variants {
        print!("{vname:<18}");
        for (_, failures) in &scenarios {
            let s = run_one(
                &fabric,
                lb.clone(),
                CcKind::Dctcp,
                CoalesceConfig::ratio(16, *variant),
                failures,
                bytes,
                61,
            );
            print!(" {:>14.1}", s.max_fct.as_us_f64());
        }
        println!();
    }
    println!("(paper: Carry/Reuse EVs recover most of the per-packet-ACK advantage)");
}

/// Fig. 15: EVS sizes (32 / 256 / 64K) and CC algorithms (DCTCP / EQDS /
/// INTERNAL) on an 8 MiB permutation.
pub fn fig15(scale: Scale) {
    println!("=== Fig. 15: EVS sizes and CC algorithms (8MiB permutation) ===");
    let fabric = macro_fabric(scale);
    let bytes = app_bytes(scale, 8);
    println!("## EVS sizes");
    println!("{:<10} {:>14} {:>14}", "EVS", "REPS max(us)", "OPS max(us)");
    for evs in [32u32, 256, 1 << 16] {
        let r = run_one(
            &fabric,
            LbKind::Reps(RepsConfig::default().with_evs_size(evs)),
            CcKind::Dctcp,
            CoalesceConfig::per_packet(),
            &FailurePlan::none(),
            bytes,
            67,
        );
        let o = run_one(
            &fabric,
            LbKind::Ops { evs_size: evs },
            CcKind::Dctcp,
            CoalesceConfig::per_packet(),
            &FailurePlan::none(),
            bytes,
            67,
        );
        println!(
            "{evs:<10} {:>14.1} {:>14.1}",
            r.max_fct.as_us_f64(),
            o.max_fct.as_us_f64()
        );
    }
    println!("## CC algorithms");
    println!("{:<10} {:>14} {:>14}", "CC", "REPS max(us)", "OPS max(us)");
    for cc in [CcKind::Dctcp, CcKind::Eqds, CcKind::Internal] {
        let r = run_one(
            &fabric,
            LbKind::Reps(RepsConfig::default()),
            cc,
            CoalesceConfig::per_packet(),
            &FailurePlan::none(),
            bytes,
            67,
        );
        let o = run_one(
            &fabric,
            LbKind::Ops { evs_size: 1 << 16 },
            cc,
            CoalesceConfig::per_packet(),
            &FailurePlan::none(),
            bytes,
            67,
        );
        println!(
            "{:<10} {:>14.1} {:>14.1}",
            cc.label(),
            r.max_fct.as_us_f64(),
            o.max_fct.as_us_f64()
        );
    }
    println!("(paper: REPS ~equal at 256 and 64K EVs, -8% at 32; REPS helps every CC)");
}

/// Fig. 16: topology scaling — tornado across fabric sizes and EVS sizes.
pub fn fig16(scale: Scale) {
    println!("=== Fig. 16: topology scaling (tornado) ===");
    let radices: Vec<u32> = scale.pick(vec![8, 16, 32], vec![16, 32, 64, 128]);
    let evs_sizes: Vec<u32> = scale.pick(
        vec![16, 256, 65_536],
        vec![16, 64, 256, 1_024, 4_096, 65_536],
    );
    let bytes = app_bytes(scale, 8);
    println!(
        "{:<8} {:<8} {:>6} {:>14} {:>14}",
        "nodes", "radix", "EVS", "REPS max(us)", "OPS max(us)"
    );
    for &k in &radices {
        let fabric = FatTreeConfig::two_tier(k, 1);
        let n = fabric.n_hosts();
        for &evs in &evs_sizes {
            let w = patterns::tornado(n, bytes);
            let mut results = Vec::new();
            for lb in [
                LbKind::Reps(RepsConfig::default().with_evs_size(evs)),
                LbKind::Ops { evs_size: evs },
            ] {
                let mut exp = Experiment::new("fig16", fabric.clone(), lb, w.clone());
                exp.seed = 71;
                exp.deadline = Time::from_secs(2);
                results.push(exp.run().summary);
            }
            println!(
                "{n:<8} {k:<8} {evs:>6} {:>14.1} {:>14.1}",
                results[0].max_fct.as_us_f64(),
                results[1].max_fct.as_us_f64()
            );
        }
    }
    println!("(paper: REPS flat across sizes; OPS needs large EVS, degrades at scale)");
}

/// Fig. 23 (Appendix C.4): freezing-mode ablation.
pub fn fig23(scale: Scale) {
    println!("=== Fig. 23: freezing mode ablation ===");
    let fabric = macro_fabric(scale);
    let bytes = app_bytes(scale, 8);
    let asym = {
        let topo = Topology::build(fabric.clone(), 73);
        let pairs = topo.tor_uplink_pairs(netsim::ids::SwitchId(0));
        FailurePlan::none().with(netsim::failures::Failure::Degrade {
            pair: pairs[0],
            at: Time::ZERO,
            bps: 200_000_000_000,
        })
    };
    let scenarios = [
        ("Symmetric", FailurePlan::none()),
        ("Asymmetric", asym),
        ("Sym+Failures", five_pct_failures(&fabric, scale, 73)),
    ];
    let variants = [
        ("REPS", LbKind::Reps(RepsConfig::default())),
        (
            "REPS no freezing",
            LbKind::Reps(RepsConfig::default().without_freezing()),
        ),
        ("OPS", LbKind::Ops { evs_size: 1 << 16 }),
    ];
    print!("{:<18}", "Variant");
    for (name, _) in &scenarios {
        print!(" {name:>14}");
    }
    println!("  (max FCT, us)");
    for (vname, lb) in &variants {
        print!("{vname:<18}");
        for (_, failures) in &scenarios {
            let s = run_one(
                &fabric,
                lb.clone(),
                CcKind::Dctcp,
                CoalesceConfig::per_packet(),
                failures,
                bytes,
                73,
            );
            print!(" {:>14.1}", s.max_fct.as_us_f64());
        }
        println!();
    }
    println!("(paper: freezing ~25% gain under failures; no effect when healthy)");
}
