//! Theory and distribution figures: Table 1, Figs. 14, 17, 18, 20, 24.

use ballsbins::batched::average_max_load;
use ballsbins::imbalance::imbalance_stats;
use ballsbins::recycled::{theorem_parameters, RecycledBallsBins};
use netsim::rng::Rng64;
use workloads::traces::SizeCdf;

/// Table 1: REPS per-connection memory footprint.
pub fn table1() {
    println!("=== Table 1: REPS per-connection memory footprint ===");
    print!("{}", reps::footprint::table1());
}

/// Fig. 14: expected load imbalance at a 32-uplink switch vs EVS size,
/// for 1 and 32 active flows.
pub fn fig14() {
    println!("=== Fig. 14: load imbalance vs EVS size (32 uplinks) ===");
    for flows in [1u32, 32] {
        println!("# {flows} flow(s) active");
        println!("{:>8} {:>10} {:>10} {:>10}", "EVS", "mean", "p2.5", "p97.5");
        for exp in 5..=16u32 {
            let evs = 1u32 << exp;
            let trials = if exp >= 14 { 15 } else { 40 };
            let s = imbalance_stats(32, evs, flows, trials, 42);
            println!(
                "2^{exp:<6} {:>10.3} {:>10.3} {:>10.3}",
                s.mean, s.p2_5, s.p97_5
            );
        }
    }
    println!("(paper: ~10% imbalance below 2^8 EVs with 32 flows, <1% at 2^16)");
}

/// Fig. 17: batched balls-into-bins at λ=0.99 — average max queue over
/// 1000 rounds for 4..128 output ports.
pub fn fig17() {
    println!("=== Fig. 17: balls-into-bins, lambda=0.99, 1000 rounds ===");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "ports", "round100", "round500", "round1000"
    );
    for ports in [4usize, 8, 16, 32, 64, 128] {
        let avg = average_max_load(ports, 0.99, 1000, 25, 7);
        println!(
            "{ports:>8} {:>12.1} {:>12.1} {:>12.1}",
            avg[99], avg[499], avg[999]
        );
    }
    println!("(paper: max queue grows with round count, faster for more ports)");
}

/// Fig. 18: OPS vs recycled balls-into-bins, n = 5, 200 rounds.
pub fn fig18() {
    println!("=== Fig. 18: recycled vs oblivious balls-into-bins (n=5) ===");
    let n = 5;
    let (b, tau) = theorem_parameters(n);
    let mut rng_rec = Rng64::new(3);
    let mut rng_ops = Rng64::new(3);
    let mut rec = RecycledBallsBins::new(n, b, tau);
    let mut ops = ballsbins::batched::BatchedBallsBins::new(n, 1.0);
    let rec_trace = rec.run(200, &mut rng_rec);
    let ops_trace = ops.run(200, &mut rng_ops);
    println!("tau = {tau}, colors = {}", n * b);
    println!("{:>8} {:>10} {:>10}", "round", "OPS", "recycled");
    for r in (9..200).step_by(10) {
        println!("{:>8} {:>10} {:>10}", r + 1, ops_trace[r], rec_trace[r]);
    }
    println!(
        "final: OPS {} vs recycled {} (paper: OPS grows unbounded, recycled stays near tau)",
        ops_trace[199], rec_trace[199]
    );
}

/// Fig. 20: recycled balls with coalesced feedback (every 2/4/8 services).
pub fn fig20() {
    println!("=== Fig. 20: recycled balls with ACK coalescing ===");
    let n = 16;
    let (b, tau) = theorem_parameters(n);
    println!("tau = {tau}");
    let mut rng_ops = Rng64::new(5);
    let mut ops = ballsbins::batched::BatchedBallsBins::new(n, 1.0);
    let ops_trace = ops.run(2000, &mut rng_ops);
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "round", "OPS", "k=1", "k=2", "k=4", "k=8"
    );
    let traces: Vec<Vec<u64>> = [1u32, 2, 4, 8]
        .iter()
        .map(|&k| {
            let mut rng = Rng64::new(5);
            let mut p = RecycledBallsBins::with_coalescing(n, b, tau, k);
            p.run(2000, &mut rng)
        })
        .collect();
    for r in (199..2000).step_by(200) {
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            r + 1,
            ops_trace[r],
            traces[0][r],
            traces[1][r],
            traces[2][r],
            traces[3][r]
        );
    }
    println!("(paper: 2:1/4:1 barely exceed tau; 8:1 still beats OPS)");
}

/// Fig. 24: flow-size CDFs of the datacenter traces.
pub fn fig24() {
    println!("=== Fig. 24: datacenter trace flow-size CDFs ===");
    let cdfs = [SizeCdf::websearch(), SizeCdf::facebook()];
    println!("{:>12} {:>12} {:>12}", "bytes", "WebSearch", "Facebook");
    for exp in 2..=7u32 {
        for mant in [1.0f64, 3.0] {
            let bytes = (mant * 10f64.powi(exp as i32)) as u64;
            println!(
                "{bytes:>12} {:>12.3} {:>12.3}",
                cdfs[0].cdf_at(bytes),
                cdfs[1].cdf_at(bytes)
            );
        }
    }
    println!(
        "mean flow size: WebSearch {:.0} B, Facebook {:.0} B",
        cdfs[0].mean_bytes(),
        cdfs[1].mean_bytes()
    );
}
