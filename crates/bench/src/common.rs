//! Shared plumbing for the per-figure binaries.

use baselines::kind::LbKind;
use harness::experiment::{Experiment, Summary};
use harness::Scale;
use netsim::failures::FailurePlan;
use netsim::time::Time;
use netsim::topology::FatTreeConfig;
use workloads::spec::Workload;

/// The base RTT used to parameterize flowlet gaps / bitmap aging in the
/// paper's 2-tier default fabric.
pub fn default_rtt() -> Time {
    netsim::config::SimConfig::paper_default().base_rtt(3)
}

/// Runs one workload across a lineup of load balancers on a shared fabric
/// and failure plan, printing nothing; returns the summaries in order.
pub fn run_lineup(
    name: &str,
    fabric: &FatTreeConfig,
    workload: &Workload,
    lineup: &[LbKind],
    failures: &FailurePlan,
    seed: u64,
) -> Vec<Summary> {
    lineup
        .iter()
        .map(|lb| {
            let mut exp = Experiment::new(
                format!("{name}/{}", lb.label()),
                fabric.clone(),
                lb.clone(),
                workload.clone(),
            );
            exp.failures = failures.clone();
            exp.seed = seed;
            exp.deadline = Time::from_secs(2);
            exp.run().summary
        })
        .collect()
}

/// The quick/full fabric for macro experiments: 32 or 128 hosts, 2-tier 1:1.
pub fn macro_fabric(scale: Scale) -> FatTreeConfig {
    FatTreeConfig::two_tier(scale.pick(8, 16), 1)
}

/// Message size scaled from the paper's value.
pub fn scaled_bytes(scale: Scale, full_mib: u64) -> u64 {
    match scale {
        Scale::Quick => (full_mib << 20) / 16,
        Scale::Full => full_mib << 20,
    }
}

/// Prints a `(x, y)` series as aligned columns under a header.
pub fn print_series(header: &str, series: &[(f64, f64)]) {
    println!("# {header}");
    for (x, y) in series {
        println!("{x:10.2} {y:10.2}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_bytes_quick_is_one_sixteenth() {
        assert_eq!(scaled_bytes(Scale::Quick, 16), 1 << 20);
        assert_eq!(scaled_bytes(Scale::Full, 16), 16 << 20);
    }

    #[test]
    fn macro_fabric_sizes() {
        assert_eq!(macro_fabric(Scale::Quick).n_hosts(), 32);
        assert_eq!(macro_fabric(Scale::Full).n_hosts(), 128);
    }
}
