//! Shared plumbing for the per-figure binaries.

use baselines::kind::LbKind;
use harness::experiment::{Experiment, Summary};
use harness::Scale;
use netsim::failures::FailurePlan;
use netsim::time::Time;
use netsim::topology::FatTreeConfig;
use workloads::spec::Workload;

/// The base RTT used to parameterize flowlet gaps / bitmap aging in the
/// paper's 2-tier default fabric.
pub fn default_rtt() -> Time {
    netsim::config::SimConfig::paper_default().base_rtt(3)
}

/// Runs one workload across a lineup of load balancers on a shared fabric
/// and failure plan, printing nothing; returns the summaries in order.
///
/// Execution goes through the sweep engine's work-stealing pool
/// (`REPS_THREADS` workers, default: all cores). Every experiment carries
/// its own explicit seed, so the summaries are identical to a serial run.
pub fn run_lineup(
    name: &str,
    fabric: &FatTreeConfig,
    workload: &Workload,
    lineup: &[LbKind],
    failures: &FailurePlan,
    seed: u64,
) -> Vec<Summary> {
    let exps: Vec<Experiment> = lineup
        .iter()
        .map(|lb| {
            let mut exp = Experiment::new(
                format!("{name}/{}", lb.label()),
                fabric.clone(),
                lb.clone(),
                workload.clone(),
            );
            exp.failures = failures.clone();
            exp.seed = seed;
            exp.deadline = Time::from_secs(2);
            exp
        })
        .collect();
    sweep::run_experiments(&exps, sweep::threads_from_env())
}

/// The quick/full fabric for macro experiments: 32 or 128 hosts, 2-tier 1:1.
pub fn macro_fabric(scale: Scale) -> FatTreeConfig {
    FatTreeConfig::two_tier(scale.pick(8, 16), 1)
}

/// Message size scaled from the paper's value.
pub fn scaled_bytes(scale: Scale, full_mib: u64) -> u64 {
    match scale {
        Scale::Quick => (full_mib << 20) / 16,
        Scale::Full => full_mib << 20,
    }
}

/// Prints a `(x, y)` series as aligned columns under a header.
pub fn print_series(header: &str, series: &[(f64, f64)]) {
    println!("# {header}");
    for (x, y) in series {
        println!("{x:10.2} {y:10.2}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_bytes_quick_is_one_sixteenth() {
        assert_eq!(scaled_bytes(Scale::Quick, 16), 1 << 20);
        assert_eq!(scaled_bytes(Scale::Full, 16), 16 << 20);
    }

    #[test]
    fn macro_fabric_sizes() {
        assert_eq!(macro_fabric(Scale::Quick).n_hosts(), 32);
        assert_eq!(macro_fabric(Scale::Full).n_hosts(), 128);
    }

    #[test]
    fn run_lineup_is_ordered_and_deterministic() {
        use reps::reps::RepsConfig;
        let fabric = macro_fabric(Scale::Quick);
        let w = workloads::patterns::tornado(fabric.n_hosts(), 64 << 10);
        let lineup = [
            LbKind::Ops { evs_size: 1 << 16 },
            LbKind::Reps(RepsConfig::default()),
        ];
        let a = run_lineup("t", &fabric, &w, &lineup, &FailurePlan::none(), 3);
        let b = run_lineup("t", &fabric, &w, &lineup, &FailurePlan::none(), 3);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].lb, "OPS");
        assert_eq!(a[1].lb, "REPS");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.max_fct, y.max_fct, "parallel lineup must be reproducible");
            assert_eq!(x.counters, y.counters);
        }
    }
}
