//! Macroscopic comparison figures: Figs. 3, 5, 6, 8, 9, 21.

use baselines::kind::LbKind;
use baselines::plb::PlbConfig;
use harness::experiment::{Experiment, Summary};
use harness::{speedup_table, Scale};
use netsim::failures::{Failure, FailurePlan};
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use reps::reps::RepsConfig;
use workloads::traces::SizeCdf;
use workloads::{collectives, patterns, poisson_trace};

use crate::common::{default_rtt, macro_fabric, run_lineup, scaled_bytes};

/// The three synthetic benchmark groups of Figs. 3/5: incast 8:1,
/// permutation, tornado, each at three message sizes.
fn synthetic_suite(
    fabric: &FatTreeConfig,
    scale: Scale,
    lineup: &[LbKind],
    failures: &FailurePlan,
    seed: u64,
) {
    let n = fabric.n_hosts();
    for full_mib in [4u64, 8, 16] {
        let bytes = scaled_bytes(scale, full_mib);
        let mut rng = Rng64::new(seed);
        for (tag, w) in [
            (
                "I. 8:1",
                patterns::incast(n, 8, netsim::ids::HostId(0), bytes),
            ),
            ("P.", patterns::permutation(n, bytes, &mut rng)),
            ("T.", patterns::tornado(n, bytes)),
        ] {
            let rows = run_lineup(
                &format!("{tag} {full_mib}MiB"),
                fabric,
                &w,
                lineup,
                failures,
                seed,
            );
            print!(
                "{}",
                speedup_table(&format!("{tag} {full_mib}MiB"), &rows, "ECMP")
            );
        }
    }
}

/// DC-trace sweep: average FCT at 40–100 % load (WebSearch distribution).
fn dc_trace_suite(
    fabric: &FatTreeConfig,
    scale: Scale,
    lineup: &[LbKind],
    failures: &FailurePlan,
    seed: u64,
) {
    let n = fabric.n_hosts();
    let duration = scale.pick(Time::from_us(150), Time::from_us(500));
    let cdf = SizeCdf::websearch();
    println!("## DC traces (WebSearch): avg FCT (us) by load");
    print!("{:<14}", "LB");
    let loads = [0.4, 0.6, 0.8, 1.0];
    for l in loads {
        print!(" {:>9.0}%", l * 100.0);
    }
    println!();
    let mut table: Vec<Vec<f64>> = vec![Vec::new(); lineup.len()];
    for load in loads {
        let mut rng = Rng64::new(seed ^ (load * 100.0) as u64);
        let w = poisson_trace(n, load, duration, 400_000_000_000, &cdf, &mut rng);
        let rows = run_lineup("dc", fabric, &w, lineup, failures, seed);
        for (i, s) in rows.iter().enumerate() {
            table[i].push(s.avg_fct.as_us_f64());
        }
    }
    for (i, lb) in lineup.iter().enumerate() {
        print!("{:<14}", lb.label());
        for v in &table[i] {
            print!(" {v:>10.1}");
        }
        println!();
    }
}

/// AI collectives: AllToAll (window 4/8/16), ring and butterfly AllReduce.
fn collective_suite(
    fabric: &FatTreeConfig,
    scale: Scale,
    lineup: &[LbKind],
    failures: &FailurePlan,
    seed: u64,
) {
    let n = fabric.n_hosts();
    let a2a_bytes = scale.pick(16 << 10, 256 << 10);
    let ar_bytes = scaled_bytes(scale, 16);
    println!("## AI collectives: runtime (us)");
    let mut cases: Vec<(String, workloads::spec::Workload)> = vec![];
    for window in [4u32, 8, 16] {
        cases.push((
            format!("AllToAll(n={window})"),
            collectives::alltoall(n, a2a_bytes, window),
        ));
    }
    cases.push((
        "Ring AllRed.".into(),
        collectives::ring_allreduce(n, ar_bytes),
    ));
    cases.push((
        "Butterfly AllRed.".into(),
        collectives::butterfly_allreduce(n, ar_bytes),
    ));
    print!("{:<14}", "LB");
    for (name, _) in &cases {
        print!(" {name:>18}");
    }
    println!();
    let mut table: Vec<Vec<f64>> = vec![Vec::new(); lineup.len()];
    for (_, w) in &cases {
        let rows = run_lineup("coll", fabric, w, lineup, failures, seed);
        for (i, s) in rows.iter().enumerate() {
            table[i].push(s.makespan.as_us_f64());
        }
    }
    for (i, lb) in lineup.iter().enumerate() {
        print!("{:<14}", lb.label());
        for v in &table[i] {
            print!(" {v:>18.1}");
        }
        println!();
    }
}

/// Fig. 3: healthy symmetric network — synthetic + DC traces + collectives.
pub fn fig03(scale: Scale) {
    println!("=== Fig. 3: symmetric network macro comparison ===");
    let fabric = macro_fabric(scale);
    let lineup = LbKind::paper_lineup(default_rtt());
    let none = FailurePlan::none();
    synthetic_suite(&fabric, scale, &lineup, &none, 23);
    dc_trace_suite(&fabric, scale, &lineup, &none, 23);
    collective_suite(&fabric, scale, &lineup, &none, 23);
    println!("(paper: REPS best or tied; up to 6x over ECMP, ~1.25x over OPS)");
}

/// A failure plan degrading 3 % of ToR uplink cables to 200 Gbps.
fn degraded_3pct(fabric: &FatTreeConfig, seed: u64) -> FailurePlan {
    let topo = Topology::build(fabric.clone(), seed);
    let mut pairs = Vec::new();
    for tor in topo.t0_switches() {
        pairs.extend(topo.tor_uplink_pairs(tor));
    }
    let mut rng = Rng64::new(seed);
    FailurePlan::degrade_random_cables(&pairs, 0.03, 200_000_000_000, &mut rng)
}

/// Fig. 5: asymmetric network (3 % of ToR uplinks at 200 Gbps).
pub fn fig05(scale: Scale) {
    println!("=== Fig. 5: asymmetric network (3% ToR uplinks at 200G) ===");
    let fabric = macro_fabric(scale);
    let lineup = LbKind::paper_lineup(default_rtt());
    let failures = degraded_3pct(&fabric, 29);
    println!("(degraded cables: {})", failures.len());
    synthetic_suite(&fabric, scale, &lineup, &failures, 29);
    dc_trace_suite(&fabric, scale, &lineup, &failures, 29);
    collective_suite(&fabric, scale, &lineup, &failures, 29);
    println!("(paper: REPS up to 5x over ECMP, ~10-25% over the next best)");
}

/// Fig. 6: REPS main traffic coexisting with ~10 % ECMP background.
pub fn fig06(scale: Scale) {
    println!("=== Fig. 6: mixed REPS + ECMP background traffic ===");
    let fabric = macro_fabric(scale);
    let n = fabric.n_hosts();
    let lineup = LbKind::paper_lineup(default_rtt());
    let bytes = scaled_bytes(scale, 8);
    for (tag, main) in [
        ("P. 8MiB", {
            let mut rng = Rng64::new(31);
            patterns::permutation(n, bytes, &mut rng)
        }),
        ("T. 8MiB", patterns::tornado(n, bytes)),
    ] {
        println!("## {tag} with 10% ECMP background");
        println!(
            "{:<14} {:>16} {:>16}",
            "LB", "main maxFCT(us)", "bg maxFCT(us)"
        );
        for lb in &lineup {
            let bg = {
                let mut rng = Rng64::new(37);
                patterns::permutation(n, bytes / 9, &mut rng)
            };
            let mut exp = Experiment::new(
                format!("fig06/{tag}/{}", lb.label()),
                fabric.clone(),
                lb.clone(),
                main.clone(),
            );
            exp.background = Some((bg, LbKind::Ecmp));
            exp.seed = 31;
            exp.deadline = Time::from_secs(2);
            let s = exp.run().summary;
            println!(
                "{:<14} {:>16.1} {:>16.1}",
                s.lb,
                s.max_fct.as_us_f64(),
                s.bg_max_fct.map(|t| t.as_us_f64()).unwrap_or(0.0)
            );
        }
    }
    println!("(paper: REPS steers around ECMP background, helping both classes)");
}

/// The eight failure modes of Fig. 8.
fn failure_modes(fabric: &FatTreeConfig, scale: Scale, seed: u64) -> Vec<(String, FailurePlan)> {
    let topo = Topology::build(fabric.clone(), seed);
    let cables = topo.cable_pairs();
    let t1s = topo.t1_switches();
    let mut rng = Rng64::new(seed);
    let at = scale.pick(Time::from_us(8), Time::from_us(30));
    let mut modes = vec![(
        "One Failed Cable".to_string(),
        FailurePlan::none().with(Failure::Cable {
            pair: cables[0],
            at,
            duration: None,
        }),
    )];
    modes.push((
        "One Failed Switch".to_string(),
        FailurePlan::none().with(Failure::Switch {
            sw: t1s[0],
            at,
            duration: None,
        }),
    ));
    modes.push((
        "One Failed Switch/Cable".to_string(),
        FailurePlan::none()
            .with(Failure::Switch {
                sw: t1s[0],
                at,
                duration: None,
            })
            .with(Failure::Cable {
                pair: cables[1],
                at,
                duration: None,
            }),
    ));
    modes.push((
        "5% Failed Cables".to_string(),
        FailurePlan::random_cables(&cables, 0.05, at, None, &mut rng),
    ));
    modes.push((
        "5% Failed Switches".to_string(),
        FailurePlan::random_switches(&t1s, 0.05, at, None, &mut rng),
    ));
    let mut both = FailurePlan::random_cables(&cables, 0.05, at, None, &mut rng);
    both.extend(FailurePlan::random_switches(&t1s, 0.05, at, None, &mut rng));
    modes.push(("5% Failed Switches/Cables".to_string(), both));
    modes.push((
        "BER Cable 1%".to_string(),
        FailurePlan::none().with(Failure::BitError {
            pair: cables[2],
            at,
            p: 0.01,
            duration: None,
        }),
    ));
    // "BER switch": every cable of one T1 drops 1% of packets.
    let mut sw_ber = FailurePlan::none();
    for pair in &cables {
        let touches_t1 = {
            let spec = &topo.links[pair.0.index()];
            spec.to == netsim::ids::NodeRef::Switch(t1s[1])
                || spec.from == netsim::ids::NodeRef::Switch(t1s[1])
        };
        if touches_t1 {
            sw_ber = sw_ber.with(Failure::BitError {
                pair: *pair,
                at,
                p: 0.01,
                duration: None,
            });
        }
    }
    modes.push(("BER Switch 1%".to_string(), sw_ber));
    modes
}

/// Fig. 8: speedup vs OPS under eight failure modes, for a permutation,
/// DC traces at 100 % load, and a ring AllReduce.
pub fn fig08(scale: Scale) {
    println!("=== Fig. 8: failure-mode sweep (speedup vs OPS) ===");
    let fabric = macro_fabric(scale);
    let n = fabric.n_hosts();
    let lineup = LbKind::failure_lineup(default_rtt());
    let modes = failure_modes(&fabric, scale, 41);
    // Quarter-size at quick scale so failures overlap the transfers.
    let perm_bytes = scale.pick(2 << 20, 8 << 20);
    type MetricFn = fn(&Summary) -> f64;
    let workload_sets: Vec<(&str, workloads::spec::Workload, MetricFn)> = vec![
        (
            "Permutation 8MiB",
            {
                let mut rng = Rng64::new(41);
                patterns::permutation(n, perm_bytes, &mut rng)
            },
            |s| s.max_fct.as_ps().max(1) as f64,
        ),
        (
            "DC Traces 100% load",
            {
                let mut rng = Rng64::new(43);
                poisson_trace(
                    n,
                    1.0,
                    Time::from_us(100),
                    400_000_000_000,
                    &SizeCdf::websearch(),
                    &mut rng,
                )
            },
            |s| s.avg_fct.as_ps().max(1) as f64,
        ),
        (
            "Ring AllReduce",
            collectives::ring_allreduce(n, scale.pick(2 << 20, 8 << 20)),
            |s| s.makespan.as_ps().max(1) as f64,
        ),
    ];
    for (wname, w, metric) in &workload_sets {
        println!("## {wname}");
        print!("{:<28}", "Failure mode");
        for lb in &lineup {
            print!(" {:>10}", lb.label());
        }
        println!("  (speedup vs OPS)");
        for (mode_name, plan) in &modes {
            let rows = run_lineup(mode_name, &fabric, w, &lineup, plan, 41);
            let ops = metric(&rows[0]);
            print!("{mode_name:<28}");
            for s in &rows {
                print!(" {:>9.2}x", ops / metric(s));
            }
            println!();
        }
    }
    println!("(paper: REPS dominates; gains grow with failure extent)");
}

/// Fig. 9: extreme failure sweep — 0–50 % of cables fail; REPS vs PLB vs
/// the theoretical best.
pub fn fig09(scale: Scale) {
    println!("=== Fig. 9: extreme failures (permutation) ===");
    let fabric = macro_fabric(scale);
    let n = fabric.n_hosts();
    let bytes = scaled_bytes(scale, 8);
    // Ideal: serialization of the message over the surviving fraction of
    // fabric capacity (uniform permutation keeps all uplinks busy), plus the
    // base round-trip no load balancer can avoid.
    let ideal_base_us = bytes as f64 * 8.0 / 400e9 * 1e6;
    let rtt_floor_us = default_rtt().as_us_f64();
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "fail%", "REPS(us)", "PLB(us)", "ideal(us)", "REPS slow", "PLB slow"
    );
    for pct in [0u32, 10, 20, 30, 40, 50] {
        let topo = Topology::build(fabric.clone(), 47);
        let cables = topo.cable_pairs();
        let mut rng = Rng64::new(47 + pct as u64);
        let plan = FailurePlan::random_cables(
            &cables,
            pct as f64 / 100.0,
            Time::from_us(10),
            None,
            &mut rng,
        );
        let mut rng2 = Rng64::new(47);
        let w = patterns::permutation(n, bytes, &mut rng2);
        let lineup = [
            LbKind::Reps(RepsConfig::default()),
            LbKind::Plb(PlbConfig::default()),
        ];
        let rows = run_lineup("fig09", &fabric, &w, &lineup, &plan, 47);
        let ideal = ideal_base_us / (1.0 - pct as f64 / 100.0).max(0.01) + rtt_floor_us;
        let reps_us = rows[0].max_fct.as_us_f64();
        let plb_us = rows[1].max_fct.as_us_f64();
        println!(
            "{pct:>8} {reps_us:>12.1} {plb_us:>12.1} {ideal:>12.1} {:>9.0}% {:>9.0}%",
            (reps_us / ideal - 1.0) * 100.0,
            (plb_us / ideal - 1.0) * 100.0
        );
    }
    println!("(paper: REPS within ~20% of ideal up to 50% failures; PLB ~3x behind)");
}

/// Fig. 21 (Appendix C.2): the synthetic suite on a 3-tier fat tree.
pub fn fig21(scale: Scale) {
    println!("=== Fig. 21: 3-tier fat tree synthetic benchmarks ===");
    let fabric = FatTreeConfig::three_tier(scale.pick(4, 8), 1);
    println!("(hosts: {})", fabric.n_hosts());
    let lineup = LbKind::paper_lineup(default_rtt());
    synthetic_suite(&fabric, scale, &lineup, &FailurePlan::none(), 53);
    println!("(paper: comparable to the 2-tier results)");
}
