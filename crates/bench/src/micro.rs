//! Microscopic (single-switch timeseries) figures: Figs. 2, 4, 7, 19, 22.
//!
//! Each experiment tracks the uplinks of one ToR switch and prints
//! utilization buckets and queue-occupancy samples for OPS vs REPS — the
//! series the paper plots, plus the headline aggregates (completion time,
//! drops).

use baselines::kind::LbKind;
use harness::experiment::{Experiment, TrackLinks};
use harness::{downsample, queue_series, utilization_series, Scale};
use netsim::failures::{Failure, FailurePlan};
use netsim::ids::SwitchId;
use netsim::time::Time;
use netsim::topology::FatTreeConfig;
use reps::reps::RepsConfig;
use workloads::patterns;

/// Micro figures keep longer runs even at quick scale (quarter size) so the
/// steady-state queue dynamics the paper plots remain visible.
fn micro_bytes(scale: Scale, full_mib: u64) -> u64 {
    scale.pick((full_mib << 20) / 4, full_mib << 20)
}

/// Runs one micro experiment and prints the tracked-switch series.
fn run_micro(label: &str, exp: &Experiment) {
    let res = exp.run();
    let s = &res.summary;
    println!(
        "-- {label}: {} | max FCT {:.1} us | drops {} (down {}) | retx {} | timeouts {}",
        s.lb,
        s.max_fct.as_us_f64(),
        s.counters.total_drops(),
        s.counters.drops_link_down,
        s.counters.retransmissions,
        s.counters.timeouts,
    );
    let tor0 = &res.engine.topo.switches[0];
    let bucket = res.engine.stats.bucket_width;
    for (i, link) in tor0.up_links.iter().enumerate() {
        let Some(series) = res.engine.stats.link_series(link) else {
            continue;
        };
        let util = downsample(&utilization_series(series, bucket), 12);
        let queue = downsample(&queue_series(series), 12);
        let util_s: Vec<String> = util.iter().map(|(_, g)| format!("{g:.0}")).collect();
        let q_s: Vec<String> = queue.iter().map(|(_, k)| format!("{k:.0}")).collect();
        println!("   port{i} util(Gbps): {}", util_s.join(" "));
        println!("   port{i} queue(KB):  {}", q_s.join(" "));
    }
}

fn micro_pair(
    title: &str,
    fabric: FatTreeConfig,
    bytes: u64,
    failures: FailurePlan,
    sample_until: Time,
    reps_cfg: RepsConfig,
) {
    println!("=== {title} ===");
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(reps_cfg.clone()),
    ] {
        let w = patterns::tornado(fabric.n_hosts(), bytes);
        let mut exp = Experiment::new(title, fabric.clone(), lb, w);
        exp.failures = failures.clone();
        exp.track = TrackLinks::TorUplinks(0);
        exp.sample_until = sample_until;
        exp.seed = 11;
        exp.deadline = Time::from_secs(2);
        run_micro(title, &exp);
    }
}

/// Fig. 2: tornado on a healthy symmetric fabric — OPS develops transient
/// queues between K_min and K_max; REPS converges below K_min.
pub fn fig02(scale: Scale) {
    let fabric = FatTreeConfig::two_tier(16, 1); // 8 uplinks per ToR, as plotted.
    let bytes = micro_bytes(scale, 16);
    micro_pair(
        "Fig. 2: tornado 16MiB symmetric (OPS vs REPS)",
        fabric,
        bytes,
        FailurePlan::none(),
        scale.pick(Time::from_us(400), Time::from_us(400)),
        RepsConfig::default(),
    );
    println!("(paper: REPS holds all queues below K_min=80KB; OPS oscillates, ~4% slower)");
}

/// Fig. 4: one ToR uplink degraded to 200 Gbps — REPS skews traffic away
/// from the slow link and finishes ~1.75x faster than OPS.
pub fn fig04(scale: Scale) {
    println!("=== Fig. 4: asymmetric (one 200G uplink) 32MiB send ===");
    let fabric = FatTreeConfig::two_tier(16, 1);
    let bytes = micro_bytes(scale, 32);
    // Degrade ToR 0's first uplink cable to 200 Gbps.
    let topo = netsim::topology::Topology::build(fabric.clone(), 11);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
    let failures = FailurePlan::none().with(Failure::Degrade {
        pair,
        at: Time::ZERO,
        bps: 200_000_000_000,
    });
    micro_pair(
        "Fig. 4: asymmetric tornado (OPS vs REPS)",
        fabric,
        bytes,
        failures,
        Time::from_us(1_500),
        RepsConfig::default(),
    );
    println!("(paper: 1400us OPS vs 799us REPS; slow port used less by REPS)");
}

/// Fig. 7: two transient cable failures (100 us at t=100 us, 200 us at
/// t=350 us) during a permutation — freezing avoids the failed paths.
pub fn fig07(scale: Scale) {
    println!("=== Fig. 7: two transient cable failures, 64MiB permutation ===");
    let fabric = FatTreeConfig::two_tier(16, 1);
    let bytes = micro_bytes(scale, 64);
    let topo = netsim::topology::Topology::build(fabric.clone(), 11);
    let pairs = topo.tor_uplink_pairs(SwitchId(0));
    let failures = FailurePlan::none()
        .with(Failure::Cable {
            pair: pairs[0],
            at: Time::from_us(100),
            duration: Some(Time::from_us(100)),
        })
        .with(Failure::Cable {
            pair: pairs[1],
            at: Time::from_us(350),
            duration: Some(Time::from_us(200)),
        });
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let mut rng = netsim::rng::Rng64::new(13);
        let w = patterns::permutation(fabric.n_hosts(), bytes, &mut rng);
        let mut exp = Experiment::new("fig07", fabric.clone(), lb, w);
        exp.failures = failures.clone();
        exp.track = TrackLinks::TorUplinks(0);
        exp.sample_until = Time::from_us(2_500);
        exp.seed = 13;
        exp.deadline = Time::from_secs(2);
        run_micro("Fig. 7", &exp);
    }
    println!("(paper: REPS >35% faster and 2.5x fewer drops than OPS)");
}

/// Fig. 19 (Appendix A): forcing freezing mode at t=50 us without any
/// failure — REPS stays stable and completes like normal REPS.
pub fn fig19(scale: Scale) {
    println!("=== Fig. 19: forced freezing after 50us, 16MiB tornado ===");
    let fabric = FatTreeConfig::two_tier(16, 1);
    let bytes = micro_bytes(scale, 16);
    for (label, lb) in [
        ("OPS", LbKind::Ops { evs_size: 1 << 16 }),
        ("REPS", LbKind::Reps(RepsConfig::default())),
        (
            "REPS+force-freeze@50us",
            LbKind::Reps(RepsConfig {
                force_freezing_at: Some(Time::from_us(50)),
                ..RepsConfig::default()
            }),
        ),
    ] {
        let w = patterns::tornado(fabric.n_hosts(), bytes);
        let mut exp = Experiment::new(label, fabric.clone(), lb, w);
        exp.track = TrackLinks::TorUplinks(0);
        exp.sample_until = Time::from_us(400);
        exp.seed = 17;
        exp.deadline = Time::from_secs(2);
        run_micro(label, &exp);
    }
    println!("(paper: forced freezing is comparable to standard REPS, both beat OPS)");
}

/// Fig. 22 (Appendix C.3): incrementally fail 3 of 4 uplinks of one ToR,
/// 200 us apart, permanently.
pub fn fig22(scale: Scale) {
    println!("=== Fig. 22: incremental persistent uplink failures ===");
    // Radix-8 so the ToR has 4 uplinks, as in the figure.
    let fabric = FatTreeConfig::two_tier(8, 1);
    let bytes = micro_bytes(scale, 32);
    let topo = netsim::topology::Topology::build(fabric.clone(), 19);
    let pairs = topo.tor_uplink_pairs(SwitchId(0));
    let spacing = scale.pick(50, 200);
    let mut failures = FailurePlan::none();
    for (i, pair) in pairs.iter().take(3).enumerate() {
        failures = failures.with(Failure::Cable {
            pair: *pair,
            at: Time::from_us(spacing * (i as u64 + 1)),
            duration: None,
        });
    }
    for lb in [
        LbKind::Ops { evs_size: 1 << 16 },
        LbKind::Reps(RepsConfig::default()),
    ] {
        let mut rng = netsim::rng::Rng64::new(19);
        let w = patterns::permutation(fabric.n_hosts(), bytes, &mut rng);
        let mut exp = Experiment::new("fig22", fabric.clone(), lb, w);
        exp.failures = failures.clone();
        exp.track = TrackLinks::TorUplinks(0);
        exp.sample_until = Time::from_ms(3);
        exp.seed = 19;
        exp.deadline = Time::from_secs(5);
        run_micro("Fig. 22", &exp);
    }
    println!("(paper: OPS ~40x worse; REPS freezes onto the surviving uplink)");
}
