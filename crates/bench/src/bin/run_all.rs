//! Runs the full figure suite as a thin wrapper over the sweep engine.
//!
//! Every figure is one entry in a declarative table; the simulation
//! figures execute their experiment lineups through the sweep engine's
//! work-stealing pool (`REPS_THREADS` workers, default: all cores), so the
//! suite scales with the machine while printing byte-identical tables.
//!
//! ```text
//! run_all [GLOB]        # e.g. run_all 'fig0*' — default: everything
//! REPS_SCALE=full run_all
//! ```
//!
//! For raw per-cell JSONL output and cross-seed aggregation, use the
//! `repsbench` binary from the `sweep` crate instead.

use harness::Scale;

/// One figure entry: name plus its runner.
type Figure = (&'static str, fn(Scale));

/// The figure table: name → runner. Theory figures take no scale.
fn figures() -> Vec<Figure> {
    vec![
        ("table1_footprint", |_| bench::theory::table1()),
        ("fig02_tornado_micro", bench::micro::fig02),
        ("fig03_symmetric_macro", bench::macro_figs::fig03),
        ("fig04_asymmetric_micro", bench::micro::fig04),
        ("fig05_asymmetric_macro", bench::macro_figs::fig05),
        ("fig06_mixed_traffic", bench::macro_figs::fig06),
        ("fig07_failure_micro", bench::micro::fig07),
        ("fig08_failure_macro", bench::macro_figs::fig08),
        ("fig09_extreme_failures", bench::macro_figs::fig09),
        ("fig10_fpga_goodput", bench::fpga::fig10),
        ("fig11_fpga_fct_drops", bench::fpga::fig11),
        ("fig12_ack_coalescing", bench::applicability::fig12),
        ("fig13_coalescing_variants", bench::applicability::fig13),
        ("fig14_evs_imbalance", |_| bench::theory::fig14()),
        ("fig15_evs_and_cc", bench::applicability::fig15),
        ("fig16_topology_scaling", bench::applicability::fig16),
        ("fig17_balls_bins_ops", |_| bench::theory::fig17()),
        ("fig18_recycled_balls", |_| bench::theory::fig18()),
        ("fig19_forced_freezing", bench::micro::fig19),
        ("fig20_coalesced_balls", |_| bench::theory::fig20()),
        ("fig21_three_tier", bench::macro_figs::fig21),
        ("fig22_incremental_failures", bench::micro::fig22),
        ("fig23_freezing_ablation", bench::applicability::fig23),
        ("fig24_trace_cdfs", |_| bench::theory::fig24()),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let filter = std::env::args().nth(1).unwrap_or_else(|| "*".to_string());
    let mut ran = 0usize;
    for (name, figure) in figures() {
        if !sweep::glob::matches(&filter, name) {
            continue;
        }
        ran += 1;
        println!("\n>>> {name}");
        figure(scale);
    }
    if ran == 0 {
        eprintln!("no figure matches filter {filter:?}");
        std::process::exit(1);
    }
}
