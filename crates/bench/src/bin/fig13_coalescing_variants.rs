//! Regenerates fig13 of the REPS paper. See DESIGN.md for the experiment index.

fn main() {
    let scale = harness::Scale::from_env();
    let _ = scale;
    bench::applicability::fig13(scale);
}
