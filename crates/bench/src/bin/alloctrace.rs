//! `alloctrace` — one-off allocation accounting for the hot-path cell.
//!
//! Runs the same permutation cell as `microbench`'s gated benchmark under
//! a counting global allocator and reports allocations per simulator
//! event, split into build phase vs. run phase. Diagnostic tool for the
//! zero-allocation work; not part of CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use baselines::kind::LbKind;
use harness::experiment::Experiment;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::FatTreeConfig;
use reps::reps::RepsConfig;
use workloads::patterns;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to `System` unchanged; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

fn snap() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    let mut rng = Rng64::new(3);
    let w = patterns::permutation(32, 1 << 20, &mut rng);
    let mut exp = Experiment::new(
        "alloctrace",
        FatTreeConfig::two_tier(8, 1),
        LbKind::Reps(RepsConfig::default()),
        w,
    );
    exp.seed = 3;
    exp.deadline = Time::from_ms(100);

    let (a0, b0) = snap();
    let mut engine = exp.build();
    let (a1, b1) = snap();
    let mut events = 0;
    let mut max_pending = 0usize;
    let mut t = Time::ZERO;
    while t < exp.deadline {
        t += Time::from_us(20);
        events += engine.run_until(t);
        max_pending = max_pending.max(engine.pending_events());
        if engine.pending_events() == 0 {
            break;
        }
    }
    let (a2, b2) = snap();
    println!("max pending events: {max_pending}");

    println!("build:  {} allocs, {} KiB", a1 - a0, (b1 - b0) / 1024);
    println!(
        "run:    {} allocs, {} KiB over {} events",
        a2 - a1,
        (b2 - b1) / 1024,
        events
    );
    println!(
        "run:    {:.3} allocs/event, {:.1} bytes/event",
        (a2 - a1) as f64 / events as f64,
        (b2 - b1) as f64 / events as f64
    );
}
