//! `microbench` — the offline hot-path benchmark suite (tinybench).
//!
//! Ports the criterion benches from `benches/micro.rs` and
//! `benches/simulation.rs` (which stay gated behind `autobenches = false`
//! because the offline image cannot fetch `criterion`) onto the
//! `tinybench` harness, and adds the DES hot-path measurements the
//! zero-allocation refactor is tracked by:
//!
//! * `hotpath/permutation_cell` — a full single sweep cell (32-host
//!   permutation, REPS) measured in simulator **events per second**; this
//!   is the number the CI `microbench-smoke` job gates on.
//! * `calendar/*` — the event calendar under a synthetic hold model: the
//!   engine's self-tuning two-level calendar against the
//!   BinaryHeap-of-POD it replaced, across a held-event × gap-shape
//!   matrix (256/4096/65536 held, uniform vs bimodal gaps), plus the
//!   naive fixed-width ring that lost the original bakeoff (see the
//!   `netsim::event` module docs for the history).
//! * `hybrid/*` — the hybrid-fidelity headline: one O(10k)-host cell
//!   (160 ToRs × 64 hosts) with an all-hosts tornado background run at
//!   matched offered load as packets (`fidelity=pkt`) and as fluid flows
//!   (`fidelity=hybrid{bg=fluid}`). Besides the per-bench baselines the
//!   pair carries its own gate: the fluid variant must stay at least
//!   [`HYBRID_SPEEDUP_FLOOR`]x faster than its all-packet twin.
//!
//! ```text
//! microbench [--out PATH] [--target-ms N] [--filter SUBSTR]
//!            [--check BASELINE.json [--tolerance F]]
//! ```
//!
//! Writes the JSON report to `--out` (default `BENCH_hotpath.json`).
//! With `--check`, compares `hotpath/permutation_cell` events/sec against
//! the named baseline report and exits non-zero when the current number is
//! more than `--tolerance` (default 0.2) below it.

use std::process::ExitCode;
use std::time::Instant;

use ballsbins::batched::BatchedBallsBins;
use ballsbins::recycled::{theorem_parameters, RecycledBallsBins};
use baselines::kind::LbKind;
use harness::experiment::Experiment;
use netsim::event::{Event, EventQueue};
use netsim::hash::ecmp_select;
use netsim::ids::HostId;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::FatTreeConfig;
use reps::lb::{AckFeedback, LoadBalancer};
use reps::reps::{Reps, RepsConfig};
use tinybench::{json_field, BenchResult, Harness};
use transport::sack::OooTracker;
use workloads::patterns;

/// The gated benchmark: its events/sec must not regress vs. the baseline.
const GATED_BENCH: &str = "hotpath/permutation_cell";

/// The 10k-host hybrid cell with its background as packet flows.
const HYBRID_PKT_BENCH: &str = "hybrid/cell10k_bg_pkt";
/// The same cell with the background on the analytic fluid model.
const HYBRID_FLUID_BENCH: &str = "hybrid/cell10k_bg_fluid";
/// Minimum pkt/fluid wall-time ratio for the 10k-host cell: the whole
/// point of hybrid fidelity is an order-of-magnitude cheaper background,
/// so `--check` fails when the fluid variant is less than 10x faster.
const HYBRID_SPEEDUP_FLOOR: f64 = 10.0;

/// Every bench `--check` gates (elems/sec vs. the baseline report): the
/// end-to-end hot path plus the calendar matrix cells closest to it —
/// the hot-path cell's held-event count under both gap shapes, the
/// large-held point the ROADMAP's scale target cares about — and both
/// fidelities of the 10k-host hybrid cell. A gated bench missing from
/// either report fails the check.
const GATED_BENCHES: &[&str] = &[
    GATED_BENCH,
    "calendar/engine_queue_hold256_uniform",
    "calendar/engine_queue_hold256_bimodal",
    "calendar/engine_queue_hold65536_uniform",
    HYBRID_PKT_BENCH,
    HYBRID_FLUID_BENCH,
];

struct Opts {
    out: String,
    target_ms: Option<u64>,
    check: Option<String>,
    tolerance: f64,
    filter: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        out: "BENCH_hotpath.json".to_string(),
        target_ms: None,
        check: None,
        tolerance: 0.2,
        filter: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--out" => opts.out = value("--out")?.clone(),
            "--target-ms" => {
                opts.target_ms = Some(
                    value("--target-ms")?
                        .parse::<u64>()
                        .map_err(|e| format!("--target-ms: {e}"))?,
                )
            }
            "--check" => opts.check = Some(value("--check")?.clone()),
            "--filter" => opts.filter = Some(value("--filter")?.clone()),
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse::<f64>()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: microbench [--out PATH] [--target-ms N] [--filter SUBSTR] [--check BASELINE.json [--tolerance F]]"
                ))
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut h = Harness::new();
    if let Some(ms) = opts.target_ms {
        h = h.target_ms(ms);
    }
    if let Some(pat) = &opts.filter {
        h = h.filter(pat);
    }

    bench_reps(&mut h);
    bench_substrate(&mut h);
    bench_calendar(&mut h);
    bench_simulation(&mut h);
    bench_hotpath(&mut h);
    bench_hybrid(&mut h);

    let json = h.to_json();
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("writing {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} benches to {}", h.results().len(), opts.out);

    let hybrid_ok = hybrid_speedup_holds(h.results());
    if let Some(baseline_path) = &opts.check {
        let baseline = check_regression(&json, baseline_path, opts.tolerance);
        if !hybrid_ok {
            return ExitCode::FAILURE;
        }
        return baseline;
    }
    ExitCode::SUCCESS
}

/// Prints — and under `--check`, gates — the pkt/fluid wall-time ratio of
/// the 10k-host hybrid cell. Returns `true` when the pair was filtered
/// out or the fluid variant is at least [`HYBRID_SPEEDUP_FLOOR`]x faster.
fn hybrid_speedup_holds(results: &[BenchResult]) -> bool {
    let ns = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.ns_per_iter)
    };
    let (Some(pkt), Some(fluid)) = (ns(HYBRID_PKT_BENCH), ns(HYBRID_FLUID_BENCH)) else {
        return true;
    };
    let speedup = pkt / fluid;
    if speedup < HYBRID_SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: fluid background only {speedup:.1}x faster than packets on the 10k-host cell (floor {HYBRID_SPEEDUP_FLOOR}x)"
        );
        return false;
    }
    eprintln!(
        "hybrid/cell10k: fluid background {speedup:.1}x faster than packets (floor {HYBRID_SPEEDUP_FLOOR}x) — ok"
    );
    true
}

/// Gates every bench in [`GATED_BENCHES`] (elems/sec) against a
/// checked-in baseline report. All gated benches are evaluated so a
/// failing run reports every regression at once, not just the first.
fn check_regression(current: &str, baseline_path: &str, tolerance: f64) -> ExitCode {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("reading baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for name in GATED_BENCHES {
        let (Some(base), Some(now)) = (
            json_field(&baseline, name, "elems_per_sec"),
            json_field(current, name, "elems_per_sec"),
        ) else {
            eprintln!("{name} missing from baseline or current report");
            failed = true;
            continue;
        };
        let floor = base * (1.0 - tolerance);
        let ratio = now / base;
        if now < floor {
            eprintln!(
                "REGRESSION: {name} at {:.2} M elems/s is {:.0}% of the {:.2} M elems/s baseline (floor {:.0}%)",
                now / 1e6,
                ratio * 100.0,
                base / 1e6,
                (1.0 - tolerance) * 100.0
            );
            failed = true;
            continue;
        }
        eprintln!(
            "{name}: {:.2} M elems/s ({:.0}% of baseline, floor {:.0}%) — ok",
            now / 1e6,
            ratio * 100.0,
            (1.0 - tolerance) * 100.0
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The REPS per-packet paths (from `benches/micro.rs`).
fn bench_reps(h: &mut Harness) {
    h.bench_function("reps/next_ev", |b| {
        let mut reps = Reps::new(RepsConfig::default());
        let mut rng = Rng64::new(1);
        // Warm the buffer so both branches (reuse + explore) are exercised.
        for ev in 0..8u16 {
            reps.on_ack(
                &AckFeedback {
                    ev,
                    ecn: false,
                    now: Time::from_us(1),
                    cwnd_packets: 16,
                    rtt: Time::from_us(10),
                },
                &mut rng,
            );
        }
        b.iter(|| reps.next_ev(Time::from_us(2), &mut rng))
    });
    h.bench_function("reps/on_ack", |b| {
        let mut reps = Reps::new(RepsConfig::default());
        let mut rng = Rng64::new(2);
        let fb = AckFeedback {
            ev: 77,
            ecn: false,
            now: Time::from_us(1),
            cwnd_packets: 16,
            rtt: Time::from_us(10),
        };
        b.iter(|| reps.on_ack(&fb, &mut rng))
    });
}

/// Simulator substrate micro paths (from `benches/micro.rs`).
fn bench_substrate(h: &mut Harness) {
    h.bench_function("substrate/ecmp_select_8way", |b| {
        let mut ev = 0u16;
        b.iter(|| {
            ev = ev.wrapping_add(1);
            ecmp_select(HostId(3), HostId(96), ev, 0xDEAD, 8)
        })
    });
    h.bench_function("substrate/ooo_tracker_in_order_256", |b| {
        b.elements(256);
        b.iter_batched(OooTracker::new, |mut t| {
            for seq in 0..256u64 {
                t.record(seq);
            }
            t.cum_ack()
        })
    });
    h.bench_function("substrate/ooo_tracker_reversed_256", |b| {
        b.elements(256);
        b.iter_batched(OooTracker::new, |mut t| {
            for seq in (0..256u64).rev() {
                t.record(seq);
            }
            t.cum_ack()
        })
    });
    h.bench_function("substrate/batched_balls_round_64", |b| {
        let mut rng = Rng64::new(5);
        let mut p = BatchedBallsBins::new(64, 0.99);
        b.iter(|| p.step(&mut rng))
    });
    h.bench_function("substrate/recycled_balls_round_64", |b| {
        let mut rng = Rng64::new(5);
        let (bb, tau) = theorem_parameters(64);
        let mut p = RecycledBallsBins::new(64, bb, tau);
        b.iter(|| p.step(&mut rng))
    });
    h.bench_function("substrate/rng_next_u64", |b| {
        let mut rng = Rng64::new(9);
        b.iter(|| rng.next_u64())
    });
}

/// Calendar hold model: keep `n` timer events pending; each operation pops
/// the earliest and schedules a replacement a pseudo-random delta ahead.
/// This is the classic DES calendar stress shape (no packets involved, so
/// it isolates the queue data structure itself).
/// Gap distributions for the calendar hold-model matrix.
#[derive(Clone, Copy)]
enum Gaps {
    /// Uniform 1..4 us deltas — the classic hold model.
    Uniform,
    /// ~90% short (≤256 ns) deltas with ~10% long (~16 us) outliers —
    /// the shape a transport produces: dense per-packet service events
    /// punctuated by RTT-scale timers. Stresses the width self-tuning:
    /// a width fit to the short mode must absorb the outliers through
    /// later buckets or the overflow level without thrashing.
    Bimodal,
}

impl Gaps {
    fn next(self, rng: &mut Rng64) -> Time {
        match self {
            Gaps::Uniform => Time::from_ns(1 + rng.gen_range(1 << 12)),
            Gaps::Bimodal => {
                if rng.gen_range(10) == 0 {
                    Time::from_us(16) + Time::from_ns(rng.gen_range(1 << 15))
                } else {
                    Time::from_ns(1 + rng.gen_range(256))
                }
            }
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Gaps::Uniform => "uniform",
            Gaps::Bimodal => "bimodal",
        }
    }
}

fn bench_calendar(h: &mut Harness) {
    const OPS: u64 = 65_536;
    // The bakeoff matrix: engine calendar vs the BinaryHeap-of-POD it
    // replaced, across held-event counts bracketing the hot-path cell
    // (a 32-host cell holds a few hundred; the ROADMAP's O(10k)-host
    // target holds tens of thousands) and both gap distributions.
    for held in [256u64, 4096, 65_536] {
        for gaps in [Gaps::Uniform, Gaps::Bimodal] {
            h.bench_function(
                &format!("calendar/engine_queue_hold{held}_{}", gaps.tag()),
                |b| {
                    b.elements(OPS);
                    b.iter_batched(
                        || {
                            let mut q = EventQueue::new();
                            let mut rng = Rng64::new(11);
                            for token in 0..held {
                                q.push(
                                    Time::from_ns(rng.gen_range(1 << 16)),
                                    Event::Timer {
                                        host: HostId(0),
                                        token,
                                    },
                                );
                            }
                            (q, rng)
                        },
                        |(mut q, mut rng)| {
                            for _ in 0..OPS {
                                let (at, ev) = q.pop().expect("hold model never drains");
                                q.push(at + gaps.next(&mut rng), ev);
                            }
                            q.len()
                        },
                    )
                },
            );
            h.bench_function(
                &format!("calendar/binheap_pod_hold{held}_{}", gaps.tag()),
                |b| {
                    b.elements(OPS);
                    b.iter_batched(
                        || {
                            let mut q = PodBinHeap::default();
                            let mut rng = Rng64::new(11);
                            for token in 0..held {
                                q.push(Time::from_ns(rng.gen_range(1 << 16)), token);
                            }
                            (q, rng)
                        },
                        |(mut q, mut rng)| {
                            for _ in 0..OPS {
                                let (at, token) = q.pop().expect("hold model never drains");
                                q.push(at + gaps.next(&mut rng), token);
                            }
                            q.len()
                        },
                    )
                },
            );
        }
    }
    // The naive fixed-width ring that lost the original bakeoff, kept
    // at its historical shape so old and new reports stay comparable.
    h.bench_function("calendar/bucket_ring_hold4096", |b| {
        b.elements(OPS);
        b.iter_batched(
            || {
                let mut q = BucketRing::new();
                let mut rng = Rng64::new(11);
                for token in 0..4096u64 {
                    q.push(Time::from_ns(rng.gen_range(1 << 16)), token);
                }
                (q, rng)
            },
            |(mut q, mut rng)| {
                for _ in 0..OPS {
                    let (at, token) = q.pop().expect("hold model never drains");
                    q.push(at + Time::from_ns(1 + rng.gen_range(1 << 12)), token);
                }
                q.len()
            },
        )
    });
}

/// `std::BinaryHeap` over POD `(time, seq, token)` entries sized like the
/// engine's calendar entries — the shape the engine's hand-rolled 4-ary
/// heap was benchmarked against before committing (see `netsim::event`).
#[derive(Default)]
struct PodBinHeap {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Time, u64, [u64; 3])>>,
    seq: u64,
}

impl PodBinHeap {
    fn push(&mut self, at: Time, token: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(std::cmp::Reverse((at, seq, [token, 0, 0])));
    }

    fn pop(&mut self) -> Option<(Time, u64)> {
        self.heap
            .pop()
            .map(|std::cmp::Reverse((at, _, p))| (at, p[0]))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A bucketed-ring calendar prototype, benchmarked against the engine's
/// heap before committing to it (see `netsim::event`).
/// Fixed-width time buckets in a ring; each bucket is an unsorted `Vec`
/// scanned for its `(time, seq)` minimum on pop. Deltas must stay within
/// the ring horizon (true for the hold model above).
struct BucketRing {
    buckets: Vec<Vec<(Time, u64, u64)>>,
    width_ps: u64,
    cursor: usize,
    len: usize,
    seq: u64,
}

impl BucketRing {
    const BUCKETS: usize = 1024;

    fn new() -> BucketRing {
        BucketRing {
            buckets: (0..Self::BUCKETS).map(|_| Vec::new()).collect(),
            // 64 ns buckets: a ~65 us horizon, several fabric RTTs.
            width_ps: Time::from_ns(64).as_ps().max(1),
            cursor: 0,
            len: 0,
            seq: 0,
        }
    }

    fn bucket_of(&self, at: Time) -> usize {
        ((at.as_ps() / self.width_ps) as usize) % Self::BUCKETS
    }

    fn push(&mut self, at: Time, token: u64) {
        let b = self.bucket_of(at);
        let seq = self.seq;
        self.seq += 1;
        self.buckets[b].push((at, seq, token));
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        // Advance the cursor to the next non-empty bucket, then extract the
        // (time, seq)-minimum so FIFO tie-breaks match the heap's.
        loop {
            if !self.buckets[self.cursor].is_empty() {
                let bucket = &mut self.buckets[self.cursor];
                let mut best = 0;
                for i in 1..bucket.len() {
                    let (t, s, _) = bucket[i];
                    let (bt, bs, _) = bucket[best];
                    if (t, s) < (bt, bs) {
                        best = i;
                    }
                }
                let (at, _, token) = bucket.swap_remove(best);
                self.len -= 1;
                return Some((at, token));
            }
            self.cursor = (self.cursor + 1) % Self::BUCKETS;
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// End-to-end simulation benches (from `benches/simulation.rs`).
fn bench_simulation(h: &mut Harness) {
    let run_tornado = |lb: LbKind| {
        let w = patterns::tornado(16, 256 << 10);
        let mut exp = Experiment::new("bench", FatTreeConfig::two_tier(8, 1), lb, w);
        exp.seed = 3;
        exp.deadline = Time::from_ms(100);
        let res = exp.run();
        assert!(res.summary.completed);
        res.summary.max_fct.as_ps()
    };
    h.bench_function("simulation/tornado_16hosts_reps", |b| {
        b.iter(|| run_tornado(LbKind::Reps(RepsConfig::default())))
    });
    h.bench_function("simulation/tornado_16hosts_ops", |b| {
        b.iter(|| run_tornado(LbKind::Ops { evs_size: 1 << 16 }))
    });
    h.bench_function("simulation/tornado_16hosts_ecmp", |b| {
        b.iter(|| run_tornado(LbKind::Ecmp))
    });
    h.bench_function("simulation/incast_8to1_1MiB", |b| {
        b.iter(|| {
            let w = patterns::incast(32, 8, HostId(0), 1 << 20);
            let mut exp = Experiment::new(
                "bench",
                FatTreeConfig::two_tier(8, 1),
                LbKind::Reps(RepsConfig::default()),
                w,
            );
            exp.seed = 5;
            exp.deadline = Time::from_ms(100);
            exp.run().summary.completed
        })
    });
}

/// The permutation-workload cell the refactor targets: a 32-host two-tier
/// fabric running a 1 MiB-per-host permutation under REPS — the same shape
/// as the `permutation-sweep` preset's cells. Reported in simulator
/// events/sec (engine build excluded from timing).
fn bench_hotpath(h: &mut Harness) {
    let exp = hotpath_experiment();
    let deadline = exp.deadline;
    // Events per run are deterministic for the fixed seed: count them once.
    let mut probe = exp.build();
    let events = probe.run_until(deadline);
    assert!(events > 100_000, "hot-path cell too small: {events} events");
    h.bench_function(GATED_BENCH, |b| {
        b.elements(events);
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let mut engine = exp.build();
                // detlint: allow(DET002) — this IS the benchmark measurement
                let start = Instant::now();
                let n = engine.run_until(deadline);
                total += start.elapsed();
                assert_eq!(n, events, "nondeterministic event count");
            }
            total
        })
    });
}

fn hotpath_experiment() -> Experiment {
    let mut rng = Rng64::new(3);
    let w = patterns::permutation(32, 1 << 20, &mut rng);
    let mut exp = Experiment::new(
        "hotpath",
        FatTreeConfig::two_tier(8, 1),
        LbKind::Reps(RepsConfig::default()),
        w,
    );
    exp.seed = 3;
    exp.deadline = Time::from_ms(100);
    exp
}

/// The hybrid-fidelity headline pair: the O(10k)-host cell from
/// [`hybrid_experiment`] run to the same simulated horizon with its
/// background as packets vs. as fluid flows. Engine builds sit outside
/// the timed region, so the reported wall time is pure simulation;
/// `main` derives the pkt/fluid speedup from the two results and
/// enforces [`HYBRID_SPEEDUP_FLOOR`] under `--check`.
fn bench_hybrid(h: &mut Harness) {
    for (name, fluid) in [(HYBRID_PKT_BENCH, false), (HYBRID_FLUID_BENCH, true)] {
        // The event-count probe costs a full cell simulation, so it runs
        // lazily inside the closure: a `--filter` that excludes the
        // hybrid family never builds the 10k-host engine at all.
        let mut probed: Option<u64> = None;
        h.bench_function(name, |b| {
            let exp = hybrid_experiment(fluid);
            let deadline = exp.deadline;
            let events = *probed.get_or_insert_with(|| {
                let mut probe = exp.build();
                let n = probe.run_until(deadline);
                assert!(n > 10_000, "hybrid cell too small: {n} events");
                n
            });
            b.elements(events);
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let mut engine = exp.build();
                    // detlint: allow(DET002) — this IS the benchmark measurement
                    let start = Instant::now();
                    let n = engine.run_until(deadline);
                    total += start.elapsed();
                    assert_eq!(n, events, "nondeterministic event count");
                }
                total
            })
        });
    }
}

/// The 10k-host hybrid cell (160 ToRs × 64 hosts, 2:1 oversubscribed):
/// a foreground permutation over the first eight racks under REPS plus
/// an all-hosts tornado background. The two fidelities differ only in
/// `fluid_background`, so their wall-time ratio is pure
/// background-modelling cost at matched offered load.
fn hybrid_experiment(fluid: bool) -> Experiment {
    let mut rng = Rng64::new(11);
    let fg = patterns::permutation(512, 32 << 10, &mut rng);
    let mut exp = Experiment::new(
        "hybrid10k",
        FatTreeConfig::two_tier_custom(160, 64, 32),
        LbKind::Reps(RepsConfig::default()),
        fg,
    );
    exp.background = Some((patterns::tornado(10_240, 32 << 10), LbKind::Ecmp));
    exp.fluid_background = fluid;
    exp.seed = 11;
    exp.deadline = Time::from_ms(5);
    exp
}
