//! Ablations of REPS design choices called out in DESIGN.md:
//!
//! 1. circular-buffer depth (the paper uses 8; Theorem 5.1 motivates
//!    `O(log n)`),
//! 2. freezing-timeout length,
//! 3. fabric packet trimming vs timeout-only loss detection (Appendix A).

use baselines::kind::LbKind;
use harness::experiment::Experiment;
use harness::Scale;
use netsim::failures::{Failure, FailurePlan};
use netsim::ids::SwitchId;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use reps::reps::RepsConfig;
use workloads::patterns;

fn run(
    fabric: &FatTreeConfig,
    cfg: RepsConfig,
    failures: &FailurePlan,
    bytes: u64,
    trimming: bool,
    seed: u64,
) -> harness::Summary {
    let mut rng = Rng64::new(seed);
    let w = patterns::permutation(fabric.n_hosts(), bytes, &mut rng);
    let mut exp = Experiment::new("ablation", fabric.clone(), LbKind::Reps(cfg), w);
    exp.failures = failures.clone();
    exp.sim.trimming = trimming;
    exp.seed = seed;
    exp.deadline = Time::from_secs(5);
    exp.run().summary
}

fn main() {
    let scale = Scale::from_env();
    let fabric = FatTreeConfig::two_tier(16, 1);
    let bytes: u64 = scale.pick(2 << 20, 8 << 20);
    let topo = Topology::build(fabric.clone(), 91);
    let pair = topo.tor_uplink_pairs(SwitchId(0))[0];
    let failure = FailurePlan::none().with(Failure::Cable {
        pair,
        at: Time::from_us(20),
        duration: None,
    });

    println!("=== Ablation 1: REPS buffer depth (permutation, one failed cable) ===");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "depth", "healthy(us)", "failure(us)", "drops"
    );
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let cfg = RepsConfig {
            buffer_size: depth,
            ..RepsConfig::default()
        };
        let healthy = run(&fabric, cfg.clone(), &FailurePlan::none(), bytes, false, 91);
        let failed = run(&fabric, cfg, &failure, bytes, false, 91);
        println!(
            "{depth:<8} {:>14.1} {:>14.1} {:>10}",
            healthy.max_fct.as_us_f64(),
            failed.max_fct.as_us_f64(),
            failed.counters.drops_link_down
        );
    }
    println!("(the paper's depth of 8 sits at the knee: deeper buys little)");

    println!("\n=== Ablation 2: freezing timeout (one failed cable) ===");
    println!(
        "{:<12} {:>14} {:>10} {:>10}",
        "timeout(us)", "failure(us)", "drops", "timeouts"
    );
    for timeout_us in [25u64, 50, 100, 200, 400] {
        let cfg = RepsConfig {
            freezing_timeout: Time::from_us(timeout_us),
            ..RepsConfig::default()
        };
        let s = run(&fabric, cfg, &failure, bytes, false, 91);
        println!(
            "{timeout_us:<12} {:>14.1} {:>10} {:>10}",
            s.max_fct.as_us_f64(),
            s.counters.drops_link_down,
            s.counters.timeouts
        );
    }
    println!("(short timeouts re-probe the dead path more often; long ones delay recovery)");

    println!("\n=== Ablation 3: packet trimming vs timeout-only (Appendix A) ===");
    // Trimming engages on congestion overflow, not blackholes — use a hard
    // incast where queues overflow.
    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>10}",
        "trimming", "incast(us)", "trims", "timeouts", "retx"
    );
    for trimming in [false, true] {
        let w = patterns::incast(
            fabric.n_hosts(),
            16,
            netsim::ids::HostId(0),
            scale.pick(2 << 20, 8 << 20),
        );
        let mut exp = Experiment::new(
            "trim",
            fabric.clone(),
            LbKind::Reps(RepsConfig::default()),
            w,
        );
        exp.sim.trimming = trimming;
        exp.seed = 91;
        exp.deadline = Time::from_secs(5);
        let s = exp.run().summary;
        println!(
            "{:<12} {:>14.1} {:>10} {:>10} {:>10}",
            trimming,
            s.max_fct.as_us_f64(),
            s.counters.trims,
            s.counters.timeouts,
            s.counters.retransmissions
        );
    }
    println!("(trimming converts congestion losses into immediate NACKs, sparing RTOs)");
}
