//! Per-figure benchmark harness for the REPS reproduction.
//!
//! One public function per paper figure/table, each printing the rows or
//! series the paper reports. The binaries in `src/bin/` are thin wrappers;
//! `run_all` executes the whole suite. Set `REPS_SCALE=full` for the
//! paper-scale parameters (slower); the default `quick` scale preserves
//! every qualitative shape.

pub mod applicability;
pub mod common;
pub mod fpga;
pub mod macro_figs;
pub mod micro;
pub mod theory;
