//! Criterion micro-benchmarks: the per-packet hot paths of REPS and the
//! simulator substrate.
//!
//! REPS is meant to run in NIC hardware at hundreds of millions of packets
//! per second; the software model must at least show that the send/ACK paths
//! are a handful of nanoseconds with no allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ballsbins::batched::BatchedBallsBins;
use ballsbins::recycled::{theorem_parameters, RecycledBallsBins};
use netsim::hash::ecmp_select;
use netsim::ids::HostId;
use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};
use reps::reps::{Reps, RepsConfig};
use transport::sack::OooTracker;

fn bench_reps_send_path(c: &mut Criterion) {
    let mut reps = Reps::new(RepsConfig::default());
    let mut rng = Rng64::new(1);
    // Warm the buffer so both branches (reuse + explore) are exercised.
    for ev in 0..8u16 {
        reps.on_ack(
            &AckFeedback {
                ev,
                ecn: false,
                now: Time::from_us(1),
                cwnd_packets: 16,
                rtt: Time::from_us(10),
            },
            &mut rng,
        );
    }
    c.bench_function("reps_next_ev", |b| {
        b.iter(|| black_box(reps.next_ev(Time::from_us(2), &mut rng)))
    });
}

fn bench_reps_ack_path(c: &mut Criterion) {
    let mut reps = Reps::new(RepsConfig::default());
    let mut rng = Rng64::new(2);
    let fb = AckFeedback {
        ev: 77,
        ecn: false,
        now: Time::from_us(1),
        cwnd_packets: 16,
        rtt: Time::from_us(10),
    };
    c.bench_function("reps_on_ack", |b| {
        b.iter(|| reps.on_ack(black_box(&fb), &mut rng))
    });
}

fn bench_ecmp_hash(c: &mut Criterion) {
    c.bench_function("ecmp_select_8way", |b| {
        let mut ev = 0u16;
        b.iter(|| {
            ev = ev.wrapping_add(1);
            black_box(ecmp_select(HostId(3), HostId(96), ev, 0xDEAD, 8))
        })
    });
}

fn bench_ooo_tracker(c: &mut Criterion) {
    c.bench_function("ooo_tracker_in_order_256", |b| {
        b.iter_batched(
            OooTracker::new,
            |mut t| {
                for seq in 0..256u64 {
                    t.record(seq);
                }
                black_box(t.cum_ack())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("ooo_tracker_reversed_256", |b| {
        b.iter_batched(
            OooTracker::new,
            |mut t| {
                for seq in (0..256u64).rev() {
                    t.record(seq);
                }
                black_box(t.cum_ack())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_balls_into_bins(c: &mut Criterion) {
    c.bench_function("batched_balls_round_64", |b| {
        let mut rng = Rng64::new(5);
        let mut p = BatchedBallsBins::new(64, 0.99);
        b.iter(|| p.step(&mut rng))
    });
    c.bench_function("recycled_balls_round_64", |b| {
        let mut rng = Rng64::new(5);
        let (bb, tau) = theorem_parameters(64);
        let mut p = RecycledBallsBins::new(64, bb, tau);
        b.iter(|| p.step(&mut rng))
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = Rng64::new(9);
        b.iter(|| black_box(rng.next_u64()))
    });
}

criterion_group!(
    benches,
    bench_reps_send_path,
    bench_reps_ack_path,
    bench_ecmp_hash,
    bench_ooo_tracker,
    bench_balls_into_bins,
    bench_rng
);
criterion_main!(benches);
