//! Criterion end-to-end simulation benchmarks: whole-substrate throughput
//! under the paper's workloads (small fabrics so one iteration stays in the
//! tens of milliseconds).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use baselines::kind::LbKind;
use harness::experiment::Experiment;
use netsim::time::Time;
use netsim::topology::FatTreeConfig;
use reps::reps::RepsConfig;
use workloads::patterns;

fn run_tornado(lb: LbKind) -> u64 {
    let w = patterns::tornado(16, 256 << 10);
    let mut exp = Experiment::new("bench", FatTreeConfig::two_tier(8, 1), lb, w);
    exp.seed = 3;
    exp.deadline = Time::from_ms(100);
    let res = exp.run();
    assert!(res.summary.completed);
    res.summary.max_fct.as_ps()
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("tornado_16hosts_256KB");
    group.sample_size(10);
    group.bench_function("reps", |b| {
        b.iter(|| black_box(run_tornado(LbKind::Reps(RepsConfig::default()))))
    });
    group.bench_function("ops", |b| {
        b.iter(|| black_box(run_tornado(LbKind::Ops { evs_size: 1 << 16 })))
    });
    group.bench_function("ecmp", |b| b.iter(|| black_box(run_tornado(LbKind::Ecmp))));
    group.finish();
}

fn bench_engine_events(c: &mut Criterion) {
    // Raw event-processing rate: a full incast under congestion control.
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.bench_function("incast_8to1_1MiB", |b| {
        b.iter(|| {
            let w = patterns::incast(32, 8, netsim::ids::HostId(0), 1 << 20);
            let mut exp = Experiment::new(
                "bench",
                FatTreeConfig::two_tier(8, 1),
                LbKind::Reps(RepsConfig::default()),
                w,
            );
            exp.seed = 5;
            exp.deadline = Time::from_ms(100);
            black_box(exp.run().summary.completed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_engine_events);
criterion_main!(benches);
