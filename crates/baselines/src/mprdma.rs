//! MPRDMA-style path selection (Lu et al., NSDI '18).
//!
//! MPRDMA is ACK-clocked: when an ACK returns without an ECN mark, the next
//! outgoing packet reuses that ACK's virtual path; marked ACKs steer the
//! sender elsewhere. Unlike REPS there is *no cache* — only the most recent
//! good entropy is remembered — so ACK bursts overwrite each other and
//! nothing protects the sender during failures (§4.1, §6).

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};

/// One-deep ACK-clocked entropy reuse.
#[derive(Debug, Clone)]
pub struct Mprdma {
    evs_size: u32,
    slot: Option<u16>,
}

impl Mprdma {
    /// Creates an MPRDMA-style balancer.
    pub fn new(evs_size: u32) -> Mprdma {
        assert!(evs_size > 0, "EVS must be non-empty");
        Mprdma {
            evs_size,
            slot: None,
        }
    }
}

impl Default for Mprdma {
    fn default() -> Mprdma {
        Mprdma::new(1 << 16)
    }
}

impl LoadBalancer for Mprdma {
    fn next_ev(&mut self, _now: Time, rng: &mut Rng64) -> u16 {
        match self.slot.take() {
            Some(ev) => ev,
            None => rng.gen_range(self.evs_size as u64) as u16,
        }
    }

    fn on_ack(&mut self, fb: &AckFeedback, _rng: &mut Rng64) {
        if fb.ecn {
            // Congested path: do not reuse; also forget any pending reuse of
            // an entropy that may share the bottleneck.
            self.slot = None;
        } else {
            self.slot = Some(fb.ev);
        }
    }

    fn on_timeout(&mut self, _now: Time) {
        self.slot = None;
    }

    fn name(&self) -> &'static str {
        "MPRDMA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(ev: u16, ecn: bool) -> AckFeedback {
        AckFeedback {
            ev,
            ecn,
            now: Time::ZERO,
            cwnd_packets: 16,
            rtt: Time::from_us(10),
        }
    }

    #[test]
    fn reuses_latest_good_entropy_once() {
        let mut lb = Mprdma::new(256);
        let mut rng = Rng64::new(1);
        lb.on_ack(&fb(42, false), &mut rng);
        assert_eq!(lb.next_ev(Time::ZERO, &mut rng), 42);
        // Slot consumed: next pick is random (very unlikely 42 again).
        let next = lb.next_ev(Time::ZERO, &mut rng);
        assert!((next as u32) < 256);
    }

    #[test]
    fn ack_burst_overwrites_single_slot() {
        // The contrast with REPS: three good ACKs, only the last survives.
        let mut lb = Mprdma::new(1 << 16);
        let mut rng = Rng64::new(2);
        lb.on_ack(&fb(1, false), &mut rng);
        lb.on_ack(&fb(2, false), &mut rng);
        lb.on_ack(&fb(3, false), &mut rng);
        assert_eq!(lb.next_ev(Time::ZERO, &mut rng), 3);
    }

    #[test]
    fn marked_ack_clears_slot() {
        let mut lb = Mprdma::new(1 << 16);
        let mut rng = Rng64::new(3);
        lb.on_ack(&fb(9, false), &mut rng);
        lb.on_ack(&fb(9, true), &mut rng);
        // Slot cleared: the next EV is a fresh random draw, not 9-for-sure.
        let mut reuse = 0;
        for _ in 0..64 {
            lb.on_ack(&fb(9, false), &mut rng);
            lb.on_ack(&fb(9, true), &mut rng);
            if lb.next_ev(Time::ZERO, &mut rng) == 9 {
                reuse += 1;
            }
        }
        assert!(reuse < 4, "marked ACKs must not be recycled");
    }

    #[test]
    fn timeout_clears_slot() {
        let mut lb = Mprdma::new(1 << 16);
        let mut rng = Rng64::new(4);
        lb.on_ack(&fb(7, false), &mut rng);
        lb.on_timeout(Time::from_us(100));
        let mut reuse = 0;
        for _ in 0..64 {
            lb.on_ack(&fb(7, false), &mut rng);
            lb.on_timeout(Time::from_us(100));
            if lb.next_ev(Time::ZERO, &mut rng) == 7 {
                reuse += 1;
            }
        }
        assert!(reuse < 4);
    }
}
