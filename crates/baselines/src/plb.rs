//! PLB — Protective Load Balancing (Qureshi et al., SIGCOMM '22), tuned
//! aggressively as in the paper's evaluation (§4.1: "similar to FlowBender").
//!
//! PLB keeps a flow on one path and *repaths* (picks a fresh random entropy)
//! when the fraction of ECN-marked ACKs within an RTT round exceeds a
//! threshold for a number of consecutive rounds. Timeouts repath instantly.

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};

/// PLB tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlbConfig {
    /// EVS size to draw new paths from.
    pub evs_size: u32,
    /// ECN fraction above which a round counts as congested.
    pub ecn_threshold: f64,
    /// Consecutive congested rounds required before repathing.
    pub congested_rounds: u32,
}

impl Default for PlbConfig {
    fn default() -> PlbConfig {
        PlbConfig {
            evs_size: 1 << 16,
            // Aggressive FlowBender-like settings per the paper's setup.
            ecn_threshold: 0.05,
            congested_rounds: 1,
        }
    }
}

/// Flow-level adaptive repathing.
#[derive(Debug, Clone)]
pub struct Plb {
    cfg: PlbConfig,
    ev: u16,
    round_start: Time,
    acks_in_round: u32,
    marked_in_round: u32,
    congested_rounds: u32,
    /// Number of repath events (instrumentation).
    pub repaths: u64,
}

impl Plb {
    /// Creates a PLB flow with a random initial path.
    pub fn new(cfg: PlbConfig, rng: &mut Rng64) -> Plb {
        let ev = rng.gen_range(cfg.evs_size as u64) as u16;
        Plb {
            cfg,
            ev,
            round_start: Time::ZERO,
            acks_in_round: 0,
            marked_in_round: 0,
            congested_rounds: 0,
            repaths: 0,
        }
    }

    fn repath(&mut self, rng: &mut Rng64) {
        self.ev = rng.gen_range(self.cfg.evs_size as u64) as u16;
        self.congested_rounds = 0;
        self.repaths += 1;
    }

    fn close_round(&mut self, rng: &mut Rng64) {
        if self.acks_in_round > 0 {
            let frac = self.marked_in_round as f64 / self.acks_in_round as f64;
            if frac > self.cfg.ecn_threshold {
                self.congested_rounds += 1;
                if self.congested_rounds >= self.cfg.congested_rounds {
                    self.repath(rng);
                }
            } else {
                self.congested_rounds = 0;
            }
        }
        self.acks_in_round = 0;
        self.marked_in_round = 0;
    }
}

impl LoadBalancer for Plb {
    fn next_ev(&mut self, _now: Time, _rng: &mut Rng64) -> u16 {
        self.ev
    }

    fn on_ack(&mut self, fb: &AckFeedback, rng: &mut Rng64) {
        if fb.now.saturating_sub(self.round_start) >= fb.rtt {
            self.close_round(rng);
            self.round_start = fb.now;
        }
        self.acks_in_round += 1;
        if fb.ecn {
            self.marked_in_round += 1;
        }
    }

    fn on_timeout(&mut self, _now: Time) {
        // A timeout is unambiguous trouble: move immediately. We need an RNG
        // here but the trait keeps timeouts RNG-free; derive a new path from
        // the current one deterministically (mixed), which is just as
        // arbitrary as a fresh random draw.
        let mut state = self.ev as u64 ^ 0xD00F_BEEF;
        self.ev = (netsim::rng::splitmix64(&mut state) % self.cfg.evs_size as u64) as u16;
        self.congested_rounds = 0;
        self.repaths += 1;
    }

    fn name(&self) -> &'static str {
        "PLB"
    }

    fn diagnostics(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("plb_repaths", self.repaths));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(ecn: bool, now_us: u64) -> AckFeedback {
        AckFeedback {
            ev: 0,
            ecn,
            now: Time::from_us(now_us),
            cwnd_packets: 16,
            rtt: Time::from_us(10),
        }
    }

    #[test]
    fn stays_on_path_when_clean() {
        let mut rng = Rng64::new(1);
        let mut plb = Plb::new(PlbConfig::default(), &mut rng);
        let ev0 = plb.next_ev(Time::ZERO, &mut rng);
        for t in 0..100 {
            plb.on_ack(&fb(false, t), &mut rng);
        }
        assert_eq!(plb.next_ev(Time::from_us(101), &mut rng), ev0);
        assert_eq!(plb.repaths, 0);
    }

    #[test]
    fn repaths_after_congested_round() {
        let mut rng = Rng64::new(2);
        let mut plb = Plb::new(PlbConfig::default(), &mut rng);
        let ev0 = plb.next_ev(Time::ZERO, &mut rng);
        // Round 1 (t=0..10us): heavily marked.
        for t in 0..10 {
            plb.on_ack(&fb(true, t), &mut rng);
        }
        // Crossing into round 2 closes round 1 and triggers the repath.
        plb.on_ack(&fb(false, 11), &mut rng);
        assert_eq!(plb.repaths, 1);
        assert_ne!(plb.next_ev(Time::from_us(12), &mut rng), ev0);
    }

    #[test]
    fn sparse_marks_do_not_repath() {
        let mut rng = Rng64::new(3);
        // Rounds hold ~10 ACKs, so a 10% mark rate needs a threshold above
        // 0.1 to count as clean.
        let cfg = PlbConfig {
            ecn_threshold: 0.15,
            ..PlbConfig::default()
        };
        let mut plb = Plb::new(cfg, &mut rng);
        for t in 0..500 {
            plb.on_ack(&fb(t % 10 == 0, t), &mut rng);
        }
        assert_eq!(plb.repaths, 0);
    }

    #[test]
    fn timeout_repaths_immediately() {
        let mut rng = Rng64::new(4);
        let mut plb = Plb::new(PlbConfig::default(), &mut rng);
        let ev0 = plb.next_ev(Time::ZERO, &mut rng);
        plb.on_timeout(Time::from_us(100));
        assert_eq!(plb.repaths, 1);
        assert_ne!(plb.next_ev(Time::from_us(101), &mut rng), ev0);
    }

    #[test]
    fn clean_round_resets_the_congested_streak() {
        let mut rng = Rng64::new(5);
        let cfg = PlbConfig {
            congested_rounds: 3,
            ..PlbConfig::default()
        };
        let mut plb = Plb::new(cfg, &mut rng);
        // Alternate congested and clean rounds forever: the streak of 3 is
        // never reached, so the flow must never repath.
        for round in 0..20u64 {
            let marked = round % 2 == 0;
            for t in round * 10..(round + 1) * 10 {
                plb.on_ack(&fb(marked, t), &mut rng);
            }
        }
        assert_eq!(plb.repaths, 0, "alternating rounds must not repath");
        // Now a long congested run: repathing must kick in.
        for t in 200..400 {
            plb.on_ack(&fb(true, t), &mut rng);
        }
        assert!(plb.repaths >= 1, "sustained congestion must repath");
    }
}
