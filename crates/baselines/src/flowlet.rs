//! Flowlet Switching (Vanini et al., "Let It Flow", NSDI '17).
//!
//! The flow keeps its entropy while packets are back-to-back; whenever an
//! inter-packet gap exceeds the flowlet timeout, the next burst may take a
//! fresh random path. The paper configures an aggressive timeout of half an
//! RTT (§4.1).

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};

/// Gap-based sub-flow repathing.
#[derive(Debug, Clone)]
pub struct Flowlet {
    evs_size: u32,
    gap: Time,
    current_ev: u16,
    last_send: Time,
    started: bool,
    /// Number of flowlet boundaries taken (instrumentation).
    pub switches: u64,
}

impl Flowlet {
    /// Creates a flowlet balancer with the given inactivity `gap`.
    pub fn new(evs_size: u32, gap: Time, rng: &mut Rng64) -> Flowlet {
        assert!(evs_size > 0, "EVS must be non-empty");
        Flowlet {
            evs_size,
            gap,
            current_ev: rng.gen_range(evs_size as u64) as u16,
            last_send: Time::ZERO,
            started: false,
            switches: 0,
        }
    }
}

impl LoadBalancer for Flowlet {
    fn next_ev(&mut self, now: Time, rng: &mut Rng64) -> u16 {
        if self.started && now.saturating_sub(self.last_send) > self.gap {
            self.current_ev = rng.gen_range(self.evs_size as u64) as u16;
            self.switches += 1;
        }
        self.started = true;
        self.last_send = now;
        self.current_ev
    }

    fn on_ack(&mut self, _fb: &AckFeedback, _rng: &mut Rng64) {}

    fn on_timeout(&mut self, _now: Time) {}

    fn name(&self) -> &'static str {
        "Flowlet"
    }

    fn diagnostics(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("flowlet_switches", self.switches));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_packets_share_a_path() {
        let mut rng = Rng64::new(1);
        let mut lb = Flowlet::new(1 << 16, Time::from_us(5), &mut rng);
        let ev0 = lb.next_ev(Time::from_us(0), &mut rng);
        for i in 1..50 {
            // 100 ns spacing, far below the 5 us gap.
            assert_eq!(lb.next_ev(Time::from_ns(i * 100), &mut rng), ev0);
        }
        assert_eq!(lb.switches, 0);
    }

    #[test]
    fn idle_gap_switches_path() {
        let mut rng = Rng64::new(2);
        let mut lb = Flowlet::new(1 << 16, Time::from_us(5), &mut rng);
        let ev0 = lb.next_ev(Time::from_us(0), &mut rng);
        // 50 us of silence: new flowlet.
        let ev1 = lb.next_ev(Time::from_us(50), &mut rng);
        assert_eq!(lb.switches, 1);
        // EVs may rarely collide; the switch counter is authoritative.
        let _ = (ev0, ev1);
    }

    #[test]
    fn gap_exactly_equal_does_not_switch() {
        let mut rng = Rng64::new(3);
        let mut lb = Flowlet::new(1 << 16, Time::from_us(5), &mut rng);
        lb.next_ev(Time::from_us(0), &mut rng);
        lb.next_ev(Time::from_us(5), &mut rng);
        assert_eq!(lb.switches, 0, "boundary is exclusive");
    }

    #[test]
    fn multiple_flowlets_accumulate() {
        let mut rng = Rng64::new(4);
        let mut lb = Flowlet::new(1 << 16, Time::from_us(1), &mut rng);
        for i in 0..10 {
            lb.next_ev(Time::from_us(i * 10), &mut rng);
        }
        assert_eq!(lb.switches, 9);
    }
}
