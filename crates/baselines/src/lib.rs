//! Baseline load balancers for the REPS evaluation.
//!
//! Every comparison point from the paper's §4.1 lineup, implemented against
//! the same [`reps::lb::LoadBalancer`] trait as REPS itself:
//!
//! * [`ops::Ops`] — oblivious packet spraying (per-packet random EV),
//! * [`ecmp::Ecmp`] — static per-flow hashing,
//! * [`plb::Plb`] — flow repathing on persistent ECN (aggressive tuning),
//! * [`flowlet::Flowlet`] — gap-based flowlet switching,
//! * [`mprdma::Mprdma`] — one-deep ACK-clocked entropy reuse,
//! * [`bitmap::Bitmap`] — STrack-like per-EV congestion bits,
//! * [`mptcp::MptcpLike`] — static striping over 8 subflows,
//! * `Adaptive RoCE` — switch-side least-queue routing, provided by the
//!   fabric ([`netsim::engine::RoutingMode::Adaptive`]) with oblivious hosts.
//!
//! [`kind::LbKind`] is the factory the transport and harness use to
//! instantiate per-connection balancers.

pub mod bitmap;
pub mod ecmp;
pub mod flowlet;
pub mod kind;
pub mod mprdma;
pub mod mptcp;
pub mod ops;
pub mod plb;

pub use bitmap::Bitmap;
pub use ecmp::Ecmp;
pub use flowlet::Flowlet;
pub use kind::LbKind;
pub use mprdma::Mprdma;
pub use mptcp::MptcpLike;
pub use ops::Ops;
pub use plb::{Plb, PlbConfig};
