//! Static ECMP (per-flow hashing, §2.2).
//!
//! Every packet of a connection carries the same entropy value, so the
//! fabric's ECMP hash pins the whole flow to one path — fast to reorder
//! nothing, fragile to hash collisions, blind to failures.

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};

/// Per-flow static path selection.
#[derive(Debug, Clone)]
pub struct Ecmp {
    ev: u16,
}

impl Ecmp {
    /// Creates a flow with a random five-tuple surrogate.
    pub fn new(rng: &mut Rng64) -> Ecmp {
        Ecmp {
            ev: rng.gen_range(1 << 16) as u16,
        }
    }

    /// Creates a flow pinned to a specific entropy (for tests/subflows).
    pub fn with_ev(ev: u16) -> Ecmp {
        Ecmp { ev }
    }
}

impl LoadBalancer for Ecmp {
    fn next_ev(&mut self, _now: Time, _rng: &mut Rng64) -> u16 {
        self.ev
    }

    fn on_ack(&mut self, _fb: &AckFeedback, _rng: &mut Rng64) {}

    fn on_timeout(&mut self, _now: Time) {}

    fn name(&self) -> &'static str {
        "ECMP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev_is_constant_for_flow_lifetime() {
        let mut rng = Rng64::new(3);
        let mut ecmp = Ecmp::new(&mut rng);
        let first = ecmp.next_ev(Time::ZERO, &mut rng);
        for i in 1..100 {
            assert_eq!(ecmp.next_ev(Time::from_us(i), &mut rng), first);
        }
        ecmp.on_timeout(Time::from_us(200));
        assert_eq!(ecmp.next_ev(Time::from_us(201), &mut rng), first);
    }

    #[test]
    fn different_flows_usually_differ() {
        let mut rng = Rng64::new(4);
        let a = Ecmp::new(&mut rng).ev;
        let b = Ecmp::new(&mut rng).ev;
        assert_ne!(a, b);
    }
}
