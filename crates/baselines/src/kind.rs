//! The load-balancer zoo: a single enum naming every algorithm the paper
//! evaluates, and a factory that builds per-connection instances.

use netsim::engine::RoutingMode;
use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::LoadBalancer;
use reps::reps::{Reps, RepsConfig};

use crate::bitmap::Bitmap;
use crate::ecmp::Ecmp;
use crate::flowlet::Flowlet;
use crate::mprdma::Mprdma;
use crate::mptcp::MptcpLike;
use crate::ops::Ops;
use crate::plb::{Plb, PlbConfig};

/// Every load-balancing scheme in the paper's comparison (§4.1).
#[derive(Debug, Clone)]
pub enum LbKind {
    /// Recycled Entropy Packet Spraying (the contribution).
    Reps(RepsConfig),
    /// Oblivious packet spraying over `evs_size` entropies.
    Ops {
        /// EVS size.
        evs_size: u32,
    },
    /// Static per-flow ECMP.
    Ecmp,
    /// Protective Load Balancing (aggressive, FlowBender-like tuning).
    Plb(PlbConfig),
    /// Flowlet switching with the given inactivity gap.
    Flowlet {
        /// Flowlet inactivity timeout (the paper uses RTT/2).
        gap: Time,
    },
    /// MPRDMA-style one-deep ACK clocking.
    Mprdma,
    /// STrack-like per-EV congestion bitmap.
    Bitmap {
        /// EVS size (bits of state).
        evs_size: u32,
        /// Aging period for congestion marks.
        clear_period: Time,
    },
    /// MPTCP-like striping over static subflows.
    MptcpLike {
        /// Subflow count (the paper uses 8).
        subflows: usize,
    },
    /// Switch-side per-packet adaptive routing (NVIDIA Adaptive RoCE
    /// stand-in). Hosts spray obliviously; switches pick the least-loaded
    /// uplink.
    AdaptiveRoce,
}

impl LbKind {
    /// Builds a fresh per-connection balancer instance.
    pub fn build(&self, rng: &mut Rng64) -> Box<dyn LoadBalancer> {
        match self {
            LbKind::Reps(cfg) => Box::new(Reps::new(cfg.clone())),
            LbKind::Ops { evs_size } => Box::new(Ops::new(*evs_size)),
            LbKind::Ecmp => Box::new(Ecmp::new(rng)),
            LbKind::Plb(cfg) => Box::new(Plb::new(cfg.clone(), rng)),
            LbKind::Flowlet { gap } => Box::new(Flowlet::new(1 << 16, *gap, rng)),
            LbKind::Mprdma => Box::new(Mprdma::default()),
            LbKind::Bitmap {
                evs_size,
                clear_period,
            } => Box::new(Bitmap::new(*evs_size, *clear_period)),
            LbKind::MptcpLike { subflows } => Box::new(MptcpLike::new(*subflows, 1 << 16, rng)),
            LbKind::AdaptiveRoce => Box::new(Ops::default()),
        }
    }

    /// The fabric routing mode this scheme needs.
    pub fn routing_mode(&self) -> RoutingMode {
        match self {
            LbKind::AdaptiveRoce => RoutingMode::Adaptive,
            _ => RoutingMode::EcmpHash,
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            LbKind::Reps(_) => "REPS",
            LbKind::Ops { .. } => "OPS",
            LbKind::Ecmp => "ECMP",
            LbKind::Plb(_) => "PLB",
            LbKind::Flowlet { .. } => "Flowlet",
            LbKind::Mprdma => "MPRDMA",
            LbKind::Bitmap { .. } => "BitMap",
            LbKind::MptcpLike { .. } => "MPTCP",
            LbKind::AdaptiveRoce => "Adaptive RoCE",
        }
    }

    /// The default paper lineup for macro figures (Figs. 3, 5):
    /// ECMP, OPS, Flowlet, BitMap, MPRDMA, PLB, MPTCP, Adaptive RoCE, REPS.
    pub fn paper_lineup(rtt: Time) -> Vec<LbKind> {
        vec![
            LbKind::Ecmp,
            LbKind::Ops { evs_size: 1 << 16 },
            LbKind::Flowlet { gap: rtt / 2 },
            LbKind::Bitmap {
                evs_size: 1 << 16,
                clear_period: rtt * 2,
            },
            LbKind::Mprdma,
            LbKind::Plb(PlbConfig::default()),
            LbKind::MptcpLike { subflows: 8 },
            LbKind::AdaptiveRoce,
            LbKind::Reps(RepsConfig::default()),
        ]
    }

    /// The reduced lineup used in the failure figures (Fig. 8):
    /// OPS, Flowlet, BitMap, MPRDMA, PLB, REPS.
    pub fn failure_lineup(rtt: Time) -> Vec<LbKind> {
        vec![
            LbKind::Ops { evs_size: 1 << 16 },
            LbKind::Flowlet { gap: rtt / 2 },
            LbKind::Bitmap {
                evs_size: 1 << 16,
                clear_period: rtt * 2,
            },
            LbKind::Mprdma,
            LbKind::Plb(PlbConfig::default()),
            LbKind::Reps(RepsConfig::default()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let mut rng = Rng64::new(1);
        let rtt = Time::from_us(10);
        for kind in LbKind::paper_lineup(rtt) {
            let mut lb = kind.build(&mut rng);
            let ev = lb.next_ev(Time::ZERO, &mut rng);
            let _ = ev;
            assert!(!lb.name().is_empty());
        }
    }

    #[test]
    fn adaptive_roce_requests_adaptive_routing() {
        assert_eq!(LbKind::AdaptiveRoce.routing_mode(), RoutingMode::Adaptive);
        assert_eq!(
            LbKind::Ops { evs_size: 16 }.routing_mode(),
            RoutingMode::EcmpHash
        );
    }

    #[test]
    fn lineup_matches_paper_legend() {
        let rtt = Time::from_us(10);
        let labels: Vec<&str> = LbKind::paper_lineup(rtt)
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "ECMP",
                "OPS",
                "Flowlet",
                "BitMap",
                "MPRDMA",
                "PLB",
                "MPTCP",
                "Adaptive RoCE",
                "REPS"
            ]
        );
    }

    #[test]
    fn reps_label_and_name_agree() {
        let mut rng = Rng64::new(2);
        let kind = LbKind::Reps(RepsConfig::default());
        let lb = kind.build(&mut rng);
        assert_eq!(lb.name(), kind.label());
    }
}
