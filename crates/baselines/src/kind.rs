//! The load-balancer zoo: a single enum naming every algorithm the paper
//! evaluates, a factory that builds per-connection instances, and the
//! typed LB-spec grammar ([`LbKind::parse`] / [`LbKind::spec`]) that names
//! every scheme *and its tuning* as one canonical string.
//!
//! # The LB-spec grammar
//!
//! A spec is a family name, optionally followed by `{key=value,...}`
//! parameters; omitted parameters keep the paper defaults, and a bare
//! family name *is* the default configuration:
//!
//! ```text
//! REPS                      REPS{evs=256,freeze=off}
//! OPS{evs=4096}             Flowlet{gap=80us}
//! PLB{thresh=0.1,rounds=3}  MPTCP{subflows=4}
//! BitMap{evs=1024,clear=50us}
//! ```
//!
//! Families and their parameters (defaults in parentheses):
//!
//! | family          | parameters                                                              |
//! |-----------------|-------------------------------------------------------------------------|
//! | `ECMP`          | —                                                                       |
//! | `OPS`           | `evs` (65536)                                                           |
//! | `REPS`          | `evs` (65536), `buf` (8), `freeze` (`on`), `fto` (`100us`), `freezeat` (unset) |
//! | `PLB`           | `evs` (65536), `thresh` (0.05), `rounds` (1)                            |
//! | `Flowlet`       | `gap` (half the paper RTT)                                              |
//! | `BitMap`        | `evs` (65536), `clear` (twice the paper RTT)                            |
//! | `MPRDMA`        | —                                                                       |
//! | `MPTCP`         | `subflows` (8)                                                          |
//! | `Adaptive RoCE` | —                                                                       |
//!
//! Durations use [`Time::label`] syntax (`25us`, `500ns`, `77ps`).
//!
//! [`LbKind::spec`] renders the *canonical* form: parameters in a fixed
//! order, defaults omitted, no spaces — so a default config renders as the
//! bare family name and every pre-existing cell key is its own spec. Two
//! legacy spellings predate the grammar and stay canonical for exactly the
//! configurations they name (they appear in recorded cell keys, which pin
//! derived seeds, shard membership and cache addresses): `REPS-nofreeze`
//! (≡ `REPS{freeze=off}`) and `REPS+freeze@Nus` (≡ `REPS{freezeat=Nus}`).
//! [`LbKind::parse`] accepts canonical and non-canonical spellings alike
//! and [`LbKind::spec`] ∘ [`LbKind::parse`] canonicalizes; the pair is an
//! exact inverse over [`LbKind`] values (`parse(spec(k)) == k`, pinned by
//! proptests).

use netsim::engine::RoutingMode;
use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::LoadBalancer;
use reps::reps::{Reps, RepsConfig};

use crate::bitmap::Bitmap;
use crate::ecmp::Ecmp;
use crate::flowlet::Flowlet;
use crate::mprdma::Mprdma;
use crate::mptcp::MptcpLike;
use crate::ops::Ops;
use crate::plb::{Plb, PlbConfig};

/// The RTT estimate the paper's lineups size Flowlet gaps and BitMap aging
/// from (a 3-hop path under the paper-default profile): the grammar's
/// duration defaults for `Flowlet{gap=...}` and `BitMap{clear=...}`.
pub fn paper_rtt() -> Time {
    netsim::config::SimConfig::paper_default().base_rtt(3)
}

/// The default entropy-value-space size: the full 16-bit source-port space.
pub const DEFAULT_EVS: u32 = 1 << 16;

/// Every load-balancing scheme in the paper's comparison (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub enum LbKind {
    /// Recycled Entropy Packet Spraying (the contribution).
    Reps(RepsConfig),
    /// Oblivious packet spraying over `evs_size` entropies.
    Ops {
        /// EVS size.
        evs_size: u32,
    },
    /// Static per-flow ECMP.
    Ecmp,
    /// Protective Load Balancing (aggressive, FlowBender-like tuning).
    Plb(PlbConfig),
    /// Flowlet switching with the given inactivity gap.
    Flowlet {
        /// Flowlet inactivity timeout (the paper uses RTT/2).
        gap: Time,
    },
    /// MPRDMA-style one-deep ACK clocking.
    Mprdma,
    /// STrack-like per-EV congestion bitmap.
    Bitmap {
        /// EVS size (bits of state).
        evs_size: u32,
        /// Aging period for congestion marks.
        clear_period: Time,
    },
    /// MPTCP-like striping over static subflows.
    MptcpLike {
        /// Subflow count (the paper uses 8).
        subflows: usize,
    },
    /// Switch-side per-packet adaptive routing (NVIDIA Adaptive RoCE
    /// stand-in). Hosts spray obliviously; switches pick the least-loaded
    /// uplink.
    AdaptiveRoce,
}

impl LbKind {
    /// Builds a fresh per-connection balancer instance.
    pub fn build(&self, rng: &mut Rng64) -> Box<dyn LoadBalancer> {
        match self {
            LbKind::Reps(cfg) => Box::new(Reps::new(cfg.clone())),
            LbKind::Ops { evs_size } => Box::new(Ops::new(*evs_size)),
            LbKind::Ecmp => Box::new(Ecmp::new(rng)),
            LbKind::Plb(cfg) => Box::new(Plb::new(cfg.clone(), rng)),
            LbKind::Flowlet { gap } => Box::new(Flowlet::new(1 << 16, *gap, rng)),
            LbKind::Mprdma => Box::new(Mprdma::default()),
            LbKind::Bitmap {
                evs_size,
                clear_period,
            } => Box::new(Bitmap::new(*evs_size, *clear_period)),
            LbKind::MptcpLike { subflows } => Box::new(MptcpLike::new(*subflows, 1 << 16, rng)),
            LbKind::AdaptiveRoce => Box::new(Ops::default()),
        }
    }

    /// The fabric routing mode this scheme needs.
    pub fn routing_mode(&self) -> RoutingMode {
        match self {
            LbKind::AdaptiveRoce => RoutingMode::Adaptive,
            _ => RoutingMode::EcmpHash,
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            LbKind::Reps(_) => "REPS",
            LbKind::Ops { .. } => "OPS",
            LbKind::Ecmp => "ECMP",
            LbKind::Plb(_) => "PLB",
            LbKind::Flowlet { .. } => "Flowlet",
            LbKind::Mprdma => "MPRDMA",
            LbKind::Bitmap { .. } => "BitMap",
            LbKind::MptcpLike { .. } => "MPTCP",
            LbKind::AdaptiveRoce => "Adaptive RoCE",
        }
    }

    /// Renders the canonical LB-spec string (see the module docs): the
    /// bare family name when every parameter is at its default, otherwise
    /// `Family{key=value,...}` listing only non-default parameters in a
    /// fixed order. The exact inverse of [`LbKind::parse`].
    pub fn spec(&self) -> String {
        fn braced(family: &str, params: Vec<(&str, String)>) -> String {
            if params.is_empty() {
                return family.to_string();
            }
            let body: Vec<String> = params
                .into_iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{family}{{{}}}", body.join(","))
        }
        fn diff<T: PartialEq>(
            params: &mut Vec<(&'static str, String)>,
            key: &'static str,
            value: &T,
            default: &T,
            render: impl Fn(&T) -> String,
        ) {
            if value != default {
                params.push((key, render(value)));
            }
        }
        match self {
            LbKind::Ecmp => "ECMP".to_string(),
            LbKind::Mprdma => "MPRDMA".to_string(),
            LbKind::AdaptiveRoce => "Adaptive RoCE".to_string(),
            LbKind::Ops { evs_size } => {
                let mut p = Vec::new();
                diff(&mut p, "evs", evs_size, &DEFAULT_EVS, u32::to_string);
                braced("OPS", p)
            }
            LbKind::MptcpLike { subflows } => {
                let mut p = Vec::new();
                diff(&mut p, "subflows", subflows, &8, usize::to_string);
                braced("MPTCP", p)
            }
            LbKind::Flowlet { gap } => {
                let mut p = Vec::new();
                diff(&mut p, "gap", gap, &(paper_rtt() / 2), |t| t.label());
                braced("Flowlet", p)
            }
            LbKind::Bitmap {
                evs_size,
                clear_period,
            } => {
                let mut p = Vec::new();
                diff(&mut p, "evs", evs_size, &DEFAULT_EVS, u32::to_string);
                diff(&mut p, "clear", clear_period, &(paper_rtt() * 2), |t| {
                    t.label()
                });
                braced("BitMap", p)
            }
            LbKind::Plb(cfg) => {
                let d = PlbConfig::default();
                let mut p = Vec::new();
                diff(&mut p, "evs", &cfg.evs_size, &d.evs_size, u32::to_string);
                diff(
                    &mut p,
                    "thresh",
                    &cfg.ecn_threshold,
                    &d.ecn_threshold,
                    |v| format!("{v}"),
                );
                diff(
                    &mut p,
                    "rounds",
                    &cfg.congested_rounds,
                    &d.congested_rounds,
                    u32::to_string,
                );
                braced("PLB", p)
            }
            LbKind::Reps(cfg) => {
                let d = RepsConfig::default();
                // The two pre-grammar spellings stay canonical for exactly
                // the configurations they historically named — recorded
                // cell keys (and with them derived seeds, shard membership
                // and cache addresses) must keep rendering byte-identically.
                if *cfg == d.clone().without_freezing() {
                    return "REPS-nofreeze".to_string();
                }
                if let Some(at) = cfg.force_freezing_at {
                    let only_freezeat = RepsConfig {
                        force_freezing_at: Some(at),
                        ..d.clone()
                    };
                    if *cfg == only_freezeat && at.as_ps() % 1_000_000 == 0 {
                        return format!("REPS+freeze@{}us", at.as_ps() / 1_000_000);
                    }
                }
                let mut p = Vec::new();
                diff(&mut p, "evs", &cfg.evs_size, &d.evs_size, u32::to_string);
                diff(&mut p, "buf", &cfg.buffer_size, &d.buffer_size, |v| {
                    v.to_string()
                });
                diff(
                    &mut p,
                    "freeze",
                    &cfg.freezing_enabled,
                    &d.freezing_enabled,
                    |v| if *v { "on" } else { "off" }.to_string(),
                );
                diff(
                    &mut p,
                    "fto",
                    &cfg.freezing_timeout,
                    &d.freezing_timeout,
                    |t| t.label(),
                );
                if let Some(at) = cfg.force_freezing_at {
                    p.push(("freezeat", at.label()));
                }
                braced("REPS", p)
            }
        }
    }

    /// Parses an LB-spec string (see the module docs) into a fully
    /// configured scheme. Accepts canonical and non-canonical spellings
    /// (spelled-out defaults, legacy forms, braced equivalents of the
    /// legacy forms); `parse(k.spec()) == k` for every [`LbKind`].
    pub fn parse(s: &str) -> Result<LbKind, String> {
        // Legacy spellings predating the grammar.
        if s == "REPS-nofreeze" {
            return Ok(LbKind::Reps(RepsConfig::default().without_freezing()));
        }
        if let Some(at) = s.strip_prefix("REPS+freeze@") {
            let at = Time::parse_label(at).map_err(|e| format!("lb spec {s:?}: {e}"))?;
            return Ok(LbKind::Reps(RepsConfig {
                force_freezing_at: Some(at),
                ..RepsConfig::default()
            }));
        }
        let (family, body) = match s.split_once('{') {
            None => (s, None),
            Some((family, rest)) => {
                let Some(body) = rest.strip_suffix('}') else {
                    return Err(format!("lb spec {s:?}: missing closing brace"));
                };
                (family, Some(body))
            }
        };
        let mut params = SpecParams::parse(s, body)?;
        let kind = match family {
            "ECMP" => LbKind::Ecmp,
            "MPRDMA" => LbKind::Mprdma,
            "Adaptive RoCE" => LbKind::AdaptiveRoce,
            "OPS" => LbKind::Ops {
                evs_size: params.evs(DEFAULT_EVS)?,
            },
            "MPTCP" => LbKind::MptcpLike {
                subflows: params.nonzero("subflows", 8u64, DEFAULT_EVS as u64)? as usize,
            },
            "Flowlet" => LbKind::Flowlet {
                gap: params.time("gap", paper_rtt() / 2)?,
            },
            "BitMap" => LbKind::Bitmap {
                evs_size: params.evs(DEFAULT_EVS)?,
                clear_period: params.time("clear", paper_rtt() * 2)?,
            },
            "PLB" => {
                let d = PlbConfig::default();
                LbKind::Plb(PlbConfig {
                    evs_size: params.evs(d.evs_size)?,
                    ecn_threshold: params.fraction("thresh", d.ecn_threshold)?,
                    congested_rounds: params.nonzero(
                        "rounds",
                        d.congested_rounds as u64,
                        u32::MAX as u64,
                    )? as u32,
                })
            }
            "REPS" => {
                let d = RepsConfig::default();
                LbKind::Reps(RepsConfig {
                    evs_size: params.evs(d.evs_size)?,
                    buffer_size: params.nonzero("buf", d.buffer_size as u64, DEFAULT_EVS as u64)?
                        as usize,
                    freezing_enabled: params.switch("freeze", d.freezing_enabled)?,
                    freezing_timeout: params.time("fto", d.freezing_timeout)?,
                    force_freezing_at: params.opt_time("freezeat")?,
                })
            }
            other => {
                return Err(format!(
                    "unknown lb family {other:?} (expected ECMP, OPS, REPS, PLB, MPRDMA, \
                     MPTCP, Flowlet, BitMap or Adaptive RoCE, optionally with \
                     {{key=value,...}} parameters, or the legacy REPS-nofreeze / \
                     REPS+freeze@Nus spellings)"
                ));
            }
        };
        params.finish()?;
        Ok(kind)
    }

    /// The default paper lineup for macro figures (Figs. 3, 5):
    /// ECMP, OPS, Flowlet, BitMap, MPRDMA, PLB, MPTCP, Adaptive RoCE, REPS.
    pub fn paper_lineup(rtt: Time) -> Vec<LbKind> {
        vec![
            LbKind::Ecmp,
            LbKind::Ops { evs_size: 1 << 16 },
            LbKind::Flowlet { gap: rtt / 2 },
            LbKind::Bitmap {
                evs_size: 1 << 16,
                clear_period: rtt * 2,
            },
            LbKind::Mprdma,
            LbKind::Plb(PlbConfig::default()),
            LbKind::MptcpLike { subflows: 8 },
            LbKind::AdaptiveRoce,
            LbKind::Reps(RepsConfig::default()),
        ]
    }

    /// The reduced lineup used in the failure figures (Fig. 8):
    /// OPS, Flowlet, BitMap, MPRDMA, PLB, REPS.
    pub fn failure_lineup(rtt: Time) -> Vec<LbKind> {
        vec![
            LbKind::Ops { evs_size: 1 << 16 },
            LbKind::Flowlet { gap: rtt / 2 },
            LbKind::Bitmap {
                evs_size: 1 << 16,
                clear_period: rtt * 2,
            },
            LbKind::Mprdma,
            LbKind::Plb(PlbConfig::default()),
            LbKind::Reps(RepsConfig::default()),
        ]
    }
}

/// The `{key=value,...}` parameter list of one spec under parse: getters
/// consume entries, [`SpecParams::finish`] rejects whatever is left, so an
/// unknown or misspelled key is an error naming the spec, never silence.
struct SpecParams<'a> {
    /// The full spec string (for error messages).
    spec: &'a str,
    entries: Vec<(&'a str, &'a str)>,
}

impl<'a> SpecParams<'a> {
    fn parse(spec: &'a str, body: Option<&'a str>) -> Result<SpecParams<'a>, String> {
        let mut entries: Vec<(&'a str, &'a str)> = Vec::new();
        // `Family{}` is accepted as the default config (empty body, like a
        // bare name); only *entries* must be well-formed.
        for item in body
            .into_iter()
            .filter(|b| !b.trim().is_empty())
            .flat_map(|b| b.split(','))
        {
            let item = item.trim();
            if item.is_empty() {
                return Err(format!(
                    "lb spec {spec:?}: empty parameter (trailing or doubled comma?)"
                ));
            }
            let Some((key, value)) = item.split_once('=') else {
                return Err(format!(
                    "lb spec {spec:?}: parameter {item:?} is not key=value"
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(format!("lb spec {spec:?}: duplicate parameter {key:?}"));
            }
            entries.push((key, value));
        }
        Ok(SpecParams { spec, entries })
    }

    /// Consumes `key`, returning its raw value (or `None` if absent).
    fn take(&mut self, key: &str) -> Option<&'a str> {
        let i = self.entries.iter().position(|(k, _)| *k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// An EVS size: 1..=65536 (entropy values are 16-bit on the wire).
    fn evs(&mut self, default: u32) -> Result<u32, String> {
        let Some(v) = self.take("evs") else {
            return Ok(default);
        };
        let n: u32 = v
            .parse()
            .map_err(|e| format!("lb spec {}: bad evs {v:?}: {e}", self.spec))?;
        if n == 0 || n > DEFAULT_EVS {
            return Err(format!(
                "lb spec {}: evs {n} out of range 1..={DEFAULT_EVS}",
                self.spec
            ));
        }
        Ok(n)
    }

    /// A positive integer parameter in `1..=max` — range-checked before
    /// any narrowing cast, so an oversized value is an error, never a
    /// silent wrap to a different accepted configuration.
    fn nonzero(&mut self, key: &str, default: u64, max: u64) -> Result<u64, String> {
        let Some(v) = self.take(key) else {
            return Ok(default);
        };
        let n: u64 = v
            .parse()
            .map_err(|e| format!("lb spec {}: bad {key} {v:?}: {e}", self.spec))?;
        if n == 0 || n > max {
            return Err(format!(
                "lb spec {}: {key} {n} out of range 1..={max}",
                self.spec
            ));
        }
        Ok(n)
    }

    /// A duration parameter in [`Time::label`] syntax.
    fn time(&mut self, key: &str, default: Time) -> Result<Time, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => {
                Time::parse_label(v).map_err(|e| format!("lb spec {}: {key}: {e}", self.spec))
            }
        }
    }

    /// An optional duration parameter (absent means unset).
    fn opt_time(&mut self, key: &str) -> Result<Option<Time>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => Time::parse_label(v)
                .map(Some)
                .map_err(|e| format!("lb spec {}: {key}: {e}", self.spec)),
        }
    }

    /// An `on`/`off` switch parameter.
    fn switch(&mut self, key: &str, default: bool) -> Result<bool, String> {
        match self.take(key) {
            None => Ok(default),
            Some("on") => Ok(true),
            Some("off") => Ok(false),
            Some(v) => Err(format!(
                "lb spec {}: bad {key} {v:?} (expected on or off)",
                self.spec
            )),
        }
    }

    /// A fraction parameter in `[0, 1]`, rendered with `f64`'s shortest
    /// round-trip formatting.
    fn fraction(&mut self, key: &str, default: f64) -> Result<f64, String> {
        let Some(v) = self.take(key) else {
            return Ok(default);
        };
        let f: f64 = v
            .parse()
            .map_err(|e| format!("lb spec {}: bad {key} {v:?}: {e}", self.spec))?;
        if !(0.0..=1.0).contains(&f) {
            return Err(format!(
                "lb spec {}: {key} {f} out of range 0..=1",
                self.spec
            ));
        }
        Ok(f)
    }

    /// Rejects any parameter no getter consumed.
    fn finish(self) -> Result<(), String> {
        match self.entries.first() {
            None => Ok(()),
            Some((key, _)) => Err(format!("lb spec {}: unknown parameter {key:?}", self.spec)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let mut rng = Rng64::new(1);
        let rtt = Time::from_us(10);
        for kind in LbKind::paper_lineup(rtt) {
            let mut lb = kind.build(&mut rng);
            let ev = lb.next_ev(Time::ZERO, &mut rng);
            let _ = ev;
            assert!(!lb.name().is_empty());
        }
    }

    #[test]
    fn adaptive_roce_requests_adaptive_routing() {
        assert_eq!(LbKind::AdaptiveRoce.routing_mode(), RoutingMode::Adaptive);
        assert_eq!(
            LbKind::Ops { evs_size: 16 }.routing_mode(),
            RoutingMode::EcmpHash
        );
    }

    #[test]
    fn lineup_matches_paper_legend() {
        let rtt = Time::from_us(10);
        let labels: Vec<&str> = LbKind::paper_lineup(rtt)
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "ECMP",
                "OPS",
                "Flowlet",
                "BitMap",
                "MPRDMA",
                "PLB",
                "MPTCP",
                "Adaptive RoCE",
                "REPS"
            ]
        );
    }

    #[test]
    fn reps_label_and_name_agree() {
        let mut rng = Rng64::new(2);
        let kind = LbKind::Reps(RepsConfig::default());
        let lb = kind.build(&mut rng);
        assert_eq!(lb.name(), kind.label());
    }

    #[test]
    fn default_configs_render_as_bare_family_names() {
        for kind in LbKind::paper_lineup(paper_rtt()) {
            assert_eq!(kind.spec(), kind.label(), "{kind:?}");
            assert_eq!(LbKind::parse(&kind.spec()).unwrap(), kind);
        }
    }

    #[test]
    fn parameterized_specs_render_canonically_and_round_trip() {
        let cases: Vec<(LbKind, &str)> = vec![
            (LbKind::Ops { evs_size: 4096 }, "OPS{evs=4096}"),
            (
                LbKind::Reps(RepsConfig::default().with_evs_size(256).without_freezing()),
                "REPS{evs=256,freeze=off}",
            ),
            (
                LbKind::Reps(RepsConfig {
                    buffer_size: 16,
                    freezing_timeout: Time::from_us(50),
                    ..RepsConfig::default()
                }),
                "REPS{buf=16,fto=50us}",
            ),
            (
                LbKind::Flowlet {
                    gap: Time::from_us(80),
                },
                "Flowlet{gap=80us}",
            ),
            (
                LbKind::Bitmap {
                    evs_size: 1024,
                    clear_period: Time::from_us(50),
                },
                "BitMap{evs=1024,clear=50us}",
            ),
            (
                LbKind::Plb(PlbConfig {
                    ecn_threshold: 0.1,
                    congested_rounds: 3,
                    ..PlbConfig::default()
                }),
                "PLB{thresh=0.1,rounds=3}",
            ),
            (LbKind::MptcpLike { subflows: 4 }, "MPTCP{subflows=4}"),
        ];
        for (kind, spec) in cases {
            assert_eq!(kind.spec(), spec);
            assert_eq!(LbKind::parse(spec).unwrap(), kind, "{spec}");
        }
    }

    #[test]
    fn legacy_spellings_stay_canonical_for_their_configs() {
        let nofreeze = LbKind::Reps(RepsConfig::default().without_freezing());
        assert_eq!(nofreeze.spec(), "REPS-nofreeze");
        assert_eq!(LbKind::parse("REPS-nofreeze").unwrap(), nofreeze);
        assert_eq!(LbKind::parse("REPS{freeze=off}").unwrap(), nofreeze);

        let frozen = LbKind::Reps(RepsConfig {
            force_freezing_at: Some(Time::from_us(50)),
            ..RepsConfig::default()
        });
        assert_eq!(frozen.spec(), "REPS+freeze@50us");
        assert_eq!(LbKind::parse("REPS+freeze@50us").unwrap(), frozen);
        assert_eq!(LbKind::parse("REPS{freezeat=50us}").unwrap(), frozen);

        // A non-whole-us freeze instant has no legacy spelling; the braced
        // form is canonical there.
        let odd = LbKind::Reps(RepsConfig {
            force_freezing_at: Some(Time::from_ns(500)),
            ..RepsConfig::default()
        });
        assert_eq!(odd.spec(), "REPS{freezeat=500ns}");
        assert_eq!(LbKind::parse(&odd.spec()).unwrap(), odd);

        // Extra parameters push the freeze instant into the braced form.
        let mixed = LbKind::Reps(RepsConfig {
            force_freezing_at: Some(Time::from_us(50)),
            ..RepsConfig::default().with_evs_size(256)
        });
        assert_eq!(mixed.spec(), "REPS{evs=256,freezeat=50us}");
        assert_eq!(LbKind::parse(&mixed.spec()).unwrap(), mixed);
    }

    #[test]
    fn non_canonical_spellings_canonicalize() {
        for (loose, canonical) in [
            ("OPS{evs=65536}", "OPS"),
            ("REPS{freeze=on}", "REPS"),
            ("REPS{ evs=256 , freeze=off }", "REPS{evs=256,freeze=off}"),
            ("PLB{thresh=5e-2}", "PLB"),
            ("MPTCP{subflows=8}", "MPTCP"),
            ("Flowlet{gap=80000ns}", "Flowlet{gap=80us}"),
            ("OPS{}", "OPS"),
        ] {
            let kind = LbKind::parse(loose).expect(loose);
            assert_eq!(kind.spec(), canonical, "{loose}");
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("NOPE", "unknown lb family"),
            ("OPS{evs=0}", "out of range"),
            ("OPS{evs=65537}", "out of range"),
            ("OPS{evs=x}", "bad evs"),
            ("OPS{gap=5us}", "unknown parameter"),
            ("REPS{evs=256", "missing closing brace"),
            ("REPS{evs=256,,freeze=off}", "empty parameter"),
            ("REPS{evs=256,evs=512}", "duplicate parameter"),
            ("REPS{freeze=maybe}", "expected on or off"),
            ("REPS{buf=0}", "out of range"),
            ("MPTCP{subflows=0}", "out of range"),
            ("MPTCP{subflows=65537}", "out of range"),
            ("PLB{rounds=4294967297}", "out of range"),
            ("PLB{thresh=1.5}", "out of range"),
            ("PLB{rounds}", "not key=value"),
            ("Flowlet{gap=80}", "bad duration"),
            ("REPS+freeze@fast", "bad duration"),
        ] {
            let err = LbKind::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
            assert!(
                err.contains(spec),
                "{spec}: error must name the spec: {err}"
            );
        }
    }

    #[test]
    fn ecn_threshold_renders_with_shortest_round_trip_formatting() {
        let plb = LbKind::Plb(PlbConfig {
            ecn_threshold: 0.123456789,
            ..PlbConfig::default()
        });
        assert_eq!(plb.spec(), "PLB{thresh=0.123456789}");
        assert_eq!(LbKind::parse(&plb.spec()).unwrap(), plb);
    }
}
