//! Oblivious Packet Spraying (OPS / RPS, §2.2).
//!
//! Every packet gets an independent, uniformly random entropy value. OPS
//! spreads load evenly in expectation but is oblivious to congestion,
//! asymmetry and failures — the paper's primary per-packet baseline.

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};

/// Oblivious per-packet sprayer.
#[derive(Debug, Clone)]
pub struct Ops {
    evs_size: u32,
}

impl Ops {
    /// Creates a sprayer drawing from an EVS of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `evs_size` is zero.
    pub fn new(evs_size: u32) -> Ops {
        assert!(evs_size > 0, "EVS must be non-empty");
        Ops { evs_size }
    }
}

impl Default for Ops {
    fn default() -> Ops {
        Ops::new(1 << 16)
    }
}

impl LoadBalancer for Ops {
    fn next_ev(&mut self, _now: Time, rng: &mut Rng64) -> u16 {
        rng.gen_range(self.evs_size as u64) as u16
    }

    fn on_ack(&mut self, _fb: &AckFeedback, _rng: &mut Rng64) {}

    fn on_timeout(&mut self, _now: Time) {}

    fn name(&self) -> &'static str {
        "OPS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_cover_the_evs() {
        let mut ops = Ops::new(32);
        let mut rng = Rng64::new(5);
        let mut seen = [false; 32];
        for _ in 0..2_000 {
            let ev = ops.next_ev(Time::ZERO, &mut rng);
            assert!((ev as u32) < 32);
            seen[ev as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn feedback_is_ignored() {
        let mut ops = Ops::default();
        let mut rng = Rng64::new(5);
        let before = ops.clone();
        ops.on_ack(
            &AckFeedback {
                ev: 1,
                ecn: true,
                now: Time::ZERO,
                cwnd_packets: 1,
                rtt: Time::from_us(10),
            },
            &mut rng,
        );
        ops.on_timeout(Time::ZERO);
        assert_eq!(before.evs_size, ops.evs_size);
    }
}
