//! BitMap: per-entropy congestion state, STrack-style (§4.1).
//!
//! Keeps one "congested" bit per entropy value, set on marked ACKs and
//! timeouts and aged out periodically. Sending draws random entropies and
//! rejects recently-congested ones. Effective, but the state scales with the
//! EVS size (64 Kib for a 16-bit EVS) — the memory-footprint contrast the
//! paper draws against REPS' 25 bytes (§3.3).

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};

/// Per-EV congestion bitmap balancer.
#[derive(Debug, Clone)]
pub struct Bitmap {
    congested: Vec<bool>,
    marked_count: usize,
    last_clear: Time,
    clear_period: Time,
    /// Attempts per send before giving up and accepting a congested EV.
    max_tries: u32,
    /// Lifetime count of candidate entropies rejected for congestion.
    pub rejections: u64,
}

impl Bitmap {
    /// Creates a bitmap balancer over `evs_size` entropies, aging marks
    /// every `clear_period`.
    pub fn new(evs_size: u32, clear_period: Time) -> Bitmap {
        assert!(evs_size > 0, "EVS must be non-empty");
        Bitmap {
            congested: vec![false; evs_size as usize],
            marked_count: 0,
            last_clear: Time::ZERO,
            clear_period,
            max_tries: 8,
            rejections: 0,
        }
    }

    /// Memory footprint of the per-connection state in bits (the paper's
    /// §3.3 comparison: 64 Kib for a full EVS).
    pub fn footprint_bits(&self) -> u64 {
        self.congested.len() as u64
    }

    fn maybe_age(&mut self, now: Time) {
        if now.saturating_sub(self.last_clear) >= self.clear_period {
            self.congested.iter_mut().for_each(|b| *b = false);
            self.marked_count = 0;
            self.last_clear = now;
        }
    }

    fn mark(&mut self, ev: u16) {
        let idx = ev as usize % self.congested.len();
        if !self.congested[idx] {
            self.congested[idx] = true;
            self.marked_count += 1;
        }
    }
}

impl LoadBalancer for Bitmap {
    fn next_ev(&mut self, now: Time, rng: &mut Rng64) -> u16 {
        self.maybe_age(now);
        let n = self.congested.len() as u64;
        let mut candidate = rng.gen_range(n) as u16;
        if self.marked_count < self.congested.len() {
            for _ in 0..self.max_tries {
                if !self.congested[candidate as usize] {
                    break;
                }
                self.rejections += 1;
                candidate = rng.gen_range(n) as u16;
            }
        }
        candidate
    }

    fn on_ack(&mut self, fb: &AckFeedback, _rng: &mut Rng64) {
        self.maybe_age(fb.now);
        if fb.ecn {
            self.mark(fb.ev);
        }
    }

    fn on_timeout(&mut self, now: Time) {
        self.maybe_age(now);
    }

    fn on_congestion_loss(&mut self, ev: u16, now: Time) {
        self.maybe_age(now);
        self.mark(ev);
    }

    fn name(&self) -> &'static str {
        "BitMap"
    }

    fn diagnostics(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("bitmap_rejections", self.rejections));
        out.push(("bitmap_marked_evs", self.marked_count as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(ev: u16, ecn: bool, now: Time) -> AckFeedback {
        AckFeedback {
            ev,
            ecn,
            now,
            cwnd_packets: 16,
            rtt: Time::from_us(10),
        }
    }

    #[test]
    fn avoids_marked_entropies() {
        let mut lb = Bitmap::new(8, Time::from_ms(100));
        let mut rng = Rng64::new(1);
        // Mark all but EV 5.
        for ev in [0u16, 1, 2, 3, 4, 6, 7] {
            lb.on_ack(&fb(ev, true, Time::from_us(1)), &mut rng);
        }
        let mut fives = 0;
        for _ in 0..100 {
            if lb.next_ev(Time::from_us(2), &mut rng) == 5 {
                fives += 1;
            }
        }
        // With 8 retries per draw, the single clean EV dominates.
        assert!(fives > 60, "clean EV chosen only {fives}/100 times");
    }

    #[test]
    fn marks_age_out() {
        let mut lb = Bitmap::new(4, Time::from_us(50));
        let mut rng = Rng64::new(2);
        for ev in 0..4u16 {
            lb.on_ack(&fb(ev, true, Time::from_us(1)), &mut rng);
        }
        assert_eq!(lb.marked_count, 4);
        // After the clear period all entropies are usable again.
        lb.next_ev(Time::from_us(100), &mut rng);
        assert_eq!(lb.marked_count, 0);
    }

    #[test]
    fn fully_marked_map_still_returns() {
        let mut lb = Bitmap::new(4, Time::from_ms(100));
        let mut rng = Rng64::new(3);
        for ev in 0..4u16 {
            lb.on_congestion_loss(ev, Time::from_us(1));
        }
        // All congested: must still yield something in range.
        let ev = lb.next_ev(Time::from_us(2), &mut rng);
        assert!(ev < 4);
    }

    #[test]
    fn footprint_matches_evs_size() {
        let lb = Bitmap::new(1 << 16, Time::from_ms(1));
        assert_eq!(lb.footprint_bits(), 65_536);
        // The paper's point: that is 64 Kib vs REPS' 193 bits.
        assert!(lb.footprint_bits() > reps::footprint::footprint_bits(8) * 300);
    }

    #[test]
    fn diagnostics_count_congestion_rejections() {
        let mut lb = Bitmap::new(8, Time::from_ms(100));
        let mut rng = Rng64::new(5);
        for ev in [0u16, 1, 2, 3, 4, 6, 7] {
            lb.on_ack(&fb(ev, true, Time::from_us(1)), &mut rng);
        }
        for _ in 0..50 {
            lb.next_ev(Time::from_us(2), &mut rng);
        }
        let mut diag = Vec::new();
        lb.diagnostics(&mut diag);
        assert_eq!(diag[0].0, "bitmap_rejections");
        assert!(diag[0].1 > 0, "7/8 marked EVs must reject some draws");
        assert_eq!(diag[1], ("bitmap_marked_evs", 7));
    }

    #[test]
    fn clean_acks_do_not_mark() {
        let mut lb = Bitmap::new(16, Time::from_ms(100));
        let mut rng = Rng64::new(4);
        for ev in 0..16u16 {
            lb.on_ack(&fb(ev, false, Time::from_us(1)), &mut rng);
        }
        assert_eq!(lb.marked_count, 0);
    }
}
