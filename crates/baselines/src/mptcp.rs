//! MPTCP-like multi-path splitting (§4.1).
//!
//! The paper models MPTCP by dividing each message across 8 subflows, each
//! routed independently — equivalent to striping over 8 statically-hashed
//! queue pairs. We reproduce that as a balancer that round-robins packets
//! over `n` fixed entropies chosen at connection setup. Static subflows
//! cannot react to congestion or failures, which is exactly the behaviour
//! the evaluation exposes.

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};

/// Static striping over a fixed set of subflow entropies.
#[derive(Debug, Clone)]
pub struct MptcpLike {
    subflow_evs: Vec<u16>,
    next: usize,
}

impl MptcpLike {
    /// Creates `subflows` static paths (the paper uses 8).
    ///
    /// # Panics
    ///
    /// Panics if `subflows` is zero.
    pub fn new(subflows: usize, evs_size: u32, rng: &mut Rng64) -> MptcpLike {
        assert!(subflows > 0, "need at least one subflow");
        let subflow_evs = (0..subflows)
            .map(|_| rng.gen_range(evs_size as u64) as u16)
            .collect();
        MptcpLike {
            subflow_evs,
            next: 0,
        }
    }

    /// The subflow entropies (for tests).
    pub fn subflow_evs(&self) -> &[u16] {
        &self.subflow_evs
    }
}

impl LoadBalancer for MptcpLike {
    fn next_ev(&mut self, _now: Time, _rng: &mut Rng64) -> u16 {
        let ev = self.subflow_evs[self.next];
        self.next = (self.next + 1) % self.subflow_evs.len();
        ev
    }

    fn on_ack(&mut self, _fb: &AckFeedback, _rng: &mut Rng64) {}

    fn on_timeout(&mut self, _now: Time) {}

    fn name(&self) -> &'static str {
        "MPTCP"
    }

    /// Static subflows never migrate — the count (and the conspicuous
    /// absence of a migration counter) is the diagnostic.
    fn diagnostics(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("mptcp_subflows", self.subflow_evs.len() as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_round_robin_over_subflows() {
        let mut rng = Rng64::new(1);
        let mut lb = MptcpLike::new(8, 1 << 16, &mut rng);
        let evs = lb.subflow_evs().to_vec();
        for round in 0..3 {
            for (i, expected) in evs.iter().enumerate() {
                let got = lb.next_ev(Time::from_us((round * 8 + i) as u64), &mut rng);
                assert_eq!(got, *expected);
            }
        }
    }

    #[test]
    fn subflow_count_respected() {
        let mut rng = Rng64::new(2);
        let lb = MptcpLike::new(4, 1 << 16, &mut rng);
        assert_eq!(lb.subflow_evs().len(), 4);
    }

    #[test]
    fn feedback_is_ignored() {
        let mut rng = Rng64::new(3);
        let mut lb = MptcpLike::new(2, 256, &mut rng);
        let a = lb.next_ev(Time::ZERO, &mut rng);
        lb.on_timeout(Time::from_us(5));
        let b = lb.next_ev(Time::ZERO, &mut rng);
        let a2 = lb.next_ev(Time::ZERO, &mut rng);
        assert_eq!(a, a2);
        let _ = b;
    }
}
