//! LB-spec grammar properties: `parse ∘ spec` is the identity over
//! generated [`LbKind`] values, and `spec ∘ parse` is byte-stable on
//! canonical strings — the pair is what keeps cell keys, derived seeds
//! and cache addresses spelling-independent.

use proptest::prelude::*;

use baselines::kind::{paper_rtt, LbKind};
use baselines::plb::PlbConfig;
use netsim::time::Time;
use reps::reps::RepsConfig;

/// Deterministic pool sampler driven by the proptest-shim seed.
struct Pick(u64);

impl Pick {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn choice<T: Clone>(&mut self, pool: &[T]) -> T {
        pool[(self.next() % pool.len() as u64) as usize].clone()
    }
}

/// Parameter pools: defaults mixed with tuned values, so generated specs
/// cover bare names, single overrides and full parameter lists — plus the
/// legacy-canonical configurations (freezing off, forced freezing).
fn arbitrary_kind(seed: u64) -> LbKind {
    let mut pick = Pick(seed);
    let evs = [1u32, 64, 256, 4096, 65_535, 1 << 16];
    let times = [
        Time::from_us(100),
        Time::from_us(1),
        Time::from_ns(500),
        Time(1_500_077),
        paper_rtt() / 2,
        paper_rtt() * 2,
    ];
    match pick.next() % 9 {
        0 => LbKind::Ecmp,
        1 => LbKind::Mprdma,
        2 => LbKind::AdaptiveRoce,
        3 => LbKind::Ops {
            evs_size: pick.choice(&evs),
        },
        4 => LbKind::MptcpLike {
            subflows: pick.choice(&[1usize, 4, 8, 16]),
        },
        5 => LbKind::Flowlet {
            gap: pick.choice(&times),
        },
        6 => LbKind::Bitmap {
            evs_size: pick.choice(&evs),
            clear_period: pick.choice(&times),
        },
        7 => LbKind::Plb(PlbConfig {
            evs_size: pick.choice(&evs),
            ecn_threshold: pick.choice(&[0.05, 0.0, 1.0, 0.1, 0.123456789]),
            congested_rounds: pick.choice(&[1u32, 2, 5]),
        }),
        _ => LbKind::Reps(RepsConfig {
            buffer_size: pick.choice(&[1usize, 8, 16]),
            evs_size: pick.choice(&evs),
            freezing_enabled: pick.next() & 1 == 1,
            freezing_timeout: pick.choice(&times),
            force_freezing_at: pick.choice(&[
                None,
                Some(Time::from_us(50)),
                Some(Time::from_ns(500)),
            ]),
        }),
    }
}

proptest! {
    /// parse ∘ spec = id over generated kinds.
    #[test]
    fn parse_inverts_spec(seed in any::<u64>()) {
        let kind = arbitrary_kind(seed);
        let spec = kind.spec();
        let reparsed = LbKind::parse(&spec)
            .unwrap_or_else(|e| panic!("{spec:?} does not reparse: {e}"));
        prop_assert_eq!(&reparsed, &kind, "spec {} is lossy", spec);
    }

    /// spec ∘ parse is byte-stable on canonical strings (a canonical
    /// string is a fixed point).
    #[test]
    fn spec_is_a_fixed_point_on_canonical_strings(seed in any::<u64>()) {
        let canonical = arbitrary_kind(seed).spec();
        let again = LbKind::parse(&canonical).expect("canonical parses").spec();
        prop_assert_eq!(again, canonical);
    }
}
