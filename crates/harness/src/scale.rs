//! Experiment scale control.
//!
//! The paper's full-scale runs (1024-node fabrics, 16 MiB messages) take a
//! while in a discrete-event simulator; the figure binaries honour the
//! `REPS_SCALE` environment variable so the whole suite stays runnable:
//!
//! * `quick` (default) — 32–128-node fabrics, smaller messages; every
//!   qualitative shape of the paper is preserved.
//! * `full`  — the paper's parameters where feasible.

/// The requested experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes (default): minutes, not hours.
    Quick,
    /// Paper-scale parameters.
    Full,
}

impl Scale {
    /// Reads `REPS_SCALE`, case-insensitively (`full`, `Full`, `FULL` all
    /// select [`Scale::Full`]; anything else defaults to [`Scale::Quick`]).
    pub fn from_env() -> Scale {
        match std::env::var("REPS_SCALE") {
            Ok(v) if v.trim().eq_ignore_ascii_case("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks between a quick and a full value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn from_env_is_case_insensitive() {
        // Serialized within this one test to avoid env races.
        for (value, expected) in [
            ("full", Scale::Full),
            ("FULL", Scale::Full),
            ("Full", Scale::Full),
            (" full ", Scale::Full),
            ("quick", Scale::Quick),
            ("QUICK", Scale::Quick),
            ("nonsense", Scale::Quick),
        ] {
            std::env::set_var("REPS_SCALE", value);
            assert_eq!(Scale::from_env(), expected, "REPS_SCALE={value:?}");
        }
        std::env::remove_var("REPS_SCALE");
        assert_eq!(Scale::from_env(), Scale::Quick);
    }
}
