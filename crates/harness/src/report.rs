//! Plain-text reporting helpers shared by the figure binaries.

use netsim::stats::LinkSeries;
use netsim::time::Time;

use crate::experiment::Summary;

/// Formats a set of summaries as an aligned comparison table. Drops are
/// broken out by reason (queue overflow, dead link, bit error, gray loss,
/// corruption) — lumping them together hides exactly the distinction the
/// failure figures are about: a congested balancer, a blackholed one, and
/// one bleeding packets on a gray cable all "drop", for different reasons.
pub fn comparison_table(title: &str, rows: &[Summary]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}\n",
        "LB",
        "max FCT(us)",
        "avg FCT(us)",
        "p99 FCT(us)",
        "qdrops",
        "lnkdrop",
        "berdrop",
        "graydrop",
        "corrupt",
        "retx",
        "ecn",
        "done"
    ));
    for s in rows {
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>12.1} {:>12.1} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}\n",
            s.lb,
            s.max_fct.as_us_f64(),
            s.avg_fct.as_us_f64(),
            s.p99_fct.as_us_f64(),
            s.counters.drops_queue_full,
            s.counters.drops_link_down,
            s.counters.drops_bit_error,
            s.counters.drops_gray,
            s.counters.drops_corrupt,
            s.counters.retransmissions,
            s.counters.ecn_marks,
            if s.completed { "yes" } else { "NO" },
        ));
    }
    out
}

/// Formats speedups of each row versus a baseline label (the paper's
/// "speedup vs ECMP" / "speedup vs OPS" bars).
pub fn speedup_table(title: &str, rows: &[Summary], baseline_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title} (speedup vs {baseline_label})\n"));
    let Some(base) = rows.iter().find(|s| s.lb == baseline_label) else {
        out.push_str("baseline missing\n");
        return out;
    };
    let base_fct = base.max_fct.as_ps().max(1) as f64;
    for s in rows {
        let speedup = base_fct / s.max_fct.as_ps().max(1) as f64;
        out.push_str(&format!("{:<14} {:>8.2}x\n", s.lb, speedup));
    }
    out
}

/// Extracts `(time_us, gbps)` utilization points for one tracked link.
pub fn utilization_series(series: &LinkSeries, bucket: Time) -> Vec<(f64, f64)> {
    series
        .bucket_bytes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| {
            let t = (i as u64 * bucket.as_ps()) as f64 / 1e6;
            (t, netsim::stats::bucket_gbps(bytes, bucket))
        })
        .collect()
}

/// Extracts `(time_us, kb)` queue-occupancy points for one tracked link.
pub fn queue_series(series: &LinkSeries) -> Vec<(f64, f64)> {
    series
        .queue_samples
        .iter()
        .map(|s| (s.at.as_us_f64(), s.bytes as f64 / 1e3))
        .collect()
}

/// Downsamples a series to at most `n` evenly-spaced points (plot-friendly).
pub fn downsample(points: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if points.len() <= n || n == 0 {
        return points.to_vec();
    }
    let step = points.len() as f64 / n as f64;
    (0..n).map(|i| points[(i as f64 * step) as usize]).collect()
}

/// Renders a CDF from a set of values (for the FCT-CDF figures).
pub fn cdf(values: &mut [f64]) -> Vec<(f64, f64)> {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = values.len();
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::stats::Counters;

    fn summary(lb: &str, max_us: u64) -> Summary {
        Summary {
            name: "t".into(),
            lb: lb.into(),
            completed: true,
            fg_flows: 1,
            max_fct: Time::from_us(max_us),
            avg_fct: Time::from_us(max_us / 2),
            p99_fct: Time::from_us(max_us),
            makespan: Time::from_us(max_us),
            avg_goodput_gbps: 1.0,
            bg_max_fct: None,
            counters: Counters::default(),
            diagnostics: None,
        }
    }

    #[test]
    fn speedup_is_relative_to_baseline() {
        let rows = vec![summary("ECMP", 600), summary("REPS", 100)];
        let t = speedup_table("x", &rows, "ECMP");
        assert!(t.contains("REPS"), "{t}");
        assert!(t.contains("6.00x"), "{t}");
        assert!(t.contains("1.00x"), "{t}");
    }

    #[test]
    fn comparison_table_contains_rows() {
        let rows = vec![summary("OPS", 50)];
        let t = comparison_table("hdr", &rows);
        assert!(t.contains("OPS"));
        assert!(t.contains("50.0"));
    }

    #[test]
    fn comparison_table_breaks_drops_out_by_reason() {
        let mut s = summary("REPS", 50);
        s.counters.drops_queue_full = 3;
        s.counters.drops_link_down = 7;
        s.counters.drops_bit_error = 1;
        s.counters.drops_gray = 4;
        s.counters.drops_corrupt = 2;
        let t = comparison_table("hdr", &[s]);
        for col in ["qdrops", "lnkdrop", "berdrop", "graydrop", "corrupt"] {
            assert!(t.contains(col), "missing column {col}: {t}");
        }
        // The data row carries each count under its own column.
        let row = t.lines().last().unwrap();
        for n in ["3", "7", "1", "4", "2"] {
            assert!(row.split_whitespace().any(|f| f == n), "missing {n}: {row}");
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let mut vals = vec![3.0, 1.0, 2.0];
        let c = cdf(&mut vals);
        assert_eq!(c.len(), 3);
        assert!((c[0].1 - 1.0 / 3.0).abs() < 1e-9);
        assert!((c[2].1 - 1.0).abs() < 1e-9);
        assert!(c[0].0 <= c[1].0 && c[1].0 <= c[2].0);
    }

    #[test]
    fn downsample_limits_points() {
        let points: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, 0.0)).collect();
        let d = downsample(&points, 50);
        assert_eq!(d.len(), 50);
        assert_eq!(d[0].0, 0.0);
    }
}
