//! Experiment assembly: topology + transport + workload + failures → run.
//!
//! [`Experiment`] is the single entry point the figure binaries use: it
//! builds the engine, installs endpoints configured with the chosen load
//! balancer / congestion controller / coalescing policy, registers the
//! workload's start rules and dependency triggers, schedules failures, runs
//! to completion and summarizes.

use baselines::kind::LbKind;
use netsim::config::SimConfig;
use netsim::engine::{Engine, MessageSpec};
use netsim::event::ControlEvent;
use netsim::failures::FailurePlan;
use netsim::ids::{HostId, LinkId};
use netsim::stats::Counters;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use netsim::trace::{NoTrace, TraceSink};
use transport::cc::CcKind;
use transport::config::{CoalesceConfig, TransportConfig, BACKGROUND_BIT};
use transport::endpoint::HostEndpoint;
use workloads::spec::{StartRule, Workload};

/// Which links to track for utilization/queue series.
#[derive(Debug, Clone, Default)]
pub enum TrackLinks {
    /// Track nothing (cheapest; macro experiments).
    #[default]
    None,
    /// Track the uplinks of one ToR (the micro figures).
    TorUplinks(u32),
    /// Track an explicit set.
    Links(Vec<LinkId>),
}

/// A fully-specified experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Name for reports.
    pub name: String,
    /// Fabric profile.
    pub sim: SimConfig,
    /// Topology shape.
    pub fabric: FatTreeConfig,
    /// Load balancer under test.
    pub lb: LbKind,
    /// Congestion controller.
    pub cc: CcKind,
    /// ACK coalescing policy.
    pub coalesce: CoalesceConfig,
    /// Foreground workload.
    pub workload: Workload,
    /// Background workload (ECMP-class traffic for the mixed scenarios).
    pub background: Option<(Workload, LbKind)>,
    /// Model the background workload as fluid flows (hybrid fidelity)
    /// instead of packets: analytic max-min rate shares re-solved only on
    /// control events, folded into the links' effective rates. The
    /// background LB kind is ignored in fluid mode (the fluid model routes
    /// per-flow by deterministic ECMP). No effect without `background`.
    pub fluid_background: bool,
    /// Failure plan.
    pub failures: FailurePlan,
    /// Window ceiling as a multiple of the path BDP (1.5 default; the micro
    /// figures need enough headroom to ride out transient collisions).
    pub max_cwnd_bdp: f64,
    /// RNG seed (topology salts, EV draws, arrival jitter).
    pub seed: u64,
    /// Give up after this much simulated time.
    pub deadline: Time,
    /// Link tracking for timeseries figures.
    pub track: TrackLinks,
    /// Enable periodic queue sampling until this time (0 = off).
    pub sample_until: Time,
    /// Collect per-LB decision counters into [`Summary::diagnostics`]
    /// (opt-in: the block changes the summary's JSONL bytes).
    pub diagnostics: bool,
}

impl Experiment {
    /// A new experiment with paper-default fabric parameters.
    pub fn new(
        name: impl Into<String>,
        fabric: FatTreeConfig,
        lb: LbKind,
        workload: Workload,
    ) -> Experiment {
        Experiment {
            name: name.into(),
            sim: SimConfig::paper_default(),
            fabric,
            lb,
            cc: CcKind::Dctcp,
            coalesce: CoalesceConfig::default(),
            workload,
            background: None,
            fluid_background: false,
            failures: FailurePlan::none(),
            max_cwnd_bdp: 1.5,
            seed: 1,
            deadline: Time::from_ms(500),
            track: TrackLinks::None,
            sample_until: Time::ZERO,
            diagnostics: false,
        }
    }

    /// Worst-case one-way switch hops of the fabric (for BDP estimation).
    fn max_hops(&self) -> u32 {
        if self.fabric.tiers == 2 {
            3
        } else {
            5
        }
    }

    /// Builds the engine with all endpoints and schedules installed.
    pub fn build(&self) -> Engine {
        self.build_traced(NoTrace)
    }

    /// [`Experiment::build`] with a caller-supplied flight-recorder sink
    /// (the `--trace` path). Everything else is identical, so a traced run
    /// replays the exact same simulation.
    pub fn build_traced<S: TraceSink>(&self, trace: S) -> Engine<S> {
        let topo = Topology::build(self.fabric.clone(), self.seed);
        let n = topo.n_hosts;
        let mut engine = Engine::with_trace(topo, self.sim.clone(), self.seed, trace);
        engine.routing = self.lb.routing_mode();

        let mut tcfg = TransportConfig::from_sim(&engine.cfg, self.max_hops(), self.lb.clone())
            .with_cc(self.cc)
            .with_coalesce(self.coalesce);
        tcfg.cc_params.max_cwnd = (tcfg.cc_params.init_cwnd as f64 * self.max_cwnd_bdp) as u64;
        if let Some((_, bg_lb)) = &self.background {
            tcfg = tcfg.with_background_lb(bg_lb.clone());
        }

        // Assemble the per-host message schedules and triggers.
        let mut endpoints: Vec<HostEndpoint> = (0..n)
            .map(|h| HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone()))
            .collect();

        let mut expected = 0usize;
        let mut install = |w: &Workload, tag_bit: u64, flow_base: u32| {
            for f in &w.flows {
                let spec = MessageSpec {
                    flow: netsim::ids::FlowId(f.flow.0 + flow_base),
                    dst: f.dst,
                    bytes: f.bytes,
                    tag: f.tag | tag_bit,
                };
                let ep = &mut endpoints[f.src.index()];
                match f.start {
                    StartRule::At(t) => ep.schedule_message(t, spec),
                    StartRule::OnReceive { tag } => ep.trigger_on_receive(tag | tag_bit, spec),
                    StartRule::OnSendComplete { tag } => {
                        ep.trigger_on_send_complete(tag | tag_bit, spec)
                    }
                }
            }
        };
        install(&self.workload, 0, 0);
        expected += self.workload.len();
        if let Some((bg, _)) = &self.background {
            if !self.fluid_background {
                install(bg, BACKGROUND_BIT, self.workload.len() as u32);
            }
            expected += bg.len();
        }

        for (h, ep) in endpoints.into_iter().enumerate() {
            engine.set_endpoint(HostId(h as u32), Box::new(ep));
        }
        for h in 0..n {
            engine.schedule_control(Time::ZERO, ControlEvent::HostStart(HostId(h)));
        }

        self.failures.install(&mut engine);
        engine.stats.expected_flows = expected;

        // Hybrid fidelity: the background workload becomes a fluid
        // population instead of packets. Same flow ids (base-offset past
        // the foreground), so the summary's fg/bg split and the completion
        // accounting are oblivious to the modelling fidelity.
        if self.fluid_background {
            if let Some((bg, _)) = &self.background {
                let flow_base = self.workload.len() as u32;
                let mut fluid = netsim::fluid::FluidNet::new(engine.links.len());
                for f in &bg.flows {
                    let start = match f.start {
                        StartRule::At(t) => t,
                        // Trigger rules have no meaning without per-packet
                        // progress; fluid flows start immediately.
                        StartRule::OnReceive { .. } | StartRule::OnSendComplete { .. } => {
                            Time::ZERO
                        }
                    };
                    fluid.add_flow(
                        &engine.topo,
                        f.flow.0 + flow_base,
                        f.src,
                        f.dst,
                        f.bytes,
                        start,
                    );
                }
                fluid.finalize();
                engine.attach_fluid(fluid);
            }
        }

        match &self.track {
            TrackLinks::None => {}
            TrackLinks::TorUplinks(tor) => {
                let meta = &engine.topo.switches[*tor as usize];
                let ups = meta.up_links;
                for l in ups.iter() {
                    engine.stats.track_link(l);
                }
            }
            TrackLinks::Links(ls) => {
                for l in ls {
                    engine.stats.track_link(*l);
                }
            }
        }
        if self.sample_until > Time::ZERO {
            engine.enable_sampling(self.sample_until);
        }
        engine
    }

    /// Builds and runs to completion (or deadline), returning the engine for
    /// inspection plus a summary.
    pub fn run(&self) -> RunResult {
        self.run_traced(NoTrace)
    }

    /// [`Experiment::run`] with a caller-supplied flight-recorder sink; the
    /// filled sink rides back on [`RunResult::engine`].
    pub fn run_traced<S: TraceSink>(&self, trace: S) -> RunResult<S> {
        let mut engine = self.build_traced(trace);
        // detlint: allow(DET002) — wall_ns perf measurement; reaches the perf JSONL only, never result bytes
        let started = std::time::Instant::now();
        let completed = engine.run_to_completion(self.deadline);
        let wall_ns = started.elapsed().as_nanos() as u64;
        let summary = Summary::from_engine(self, &engine, completed);
        RunResult {
            summary,
            wall_ns,
            engine,
        }
    }
}

/// The outcome of one experiment run.
pub struct RunResult<S: TraceSink = NoTrace> {
    /// The engine, for timeseries extraction (`engine.events_processed`
    /// carries the event count for events/sec accounting, and
    /// `engine.trace` the filled flight-recorder sink).
    pub engine: Engine<S>,
    /// Aggregate summary.
    pub summary: Summary,
    /// Wall-clock nanoseconds spent inside the event loop (excludes
    /// engine construction). Nondeterministic by nature — reported through
    /// the sweep perf sink, never through the byte-stable summary JSONL.
    pub wall_ns: u64,
}

/// Aggregate metrics of one run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Experiment name.
    pub name: String,
    /// Load balancer label.
    pub lb: String,
    /// Whether every expected flow finished before the deadline.
    pub completed: bool,
    /// Foreground flows completed.
    pub fg_flows: usize,
    /// Maximum foreground flow completion time (workload runtime).
    pub max_fct: Time,
    /// Mean foreground FCT.
    pub avg_fct: Time,
    /// 99th-percentile foreground FCT.
    pub p99_fct: Time,
    /// Completion instant of the last foreground flow (collective runtime).
    pub makespan: Time,
    /// Mean per-flow goodput in Gbps (foreground).
    pub avg_goodput_gbps: f64,
    /// Background max FCT (mixed-traffic scenarios), if any.
    pub bg_max_fct: Option<Time>,
    /// Fabric counters.
    pub counters: Counters,
    /// Per-LB decision counters summed across connections (opt-in via
    /// [`Experiment::diagnostics`]; `None` keeps the JSONL bytes identical
    /// to a pre-diagnostics run). Values are `f64` because `repsbench
    /// merge` averages them fieldwise; whole numbers render as integer
    /// literals, so the round trip stays byte-exact either way.
    pub diagnostics: Option<Vec<(String, f64)>>,
}

impl Summary {
    fn from_engine<S: TraceSink>(exp: &Experiment, engine: &Engine<S>, completed: bool) -> Summary {
        let fg_count = exp.workload.len() as u32;
        let fg: Vec<&netsim::stats::FlowRecord> = engine
            .stats
            .flows
            .iter()
            .filter(|f| f.flow.0 < fg_count)
            .collect();
        let bg: Vec<&netsim::stats::FlowRecord> = engine
            .stats
            .flows
            .iter()
            .filter(|f| f.flow.0 >= fg_count)
            .collect();
        let max_fct = fg.iter().map(|f| f.fct()).max().unwrap_or(Time::ZERO);
        let avg_fct = if fg.is_empty() {
            Time::ZERO
        } else {
            Time(
                (fg.iter().map(|f| f.fct().as_ps() as u128).sum::<u128>() / fg.len() as u128)
                    as u64,
            )
        };
        let p99_fct = {
            let mut fcts: Vec<Time> = fg.iter().map(|f| f.fct()).collect();
            fcts.sort_unstable();
            fcts.get(((fcts.len() as f64 - 1.0) * 0.99).round() as usize)
                .copied()
                .unwrap_or(Time::ZERO)
        };
        let makespan = fg.iter().map(|f| f.end).max().unwrap_or(Time::ZERO);
        let goodput = if fg.is_empty() {
            0.0
        } else {
            fg.iter().map(|f| f.goodput_bps()).sum::<f64>() / fg.len() as f64 / 1e9
        };
        Summary {
            name: exp.name.clone(),
            lb: exp.lb.label().to_string(),
            completed,
            fg_flows: fg.len(),
            max_fct,
            avg_fct,
            p99_fct,
            makespan,
            avg_goodput_gbps: goodput,
            bg_max_fct: if bg.is_empty() {
                None
            } else {
                Some(bg.iter().map(|f| f.fct()).max().unwrap())
            },
            counters: engine.stats.counters,
            diagnostics: if exp.diagnostics {
                Some(collect_diagnostics(engine))
            } else {
                None
            },
        }
    }
}

/// Sums every host's load-balancer decision counters (host order, names in
/// first-appearance order — deterministic for a fixed seed).
fn collect_diagnostics<S: TraceSink>(engine: &Engine<S>) -> Vec<(String, f64)> {
    let mut acc: Vec<(&'static str, u64)> = Vec::new();
    for h in 0..engine.topo.n_hosts {
        if let Some(ep) = engine
            .endpoint(HostId(h))
            .and_then(|e| e.as_any())
            .and_then(|a| a.downcast_ref::<HostEndpoint>())
        {
            ep.lb_diagnostics(&mut acc);
        }
    }
    let mut out: Vec<(String, f64)> = acc
        .into_iter()
        .map(|(name, v)| (name.to_string(), v as f64))
        .collect();
    if let Some(fluid) = &engine.fluid {
        out.push(("fluid_resolves".to_string(), fluid.counters.resolves as f64));
        out.push(("fluid_bg_flows".to_string(), fluid.counters.admitted as f64));
        out.push((
            "fluid_residual_updates".to_string(),
            fluid.counters.residual_updates as f64,
        ));
    }
    out
}

impl Summary {
    /// Parses a summary back from the JSON object [`Summary::to_json`]
    /// renders. `from_json(v).to_json()` is byte-identical to the source
    /// for any summary this crate emitted — the round trip `repsbench
    /// merge` and the sweep cell cache rely on.
    pub fn from_json(v: &crate::json::Value) -> Result<Summary, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("summary missing {k:?}"));
        let time = |k: &str| -> Result<Time, String> {
            field(k)?
                .as_u64()
                .map(Time)
                .ok_or_else(|| format!("summary field {k:?} is not a u64"))
        };
        let counters = field("counters")?;
        let counter = |k: &str| -> Result<u64, String> {
            counters
                .get(k)
                .and_then(crate::json::Value::as_u64)
                .ok_or_else(|| format!("counters field {k:?} is not a u64"))
        };
        let opt_counter = |k: &str| -> Result<u64, String> {
            match counters.get(k) {
                None => Ok(0),
                Some(n) => n
                    .as_u64()
                    .ok_or_else(|| format!("counters field {k:?} is not a u64")),
            }
        };
        Ok(Summary {
            name: field("name")?
                .as_str()
                .ok_or("summary field \"name\" is not a string")?
                .to_string(),
            lb: field("lb")?
                .as_str()
                .ok_or("summary field \"lb\" is not a string")?
                .to_string(),
            completed: field("completed")?
                .as_bool()
                .ok_or("summary field \"completed\" is not a bool")?,
            fg_flows: field("fg_flows")?
                .as_u64()
                .ok_or("summary field \"fg_flows\" is not a u64")? as usize,
            max_fct: time("max_fct_ps")?,
            avg_fct: time("avg_fct_ps")?,
            p99_fct: time("p99_fct_ps")?,
            makespan: time("makespan_ps")?,
            // `to_json` renders non-finite goodput as null; read it back
            // as NaN so the round trip stays exact.
            avg_goodput_gbps: match field("avg_goodput_gbps")? {
                crate::json::Value::Null => f64::NAN,
                n => n
                    .as_f64()
                    .ok_or("summary field \"avg_goodput_gbps\" is not a number")?,
            },
            bg_max_fct: match field("bg_max_fct_ps")? {
                crate::json::Value::Null => None,
                n => Some(Time(
                    n.as_u64()
                        .ok_or("summary field \"bg_max_fct_ps\" is not null or a u64")?,
                )),
            },
            counters: Counters {
                drops_queue_full: counter("drops_queue_full")?,
                drops_link_down: counter("drops_link_down")?,
                drops_bit_error: counter("drops_bit_error")?,
                // Absent when zero (see `to_json`), so records written
                // before the fault axis existed still parse.
                drops_gray: opt_counter("drops_gray")?,
                drops_corrupt: opt_counter("drops_corrupt")?,
                trims: counter("trims")?,
                ecn_marks: counter("ecn_marks")?,
                data_tx: counter("data_tx")?,
                ctrl_tx: counter("ctrl_tx")?,
                retransmissions: counter("retransmissions")?,
                timeouts: counter("timeouts")?,
            },
            diagnostics: match v.get("diagnostics") {
                None => None,
                Some(d) => {
                    let fields = d.as_obj().ok_or("\"diagnostics\" is not an object")?;
                    let mut out = Vec::with_capacity(fields.len());
                    for (k, fv) in fields {
                        let n = fv
                            .as_f64()
                            .ok_or_else(|| format!("diagnostics field {k:?} is not a number"))?;
                        out.push((k.clone(), n));
                    }
                    Some(out)
                }
            },
        })
    }

    /// Renders the summary as one stable JSON object (fixed field order,
    /// times in integer picoseconds) — the sweep engine's JSONL payload.
    pub fn to_json(&self) -> String {
        let mut counters = crate::json::Object::new()
            .u64("drops_queue_full", self.counters.drops_queue_full)
            .u64("drops_link_down", self.counters.drops_link_down)
            .u64("drops_bit_error", self.counters.drops_bit_error);
        // The gray/corrupt counters only exist in faulted cells; omitting
        // them at zero keeps every pre-fault-axis record byte-identical.
        if self.counters.drops_gray > 0 {
            counters = counters.u64("drops_gray", self.counters.drops_gray);
        }
        if self.counters.drops_corrupt > 0 {
            counters = counters.u64("drops_corrupt", self.counters.drops_corrupt);
        }
        let counters = counters
            .u64("trims", self.counters.trims)
            .u64("ecn_marks", self.counters.ecn_marks)
            .u64("data_tx", self.counters.data_tx)
            .u64("ctrl_tx", self.counters.ctrl_tx)
            .u64("retransmissions", self.counters.retransmissions)
            .u64("timeouts", self.counters.timeouts)
            .render();
        let mut obj = crate::json::Object::new()
            .str("name", &self.name)
            .str("lb", &self.lb)
            .bool("completed", self.completed)
            .u64("fg_flows", self.fg_flows as u64)
            .u64("max_fct_ps", self.max_fct.as_ps())
            .u64("avg_fct_ps", self.avg_fct.as_ps())
            .u64("p99_fct_ps", self.p99_fct.as_ps())
            .u64("makespan_ps", self.makespan.as_ps())
            .f64("avg_goodput_gbps", self.avg_goodput_gbps)
            .raw(
                "bg_max_fct_ps",
                match self.bg_max_fct {
                    Some(t) => t.as_ps().to_string(),
                    None => "null".to_string(),
                },
            )
            .raw("counters", counters);
        if let Some(diag) = &self.diagnostics {
            let mut d = crate::json::Object::new();
            for (name, v) in diag {
                d = d.f64(name, *v);
            }
            obj = obj.raw("diagnostics", d.render());
        }
        obj.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reps::reps::RepsConfig;
    use workloads::patterns;

    #[test]
    fn permutation_experiment_runs_to_completion() {
        let mut rng = netsim::rng::Rng64::new(3);
        let w = patterns::permutation(32, 256 << 10, &mut rng);
        let exp = Experiment::new(
            "test-perm",
            FatTreeConfig::two_tier(8, 1),
            LbKind::Reps(RepsConfig::default()),
            w,
        );
        let res = exp.run();
        assert!(res.summary.completed, "did not complete");
        assert_eq!(res.summary.fg_flows, 32);
        assert!(res.summary.max_fct > Time::ZERO);
        assert!(res.summary.avg_fct <= res.summary.max_fct);
    }

    #[test]
    fn tornado_reps_not_slower_than_ops() {
        // Macro sanity: REPS must at least match OPS on a clean tornado.
        let run = |lb: LbKind| {
            let w = patterns::tornado(32, 1 << 20);
            let mut exp = Experiment::new("t", FatTreeConfig::two_tier(8, 1), lb, w);
            exp.seed = 7;
            exp.run().summary
        };
        let reps = run(LbKind::Reps(RepsConfig::default()));
        let ops = run(LbKind::Ops { evs_size: 1 << 16 });
        assert!(reps.completed && ops.completed);
        let r = reps.max_fct.as_ps() as f64;
        let o = ops.max_fct.as_ps() as f64;
        assert!(r <= o * 1.1, "REPS {r} vs OPS {o}");
    }

    #[test]
    fn background_traffic_is_tracked_separately() {
        let mut rng = netsim::rng::Rng64::new(5);
        let main = patterns::permutation(32, 128 << 10, &mut rng);
        let bg = patterns::tornado(32, 64 << 10);
        let mut exp = Experiment::new(
            "mixed",
            FatTreeConfig::two_tier(8, 1),
            LbKind::Reps(RepsConfig::default()),
            main,
        );
        exp.background = Some((bg, LbKind::Ecmp));
        let res = exp.run();
        assert!(res.summary.completed);
        assert_eq!(res.summary.fg_flows, 32);
        assert!(res.summary.bg_max_fct.is_some());
    }

    #[test]
    fn fluid_background_completes_and_reports_diagnostics() {
        let mut rng = netsim::rng::Rng64::new(5);
        let main = patterns::permutation(32, 128 << 10, &mut rng);
        let bg = patterns::tornado(32, 64 << 10);
        let mut exp = Experiment::new(
            "hybrid",
            FatTreeConfig::two_tier(8, 1),
            LbKind::Reps(RepsConfig::default()),
            main,
        );
        exp.background = Some((bg, LbKind::Ecmp));
        exp.fluid_background = true;
        exp.diagnostics = true;
        let res = exp.run();
        assert!(res.summary.completed, "hybrid run must complete");
        assert_eq!(res.summary.fg_flows, 32);
        assert!(
            res.summary.bg_max_fct.is_some(),
            "fluid completions must feed the bg FCT split"
        );
        let diag = res.summary.diagnostics.as_ref().expect("diagnostics on");
        let get = |k: &str| diag.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert!(get("fluid_resolves").unwrap() >= 1.0);
        assert_eq!(get("fluid_bg_flows"), Some(32.0));
        assert!(get("fluid_residual_updates").unwrap() >= 1.0);
        // Determinism: an identical run produces identical bytes.
        let again = exp.run();
        assert_eq!(again.summary.to_json(), res.summary.to_json());
    }

    #[test]
    fn summary_json_is_stable_and_escaped() {
        let w = patterns::tornado(32, 64 << 10);
        let mut exp = Experiment::new(
            "json \"quoted\"",
            FatTreeConfig::two_tier(8, 1),
            LbKind::Reps(RepsConfig::default()),
            w,
        );
        exp.seed = 9;
        let s = exp.run().summary;
        let j = s.to_json();
        assert!(j.starts_with("{\"name\":\"json \\\"quoted\\\"\""), "{j}");
        assert!(j.contains("\"completed\":true"), "{j}");
        assert!(j.contains("\"bg_max_fct_ps\":null"), "{j}");
        assert!(j.contains("\"counters\":{\"drops_queue_full\":"), "{j}");
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(j, s.to_json());
    }

    #[test]
    fn summary_from_json_round_trips_byte_exactly() {
        let run = |bg: bool| {
            let w = patterns::tornado(32, 64 << 10);
            let mut exp = Experiment::new(
                "round \"trip\"",
                FatTreeConfig::two_tier(8, 1),
                LbKind::Reps(RepsConfig::default()),
                w,
            );
            if bg {
                exp.background = Some((patterns::tornado(32, 16 << 10), LbKind::Ecmp));
            }
            exp.run().summary
        };
        for bg in [false, true] {
            let s = run(bg);
            assert_eq!(s.bg_max_fct.is_some(), bg);
            let j = s.to_json();
            let parsed =
                Summary::from_json(&crate::json::Value::parse(&j).expect("parse")).expect("shape");
            assert_eq!(parsed.to_json(), j, "round trip must be byte-exact");
            assert_eq!(parsed.bg_max_fct, s.bg_max_fct);
            assert_eq!(parsed.fg_flows, s.fg_flows);
        }
        // Shape errors are reported, not panicked.
        let bad = crate::json::Value::parse("{\"name\":\"x\"}").unwrap();
        assert!(Summary::from_json(&bad).unwrap_err().contains("missing"));
    }

    #[test]
    fn gray_and_corrupt_counters_are_emitted_only_when_nonzero() {
        let w = patterns::tornado(32, 64 << 10);
        let exp = Experiment::new(
            "g",
            FatTreeConfig::two_tier(8, 1),
            LbKind::Reps(RepsConfig::default()),
            w,
        );
        let mut s = exp.run().summary;
        let clean = s.to_json();
        assert!(!clean.contains("drops_gray"), "{clean}");
        assert!(!clean.contains("drops_corrupt"), "{clean}");
        s.counters.drops_gray = 3;
        s.counters.drops_corrupt = 1;
        let faulted = s.to_json();
        assert!(
            faulted.contains("\"drops_gray\":3,\"drops_corrupt\":1,\"trims\":"),
            "{faulted}"
        );
        let parsed =
            Summary::from_json(&crate::json::Value::parse(&faulted).unwrap()).expect("shape");
        assert_eq!(parsed.counters.drops_gray, 3);
        assert_eq!(parsed.counters.drops_corrupt, 1);
        assert_eq!(parsed.to_json(), faulted, "faulted round trip");
        // Records written before the fault axis existed parse with zeros.
        let old = Summary::from_json(&crate::json::Value::parse(&clean).unwrap()).expect("shape");
        assert_eq!(old.counters.drops_gray, 0);
        assert_eq!(old.counters.drops_corrupt, 0);
    }

    #[test]
    fn tracked_links_produce_series() {
        let w = patterns::tornado(32, 512 << 10);
        let mut exp = Experiment::new(
            "micro",
            FatTreeConfig::two_tier(8, 1),
            LbKind::Ops { evs_size: 1 << 16 },
            w,
        );
        exp.track = TrackLinks::TorUplinks(0);
        exp.sample_until = Time::from_us(200);
        let res = exp.run();
        assert!(res.summary.completed);
        let tor0 = &res.engine.topo.switches[0];
        let up0 = tor0.up_links.at(0);
        let series = res.engine.stats.link_series(up0).expect("tracked");
        assert!(!series.bucket_bytes.is_empty());
        assert!(!series.queue_samples.is_empty());
    }
}
