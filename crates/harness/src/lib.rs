//! Experiment harness for the REPS reproduction.
//!
//! Wires [`netsim`] fabrics, the [`transport`] stack, [`workloads`] and
//! failure plans into named, reproducible experiments, and provides the
//! text-report helpers the per-figure binaries in the `bench` crate use.

pub mod experiment;
pub mod json;
pub mod report;
pub mod scale;

pub use experiment::{Experiment, RunResult, Summary, TrackLinks};
pub use report::{
    cdf, comparison_table, downsample, queue_series, speedup_table, utilization_series,
};
pub use scale::Scale;
