//! Dependency-free JSON emission helpers.
//!
//! The sweep engine records one JSON object per cell (JSON Lines); this
//! module provides the escaping and number formatting those records need
//! without pulling a serialization framework into the build. Output is
//! byte-deterministic: field order is fixed by the callers and numbers use
//! Rust's default (shortest round-trip) formatting.

/// Escapes `s` as the contents of a JSON string literal, with quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`NaN`/`Inf` have no JSON encoding and
/// become `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental `{...}` builder with fixed field order.
#[derive(Debug, Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Appends a field whose value is already-rendered JSON.
    pub fn raw(mut self, key: &str, json: impl Into<String>) -> Object {
        self.fields.push((key.to_string(), json.into()));
        self
    }

    /// Appends a string field.
    pub fn str(self, key: &str, value: &str) -> Object {
        let rendered = string(value);
        self.raw(key, rendered)
    }

    /// Appends an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Object {
        self.raw(key, value.to_string())
    }

    /// Appends a float field.
    pub fn f64(self, key: &str, value: f64) -> Object {
        let rendered = number(value);
        self.raw(key, rendered)
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Object {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_render_deterministically() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn object_preserves_field_order() {
        let o = Object::new().str("b", "x").u64("a", 3).bool("c", true);
        assert_eq!(o.render(), r#"{"b":"x","a":3,"c":true}"#);
    }
}
