//! Dependency-free JSON emission and parsing helpers.
//!
//! The sweep engine records one JSON object per cell (JSON Lines); this
//! module provides the escaping and number formatting those records need
//! without pulling a serialization framework into the build. Output is
//! byte-deterministic: field order is fixed by the callers and numbers use
//! Rust's default (shortest round-trip) formatting.
//!
//! [`Value::parse`] is the matching reader, used by `repsbench merge` and
//! the incremental sweep cache to re-load records. Number literals are
//! kept verbatim ([`Value::Num`] stores the source text), so a
//! parse → re-render round trip of our own output is byte-exact even for
//! full-range `u64`s (e.g. derived seeds) that `f64` cannot represent.

/// Escapes `s` as the contents of a JSON string literal, with quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`NaN`/`Inf` have no JSON encoding and
/// become `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders an array from already-rendered JSON items (canonical form: no
/// whitespace), matching what [`Value::render`] produces so parse →
/// re-render round trips stay byte-exact.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// An incremental `{...}` builder with fixed field order.
#[derive(Debug, Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Appends a field whose value is already-rendered JSON.
    pub fn raw(mut self, key: &str, json: impl Into<String>) -> Object {
        self.fields.push((key.to_string(), json.into()));
        self
    }

    /// Appends a string field.
    pub fn str(self, key: &str, value: &str) -> Object {
        let rendered = string(value);
        self.raw(key, rendered)
    }

    /// Appends an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Object {
        self.raw(key, value.to_string())
    }

    /// Appends a float field.
    pub fn f64(self, key: &str, value: f64) -> Object {
        let rendered = number(value);
        self.raw(key, rendered)
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Object {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// A parsed JSON value.
///
/// Numbers keep their source text ([`Value::Num`]) instead of eagerly
/// converting to `f64`: the sweep records carry full-range `u64`s (derived
/// seeds, picosecond times) that `f64` would silently round, and keeping
/// the literal makes [`Value::render`] an exact inverse of [`Value::parse`]
/// for anything this crate emitted.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its unmodified source literal.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source field order (duplicate keys are kept).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects too.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is a non-negative integer
    /// literal in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64` (lossy for huge integers), if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value back to JSON (numbers verbatim, field order and
    /// string escaping canonical — an exact inverse of [`Value::parse`] on
    /// this crate's own output).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => (if *b { "true" } else { "false" }).to_string(),
            Value::Num(lit) => lit.clone(),
            Value::Str(s) => string(s),
            Value::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Obj(fields) => {
                let mut o = Object::new();
                for (k, v) in fields {
                    o = o.raw(k, v.render());
                }
                o.render()
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.i))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.b.get(self.i) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", *c as char, self.i)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.i;
            while p.i < p.b.len() && p.b[p.i].is_ascii_digit() {
                p.i += 1;
            }
            p.i > from
        };
        if !digits(self) {
            return Err(format!("malformed number at offset {start}"));
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        if matches!(self.b.get(self.i), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        let lit = std::str::from_utf8(&self.b[start..self.i]).expect("ASCII number literal");
        Ok(Value::Num(lit.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.b[self.i..].starts_with(b"\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("lone low surrogate")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                Some(_) => {
                    // Advance one UTF-8 scalar. The input is a &str and the
                    // cursor only ever lands on char boundaries, so the
                    // lead byte gives the exact width — decode just those
                    // bytes (re-validating the whole tail per character
                    // would make string parsing quadratic).
                    let width = self.b[self.i].leading_ones().max(1) as usize;
                    let c = std::str::from_utf8(&self.b[self.i..self.i + width])
                        .expect("valid UTF-8 scalar")
                        .chars()
                        .next()
                        .expect("non-empty");
                    out.push(c);
                    self.i += width;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.i + 4;
        if end > self.b.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.b[self.i..end])
            .ok()
            .filter(|h| h.chars().all(|c| c.is_ascii_hexdigit()))
            .ok_or_else(|| format!("bad \\u escape at offset {}", self.i))?;
        self.i = end;
        Ok(u32::from_str_radix(hex, 16).expect("validated hex"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_render_deterministically() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn object_preserves_field_order() {
        let o = Object::new().str("b", "x").u64("a", 3).bool("c", true);
        assert_eq!(o.render(), r#"{"b":"x","a":3,"c":true}"#);
    }

    #[test]
    fn array_renders_canonically() {
        assert_eq!(array([]), "[]");
        assert_eq!(
            array(["1".to_string(), "[2,3]".to_string(), "\"x\"".to_string()]),
            "[1,[2,3],\"x\"]"
        );
        // Round trip through the parser is byte-exact.
        let src = array((0..3).map(|i| i.to_string()));
        assert_eq!(Value::parse(&src).unwrap().render(), src);
    }

    #[test]
    fn parse_render_round_trips_own_output() {
        // Exactly the shapes the sweep records use, including a u64 that
        // f64 cannot represent and shortest-round-trip floats.
        let src = Object::new()
            .str("key", "a/b\"c\\d\n\u{1}")
            .u64("derived_seed", u64::MAX - 1)
            .f64("rate", 0.1 + 0.2)
            .f64("zero", 0.0)
            .raw("none", "null")
            .bool("ok", true)
            .raw("counters", Object::new().u64("drops", 7).render())
            .raw("arr", "[1,2.5,\"x\"]")
            .render();
        let v = Value::parse(&src).expect("parse");
        assert_eq!(v.render(), src);
        assert_eq!(v.get("derived_seed").unwrap().as_u64(), Some(u64::MAX - 1));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(0.1 + 0.2));
        assert_eq!(v.get("key").unwrap().as_str(), Some("a/b\"c\\d\n\u{1}"));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("drops").unwrap().as_u64(), Some(7));
        assert_eq!(
            v.get("arr"),
            Some(&Value::Arr(vec![
                Value::Num("1".into()),
                Value::Num("2.5".into()),
                Value::Str("x".into()),
            ]))
        );
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_unicode() {
        let v = Value::parse(" { \"a\" : [ 1 , -2.5e-3 , \"\\u0041\\u00e9\\ud83d\\ude00\" ] } ")
            .expect("parse");
        let arr = v.get("a").unwrap();
        assert_eq!(
            arr,
            &Value::Arr(vec![
                Value::Num("1".into()),
                Value::Num("-2.5e-3".into()),
                Value::Str("Aé😀".into()),
            ])
        );
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("{}").unwrap(), Value::Obj(vec![]));
        assert_eq!(Value::parse("[]").unwrap(), Value::Arr(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "01x",
            "\"\\q\"",
            "\"",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "-",
            "1e",
            "\"\\ud800x\"",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
