//! Transport configuration: load balancer, congestion control, coalescing.

use baselines::kind::LbKind;
use netsim::config::SimConfig;
use netsim::time::Time;

use crate::cc::{CcKind, CcParams};

/// ACK coalescing strategy (§4.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalesceVariant {
    /// One ACK per `ratio` packets, echoing only the newest entropy.
    #[default]
    Plain,
    /// The coalesced ACK carries all covered entropies (*ACK+Carry EVs*).
    CarryEvs,
    /// Each echoed entropy is recycled `ratio` times (*ACK+Reuse EVs*).
    ReuseEvs,
}

/// ACK coalescing parameters.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceConfig {
    /// Packets per ACK (1 = per-packet ACKs, the paper's default).
    pub ratio: u32,
    /// Variant.
    pub variant: CoalesceVariant,
}

impl Default for CoalesceConfig {
    fn default() -> CoalesceConfig {
        CoalesceConfig {
            ratio: 1,
            variant: CoalesceVariant::Plain,
        }
    }
}

impl CoalesceConfig {
    /// Per-packet acknowledgments.
    pub fn per_packet() -> CoalesceConfig {
        CoalesceConfig::default()
    }

    /// `n:1` coalescing with the given variant.
    pub fn ratio(n: u32, variant: CoalesceVariant) -> CoalesceConfig {
        CoalesceConfig {
            ratio: n.max(1),
            variant,
        }
    }
}

/// Per-host transport parameters.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Load-balancing scheme for every connection of this host.
    pub lb: LbKind,
    /// Congestion-control algorithm.
    pub cc: CcKind,
    /// ACK coalescing.
    pub coalesce: CoalesceConfig,
    /// Maximum payload per packet.
    pub mtu: u32,
    /// Retransmission timeout.
    pub rto: Time,
    /// Window bounds.
    pub cc_params: CcParams,
    /// Base RTT estimate (PLB rounds, initial smoothing).
    pub base_rtt: Time,
    /// Packets granted per EQDS pacer tick.
    pub eqds_quantum_pkts: u32,
    /// Whether the fabric trims (NACKs then mean congestion, not failure).
    pub trimming: bool,
    /// Load balancer for background-class traffic (messages whose tag has
    /// [`BACKGROUND_BIT`] set). Models the paper's mixed REPS/ECMP
    /// deployments (§4.3.2, Fig. 6). `None` = same as `lb`.
    pub bg_lb: Option<LbKind>,
}

/// Tag bit marking a message as background-class traffic.
pub const BACKGROUND_BIT: u64 = 1 << 63;

impl TransportConfig {
    /// Derives transport parameters from the fabric profile, assuming the
    /// worst-case hop count of the topology (`hops` one-way switch hops).
    pub fn from_sim(sim: &SimConfig, hops: u32, lb: LbKind) -> TransportConfig {
        let bdp = sim.bdp_bytes(hops);
        TransportConfig {
            lb,
            cc: CcKind::Dctcp,
            coalesce: CoalesceConfig::default(),
            mtu: sim.mtu_bytes,
            rto: sim.rto,
            cc_params: CcParams::for_bdp(bdp, sim.mtu_bytes as u64),
            base_rtt: sim.base_rtt(hops),
            eqds_quantum_pkts: 4,
            trimming: sim.trimming,
            bg_lb: None,
        }
    }

    /// Sets the background-class load balancer (mixed-traffic scenarios).
    pub fn with_background_lb(mut self, lb: LbKind) -> TransportConfig {
        self.bg_lb = Some(lb);
        self
    }

    /// Replaces the congestion controller.
    pub fn with_cc(mut self, cc: CcKind) -> TransportConfig {
        self.cc = cc;
        self
    }

    /// Replaces the coalescing policy.
    pub fn with_coalesce(mut self, coalesce: CoalesceConfig) -> TransportConfig {
        self.coalesce = coalesce;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_sane_defaults() {
        let sim = SimConfig::paper_default();
        let cfg = TransportConfig::from_sim(&sim, 4, LbKind::Ops { evs_size: 1 << 16 });
        assert_eq!(cfg.mtu, 4096);
        assert_eq!(cfg.rto, Time::from_us(70));
        assert!(cfg.cc_params.init_cwnd >= 300_000);
        assert!(cfg.base_rtt > Time::from_us(8));
    }

    #[test]
    fn coalesce_ratio_clamped() {
        let c = CoalesceConfig::ratio(0, CoalesceVariant::Plain);
        assert_eq!(c.ratio, 1);
    }
}
