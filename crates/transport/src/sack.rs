//! Out-of-order receive tracking.
//!
//! The FPGA transport in the paper tracks delivery with SACK bitmaps
//! (256-bit wide on hardware, §4.1); in simulation the bitmap grows with the
//! receive window. [`OooTracker`] records per-connection sequence numbers,
//! maintains the cumulative-ACK frontier and answers "is this a duplicate?"
//! so retransmitted packets are not double-counted.

/// Grow-on-demand sequence bitmap with a cumulative frontier.
#[derive(Debug, Clone, Default)]
pub struct OooTracker {
    /// All sequence numbers below this were received.
    cum: u64,
    /// Bitmap of received sequences at offsets `[cum, cum + 64*words.len())`.
    words: Vec<u64>,
}

impl OooTracker {
    /// Creates an empty tracker.
    pub fn new() -> OooTracker {
        OooTracker::default()
    }

    /// The cumulative frontier: every `seq < cum_ack()` was received.
    pub fn cum_ack(&self) -> u64 {
        self.cum
    }

    /// Whether `seq` was already recorded.
    pub fn contains(&self, seq: u64) -> bool {
        if seq < self.cum {
            return true;
        }
        let off = (seq - self.cum) as usize;
        let (w, b) = (off / 64, off % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Records `seq`; returns `true` if it was new, `false` on duplicate.
    pub fn record(&mut self, seq: u64) -> bool {
        if seq < self.cum {
            return false;
        }
        let off = (seq - self.cum) as usize;
        let (w, b) = (off / 64, off % 64);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & (1 << b) != 0 {
            return false;
        }
        self.words[w] |= 1 << b;
        self.advance();
        true
    }

    /// Pops full leading words / bits to move the cumulative frontier.
    fn advance(&mut self) {
        // Drop fully-set leading words.
        let mut drop_words = 0;
        for w in &self.words {
            if *w == u64::MAX {
                drop_words += 1;
            } else {
                break;
            }
        }
        if drop_words > 0 {
            self.words.drain(..drop_words);
            self.cum += 64 * drop_words as u64;
        }
        // Shift out leading set bits of the first word.
        if let Some(first) = self.words.first().copied() {
            let lead = first.trailing_ones() as u64;
            if lead > 0 {
                self.shift_bits(lead);
            }
        }
    }

    /// Shifts the whole bitmap right by `n` (< 64) bits, advancing `cum`.
    fn shift_bits(&mut self, n: u64) {
        debug_assert!(n < 64);
        let mut carry = 0u64;
        for w in self.words.iter_mut().rev() {
            let new_carry = *w << (64 - n);
            *w = (*w >> n) | carry;
            carry = new_carry;
        }
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
        self.cum += n;
    }

    /// Count of received-but-not-cumulative sequences (reorder degree).
    pub fn out_of_order_count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery_advances_cum() {
        let mut t = OooTracker::new();
        for seq in 0..200 {
            assert!(t.record(seq));
            assert_eq!(t.cum_ack(), seq + 1);
        }
        assert_eq!(t.out_of_order_count(), 0);
    }

    #[test]
    fn out_of_order_holds_frontier() {
        let mut t = OooTracker::new();
        assert!(t.record(5));
        assert!(t.record(3));
        assert_eq!(t.cum_ack(), 0);
        assert_eq!(t.out_of_order_count(), 2);
        assert!(t.record(0));
        assert_eq!(t.cum_ack(), 1);
        assert!(t.record(1));
        assert!(t.record(2));
        // 0..=3 and 5 received: frontier at 4.
        assert_eq!(t.cum_ack(), 4);
        assert!(t.record(4));
        assert_eq!(t.cum_ack(), 6);
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut t = OooTracker::new();
        assert!(t.record(7));
        assert!(!t.record(7));
        assert!(t.record(0));
        assert!(!t.record(0), "below-frontier duplicates rejected");
        assert!(t.contains(7));
        assert!(t.contains(0));
        assert!(!t.contains(3));
    }

    #[test]
    fn word_boundary_advance() {
        let mut t = OooTracker::new();
        // Fill 0..128 except 63, then plug the hole.
        for seq in (0..128).filter(|&s| s != 63) {
            t.record(seq);
        }
        assert_eq!(t.cum_ack(), 63);
        t.record(63);
        assert_eq!(t.cum_ack(), 128);
        assert_eq!(t.out_of_order_count(), 0);
    }

    #[test]
    fn reverse_order_delivery() {
        let mut t = OooTracker::new();
        for seq in (0..100).rev() {
            t.record(seq);
        }
        assert_eq!(t.cum_ack(), 100);
        assert_eq!(t.out_of_order_count(), 0);
    }

    #[test]
    fn random_permutation_converges() {
        let mut rng = netsim::rng::Rng64::new(11);
        let mut order: Vec<u64> = (0..1000).collect();
        rng.shuffle(&mut order);
        let mut t = OooTracker::new();
        for seq in order {
            assert!(t.record(seq));
        }
        assert_eq!(t.cum_ack(), 1000);
        assert_eq!(t.out_of_order_count(), 0);
    }

    #[test]
    fn sparse_far_ahead_sequence() {
        let mut t = OooTracker::new();
        t.record(1000);
        assert_eq!(t.cum_ack(), 0);
        assert!(t.contains(1000));
        assert!(!t.contains(999));
        assert_eq!(t.out_of_order_count(), 1);
    }
}
