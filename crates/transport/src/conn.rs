//! Per-connection sender and receiver state machines.
//!
//! A connection is one `(source host, destination host)` pair carrying a
//! stream of application messages. The sender owns the load balancer, the
//! congestion controller, the in-flight table and the retransmission state;
//! the receiver owns the out-of-order tracker and the ACK coalescer.

use std::collections::VecDeque;

use netsim::engine::Ctx;
use netsim::hash::FxHashMap;
use netsim::ids::{ConnId, FlowId, HostId};
use netsim::packet::{Ack, Body, EchoList, EvEcho, Packet, SeqList};
use netsim::stats::FlowRecord;
use netsim::time::Time;
use netsim::trace::{TraceEvent, TraceSink};
use reps::lb::{AckFeedback, LoadBalancer};

use crate::cc::{Cc, CongestionControl};
use crate::config::{CoalesceVariant, TransportConfig};
use crate::sack::OooTracker;

/// One queued/active application message at the sender.
#[derive(Debug, Clone)]
pub struct MsgState {
    /// Flow id reported in the completion record.
    pub flow: FlowId,
    /// Workload tag (carried on the wire for receive-side triggers).
    pub tag: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Total packets.
    pub pkts: u32,
    /// Next packet index to transmit for the first time.
    pub next_pkt: u32,
    /// Packets acknowledged so far.
    pub acked: u32,
    /// Enqueue instant (FCT measurement origin).
    pub enqueued_at: Time,
    /// First sequence number of the message in the connection space.
    pub base_seq: u64,
    /// Set once the completion record was emitted.
    pub completed: bool,
}

/// Metadata for one unacknowledged packet.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    sent_at: Time,
    msg: u32,
    msg_seq: u32,
    payload: u32,
    ev: u16,
    retx: bool,
}

/// Metadata retained for packets declared lost (pending retransmission).
#[derive(Debug, Clone, Copy)]
struct LostPkt {
    msg: u32,
    msg_seq: u32,
    payload: u32,
}

/// The sending half of a connection.
pub struct SenderConn {
    /// Connection id carried in packet headers.
    pub conn: ConnId,
    /// Peer host.
    pub dst: HostId,
    /// Path selector.
    pub lb: Box<dyn LoadBalancer>,
    /// Window/credit controller.
    pub cc: Cc,
    msgs: Vec<MsgState>,
    /// Index of the first message with unsent packets.
    cursor: usize,
    inflight: FxHashMap<u64, Inflight>,
    inflight_bytes: u64,
    lost: FxHashMap<u64, LostPkt>,
    retx_queue: VecDeque<u64>,
    /// Every sequence the receiver confirmed, independent of whether the
    /// confirmation raced a timeout (prevents crediting a packet twice or —
    /// worse — never, when an ACK overtakes its own loss declaration).
    acked: OooTracker,
    /// Reused per-ACK buffer of newly confirmed sequences (capacity
    /// retained, so the per-packet ACK path stays allocation-free).
    newly_acked: Vec<u64>,
    next_seq: u64,
    srtt: Time,
    /// Total retransmissions (instrumentation + flow records).
    pub total_retx: u64,
    /// Bytes not yet transmitted for the first time.
    unsent_bytes: u64,
    mtu: u32,
}

/// Everything the caller learns from feeding an ACK to the sender.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Completion records to report (messages fully acknowledged).
    pub completed: Vec<FlowRecord>,
    /// Tags of the completed messages (sender-side chaining).
    pub completed_tags: Vec<u64>,
}

impl SenderConn {
    /// Creates a sender for `dst`.
    pub fn new(
        conn: ConnId,
        dst: HostId,
        lb: Box<dyn LoadBalancer>,
        cc: Cc,
        cfg: &TransportConfig,
    ) -> SenderConn {
        SenderConn {
            conn,
            dst,
            lb,
            cc,
            msgs: Vec::new(),
            cursor: 0,
            inflight: FxHashMap::default(),
            inflight_bytes: 0,
            lost: FxHashMap::default(),
            retx_queue: VecDeque::new(),
            acked: OooTracker::new(),
            newly_acked: Vec::new(),
            next_seq: 0,
            srtt: cfg.base_rtt,
            total_retx: 0,
            unsent_bytes: 0,
            mtu: cfg.mtu,
        }
    }

    /// Enqueues a message; call [`SenderConn::pump`] afterwards.
    pub fn enqueue(&mut self, flow: FlowId, tag: u64, bytes: u64, now: Time) {
        let pkts = bytes.div_ceil(self.mtu as u64).max(1) as u32;
        let base_seq = self.next_seq;
        self.next_seq += pkts as u64;
        self.unsent_bytes += bytes;
        self.msgs.push(MsgState {
            flow,
            tag,
            bytes,
            pkts,
            next_pkt: 0,
            acked: 0,
            enqueued_at: now,
            base_seq,
            completed: false,
        });
    }

    /// Bytes enqueued but not yet transmitted (EQDS demand hint).
    pub fn pending_bytes(&self) -> u64 {
        self.unsent_bytes
    }

    /// True when nothing remains to send or await.
    pub fn idle(&self) -> bool {
        self.inflight.is_empty()
            && self.retx_queue.is_empty()
            && self.msgs.iter().all(|m| m.completed)
    }

    /// Current smoothed RTT estimate.
    pub fn srtt(&self) -> Time {
        self.srtt
    }

    /// Oldest in-flight transmission time, for RTO sweeps.
    pub fn oldest_inflight(&self) -> Option<Time> {
        self.inflight.values().map(|i| i.sent_at).min()
    }

    /// The payload size of message packet `msg_seq` (last one may be short).
    fn payload_of(&self, msg: &MsgState, msg_seq: u32) -> u32 {
        let full = self.mtu as u64;
        let offset = msg_seq as u64 * full;
        (msg.bytes - offset).min(full) as u32
    }

    /// Transmits as much as the window/credits allow.
    pub fn pump<S: TraceSink>(&mut self, ctx: &mut Ctx<'_, S>) {
        loop {
            // Pick what to send: retransmissions first.
            let (seq, msg_idx, msg_seq, payload, retx) = if let Some(&seq) = self.retx_queue.front()
            {
                match self.lost.get(&seq) {
                    Some(l) => (seq, l.msg, l.msg_seq, l.payload, true),
                    None => {
                        // Stale entry (acked since): drop and continue.
                        self.retx_queue.pop_front();
                        continue;
                    }
                }
            } else {
                // Advance the cursor past fully-sent messages.
                while self.cursor < self.msgs.len()
                    && self.msgs[self.cursor].next_pkt >= self.msgs[self.cursor].pkts
                {
                    self.cursor += 1;
                }
                if self.cursor >= self.msgs.len() {
                    break;
                }
                let msg = &self.msgs[self.cursor];
                let msg_seq = msg.next_pkt;
                let payload = self.payload_of(msg, msg_seq);
                (
                    msg.base_seq + msg_seq as u64,
                    self.cursor as u32,
                    msg_seq,
                    payload,
                    false,
                )
            };

            // Admission: credits (EQDS) or window (everything else).
            let admitted = match self.cc.as_eqds_mut() {
                Some(eqds) => eqds.consume(payload as u64),
                None => self.inflight_bytes + payload as u64 <= self.cc.cwnd(),
            };
            if !admitted {
                break;
            }

            // Commit the choice.
            if retx {
                self.retx_queue.pop_front();
                self.lost.remove(&seq);
                self.total_retx += 1;
                ctx.note_retransmission();
            } else {
                self.msgs[self.cursor].next_pkt += 1;
                self.unsent_bytes -= payload as u64;
            }

            // The freeze-state probes and the event build live behind
            // `enabled()`: with `NoTrace` the whole block (including the
            // virtual `is_frozen` calls) folds away, keeping the untraced
            // send path identical to the pre-trace one.
            let frozen_before = ctx.trace.enabled() && self.lb.is_frozen();
            let ev = self.lb.next_ev(ctx.now, ctx.rng);
            if ctx.trace.enabled() {
                let frozen = self.lb.is_frozen();
                if frozen != frozen_before {
                    // `next_ev` itself can freeze (forced freezing) or thaw
                    // (send-path freezing expiry).
                    let transition = if frozen {
                        TraceEvent::Freeze {
                            at: ctx.now,
                            host: ctx.host,
                            conn: self.conn.0,
                        }
                    } else {
                        TraceEvent::Thaw {
                            at: ctx.now,
                            host: ctx.host,
                            conn: self.conn.0,
                        }
                    };
                    ctx.trace.emit(transition);
                }
                ctx.trace.emit(TraceEvent::EvChoice {
                    at: ctx.now,
                    host: ctx.host,
                    conn: self.conn.0,
                    ev,
                    decision: self.lb.last_decision(),
                    frozen,
                });
                if retx {
                    ctx.trace.emit(TraceEvent::Retransmit {
                        at: ctx.now,
                        host: ctx.host,
                        conn: self.conn.0,
                        seq,
                        ev,
                    });
                }
            }
            let msg_state = &self.msgs[msg_idx as usize];
            let pkt = Packet {
                id: ctx.fresh_packet_id(),
                src: ctx.host,
                dst: self.dst,
                conn: self.conn,
                ev,
                wire_bytes: payload + netsim::packet::HEADER_BYTES,
                ecn_ce: false,
                trimmed: false,
                body: Body::Data {
                    seq,
                    msg: msg_idx,
                    msg_seq,
                    msg_pkts: msg_state.pkts,
                    tag: msg_state.tag,
                    payload,
                    retx,
                    pending: self.unsent_bytes,
                },
            };
            self.inflight.insert(
                seq,
                Inflight {
                    sent_at: ctx.now,
                    msg: msg_idx,
                    msg_seq,
                    payload,
                    ev,
                    retx,
                },
            );
            self.inflight_bytes += payload as u64;
            ctx.send(pkt);
        }
    }

    /// The message owning connection sequence `seq`.
    fn msg_of_seq(&self, seq: u64) -> usize {
        // Messages are appended with increasing `base_seq`.
        self.msgs.partition_point(|m| m.base_seq <= seq) - 1
    }

    /// Processes an ACK; returns any completed messages.
    pub fn on_ack<S: TraceSink>(&mut self, ack: &Ack, ctx: &mut Ctx<'_, S>) -> AckOutcome {
        let now = ctx.now;
        let mut outcome = AckOutcome::default();
        let mut newly_acked = std::mem::take(&mut self.newly_acked);
        newly_acked.clear();

        // Record every confirmed sequence exactly once, whether it is still
        // in flight, already declared lost, or long since retired.
        for &seq in &ack.sacked {
            if self.acked.record(seq) {
                newly_acked.push(seq);
            }
        }
        // The cumulative prefix confirms everything below it. The tracker's
        // frontier bit can never be already set, so this loop always makes
        // progress.
        while self.acked.cum_ack() < ack.cum_ack {
            let frontier = self.acked.cum_ack();
            if self.acked.record(frontier) {
                newly_acked.push(frontier);
            }
        }

        let mut acked_bytes = 0u64;
        for &seq in &newly_acked {
            // Cancel any pending retransmission.
            self.lost.remove(&seq);
            let msg_idx = self.msg_of_seq(seq);
            if let Some(info) = self.inflight.remove(&seq) {
                self.inflight_bytes -= info.payload as u64;
                acked_bytes += info.payload as u64;
                // RTT sample (Karn's rule: skip retransmissions).
                if !info.retx {
                    let sample = now.saturating_sub(info.sent_at);
                    // srtt = 7/8 srtt + 1/8 sample.
                    self.srtt = Time((self.srtt.as_ps() * 7 + sample.as_ps()) / 8);
                }
            }
            let msg = &mut self.msgs[msg_idx];
            msg.acked += 1;
            if msg.acked >= msg.pkts && !msg.completed {
                msg.completed = true;
                outcome.completed.push(FlowRecord {
                    flow: msg.flow,
                    src: ctx.host,
                    dst: self.dst,
                    bytes: msg.bytes,
                    start: msg.enqueued_at,
                    end: now,
                    retransmissions: self.total_retx,
                });
                outcome.completed_tags.push(msg.tag);
            }
        }

        self.newly_acked = newly_acked;

        // Congestion control sees the aggregate covering information.
        self.cc
            .on_ack(acked_bytes, ack.covered, ack.marked, self.srtt, now);

        // Load-balancer feedback, entropy by entropy.
        let cwnd_packets = (self.cc.cwnd() / self.mtu.max(1) as u64).max(1) as u32;
        let frozen_before = ctx.trace.enabled() && self.lb.is_frozen();
        for echo in &ack.echoes {
            let fb = AckFeedback {
                ev: echo.ev,
                ecn: echo.ecn,
                now,
                cwnd_packets,
                rtt: self.srtt,
            };
            for _ in 0..ack.reuse.max(1) {
                self.lb.on_ack(&fb, ctx.rng);
            }
        }
        // ACK feedback can only thaw (freezing-window expiry, §3.2).
        if frozen_before && !self.lb.is_frozen() {
            ctx.trace.emit(TraceEvent::Thaw {
                at: now,
                host: ctx.host,
                conn: self.conn.0,
            });
        }

        self.pump(ctx);
        outcome
    }

    /// Handles a trimming NACK for `seq` (congestion loss, not failure).
    pub fn on_nack<S: TraceSink>(&mut self, seq: u64, ctx: &mut Ctx<'_, S>) {
        if let Some(info) = self.inflight.remove(&seq) {
            self.inflight_bytes -= info.payload as u64;
            self.lost.insert(
                seq,
                LostPkt {
                    msg: info.msg,
                    msg_seq: info.msg_seq,
                    payload: info.payload,
                },
            );
            self.retx_queue.push_front(seq);
            self.cc.on_trim(ctx.now);
            self.lb.on_congestion_loss(info.ev, ctx.now);
        }
        self.pump(ctx);
    }

    /// Declares every packet older than `rto` lost. Returns the number of
    /// packets declared lost (0 = no timeout fired).
    pub fn check_timeouts<S: TraceSink>(&mut self, rto: Time, ctx: &mut Ctx<'_, S>) -> usize {
        let now = ctx.now;
        let mut expired: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, i)| now.saturating_sub(i.sent_at) >= rto)
            .map(|(&s, _)| s)
            .collect();
        if expired.is_empty() {
            return 0;
        }
        // The map iterates in hash order, which varies between processes;
        // the retransmission queue (and with it every subsequent EV draw)
        // must not.
        expired.sort_unstable();
        for &seq in &expired {
            let info = self.inflight.remove(&seq).expect("listed");
            self.inflight_bytes -= info.payload as u64;
            self.lost.insert(
                seq,
                LostPkt {
                    msg: info.msg,
                    msg_seq: info.msg_seq,
                    payload: info.payload,
                },
            );
            self.retx_queue.push_back(seq);
            self.cc.on_loss(now);
        }
        // One failure-suspicion signal per timeout event (Algorithm 1).
        let frozen_before = ctx.trace.enabled() && self.lb.is_frozen();
        self.lb.on_timeout(now);
        if ctx.trace.enabled() {
            ctx.trace.emit(TraceEvent::Timeout {
                at: now,
                host: ctx.host,
                conn: self.conn.0,
                expired: expired.len() as u32,
            });
            if !frozen_before && self.lb.is_frozen() {
                ctx.trace.emit(TraceEvent::Freeze {
                    at: now,
                    host: ctx.host,
                    conn: self.conn.0,
                });
            }
        }
        ctx.note_timeout();
        self.pump(ctx);
        expired.len()
    }
}

/// The receiving half of a connection.
pub struct ReceiverConn {
    /// Peer (sending) host.
    pub peer: HostId,
    /// Connection id (mirrored from the sender).
    pub conn: ConnId,
    tracker: OooTracker,
    msgs: FxHashMap<u32, (u32, u32)>, // msg -> (received, total)
    ratio: u32,
    variant: CoalesceVariant,
    pend_echoes: Vec<EvEcho>,
    pend_sacked: Vec<u64>,
    pend_covered: u32,
    pend_marked: u32,
    /// Time of the oldest un-flushed observation.
    pend_since: Time,
    /// Sender's advertised unsent bytes (EQDS demand).
    pub demand_bytes: u64,
}

/// Result of receiving one data packet.
#[derive(Debug, Default)]
pub struct RecvOutcome {
    /// An ACK to send back, if the coalescing policy released one.
    pub ack: Option<Ack>,
    /// Tag of a message that just became fully received.
    pub completed_tag: Option<u64>,
    /// An immediate NACK for a trimmed packet.
    pub nack_seq: Option<u64>,
}

impl ReceiverConn {
    /// Creates a receiver for traffic from `peer`.
    pub fn new(peer: HostId, conn: ConnId, cfg: &TransportConfig) -> ReceiverConn {
        ReceiverConn {
            peer,
            conn,
            tracker: OooTracker::new(),
            msgs: FxHashMap::default(),
            ratio: cfg.coalesce.ratio,
            variant: cfg.coalesce.variant,
            pend_echoes: Vec::new(),
            pend_sacked: Vec::new(),
            pend_covered: 0,
            pend_marked: 0,
            pend_since: Time::ZERO,
            demand_bytes: 0,
        }
    }

    /// Ingests one data packet.
    pub fn on_data(&mut self, pkt: &Packet, now: Time) -> RecvOutcome {
        let mut out = RecvOutcome::default();
        let Body::Data {
            seq,
            msg,
            msg_pkts,
            tag,
            pending,
            ..
        } = pkt.body
        else {
            return out;
        };
        self.demand_bytes = pending;

        if pkt.trimmed {
            // Payload lost in the fabric: NACK right away so the sender can
            // retransmit without waiting for the RTO (Appendix A).
            out.nack_seq = Some(seq);
            return out;
        }

        let new = self.tracker.record(seq);
        if new {
            let entry = self.msgs.entry(msg).or_insert((0, msg_pkts));
            entry.0 += 1;
            if entry.0 == entry.1 {
                out.completed_tag = Some(tag);
            }
            self.pend_covered += 1;
            if pkt.ecn_ce {
                self.pend_marked += 1;
            }
        }
        if self.pend_covered == 1 && self.pend_sacked.is_empty() {
            self.pend_since = now;
        }
        // Echo and SACK even duplicates: the sender needs them to converge.
        self.pend_sacked.push(seq);
        self.pend_echoes.push(EvEcho {
            ev: pkt.ev,
            ecn: pkt.ecn_ce,
        });

        let flush_now = self.pend_covered >= self.ratio
            || out.completed_tag.is_some()
            || self.pend_sacked.len() >= (2 * self.ratio as usize).max(8);
        if flush_now {
            out.ack = self.flush();
        }
        out
    }

    /// Builds the pending ACK, if any observations are waiting.
    pub fn flush(&mut self) -> Option<Ack> {
        if self.pend_sacked.is_empty() {
            return None;
        }
        // The pending buffers are connection-owned and only *copied from*:
        // they keep their capacity across flushes, and the outgoing lists
        // store their elements inline ([`netsim::packet::SmallList`]) —
        // per-packet ACKs, the steady-state hot path, leave here with zero
        // heap allocations; only wide coalesced batches spill.
        let echoes = match self.variant {
            CoalesceVariant::Plain | CoalesceVariant::ReuseEvs => {
                EchoList::one(*self.pend_echoes.last().expect("non-empty"))
            }
            CoalesceVariant::CarryEvs => EchoList::from_slice(&self.pend_echoes),
        };
        let ack = Ack {
            cum_ack: self.tracker.cum_ack(),
            sacked: SeqList::from_slice(&self.pend_sacked),
            echoes,
            covered: self.pend_covered,
            marked: self.pend_marked,
            reuse: match self.variant {
                CoalesceVariant::ReuseEvs => self.ratio,
                _ => 1,
            },
        };
        self.pend_sacked.clear();
        self.pend_echoes.clear();
        self.pend_covered = 0;
        self.pend_marked = 0;
        Some(ack)
    }

    /// Flushes if observations have been pending since before `cutoff`
    /// (the endpoint's delayed-ACK sweep).
    pub fn flush_stale(&mut self, cutoff: Time) -> Option<Ack> {
        if !self.pend_sacked.is_empty() && self.pend_since <= cutoff {
            self.flush()
        } else {
            None
        }
    }

    /// Receiver-side reorder degree (diagnostics).
    pub fn out_of_order_count(&self) -> u32 {
        self.tracker.out_of_order_count()
    }
}

impl SenderConn {
    /// Current congestion window in bytes (instrumentation).
    pub fn cwnd_bytes(&self) -> u64 {
        use crate::cc::CongestionControl;
        self.cc.cwnd()
    }

    /// Bytes currently in flight (instrumentation).
    pub fn inflight_bytes(&self) -> u64 {
        self.inflight_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{CcKind, CcParams};
    use baselines::kind::LbKind;
    use netsim::config::SimConfig;

    fn test_cfg() -> TransportConfig {
        TransportConfig::from_sim(
            &SimConfig::paper_default(),
            4,
            LbKind::Ops { evs_size: 1 << 16 },
        )
    }

    fn recv_data(rx: &mut ReceiverConn, seq: u64, total: u32, ecn: bool, now: Time) -> RecvOutcome {
        let pkt = Packet {
            id: seq,
            src: rx.peer,
            dst: HostId(1),
            conn: rx.conn,
            ev: (seq % 65_536) as u16,
            wire_bytes: 4096 + netsim::packet::HEADER_BYTES,
            ecn_ce: ecn,
            trimmed: false,
            body: Body::Data {
                seq,
                msg: 0,
                msg_seq: seq as u32,
                msg_pkts: total,
                tag: 9,
                payload: 4096,
                retx: false,
                pending: 0,
            },
        };
        rx.on_data(&pkt, now)
    }

    #[test]
    fn receiver_acks_every_packet_at_ratio_1() {
        let cfg = test_cfg();
        let mut rx = ReceiverConn::new(HostId(0), ConnId(0), &cfg);
        for seq in 0..5 {
            let out = recv_data(&mut rx, seq, 100, false, Time::from_us(seq));
            let ack = out.ack.expect("per-packet ACK");
            assert_eq!(ack.covered, 1);
            assert_eq!(ack.sacked.as_slice(), &[seq]);
            assert_eq!(ack.cum_ack, seq + 1);
            assert_eq!(ack.echoes.len(), 1);
            assert_eq!(ack.reuse, 1);
        }
    }

    #[test]
    fn receiver_coalesces_at_ratio_4() {
        let mut cfg = test_cfg();
        cfg.coalesce = crate::config::CoalesceConfig::ratio(4, CoalesceVariant::Plain);
        let mut rx = ReceiverConn::new(HostId(0), ConnId(0), &cfg);
        for seq in 0..3 {
            assert!(recv_data(&mut rx, seq, 100, false, Time::from_us(seq))
                .ack
                .is_none());
        }
        let out = recv_data(&mut rx, 3, 100, true, Time::from_us(3));
        let ack = out.ack.expect("4th packet releases the ACK");
        assert_eq!(ack.covered, 4);
        assert_eq!(ack.marked, 1);
        assert_eq!(ack.echoes.len(), 1, "plain coalescing echoes the newest EV");
    }

    #[test]
    fn carry_evs_returns_all_echoes() {
        let mut cfg = test_cfg();
        cfg.coalesce = crate::config::CoalesceConfig::ratio(4, CoalesceVariant::CarryEvs);
        let mut rx = ReceiverConn::new(HostId(0), ConnId(0), &cfg);
        for seq in 0..3 {
            recv_data(&mut rx, seq, 100, false, Time::from_us(seq));
        }
        let ack = recv_data(&mut rx, 3, 100, false, Time::from_us(3))
            .ack
            .expect("ack");
        assert_eq!(ack.echoes.len(), 4);
        assert_eq!(ack.reuse, 1);
    }

    #[test]
    fn reuse_evs_sets_reuse_count() {
        let mut cfg = test_cfg();
        cfg.coalesce = crate::config::CoalesceConfig::ratio(8, CoalesceVariant::ReuseEvs);
        let mut rx = ReceiverConn::new(HostId(0), ConnId(0), &cfg);
        for seq in 0..7 {
            recv_data(&mut rx, seq, 100, false, Time::from_us(seq));
        }
        let ack = recv_data(&mut rx, 7, 100, false, Time::from_us(7))
            .ack
            .expect("ack");
        assert_eq!(ack.echoes.len(), 1);
        assert_eq!(ack.reuse, 8);
    }

    #[test]
    fn message_completion_flushes_and_reports_tag() {
        let mut cfg = test_cfg();
        cfg.coalesce = crate::config::CoalesceConfig::ratio(16, CoalesceVariant::Plain);
        let mut rx = ReceiverConn::new(HostId(0), ConnId(0), &cfg);
        let mut tag = None;
        for seq in 0..3 {
            let out = recv_data(&mut rx, seq, 3, false, Time::from_us(seq));
            if out.completed_tag.is_some() {
                tag = out.completed_tag;
                assert!(out.ack.is_some(), "completion must flush the ACK");
            }
        }
        assert_eq!(tag, Some(9));
    }

    #[test]
    fn trimmed_packets_nack_without_recording() {
        let cfg = test_cfg();
        let mut rx = ReceiverConn::new(HostId(0), ConnId(0), &cfg);
        let mut pkt = Packet {
            id: 0,
            src: HostId(0),
            dst: HostId(1),
            conn: ConnId(0),
            ev: 5,
            wire_bytes: 4096 + netsim::packet::HEADER_BYTES,
            ecn_ce: false,
            trimmed: false,
            body: Body::Data {
                seq: 0,
                msg: 0,
                msg_seq: 0,
                msg_pkts: 10,
                tag: 0,
                payload: 4096,
                retx: false,
                pending: 0,
            },
        };
        pkt.trim();
        let out = rx.on_data(&pkt, Time::from_us(1));
        assert_eq!(out.nack_seq, Some(0));
        assert!(out.ack.is_none());
        assert_eq!(rx.tracker.cum_ack(), 0, "trimmed payload is not received");
    }

    #[test]
    fn stale_flush_releases_partial_batch() {
        let mut cfg = test_cfg();
        cfg.coalesce = crate::config::CoalesceConfig::ratio(16, CoalesceVariant::Plain);
        let mut rx = ReceiverConn::new(HostId(0), ConnId(0), &cfg);
        recv_data(&mut rx, 0, 100, false, Time::from_us(10));
        assert!(rx.flush_stale(Time::from_us(5)).is_none(), "not stale yet");
        let ack = rx.flush_stale(Time::from_us(10)).expect("stale now");
        assert_eq!(ack.covered, 1);
    }

    /// Builds a sender wired to a stub Ctx through a real engine; simpler to
    /// exercise the sender through endpoint-level tests, so here we test the
    /// pure parts only.
    #[test]
    fn sender_message_packetization() {
        let cfg = test_cfg();
        let lb = cfg.lb.build(&mut netsim::rng::Rng64::new(1));
        let cc = Cc::build(CcKind::Dctcp, CcParams::for_bdp(400_000, 4096));
        let mut tx = SenderConn::new(ConnId(0), HostId(1), lb, cc, &cfg);
        tx.enqueue(FlowId(0), 1, 10_000, Time::ZERO);
        // 10 KB at 4 KiB MTU = 3 packets (4096 + 4096 + 1808).
        assert_eq!(tx.msgs[0].pkts, 3);
        assert_eq!(tx.pending_bytes(), 10_000);
        tx.enqueue(FlowId(1), 2, 1, Time::ZERO);
        assert_eq!(tx.msgs[1].pkts, 1, "tiny message still takes one packet");
        assert_eq!(tx.msgs[1].base_seq, 3);
        assert!(!tx.idle());
    }
}
