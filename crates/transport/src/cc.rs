//! Congestion-control algorithms (§4.1, §4.5.3).
//!
//! The paper pairs REPS with three controllers:
//!
//! * a **DCTCP variant** with per-ACK window updates, as used by MPRDMA —
//!   additive increase on clean ACKs, per-mark decrease, one-MTU reduction
//!   on packet drops;
//! * **EQDS**, a receiver-driven credit scheme (the sender side here; the
//!   receiver pacer lives in the endpoint);
//! * an **"internal"** proprietary algorithm described only as ECN +
//!   congestion-notification + per-flow windows — reproduced as a DCQCN-like
//!   controller with multiplicative decrease and staged recovery.
//!
//! All controllers work in *bytes* and never react to out-of-order delivery,
//! the paper's prerequisite for packet spraying.

use netsim::time::Time;

/// Selects a congestion-control algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcKind {
    /// Per-ACK DCTCP variant (the evaluation default).
    #[default]
    Dctcp,
    /// Receiver-driven credits (EQDS-like).
    Eqds,
    /// DCQCN-like "internal" controller.
    Internal,
}

impl CcKind {
    /// Display label matching the paper's Fig. 15 legend.
    pub fn label(&self) -> &'static str {
        match self {
            CcKind::Dctcp => "DCTCP",
            CcKind::Eqds => "EQDS",
            CcKind::Internal => "INTERNAL",
        }
    }
}

/// Window/credit bounds shared by the controllers.
#[derive(Debug, Clone, Copy)]
pub struct CcParams {
    /// MTU in bytes (window quantum).
    pub mtu: u64,
    /// Initial window (one BDP in the paper's setup).
    pub init_cwnd: u64,
    /// Ceiling for the window.
    pub max_cwnd: u64,
    /// Floor for the window.
    pub min_cwnd: u64,
}

impl CcParams {
    /// Reasonable parameters for a path of `bdp` bytes and `mtu`-byte MTU.
    pub fn for_bdp(bdp: u64, mtu: u64) -> CcParams {
        CcParams {
            mtu,
            init_cwnd: bdp.max(mtu),
            max_cwnd: (bdp * 3 / 2).max(4 * mtu),
            min_cwnd: mtu,
        }
    }
}

/// A per-connection congestion controller.
pub trait CongestionControl {
    /// Current window in bytes.
    fn cwnd(&self) -> u64;

    /// Processes an ACK covering `covered` packets, `marked` of them
    /// ECN-marked, acknowledging `bytes` new bytes.
    fn on_ack(&mut self, bytes: u64, covered: u32, marked: u32, rtt: Time, now: Time);

    /// A packet was declared lost by timeout.
    fn on_loss(&mut self, now: Time);

    /// A packet was trimmed in the fabric (congestion loss, fast-signalled).
    fn on_trim(&mut self, now: Time);

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// Per-ACK DCTCP variant used by MPRDMA (§4.1).
///
/// Clean ACK: `cwnd += mtu*mtu/cwnd` per covered packet (≈ one MTU per RTT
/// at full utilization). Marked ACK: `cwnd -= mtu/2` per marked packet, but
/// — as in DCTCP, whose per-RTT multiplicative decrease is bounded by
/// `α ≤ 1` — the total decrease within one RTT is capped at half the window
/// the RTT started with. Drop: `cwnd -= mtu`.
#[derive(Debug, Clone)]
pub struct DctcpCc {
    params: CcParams,
    cwnd: f64,
    /// Start of the current decrease-accounting window.
    window_start: Time,
    /// Decrease budget remaining within this RTT.
    decrease_budget: f64,
    /// Exponential growth until the first congestion signal.
    slow_start: bool,
}

impl DctcpCc {
    /// Creates the controller.
    pub fn new(params: CcParams) -> DctcpCc {
        DctcpCc {
            cwnd: params.init_cwnd as f64,
            window_start: Time::ZERO,
            decrease_budget: params.init_cwnd as f64 / 2.0,
            slow_start: true,
            params,
        }
    }

    fn roll_window(&mut self, rtt: Time, now: Time) {
        if now.saturating_sub(self.window_start) >= rtt {
            self.window_start = now;
            self.decrease_budget = self.cwnd / 2.0;
        }
    }
}

impl CongestionControl for DctcpCc {
    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn on_ack(&mut self, _bytes: u64, covered: u32, marked: u32, rtt: Time, now: Time) {
        self.roll_window(rtt, now);
        let mtu = self.params.mtu as f64;
        let clean = covered.saturating_sub(marked);
        if marked > 0 {
            self.slow_start = false;
        }
        if self.slow_start {
            // Exponential probing until the first congestion signal.
            self.cwnd += clean as f64 * mtu;
        } else {
            self.cwnd += clean as f64 * mtu * mtu / self.cwnd;
        }
        let decrease = (marked as f64 * mtu / 2.0).min(self.decrease_budget);
        self.decrease_budget -= decrease;
        self.cwnd -= decrease;
        self.cwnd = self
            .cwnd
            .clamp(self.params.min_cwnd as f64, self.params.max_cwnd as f64);
    }

    fn on_loss(&mut self, _now: Time) {
        self.slow_start = false;
        self.cwnd = (self.cwnd - self.params.mtu as f64).max(self.params.min_cwnd as f64);
    }

    fn on_trim(&mut self, now: Time) {
        self.on_loss(now);
    }

    fn name(&self) -> &'static str {
        "DCTCP"
    }
}

/// Sender half of the EQDS-like receiver-driven controller.
///
/// The "window" is a speculative allowance of one BDP; beyond it the sender
/// transmits only against credits granted by the receiver pacer (see
/// `endpoint::HostEndpoint`). Congestion signals barely matter to the sender
/// because the receiver controls the inflow; drops still shrink the
/// speculative allowance to be safe.
#[derive(Debug, Clone)]
pub struct EqdsCc {
    params: CcParams,
    /// Unsolicited (speculative) allowance remaining.
    speculative: u64,
    /// Credits granted by the receiver, in bytes.
    credits: u64,
}

impl EqdsCc {
    /// Creates the controller with one BDP of speculative allowance.
    pub fn new(params: CcParams) -> EqdsCc {
        EqdsCc {
            speculative: params.init_cwnd,
            credits: 0,
            params,
        }
    }

    /// Adds receiver-granted credit.
    pub fn grant(&mut self, bytes: u64) {
        self.credits = self.credits.saturating_add(bytes);
    }

    /// Consumes allowance for one outgoing packet, spending granted credits
    /// before the speculative budget (splitting across both if needed);
    /// returns `false` when the packet may not be sent yet.
    pub fn consume(&mut self, bytes: u64) -> bool {
        if self.credits + self.speculative < bytes {
            return false;
        }
        let from_credits = self.credits.min(bytes);
        self.credits -= from_credits;
        self.speculative -= bytes - from_credits;
        true
    }

    /// Bytes currently spendable.
    pub fn available(&self) -> u64 {
        self.credits + self.speculative
    }
}

impl CongestionControl for EqdsCc {
    fn cwnd(&self) -> u64 {
        // For window-style gating the EQDS sender exposes its spendable
        // allowance; the endpoint additionally gates sends via `consume`.
        self.params.max_cwnd
    }

    fn on_ack(&mut self, _bytes: u64, _covered: u32, _marked: u32, _rtt: Time, _now: Time) {
        // Receiver-driven: ACKs do not change the sender allowance.
    }

    fn on_loss(&mut self, _now: Time) {
        self.speculative = self.speculative.saturating_sub(self.params.mtu);
    }

    fn on_trim(&mut self, now: Time) {
        self.on_loss(now);
    }

    fn name(&self) -> &'static str {
        "EQDS"
    }
}

/// DCQCN-like "internal" controller (§4.5.3).
///
/// Marked ACKs trigger a multiplicative decrease (at most once per RTT,
/// mimicking CNP pacing); clean traffic recovers additively, with a faster
/// "hyper-increase" stage once five clean RTTs accumulate.
#[derive(Debug, Clone)]
pub struct InternalCc {
    params: CcParams,
    cwnd: f64,
    last_decrease: Time,
    clean_rtts: u32,
    rtt_mark: Time,
}

impl InternalCc {
    /// Creates the controller.
    pub fn new(params: CcParams) -> InternalCc {
        InternalCc {
            cwnd: params.init_cwnd as f64,
            params,
            last_decrease: Time::ZERO,
            clean_rtts: 0,
            rtt_mark: Time::ZERO,
        }
    }
}

impl CongestionControl for InternalCc {
    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn on_ack(&mut self, _bytes: u64, covered: u32, marked: u32, rtt: Time, now: Time) {
        let mtu = self.params.mtu as f64;
        if marked > 0 {
            // CNP-style: decrease by 1/8, rate-limited to once per RTT.
            if now.saturating_sub(self.last_decrease) >= rtt {
                self.cwnd *= 0.875;
                self.last_decrease = now;
            }
            self.clean_rtts = 0;
            self.rtt_mark = now;
        } else {
            // Track clean RTT rounds for the recovery stage.
            if now.saturating_sub(self.rtt_mark) >= rtt {
                self.clean_rtts = self.clean_rtts.saturating_add(1);
                self.rtt_mark = now;
            }
            let aggressiveness = if self.clean_rtts >= 5 { 4.0 } else { 1.0 };
            self.cwnd += aggressiveness * covered as f64 * mtu * mtu / self.cwnd;
        }
        self.cwnd = self
            .cwnd
            .clamp(self.params.min_cwnd as f64, self.params.max_cwnd as f64);
    }

    fn on_loss(&mut self, now: Time) {
        self.cwnd = (self.cwnd * 0.5).max(self.params.min_cwnd as f64);
        self.last_decrease = now;
        self.clean_rtts = 0;
    }

    fn on_trim(&mut self, now: Time) {
        self.cwnd = (self.cwnd * 0.875).max(self.params.min_cwnd as f64);
        self.last_decrease = now;
        self.clean_rtts = 0;
    }

    fn name(&self) -> &'static str {
        "INTERNAL"
    }
}

/// Builds a controller of the given kind.
pub fn build_cc(kind: CcKind, params: CcParams) -> Box<dyn CongestionControl> {
    match kind {
        CcKind::Dctcp => Box::new(DctcpCc::new(params)),
        CcKind::Eqds => Box::new(EqdsCc::new(params)),
        CcKind::Internal => Box::new(InternalCc::new(params)),
    }
}

/// Concrete controller dispatch.
///
/// The sender stores this enum rather than a trait object so the endpoint
/// can reach EQDS-specific operations ([`EqdsCc::grant`]/[`EqdsCc::consume`])
/// without downcasting.
#[derive(Debug, Clone)]
pub enum Cc {
    /// Per-ACK DCTCP variant.
    Dctcp(DctcpCc),
    /// Receiver-driven EQDS sender half.
    Eqds(EqdsCc),
    /// DCQCN-like internal controller.
    Internal(InternalCc),
}

impl Cc {
    /// Builds a controller of the given kind.
    pub fn build(kind: CcKind, params: CcParams) -> Cc {
        match kind {
            CcKind::Dctcp => Cc::Dctcp(DctcpCc::new(params)),
            CcKind::Eqds => Cc::Eqds(EqdsCc::new(params)),
            CcKind::Internal => Cc::Internal(InternalCc::new(params)),
        }
    }

    /// The EQDS controller, when receiver-driven mode is active.
    pub fn as_eqds_mut(&mut self) -> Option<&mut EqdsCc> {
        match self {
            Cc::Eqds(e) => Some(e),
            _ => None,
        }
    }

    fn inner(&self) -> &dyn CongestionControl {
        match self {
            Cc::Dctcp(c) => c,
            Cc::Eqds(c) => c,
            Cc::Internal(c) => c,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn CongestionControl {
        match self {
            Cc::Dctcp(c) => c,
            Cc::Eqds(c) => c,
            Cc::Internal(c) => c,
        }
    }
}

impl CongestionControl for Cc {
    fn cwnd(&self) -> u64 {
        self.inner().cwnd()
    }

    fn on_ack(&mut self, bytes: u64, covered: u32, marked: u32, rtt: Time, now: Time) {
        self.inner_mut().on_ack(bytes, covered, marked, rtt, now);
    }

    fn on_loss(&mut self, now: Time) {
        self.inner_mut().on_loss(now);
    }

    fn on_trim(&mut self, now: Time) {
        self.inner_mut().on_trim(now);
    }

    fn name(&self) -> &'static str {
        self.inner().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CcParams {
        CcParams::for_bdp(400_000, 4096)
    }

    const RTT: Time = Time(10_000_000); // 10 us.

    #[test]
    fn dctcp_grows_on_clean_acks() {
        let mut cc = DctcpCc::new(params());
        let w0 = cc.cwnd();
        for i in 0..100 {
            cc.on_ack(4096, 1, 0, RTT, Time::from_us(i));
        }
        assert!(cc.cwnd() > w0);
        assert!(cc.cwnd() <= params().max_cwnd);
    }

    #[test]
    fn dctcp_shrinks_on_marks() {
        let mut cc = DctcpCc::new(params());
        let w0 = cc.cwnd();
        for i in 0..50 {
            cc.on_ack(4096, 1, 1, RTT, Time::from_us(i));
        }
        assert!(cc.cwnd() < w0);
        assert!(cc.cwnd() >= params().min_cwnd);
    }

    #[test]
    fn dctcp_loss_costs_one_mtu() {
        let mut cc = DctcpCc::new(params());
        let w0 = cc.cwnd();
        cc.on_loss(Time::from_us(1));
        assert_eq!(cc.cwnd(), w0 - 4096);
    }

    #[test]
    fn dctcp_never_leaves_bounds() {
        let p = params();
        let mut cc = DctcpCc::new(p);
        for i in 0..10_000 {
            cc.on_ack(4096, 1, 1, RTT, Time::from_us(i));
            cc.on_loss(Time::from_us(i));
        }
        assert_eq!(cc.cwnd(), p.min_cwnd);
        for i in 0..100_000 {
            cc.on_ack(4096, 4, 0, RTT, Time::from_us(i));
        }
        assert_eq!(cc.cwnd(), p.max_cwnd);
    }

    #[test]
    fn eqds_speculative_then_credit_gated() {
        let mut cc = EqdsCc::new(params());
        let mut sent = 0u64;
        while cc.consume(4096) {
            sent += 4096;
        }
        assert_eq!(sent, params().init_cwnd / 4096 * 4096);
        // Blocked until the receiver grants.
        assert!(!cc.consume(4096));
        cc.grant(8192);
        assert!(cc.consume(4096));
        assert!(cc.consume(4096));
        assert!(!cc.consume(4096));
    }

    #[test]
    fn eqds_loss_erodes_speculative_allowance() {
        let mut cc = EqdsCc::new(params());
        let a0 = cc.available();
        cc.on_loss(Time::from_us(1));
        assert_eq!(cc.available(), a0 - 4096);
    }

    #[test]
    fn internal_decrease_is_rate_limited() {
        let mut cc = InternalCc::new(params());
        let w0 = cc.cwnd();
        // Two marks within the same RTT: only one decrease.
        cc.on_ack(4096, 1, 1, RTT, Time::from_us(100));
        let w1 = cc.cwnd();
        cc.on_ack(4096, 1, 1, RTT, Time::from_us(101));
        let w2 = cc.cwnd();
        assert!(w1 < w0);
        assert_eq!(w1, w2, "second mark within the RTT must not decrease");
        // A mark one RTT later decreases again.
        cc.on_ack(4096, 1, 1, RTT, Time::from_us(120));
        assert!(cc.cwnd() < w2);
    }

    #[test]
    fn internal_hyper_increase_after_clean_period() {
        let p = params();
        let mut cc = InternalCc::new(p);
        cc.on_loss(Time::from_us(0));
        let w0 = cc.cwnd();
        // Feed clean ACKs over many RTTs; growth accelerates after 5 rounds.
        let mut early_growth = 0.0;
        let mut late_growth = 0.0;
        let mut prev = w0 as f64;
        for round in 0..10u64 {
            for i in 0..10 {
                cc.on_ack(4096, 1, 0, RTT, Time::from_us(round * 10 + i + 1));
            }
            let now = cc.cwnd() as f64;
            if round < 3 {
                early_growth += now - prev;
            } else if round >= 6 {
                late_growth += now - prev;
            }
            prev = now;
        }
        assert!(
            late_growth > early_growth,
            "recovery must accelerate: early {early_growth}, late {late_growth}"
        );
    }

    #[test]
    fn factory_builds_all_kinds() {
        for kind in [CcKind::Dctcp, CcKind::Eqds, CcKind::Internal] {
            let cc = build_cc(kind, params());
            assert!(!cc.name().is_empty());
            assert!(cc.cwnd() > 0);
        }
        assert_eq!(CcKind::Eqds.label(), "EQDS");
    }
}
