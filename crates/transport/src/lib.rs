//! An out-of-order, Ultra-Ethernet-like transport for the REPS evaluation.
//!
//! The transport accepts and acknowledges packets out of order (the paper's
//! prerequisite for per-packet spraying), tracks delivery with SACK bitmaps,
//! detects losses by retransmission timeout (optionally accelerated by
//! fabric packet trimming), and supports per-packet or coalesced ACKs,
//! including the paper's *Carry EVs* and *Reuse EVs* variants (§4.5.1).
//!
//! Three congestion controllers are provided (§4.5.3): a per-ACK DCTCP
//! variant (the default, as used by MPRDMA), an EQDS-like receiver-driven
//! credit scheme, and a DCQCN-like stand-in for the paper's proprietary
//! "internal" algorithm. Any [`reps::lb::LoadBalancer`] plugs in per
//! connection through [`baselines::kind::LbKind`].

pub mod cc;
pub mod config;
pub mod conn;
pub mod endpoint;
pub mod sack;

pub use cc::{Cc, CcKind, CcParams, CongestionControl};
pub use config::{CoalesceConfig, CoalesceVariant, TransportConfig};
pub use conn::{ReceiverConn, SenderConn};
pub use endpoint::HostEndpoint;
pub use sack::OooTracker;
