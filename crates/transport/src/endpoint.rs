//! The per-host transport endpoint.
//!
//! `HostEndpoint` implements [`netsim::engine::Endpoint`]: it demultiplexes
//! packets to per-peer sender/receiver connections, runs the retransmission
//! and delayed-ACK sweeps, paces EQDS credit grants, schedules workload
//! message starts, and fires dependency triggers when messages complete
//! (the mechanism the AI-collective workloads are built on).

use netsim::engine::{Command, Ctx, Endpoint, MessageSpec};
use netsim::hash::FxHashMap;
use netsim::ids::{ConnId, HostId};
use netsim::packet::{Ack, Body, Packet};
use netsim::time::Time;
use netsim::trace::{TraceEvent, TraceSink};

use crate::cc::Cc;
use crate::config::TransportConfig;
use crate::conn::{ReceiverConn, SenderConn};

/// Timer token: periodic RTO / delayed-ACK sweep.
const TOKEN_SWEEP: u64 = 1;
/// Timer token: EQDS credit pacer tick.
const TOKEN_EQDS: u64 = 2;
/// Timer token: scheduled message starts.
const TOKEN_SCHEDULE: u64 = 3;

/// A host's transport stack.
pub struct HostEndpoint {
    /// This host's id (fixed at construction).
    pub host: HostId,
    cfg: TransportConfig,
    /// Link rate, for pacing credit grants.
    link_bps: u64,
    /// Total hosts (connection-id derivation).
    n_hosts: u32,
    /// Senders keyed by `(destination, background-class)`.
    senders: FxHashMap<(HostId, bool), SenderConn>,
    /// Receivers keyed by connection id (distinguishes traffic classes).
    receivers: FxHashMap<ConnId, ReceiverConn>,
    /// Messages to start at fixed times, sorted by time ascending.
    schedule: Vec<(Time, MessageSpec)>,
    schedule_next: usize,
    /// tag → messages to start when a message with that tag is *received*.
    on_receive: FxHashMap<u64, Vec<MessageSpec>>,
    /// tag → messages to start when our *send* with that tag completes.
    on_send_complete: FxHashMap<u64, Vec<MessageSpec>>,
    sweep_armed: bool,
    eqds_armed: bool,
    /// Round-robin cursor over demanding peers (EQDS pacer fairness).
    eqds_rr: usize,
    /// Endpoint-owned scratch reused across RTO/delayed-ACK sweeps
    /// (capacity retained, so periodic sweeps allocate nothing in steady
    /// state).
    sweep_conns: Vec<(HostId, bool)>,
    /// Scratch for stale-ACK flushes (see `sweep_conns`).
    stale_acks: Vec<(HostId, ConnId, Ack)>,
    /// Scratch for the EQDS demand scan (see `sweep_conns`).
    eqds_demand: Vec<(ConnId, HostId)>,
}

impl HostEndpoint {
    /// Creates the endpoint for `host` in a fabric of `n_hosts`.
    pub fn new(host: HostId, n_hosts: u32, link_bps: u64, cfg: TransportConfig) -> HostEndpoint {
        HostEndpoint {
            host,
            cfg,
            link_bps,
            n_hosts,
            senders: FxHashMap::default(),
            receivers: FxHashMap::default(),
            schedule: Vec::new(),
            schedule_next: 0,
            on_receive: FxHashMap::default(),
            on_send_complete: FxHashMap::default(),
            sweep_armed: false,
            eqds_armed: false,
            eqds_rr: 0,
            sweep_conns: Vec::new(),
            stale_acks: Vec::new(),
            eqds_demand: Vec::new(),
        }
    }

    /// Schedules a message to start at an absolute time.
    ///
    /// Must be called before the engine delivers `HostStart` (time zero).
    pub fn schedule_message(&mut self, at: Time, spec: MessageSpec) {
        self.schedule.push((at, spec));
        self.schedule.sort_by_key(|(t, _)| *t);
    }

    /// Starts `spec` when a message tagged `tag` is fully received.
    pub fn trigger_on_receive(&mut self, tag: u64, spec: MessageSpec) {
        self.on_receive.entry(tag).or_default().push(spec);
    }

    /// Starts `spec` when our own send tagged `tag` completes.
    pub fn trigger_on_send_complete(&mut self, tag: u64, spec: MessageSpec) {
        self.on_send_complete.entry(tag).or_default().push(spec);
    }

    /// Read access to a foreground sender connection (instrumentation).
    pub fn sender(&self, dst: HostId) -> Option<&SenderConn> {
        self.senders.get(&(dst, false))
    }

    /// Number of live connections (instrumentation).
    pub fn connection_count(&self) -> (usize, usize) {
        (self.senders.len(), self.receivers.len())
    }

    /// Accumulates every sender's load-balancer decision counters into
    /// `out`, summing values that share a name. Deterministic: senders are
    /// visited in key order, and names keep first-appearance order.
    pub fn lb_diagnostics(&self, out: &mut Vec<(&'static str, u64)>) {
        let mut keys: Vec<(HostId, bool)> = self.senders.keys().copied().collect();
        keys.sort_unstable();
        let mut scratch = Vec::new();
        for key in keys {
            scratch.clear();
            self.senders[&key].lb.diagnostics(&mut scratch);
            for &(name, v) in &scratch {
                match out.iter_mut().find(|(n, _)| *n == name) {
                    Some(entry) => entry.1 += v,
                    None => out.push((name, v)),
                }
            }
        }
    }

    fn conn_id(&self, src: HostId, dst: HostId, bg: bool) -> ConnId {
        ConnId((src.0 * self.n_hosts + dst.0) * 2 + bg as u32)
    }

    fn arm_sweep<S: TraceSink>(&mut self, ctx: &mut Ctx<'_, S>) {
        if !self.sweep_armed {
            self.sweep_armed = true;
            ctx.set_timer(self.cfg.rto / 4, TOKEN_SWEEP);
        }
    }

    fn arm_eqds<S: TraceSink>(&mut self, ctx: &mut Ctx<'_, S>) {
        if !self.eqds_armed {
            self.eqds_armed = true;
            let tick = Time::serialization(
                self.cfg.eqds_quantum_pkts as u64 * self.cfg.mtu as u64,
                self.link_bps,
            );
            ctx.set_timer(tick, TOKEN_EQDS);
        }
    }

    fn start_message<S: TraceSink>(&mut self, spec: MessageSpec, ctx: &mut Ctx<'_, S>) {
        let bg = spec.tag & crate::config::BACKGROUND_BIT != 0;
        let conn = self.conn_id(self.host, spec.dst, bg);
        let cfg = &self.cfg;
        let tx = self.senders.entry((spec.dst, bg)).or_insert_with(|| {
            let kind = if bg {
                cfg.bg_lb.as_ref().unwrap_or(&cfg.lb)
            } else {
                &cfg.lb
            };
            let lb = kind.build(ctx.rng);
            let cc = Cc::build(cfg.cc, cfg.cc_params);
            SenderConn::new(conn, spec.dst, lb, cc, cfg)
        });
        tx.enqueue(spec.flow, spec.tag, spec.bytes, ctx.now);
        tx.pump(ctx);
        self.arm_sweep(ctx);
    }

    fn send_ack<S: TraceSink>(
        &mut self,
        peer: HostId,
        conn: ConnId,
        ack: Ack,
        ctx: &mut Ctx<'_, S>,
    ) {
        // ACKs reuse the newest echoed EV for their own routing (§3.1): no
        // extra header space, and the reverse path reflects the data path.
        let ev = ack.echoes.last().map(|e| e.ev).unwrap_or(0);
        let pkt = Packet::control(
            ctx.fresh_packet_id(),
            self.host,
            peer,
            conn,
            ev,
            Body::Ack(ack),
        );
        ctx.send(pkt);
    }

    fn fire_receive_triggers<S: TraceSink>(&mut self, tag: u64, ctx: &mut Ctx<'_, S>) {
        if let Some(specs) = self.on_receive.remove(&tag) {
            for spec in specs {
                self.start_message(spec, ctx);
            }
        }
    }

    fn fire_send_triggers<S: TraceSink>(&mut self, tags: Vec<u64>, ctx: &mut Ctx<'_, S>) {
        for tag in tags {
            if let Some(specs) = self.on_send_complete.remove(&tag) {
                for spec in specs {
                    self.start_message(spec, ctx);
                }
            }
        }
    }

    fn on_sweep<S: TraceSink>(&mut self, ctx: &mut Ctx<'_, S>) {
        self.sweep_armed = false;
        let rto = self.cfg.rto;
        // Sweep senders in key order: each timeout draws from the shared
        // RNG, so hash-order iteration would make runs irreproducible. The
        // scratch vector is endpoint-owned and reused (taken and restored
        // around the loop, which needs `&mut self`).
        let mut conns = std::mem::take(&mut self.sweep_conns);
        conns.clear();
        conns.extend(self.senders.keys().copied());
        conns.sort_unstable();
        for &key in &conns {
            self.senders
                .get_mut(&key)
                .expect("listed")
                .check_timeouts(rto, ctx);
        }
        self.sweep_conns = conns;
        // Delayed-ACK flush: release observations older than a quarter RTO.
        let cutoff = ctx.now.saturating_sub(rto / 4);
        let mut stale = std::mem::take(&mut self.stale_acks);
        stale.clear();
        stale.extend(
            self.receivers
                .values_mut()
                .filter_map(|rx| rx.flush_stale(cutoff).map(|a| (rx.peer, rx.conn, a))),
        );
        stale.sort_unstable_by_key(|(peer, conn, _)| (*peer, *conn));
        for (peer, conn, ack) in stale.drain(..) {
            self.send_ack(peer, conn, ack, ctx);
        }
        self.stale_acks = stale;
        let busy =
            self.senders.values().any(|tx| !tx.idle()) || self.schedule_next < self.schedule.len();
        if busy {
            self.arm_sweep(ctx);
        }
    }

    fn on_eqds_tick<S: TraceSink>(&mut self, ctx: &mut Ctx<'_, S>) {
        self.eqds_armed = false;
        let mut demanding = std::mem::take(&mut self.eqds_demand);
        demanding.clear();
        demanding.extend(
            self.receivers
                .values()
                .filter(|rx| rx.demand_bytes > 0)
                .map(|rx| (rx.conn, rx.peer)),
        );
        if demanding.is_empty() {
            self.eqds_demand = demanding;
            return;
        }
        // Deterministic round-robin order across HashMap iteration.
        demanding.sort_unstable_by_key(|(c, _)| *c);
        let (conn, peer) = demanding[self.eqds_rr % demanding.len()];
        self.eqds_demand = demanding;
        self.eqds_rr = self.eqds_rr.wrapping_add(1);
        let quantum = self.cfg.eqds_quantum_pkts as u64 * self.cfg.mtu as u64;
        let grant;
        {
            let rx = self.receivers.get_mut(&conn).expect("listed");
            grant = rx.demand_bytes.min(quantum);
            rx.demand_bytes -= grant;
        }
        let pkt = Packet::control(
            ctx.fresh_packet_id(),
            self.host,
            peer,
            conn,
            ctx.rng.gen_range(1 << 16) as u16,
            Body::Credit { bytes: grant },
        );
        ctx.send(pkt);
        self.arm_eqds(ctx);
    }

    fn run_schedule<S: TraceSink>(&mut self, ctx: &mut Ctx<'_, S>) {
        while self.schedule_next < self.schedule.len()
            && self.schedule[self.schedule_next].0 <= ctx.now
        {
            let spec = self.schedule[self.schedule_next].1;
            self.schedule_next += 1;
            self.start_message(spec, ctx);
        }
        if self.schedule_next < self.schedule.len() {
            let next_at = self.schedule[self.schedule_next].0;
            ctx.set_timer(next_at.saturating_sub(ctx.now), TOKEN_SCHEDULE);
        }
    }
}

impl<S: TraceSink> Endpoint<S> for HostEndpoint {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_, S>) {
        match &pkt.body {
            Body::Data { .. } => {
                let peer = pkt.src;
                let conn = pkt.conn;
                let cfg = &self.cfg;
                let rx = self
                    .receivers
                    .entry(conn)
                    .or_insert_with(|| ReceiverConn::new(peer, conn, cfg));
                let out = rx.on_data(&pkt, ctx.now);
                if ctx.trace.enabled() {
                    // Only out-of-order states are recorded, so a perfectly
                    // ordered flow contributes no reorder events.
                    let depth = rx.out_of_order_count();
                    if depth > 0 {
                        ctx.trace.emit(TraceEvent::Reorder {
                            at: ctx.now,
                            host: self.host,
                            conn: conn.0,
                            depth,
                        });
                    }
                }
                let demand = rx.demand_bytes;
                if let Some(seq) = out.nack_seq {
                    let nack = Packet::control(
                        ctx.fresh_packet_id(),
                        self.host,
                        peer,
                        conn,
                        pkt.ev,
                        Body::Nack { seq },
                    );
                    ctx.send(nack);
                }
                if let Some(ack) = out.ack {
                    self.send_ack(peer, conn, ack, ctx);
                }
                if let Some(tag) = out.completed_tag {
                    self.fire_receive_triggers(tag, ctx);
                }
                if matches!(self.cfg.cc, crate::cc::CcKind::Eqds) && demand > 0 {
                    self.arm_eqds(ctx);
                }
            }
            Body::Ack(ack) => {
                let bg = pkt.conn.0 & 1 == 1;
                if let Some(tx) = self.senders.get_mut(&(pkt.src, bg)) {
                    let outcome = tx.on_ack(ack, ctx);
                    for record in outcome.completed {
                        ctx.complete_flow(record);
                    }
                    self.fire_send_triggers(outcome.completed_tags, ctx);
                }
            }
            Body::Nack { seq } => {
                let bg = pkt.conn.0 & 1 == 1;
                if let Some(tx) = self.senders.get_mut(&(pkt.src, bg)) {
                    tx.on_nack(*seq, ctx);
                }
            }
            Body::Credit { bytes } => {
                let bg = pkt.conn.0 & 1 == 1;
                if let Some(tx) = self.senders.get_mut(&(pkt.src, bg)) {
                    if let Some(eqds) = tx.cc.as_eqds_mut() {
                        eqds.grant(*bytes);
                    }
                    tx.pump(ctx);
                }
            }
            Body::Probe { token } => {
                let reply = Packet::control(
                    ctx.fresh_packet_id(),
                    self.host,
                    pkt.src,
                    pkt.conn,
                    pkt.ev,
                    Body::ProbeReply { token: *token },
                );
                ctx.send(reply);
            }
            Body::ProbeReply { .. } => {
                // Probing-based freezing exit is an extension the paper
                // leaves optional (§3.2); the timer-based exit is the default.
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, S>) {
        match token {
            TOKEN_SWEEP => self.on_sweep(ctx),
            TOKEN_EQDS => self.on_eqds_tick(ctx),
            TOKEN_SCHEDULE => self.run_schedule(ctx),
            _ => {}
        }
    }

    fn on_command(&mut self, cmd: Command, ctx: &mut Ctx<'_, S>) {
        match cmd {
            Command::StartMessage(spec) => self.start_message(spec, ctx),
            Command::Custom(_) => {
                // HostStart: begin executing the static schedule.
                self.run_schedule(ctx);
                self.arm_sweep(ctx);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::kind::LbKind;
    use netsim::config::SimConfig;
    use netsim::engine::Engine;
    use netsim::event::ControlEvent;
    use netsim::ids::FlowId;
    use netsim::topology::{FatTreeConfig, Topology};
    use reps::reps::RepsConfig;

    fn build_engine(lb: LbKind, seed: u64) -> Engine {
        let sim = SimConfig::paper_default();
        let topo = Topology::build(FatTreeConfig::two_tier(16, 1), seed);
        let n = topo.n_hosts;
        let mut engine = Engine::new(topo, sim, seed);
        let tcfg = TransportConfig::from_sim(&engine.cfg, 4, lb);
        for h in 0..n {
            let ep = HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone());
            engine.set_endpoint(HostId(h), Box::new(ep));
        }
        engine
    }

    fn start<S: TraceSink>(engine: &mut Engine<S>, flow: u32, src: u32, dst: u32, bytes: u64) {
        engine.command(
            HostId(src),
            Command::StartMessage(MessageSpec {
                flow: FlowId(flow),
                dst: HostId(dst),
                bytes,
                tag: flow as u64,
            }),
        );
    }

    #[test]
    fn single_message_completes_with_correct_fct_shape() {
        let mut engine = build_engine(LbKind::Ops { evs_size: 1 << 16 }, 1);
        engine.stats.expected_flows = 1;
        start(&mut engine, 0, 0, 64, 1 << 20); // 1 MiB cross-rack.
        assert!(engine.run_to_completion(Time::from_ms(10)));
        let rec = &engine.stats.flows[0];
        assert_eq!(rec.bytes, 1 << 20);
        // 1 MiB at 400 Gbps is ~21 us serialization; with RTT and ramp-up the
        // FCT must land between that and a loose upper bound.
        let fct_us = rec.fct().as_us();
        assert!(fct_us >= 21, "FCT {fct_us}us impossibly fast");
        assert!(fct_us < 200, "FCT {fct_us}us unreasonably slow");
        assert_eq!(engine.stats.counters.total_drops(), 0);
    }

    #[test]
    fn reps_transport_completes_and_recycles() {
        let mut engine = build_engine(LbKind::Reps(RepsConfig::default()), 2);
        engine.stats.expected_flows = 1;
        start(&mut engine, 0, 3, 90, 4 << 20);
        assert!(engine.run_to_completion(Time::from_ms(10)));
        assert_eq!(engine.stats.counters.retransmissions, 0);
    }

    #[test]
    fn several_concurrent_flows_all_complete() {
        let mut engine = build_engine(LbKind::Ops { evs_size: 1 << 16 }, 3);
        engine.stats.expected_flows = 8;
        for i in 0..8 {
            start(&mut engine, i, i, 64 + i, 256 << 10);
        }
        assert!(engine.run_to_completion(Time::from_ms(10)));
        assert_eq!(engine.stats.flows.len(), 8);
    }

    #[test]
    fn incast_completes_under_congestion() {
        let mut engine = build_engine(LbKind::Ops { evs_size: 1 << 16 }, 4);
        engine.stats.expected_flows = 8;
        // 8:1 incast into host 0.
        for i in 0..8 {
            start(&mut engine, i, 16 + i, 0, 1 << 20);
        }
        assert!(engine.run_to_completion(Time::from_ms(50)));
        // The receiver downlink is the bottleneck: ECN marks must appear.
        assert!(engine.stats.counters.ecn_marks > 0);
    }

    #[test]
    fn link_failure_triggers_timeouts_and_retransmissions() {
        let mut engine = build_engine(LbKind::Ops { evs_size: 1 << 16 }, 5);
        engine.stats.expected_flows = 1;
        // Fail one ToR uplink pair 20 us in, forever.
        let pairs = engine.topo.tor_uplink_pairs(netsim::ids::SwitchId(0));
        let (up, down) = pairs[0];
        engine.schedule_control(Time::from_us(20), ControlEvent::LinkDown(up));
        engine.schedule_control(Time::from_us(20), ControlEvent::LinkDown(down));
        start(&mut engine, 0, 0, 64, 8 << 20);
        assert!(
            engine.run_to_completion(Time::from_ms(100)),
            "flow must survive a single uplink failure"
        );
        assert!(engine.stats.counters.drops_link_down > 0);
        assert!(engine.stats.counters.retransmissions > 0);
        assert!(engine.stats.counters.timeouts > 0);
    }

    #[test]
    fn reps_loses_fewer_packets_than_ops_under_failure() {
        // The paper's headline failure claim, in miniature: with a mid-run
        // uplink failure, REPS (freezing) must suffer far fewer blackhole
        // drops than OPS.
        let mut drops = Vec::new();
        for lb in [
            LbKind::Ops { evs_size: 1 << 16 },
            LbKind::Reps(RepsConfig::default()),
        ] {
            let mut engine = build_engine(lb, 6);
            engine.stats.expected_flows = 1;
            let pairs = engine.topo.tor_uplink_pairs(netsim::ids::SwitchId(0));
            let (up, down) = pairs[0];
            engine.schedule_control(Time::from_us(30), ControlEvent::LinkDown(up));
            engine.schedule_control(Time::from_us(30), ControlEvent::LinkDown(down));
            start(&mut engine, 0, 0, 64, 16 << 20);
            assert!(engine.run_to_completion(Time::from_ms(100)));
            drops.push(engine.stats.counters.drops_link_down);
        }
        assert!(
            drops[1] * 2 < drops[0],
            "REPS drops {} not well below OPS drops {}",
            drops[1],
            drops[0]
        );
    }

    #[test]
    fn traced_run_records_the_failure_reaction_story() {
        use netsim::trace::{EvDecision, Recorder, TraceEvent as TE};
        let sim = SimConfig::paper_default();
        let topo = Topology::build(FatTreeConfig::two_tier(16, 1), 6);
        let n = topo.n_hosts;
        let mut engine = Engine::with_trace(topo, sim, 6, Recorder::new());
        let tcfg = TransportConfig::from_sim(&engine.cfg, 4, LbKind::Reps(RepsConfig::default()));
        for h in 0..n {
            let ep = HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone());
            engine.set_endpoint(HostId(h), Box::new(ep));
        }
        engine.stats.expected_flows = 1;
        let pairs = engine.topo.tor_uplink_pairs(netsim::ids::SwitchId(0));
        let (up, down) = pairs[0];
        engine.schedule_control(Time::from_us(30), ControlEvent::LinkDown(up));
        engine.schedule_control(Time::from_us(30), ControlEvent::LinkDown(down));
        start(&mut engine, 0, 0, 64, 16 << 20);
        assert!(engine.run_to_completion(Time::from_ms(100)));
        let events = &engine.trace.events;
        let has = |f: &dyn Fn(&TE) -> bool| events.iter().any(f);
        assert!(has(&|e| matches!(e, TE::PathChoice { .. })));
        assert!(has(&|e| matches!(
            e,
            TE::EvChoice {
                decision: EvDecision::Recycled,
                ..
            }
        )));
        assert!(has(&|e| matches!(e, TE::LinkDown { .. })));
        assert!(has(&|e| matches!(e, TE::Timeout { .. })));
        assert!(has(&|e| matches!(e, TE::Freeze { .. })));
        assert!(has(&|e| matches!(e, TE::Retransmit { .. })));
        assert!(has(&|e| matches!(e, TE::Reorder { .. })));
        // Emission order is simulation order.
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
        // And the decision counters agree with the recorded choices.
        let ep = engine.endpoint(HostId(0)).unwrap();
        let ep = ep.as_any().unwrap().downcast_ref::<HostEndpoint>().unwrap();
        let mut diag = Vec::new();
        ep.lb_diagnostics(&mut diag);
        let recycled = diag
            .iter()
            .find(|(n, _)| *n == "reps_recycled_draws")
            .map(|(_, v)| *v)
            .unwrap();
        let recorded = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TE::EvChoice {
                        decision: EvDecision::Recycled,
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(recycled, recorded);
    }

    #[test]
    fn eqds_credit_flow_completes() {
        let sim = SimConfig::paper_default();
        let topo = Topology::build(FatTreeConfig::two_tier(16, 1), 7);
        let n = topo.n_hosts;
        let mut engine = Engine::new(topo, sim, 7);
        let tcfg = TransportConfig::from_sim(&engine.cfg, 4, LbKind::Ops { evs_size: 1 << 16 })
            .with_cc(crate::cc::CcKind::Eqds);
        for h in 0..n {
            let ep = HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone());
            engine.set_endpoint(HostId(h), Box::new(ep));
        }
        engine.stats.expected_flows = 1;
        start(&mut engine, 0, 0, 64, 4 << 20);
        assert!(
            engine.run_to_completion(Time::from_ms(20)),
            "EQDS flow stalled: speculative window or credits broken"
        );
    }

    #[test]
    fn coalesced_acks_reduce_control_traffic() {
        let mut ctrl = Vec::new();
        for ratio in [1u32, 8] {
            let sim = SimConfig::paper_default();
            let topo = Topology::build(FatTreeConfig::two_tier(16, 1), 8);
            let n = topo.n_hosts;
            let mut engine = Engine::new(topo, sim, 8);
            let tcfg = TransportConfig::from_sim(&engine.cfg, 4, LbKind::Ops { evs_size: 1 << 16 })
                .with_coalesce(crate::config::CoalesceConfig::ratio(
                    ratio,
                    crate::config::CoalesceVariant::Plain,
                ));
            for h in 0..n {
                let ep = HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone());
                engine.set_endpoint(HostId(h), Box::new(ep));
            }
            engine.stats.expected_flows = 1;
            start(&mut engine, 0, 0, 64, 4 << 20);
            assert!(engine.run_to_completion(Time::from_ms(20)));
            ctrl.push(engine.stats.counters.ctrl_tx);
        }
        assert!(
            ctrl[1] * 4 < ctrl[0],
            "8:1 coalescing sent {} control packets vs {} at 1:1",
            ctrl[1],
            ctrl[0]
        );
    }

    #[test]
    fn scheduled_messages_start_at_their_times() {
        let sim = SimConfig::paper_default();
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 9);
        let n = topo.n_hosts;
        let mut engine = Engine::new(topo, sim, 9);
        let tcfg = TransportConfig::from_sim(&engine.cfg, 4, LbKind::Ops { evs_size: 1 << 16 });
        for h in 0..n {
            let mut ep = HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone());
            if h == 0 {
                ep.schedule_message(
                    Time::from_us(50),
                    MessageSpec {
                        flow: FlowId(0),
                        dst: HostId(16),
                        bytes: 64 << 10,
                        tag: 0,
                    },
                );
            }
            engine.set_endpoint(HostId(h), Box::new(ep));
        }
        engine.schedule_control(Time::ZERO, ControlEvent::HostStart(HostId(0)));
        engine.stats.expected_flows = 1;
        assert!(engine.run_to_completion(Time::from_ms(5)));
        let rec = &engine.stats.flows[0];
        assert_eq!(
            rec.start,
            Time::from_us(50),
            "FCT origin is the scheduled start"
        );
    }

    #[test]
    fn receive_trigger_chains_messages_across_hosts() {
        // Host 0 sends to host 16; when host 16 receives it, it sends to 32.
        let sim = SimConfig::paper_default();
        let topo = Topology::build(FatTreeConfig::two_tier(16, 1), 10);
        let n = topo.n_hosts;
        let mut engine = Engine::new(topo, sim, 10);
        let tcfg = TransportConfig::from_sim(&engine.cfg, 4, LbKind::Ops { evs_size: 1 << 16 });
        for h in 0..n {
            let mut ep = HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone());
            if h == 16 {
                ep.trigger_on_receive(
                    77,
                    MessageSpec {
                        flow: FlowId(1),
                        dst: HostId(32),
                        bytes: 128 << 10,
                        tag: 78,
                    },
                );
            }
            engine.set_endpoint(HostId(h), Box::new(ep));
        }
        engine.stats.expected_flows = 2;
        engine.command(
            HostId(0),
            Command::StartMessage(MessageSpec {
                flow: FlowId(0),
                dst: HostId(16),
                bytes: 128 << 10,
                tag: 77,
            }),
        );
        assert!(engine.run_to_completion(Time::from_ms(10)));
        let by_flow: std::collections::BTreeMap<u32, &netsim::stats::FlowRecord> =
            engine.stats.flows.iter().map(|f| (f.flow.0, f)).collect();
        assert!(
            by_flow[&1].start >= by_flow[&0].end - Time::from_us(5),
            "chained flow must not start before the first finishes arriving"
        );
    }
}
