//! Property-based tests for the transport's out-of-order machinery and
//! congestion controllers.

use proptest::prelude::*;

use netsim::time::Time;
use transport::cc::{CcKind, CcParams, CongestionControl, DctcpCc, EqdsCc, InternalCc};
use transport::sack::OooTracker;

proptest! {
    /// The OOO tracker converges to a full frontier for any delivery order
    /// and rejects all duplicates.
    #[test]
    fn ooo_tracker_any_permutation(len in 1usize..512, seed in any::<u64>()) {
        let mut order: Vec<u64> = (0..len as u64).collect();
        let mut rng = netsim::rng::Rng64::new(seed);
        rng.shuffle(&mut order);
        let mut t = OooTracker::new();
        for &seq in &order {
            prop_assert!(t.record(seq), "fresh seq {seq} rejected");
        }
        for &seq in &order {
            prop_assert!(!t.record(seq), "duplicate seq {seq} accepted");
        }
        prop_assert_eq!(t.cum_ack(), len as u64);
        prop_assert_eq!(t.out_of_order_count(), 0);
    }

    /// The tracker's frontier never exceeds the highest recorded seq + 1 and
    /// never decreases.
    #[test]
    fn ooo_tracker_frontier_monotone(seqs in proptest::collection::vec(0u64..2048, 1..256)) {
        let mut t = OooTracker::new();
        let mut last_cum = 0;
        let mut max_seen = 0;
        for &seq in &seqs {
            t.record(seq);
            max_seen = max_seen.max(seq);
            prop_assert!(t.cum_ack() >= last_cum, "frontier went backwards");
            prop_assert!(t.cum_ack() <= max_seen + 1);
            last_cum = t.cum_ack();
        }
    }

    /// Every congestion controller stays within its window bounds under any
    /// interleaving of ACKs (marked or clean), losses and trims.
    #[test]
    fn cc_windows_stay_bounded(
        kind_idx in 0usize..3,
        events in proptest::collection::vec((0u8..4, 0u32..8), 1..400),
    ) {
        let params = CcParams::for_bdp(400_000, 4096);
        let kind = [CcKind::Dctcp, CcKind::Eqds, CcKind::Internal][kind_idx];
        let mut cc: Box<dyn CongestionControl> = match kind {
            CcKind::Dctcp => Box::new(DctcpCc::new(params)),
            CcKind::Eqds => Box::new(EqdsCc::new(params)),
            CcKind::Internal => Box::new(InternalCc::new(params)),
        };
        let rtt = Time::from_us(10);
        let mut now = Time::ZERO;
        for (ev, n) in events {
            now += Time::from_us(1);
            match ev {
                0 => cc.on_ack(4096 * n as u64, n.max(1), 0, rtt, now),
                1 => cc.on_ack(4096 * n as u64, n.max(1), n.max(1), rtt, now),
                2 => cc.on_loss(now),
                _ => cc.on_trim(now),
            }
            let w = cc.cwnd();
            prop_assert!(w >= params.min_cwnd, "{} cwnd {w} below floor", cc.name());
            prop_assert!(w <= params.max_cwnd, "{} cwnd {w} above ceiling", cc.name());
        }
    }

    /// EQDS credit accounting: spendable allowance equals grants plus the
    /// speculative budget minus consumption, and consume never overdraws.
    #[test]
    fn eqds_credit_conservation(
        ops in proptest::collection::vec((any::<bool>(), 1u64..20_000), 1..200),
    ) {
        let params = CcParams::for_bdp(400_000, 4096);
        let mut eqds = EqdsCc::new(params);
        let mut granted = 0u64;
        let mut consumed = 0u64;
        let initial = eqds.available();
        for (is_grant, amount) in ops {
            if is_grant {
                eqds.grant(amount);
                granted += amount;
            } else if eqds.consume(amount) {
                consumed += amount;
            } else {
                prop_assert!(eqds.available() < amount,
                    "refusal with sufficient allowance");
            }
            prop_assert_eq!(eqds.available(), initial + granted - consumed);
        }
    }
}
