//! Allocation accounting for the transport-side per-packet hot path.
//!
//! The sibling test in `netsim/tests/alloc.rs` pins the switch path
//! (route → select → push) at zero steady-state allocations; this one
//! extends the contract up the stack to the full transport loop — data
//! out, ACKs back, congestion control, load-balancer feedback. The last
//! per-packet allocation source was the ACK bodies' `Vec`s (~0.14
//! allocs/event): every acknowledged packet paid two heap allocations in
//! `ReceiverConn::flush`. With inline SACK/echo lists
//! ([`netsim::packet::SmallList`]) and endpoint-owned sweep scratch, a
//! warmed steady state performs a small *per-message* bookkeeping cost
//! (flow records, completion tags) and nothing per packet: the bound here
//! is ~0.4% of the packet count, where the per-ACK `Vec`s alone used to
//! cost ~200%.
//!
//! This file intentionally contains a single test: the counter is
//! process-global, and a sibling test running on another thread would add
//! its own allocations to the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use baselines::kind::LbKind;
use netsim::config::SimConfig;
use netsim::engine::{Command, Engine, MessageSpec};
use netsim::ids::{FlowId, HostId};
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use transport::config::TransportConfig;
use transport::endpoint::HostEndpoint;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to `System` unchanged; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// One round of cross-rack messages: host `i` sends `bytes` to host
/// `16 + i` (32-host two-tier fabric, 8 concurrent flows), run to
/// completion.
fn round(engine: &mut Engine, tag: u64, bytes: u64, deadline: Time) {
    engine.stats.expected_flows += 8;
    for i in 0..8u32 {
        engine.command(
            HostId(i),
            Command::StartMessage(MessageSpec {
                flow: FlowId(tag as u32 * 8 + i),
                dst: HostId(16 + i),
                bytes,
                tag: tag * 8 + i as u64,
            }),
        );
    }
    assert!(
        engine.run_to_completion(deadline),
        "round {tag} did not complete"
    );
}

#[test]
fn transport_ack_path_is_allocation_free_after_warmup() {
    let sim = SimConfig::paper_default();
    let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 11);
    let n = topo.n_hosts;
    let mut engine = Engine::new(topo, sim, 11);
    let tcfg = TransportConfig::from_sim(&engine.cfg, 4, LbKind::Ops { evs_size: 1 << 16 });
    for h in 0..n {
        let ep = HostEndpoint::new(HostId(h), n, engine.cfg.link_bps, tcfg.clone());
        engine.set_endpoint(HostId(h), Box::new(ep));
    }

    // Warm-up: grow every buffer (arena, calendar, connection tables, OOO
    // trackers, pending-ACK buffers, sweep scratch) to its high-water
    // mark with a round strictly larger than the measured one.
    round(&mut engine, 0, 4 << 20, Time::from_ms(10));

    let before_events = engine.events_processed;
    let before = ALLOCS.load(Ordering::Relaxed);
    round(&mut engine, 1, 1 << 20, Time::from_ms(20));
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    let events = engine.events_processed - before_events;

    // 8 flows × 1 MiB at 4 KiB MTU = 2048 data packets, each ACKed
    // per-packet: the old per-ACK `Vec` pair alone would be >4000
    // allocations. What remains is per-*message* bookkeeping (flow
    // records, completion-tag lists, message-queue growth): a handful per
    // flow, independent of packet count.
    assert!(events > 8_000, "round unexpectedly small: {events} events");
    assert!(
        during <= 64,
        "transport path allocated {during} times over {events} events \
         (per-packet allocation has crept back in)"
    );
}
