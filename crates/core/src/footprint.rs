//! Per-connection memory accounting (paper Table 1).
//!
//! REPS needs roughly 25 bytes of NIC state per connection, independent of
//! topology size — the paper's headline deployability claim. This module
//! reproduces the table's bit-level accounting and checks it against the
//! actual Rust representation.

/// Bits per circular-buffer element: a 16-bit entropy plus a validity bit.
pub const ELEMENT_BITS: u64 = 16 + 1;

/// Bits of global state: head (8), numberOfValidEVs (8), exitFreezingMode
/// (32), isFreezingMode (1), exploreCounter (8).
pub const GLOBAL_BITS: u64 = 8 + 8 + 32 + 1 + 8;

/// Total per-connection footprint in bits for a buffer of `elements`.
///
/// # Examples
///
/// ```
/// // Table 1: 74 bits (~10 B) for 1 element, 193 bits (~25 B) for 8.
/// assert_eq!(reps::footprint::footprint_bits(1), 74);
/// assert_eq!(reps::footprint::footprint_bits(8), 193);
/// ```
pub fn footprint_bits(elements: u64) -> u64 {
    ELEMENT_BITS * elements + GLOBAL_BITS
}

/// Footprint in bytes, rounded up.
pub fn footprint_bytes(elements: u64) -> u64 {
    footprint_bits(elements).div_ceil(8)
}

/// Renders Table 1 as aligned text rows.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("Component                                  Footprint (bits)\n");
    out.push_str("Circular Buffer Element (x elements):\n");
    out.push_str("  Entropy Value (cachedEV)                 16\n");
    out.push_str("  Entropy Validity Bit (isValid)           1\n");
    out.push_str("Global Variables:\n");
    out.push_str("  Head Buffer (head)                       8\n");
    out.push_str("  Number Valid Entropies (numberOfValidEVs) 8\n");
    out.push_str("  Exit Freezing Time (exitFreezingMode)    32\n");
    out.push_str("  Is Freezing Mode (isFreezingMode)        1\n");
    out.push_str("  Explore Counter (exploreCounter)         8\n");
    out.push_str(&format!(
        "Total (1 element in buffer)                {} ~= {} bytes\n",
        footprint_bits(1),
        footprint_bytes(1)
    ));
    out.push_str(&format!(
        "Total (8 elements in buffer)               {} ~= {} bytes\n",
        footprint_bits(8),
        footprint_bytes(8)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        assert_eq!(footprint_bits(1), 74);
        assert_eq!(footprint_bits(8), 193);
        assert_eq!(footprint_bytes(1), 10);
        assert_eq!(footprint_bytes(8), 25);
    }

    #[test]
    fn footprint_is_linear_in_elements() {
        for n in 1..32 {
            assert_eq!(footprint_bits(n + 1) - footprint_bits(n), ELEMENT_BITS);
        }
    }

    #[test]
    fn table_renders_both_rows() {
        let t = table1();
        assert!(t.contains("74"));
        assert!(t.contains("193"));
        assert!(t.contains("25 bytes"));
    }

    #[test]
    fn rust_struct_is_small() {
        // The in-simulator representation is allowed to be larger than the
        // hardware layout (Vec header, alignment), but the algorithmic state
        // itself must stay O(buffer), never O(EVS) — the paper's contrast
        // with per-EV bitmap schemes.
        let reps = crate::reps::Reps::new(crate::reps::RepsConfig::default());
        let heap_slots = std::mem::size_of::<crate::reps::Reps>()
            + 8 * 4 /* Slot is ~4 bytes */;
        assert!(heap_slots < 256, "REPS state unexpectedly large");
        drop(reps);
    }
}
