//! The load-balancer interface shared by REPS and every baseline.
//!
//! A load balancer owns the per-connection path-selection state. The
//! transport calls [`LoadBalancer::next_ev`] for every outgoing data packet
//! and feeds back acknowledgment observations, timeouts (failure suspicion)
//! and trimming NACKs (congestion loss). Everything else — windows, pacing,
//! retransmission — is the congestion controller's business.

use netsim::rng::Rng64;
use netsim::time::Time;

pub use netsim::trace::EvDecision;

/// Feedback delivered to the load balancer for every processed ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckFeedback {
    /// The entropy value echoed by the receiver.
    pub ev: u16,
    /// Whether the covered packet(s) carried an ECN congestion mark.
    pub ecn: bool,
    /// Arrival time of the ACK at the sender.
    pub now: Time,
    /// The connection's current congestion window, in packets.
    ///
    /// REPS uses this as `NUM_PKTS_CWND` when leaving freezing mode
    /// (Algorithm 1, line 17).
    pub cwnd_packets: u32,
    /// Smoothed round-trip estimate, for RTT-driven balancers (PLB).
    pub rtt: Time,
}

/// A per-connection path selector.
///
/// Implementations must be deterministic given the [`Rng64`] stream they are
/// handed; all randomness flows through that generator.
pub trait LoadBalancer {
    /// Chooses the entropy value for the next outgoing data packet.
    fn next_ev(&mut self, now: Time, rng: &mut Rng64) -> u16;

    /// Observes an acknowledgment.
    fn on_ack(&mut self, fb: &AckFeedback, rng: &mut Rng64);

    /// Observes a retransmission timeout — the transport's failure-suspicion
    /// signal (§2.1: timeouts, optionally refined by trimming).
    fn on_timeout(&mut self, now: Time);

    /// Observes a congestion loss reported through a trimming NACK.
    ///
    /// Unlike a timeout this is *not* failure suspicion: trimming only fires
    /// on congestive overflow (Appendix A), so the default is to ignore it.
    fn on_congestion_loss(&mut self, _ev: u16, _now: Time) {}

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// How the most recent [`next_ev`](LoadBalancer::next_ev) call arrived
    /// at its answer. Balancers without a cache draw fresh every time, so
    /// that is the default.
    fn last_decision(&self) -> EvDecision {
        EvDecision::Fresh
    }

    /// Whether the balancer is currently replaying a frozen path set
    /// (REPS' reconvergence mode). Balancers without the concept never are.
    fn is_frozen(&self) -> bool {
        false
    }

    /// Appends this balancer's decision counters as `(name, value)` pairs.
    ///
    /// Names must be stable identifiers (they become JSONL field names in
    /// the opt-in `diagnostics` block); values are lifetime totals for this
    /// connection. The default exposes nothing.
    fn diagnostics(&self, _out: &mut Vec<(&'static str, u64)>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial balancer for exercising the trait object plumbing.
    struct Fixed(u16);

    impl LoadBalancer for Fixed {
        fn next_ev(&mut self, _now: Time, _rng: &mut Rng64) -> u16 {
            self.0
        }
        fn on_ack(&mut self, _fb: &AckFeedback, _rng: &mut Rng64) {}
        fn on_timeout(&mut self, _now: Time) {}
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut lb: Box<dyn LoadBalancer> = Box::new(Fixed(7));
        let mut rng = Rng64::new(1);
        assert_eq!(lb.next_ev(Time::ZERO, &mut rng), 7);
        assert_eq!(lb.name(), "fixed");
        lb.on_congestion_loss(7, Time::ZERO); // Default impl must not panic.
    }

    #[test]
    fn probe_defaults_are_inert() {
        let lb = Fixed(3);
        assert_eq!(lb.last_decision(), EvDecision::Fresh);
        assert!(!lb.is_frozen());
        let mut out = Vec::new();
        lb.diagnostics(&mut out);
        assert!(out.is_empty());
    }
}
