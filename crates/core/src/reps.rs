//! The REPS algorithm (paper §3, Algorithms 1 and 2).
//!
//! REPS keeps a small circular buffer of *recycled entropies*: entropy
//! values whose ACKs came back without an ECN mark, i.e. evidence of an
//! uncongested, healthy path. Sending prefers the oldest valid cached
//! entropy and falls back to uniform exploration when the cache is empty.
//! On failure suspicion (a retransmission timeout) REPS enters *freezing
//! mode*: it stops exploring and replays buffer contents — even invalidated
//! ones — because recently-acknowledged entropies are the only paths known
//! to still work (§3.2).

use netsim::rng::Rng64;
use netsim::time::Time;

use crate::lb::{AckFeedback, EvDecision, LoadBalancer};

/// Tuning knobs for [`Reps`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepsConfig {
    /// Circular buffer depth. The paper uses 8 (Theorem 5.1 motivates
    /// `O(log n)` for an `n`-port switch).
    pub buffer_size: usize,
    /// Entropy value space size. The paper's default is the full 16-bit
    /// source-port space; §4.5.2 shows REPS works with as few as 32.
    pub evs_size: u32,
    /// Enables freezing mode (Appendix C.4 ablates this off).
    pub freezing_enabled: bool,
    /// How long freezing mode persists before the sender re-probes the
    /// network with random entropies (§3.2 "exit after a fixed amount of
    /// time").
    pub freezing_timeout: Time,
    /// Force-enter freezing mode at this instant and stay frozen (the
    /// Appendix A / Fig. 19 experiment: freezing without any failure).
    pub force_freezing_at: Option<Time>,
}

impl Default for RepsConfig {
    fn default() -> RepsConfig {
        RepsConfig {
            buffer_size: 8,
            evs_size: 1 << 16,
            freezing_enabled: true,
            freezing_timeout: Time::from_us(100),
            force_freezing_at: None,
        }
    }
}

impl RepsConfig {
    /// A config with a custom EVS size (for the §4.5.2 sweeps).
    pub fn with_evs_size(mut self, evs: u32) -> RepsConfig {
        self.evs_size = evs;
        self
    }

    /// A config with freezing disabled (Appendix C.4 ablation).
    pub fn without_freezing(mut self) -> RepsConfig {
        self.freezing_enabled = false;
        self
    }
}

/// One circular-buffer slot.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// The cached entropy value.
    cached_ev: u16,
    /// Set when the entropy was cached and not yet reused (Algorithm 1).
    is_valid: bool,
    /// Whether the slot has ever been written (guards pre-warm-up replay).
    written: bool,
}

/// The REPS sender state — everything in Table 1, ~25 bytes per connection.
#[derive(Debug, Clone)]
pub struct Reps {
    cfg: RepsConfig,
    buffer: Vec<Slot>,
    /// Next write position (Algorithm 1's `head`).
    head: usize,
    /// Count of valid (cached, unused) entropies.
    num_valid: usize,
    /// Packets left in the post-freezing exploration phase (Algorithm 2).
    explore_counter: u32,
    /// True while in freezing mode.
    freezing: bool,
    /// Instant at which freezing mode may be exited.
    exit_freezing: Time,
    /// Last congestion window observed (packets), seeding the exploration
    /// counter when freezing expires on the send path.
    last_cwnd_packets: u32,
    /// How the most recent [`next_ev`](LoadBalancer::next_ev) call chose.
    last_decision: EvDecision,
    /// Lifetime count of fresh (exploratory) entropy draws.
    fresh_draws: u64,
    /// Lifetime count of recycled cache hits.
    recycled_draws: u64,
    /// Lifetime count of frozen-mode replays of stale cache entries.
    frozen_replays: u64,
    /// Times freezing mode was entered.
    freezes: u64,
    /// Times freezing mode was exited.
    thaws: u64,
}

impl Reps {
    /// Creates a REPS instance with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the buffer size is zero or the EVS is empty.
    pub fn new(cfg: RepsConfig) -> Reps {
        assert!(cfg.buffer_size > 0, "REPS buffer must be non-empty");
        assert!(cfg.evs_size > 0, "EVS must be non-empty");
        Reps {
            buffer: vec![Slot::default(); cfg.buffer_size],
            head: 0,
            num_valid: 0,
            explore_counter: 0,
            freezing: false,
            exit_freezing: Time::ZERO,
            last_cwnd_packets: cfg.buffer_size as u32,
            last_decision: EvDecision::Fresh,
            fresh_draws: 0,
            recycled_draws: 0,
            frozen_replays: 0,
            freezes: 0,
            thaws: 0,
            cfg,
        }
    }

    /// Creates a REPS instance with the paper's defaults.
    pub fn default_paper() -> Reps {
        Reps::new(RepsConfig::default())
    }

    /// True while the sender is in freezing mode (for instrumentation).
    pub fn is_freezing(&self) -> bool {
        self.freezing
    }

    /// Number of valid cached entropies (for instrumentation).
    pub fn valid_entropies(&self) -> usize {
        self.num_valid
    }

    /// The configured EVS size.
    pub fn evs_size(&self) -> u32 {
        self.cfg.evs_size
    }

    /// Draws a uniformly random entropy from the EVS, recording the
    /// decision as exploratory.
    fn random_ev(&mut self, rng: &mut Rng64) -> u16 {
        self.last_decision = EvDecision::Fresh;
        self.fresh_draws += 1;
        rng.gen_range(self.cfg.evs_size as u64) as u16
    }

    /// True if at least one slot has ever been written.
    fn ever_written(&self) -> bool {
        self.buffer.iter().any(|s| s.written)
    }

    /// Algorithm 2's `getNextEV`.
    fn get_next_ev(&mut self) -> u16 {
        if self.num_valid > 0 {
            let n = self.buffer.len();
            // Algorithm 2 line 4: the oldest valid element sits at
            // `head - numberOfValidEVs` (mod buffer size); when the whole
            // buffer is valid this is `head` itself.
            let offset = (self.head + n - (self.num_valid % n)) % n;
            self.buffer[offset].is_valid = false;
            self.num_valid -= 1;
            self.last_decision = EvDecision::Recycled;
            self.recycled_draws += 1;
            self.buffer[offset].cached_ev
        } else {
            // Freezing mode: replay stale entries round-robin. Skip slots
            // that were never written (possible only if freezing hits before
            // the first BDP of ACKs returned, which the caller guards).
            self.last_decision = EvDecision::FrozenReplay;
            self.frozen_replays += 1;
            let n = self.buffer.len();
            for _ in 0..n {
                let offset = self.head;
                self.head = (self.head + 1) % n;
                if self.buffer[offset].written {
                    return self.buffer[offset].cached_ev;
                }
            }
            // Unreachable when ever_written() held; kept total for safety.
            self.buffer[self.head].cached_ev
        }
    }
}

impl LoadBalancer for Reps {
    /// Algorithm 2, `onSend`.
    fn next_ev(&mut self, _now: Time, rng: &mut Rng64) -> u16 {
        if let Some(at) = self.cfg.force_freezing_at {
            if _now >= at && !self.freezing {
                // Fig. 19: freeze without a failure and never thaw.
                self.freezing = true;
                self.freezes += 1;
                self.exit_freezing = Time::MAX;
                self.explore_counter = 0;
            }
        }
        if self.freezing && _now > self.exit_freezing {
            // §3.2: without probing, freezing expires after a fixed time —
            // checked on the send path too, so a sender whose cached
            // entropies all stopped returning ACKs (every one pointed at the
            // failed path) still thaws and re-explores instead of replaying
            // dead paths forever.
            self.freezing = false;
            self.thaws += 1;
            self.explore_counter = self.last_cwnd_packets.max(1);
        }
        if self.explore_counter > 0 {
            self.explore_counter -= 1;
            if (self.explore_counter as usize).is_multiple_of(self.buffer.len()) {
                return self.random_ev(rng);
            }
            // Otherwise fall through to the regular selection logic: reuse
            // cached entropies when available, explore when not.
        }
        if !self.ever_written() || (self.num_valid == 0 && !self.freezing) {
            return self.random_ev(rng);
        }
        self.get_next_ev()
    }

    /// Algorithm 1, `onAck`.
    fn on_ack(&mut self, fb: &AckFeedback, _rng: &mut Rng64) {
        if fb.ecn {
            // Congested path: discard the entropy (Algorithm 1, line 6).
            return;
        }
        let slot = &mut self.buffer[self.head];
        if !slot.is_valid {
            self.num_valid += 1;
        }
        slot.cached_ev = fb.ev;
        slot.is_valid = true;
        slot.written = true;
        self.head = (self.head + 1) % self.buffer.len();
        self.last_cwnd_packets = fb.cwnd_packets.max(1);
        if self.freezing && fb.now > self.exit_freezing {
            self.freezing = false;
            self.thaws += 1;
            // Explore for a window's worth of packets after thawing so REPS
            // cannot get stuck on a stale path set (§3.2).
            self.explore_counter = fb.cwnd_packets.max(1);
        }
    }

    /// Algorithm 1, `onFailureDetection`.
    fn on_timeout(&mut self, now: Time) {
        if !self.cfg.freezing_enabled {
            return;
        }
        if !self.freezing && self.explore_counter == 0 {
            self.freezing = true;
            self.freezes += 1;
            self.exit_freezing = now + self.cfg.freezing_timeout;
        }
    }

    fn name(&self) -> &'static str {
        "REPS"
    }

    fn last_decision(&self) -> EvDecision {
        self.last_decision
    }

    fn is_frozen(&self) -> bool {
        self.freezing
    }

    /// The EV-lifecycle counters behind the paper's mechanism claims:
    /// recycle rate is `reps_recycled_draws / (fresh + recycled + frozen)`.
    fn diagnostics(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("reps_fresh_draws", self.fresh_draws));
        out.push(("reps_recycled_draws", self.recycled_draws));
        out.push(("reps_frozen_replays", self.frozen_replays));
        out.push(("reps_freezes", self.freezes));
        out.push(("reps_thaws", self.thaws));
        out.push(("reps_valid_entropies", self.num_valid as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(ev: u16, ecn: bool, now: Time) -> AckFeedback {
        AckFeedback {
            ev,
            ecn,
            now,
            cwnd_packets: 16,
            rtt: Time::from_us(10),
        }
    }

    fn reps_small_evs() -> (Reps, Rng64) {
        let cfg = RepsConfig::default().with_evs_size(256);
        (Reps::new(cfg), Rng64::new(99))
    }

    #[test]
    fn explores_randomly_before_any_ack() {
        let (mut reps, mut rng) = reps_small_evs();
        let evs: Vec<u16> = (0..64)
            .map(|_| reps.next_ev(Time::ZERO, &mut rng))
            .collect();
        assert!(evs.iter().all(|&e| (e as u32) < 256));
        // Warm-up must not return a constant value.
        assert!(evs.iter().collect::<std::collections::BTreeSet<_>>().len() > 8);
    }

    #[test]
    fn caches_and_reuses_good_entropies_fifo() {
        let (mut reps, mut rng) = reps_small_evs();
        for (i, ev) in [11u16, 22, 33].iter().enumerate() {
            reps.on_ack(&fb(*ev, false, Time::from_us(i as u64)), &mut rng);
        }
        assert_eq!(reps.valid_entropies(), 3);
        // Oldest first: 11, 22, 33.
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 11);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 22);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 33);
        assert_eq!(reps.valid_entropies(), 0);
    }

    #[test]
    fn ecn_marked_acks_are_discarded() {
        let (mut reps, mut rng) = reps_small_evs();
        reps.on_ack(&fb(50, true, Time::ZERO), &mut rng);
        assert_eq!(reps.valid_entropies(), 0);
        reps.on_ack(&fb(60, false, Time::ZERO), &mut rng);
        assert_eq!(reps.valid_entropies(), 1);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 60);
    }

    #[test]
    fn buffer_wraps_and_overwrites_oldest() {
        let cfg = RepsConfig {
            buffer_size: 4,
            ..RepsConfig::default().with_evs_size(1024)
        };
        let mut reps = Reps::new(cfg);
        let mut rng = Rng64::new(1);
        for ev in 0..6u16 {
            reps.on_ack(&fb(100 + ev, false, Time::ZERO), &mut rng);
        }
        // Buffer of 4, 6 writes: slots hold 104,105,102,103 with all valid
        // capped at 4; oldest valid is 102.
        assert_eq!(reps.valid_entropies(), 4);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 102);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 103);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 104);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 105);
    }

    #[test]
    fn valid_entries_are_used_once() {
        let (mut reps, mut rng) = reps_small_evs();
        reps.on_ack(&fb(77, false, Time::ZERO), &mut rng);
        assert_eq!(reps.next_ev(Time::ZERO, &mut rng), 77);
        // Now invalid and not freezing: must explore, not replay 77 forever.
        let replays = (0..32)
            .filter(|_| reps.next_ev(Time::ZERO, &mut rng) == 77)
            .count();
        assert!(replays < 8, "unexpected replay of a consumed entropy");
    }

    #[test]
    fn timeout_enters_freezing_and_replays_cache() {
        let (mut reps, mut rng) = reps_small_evs();
        for ev in [5u16, 6, 7] {
            reps.on_ack(&fb(ev, false, Time::from_us(1)), &mut rng);
        }
        reps.on_timeout(Time::from_us(2));
        assert!(reps.is_freezing());
        // Consume the three valid entries.
        let mut got = vec![];
        for _ in 0..9 {
            got.push(reps.next_ev(Time::from_us(3), &mut rng));
        }
        // In freezing mode every selection must come from the cache {5,6,7}.
        assert!(got.iter().all(|e| [5, 6, 7].contains(e)), "{got:?}");
    }

    #[test]
    fn freezing_exit_requires_timeout_elapsed_and_ack() {
        let (mut reps, mut rng) = reps_small_evs();
        reps.on_ack(&fb(9, false, Time::from_us(1)), &mut rng);
        reps.on_timeout(Time::from_us(10));
        assert!(reps.is_freezing());
        // ACK before the freezing window elapses: stay frozen.
        reps.on_ack(&fb(10, false, Time::from_us(50)), &mut rng);
        assert!(reps.is_freezing());
        // ACK after: thaw, and seed the exploration counter.
        reps.on_ack(&fb(11, false, Time::from_us(200)), &mut rng);
        assert!(!reps.is_freezing());
    }

    #[test]
    fn post_freezing_exploration_mixes_random_and_cached() {
        let (mut reps, mut rng) = reps_small_evs();
        for ev in [1u16, 2, 3, 4, 5, 6, 7, 8] {
            reps.on_ack(&fb(ev, false, Time::from_us(1)), &mut rng);
        }
        reps.on_timeout(Time::from_us(2));
        reps.on_ack(&fb(40, false, Time::from_us(200)), &mut rng);
        assert!(!reps.is_freezing());
        // cwnd_packets = 16 -> 16 exploration sends; every 8th is random.
        let mut cached = 0;
        let mut total = 0;
        for _ in 0..16 {
            let ev = reps.next_ev(Time::from_us(201), &mut rng);
            total += 1;
            if (1..=8).contains(&ev) || ev == 40 {
                cached += 1;
            }
        }
        assert_eq!(total, 16);
        assert!(cached >= 8, "exploration should still favour cached EVs");
    }

    #[test]
    fn timeout_during_exploration_does_not_refreeze() {
        let (mut reps, mut rng) = reps_small_evs();
        reps.on_ack(&fb(1, false, Time::from_us(1)), &mut rng);
        reps.on_timeout(Time::from_us(2));
        reps.on_ack(&fb(2, false, Time::from_us(200)), &mut rng);
        assert!(!reps.is_freezing());
        // Explore counter is armed; a timeout now must NOT re-freeze
        // (Algorithm 1 line 22 requires exploreCounter == 0).
        reps.on_timeout(Time::from_us(201));
        assert!(!reps.is_freezing());
    }

    #[test]
    fn freezing_disabled_ignores_timeouts() {
        let cfg = RepsConfig::default().without_freezing().with_evs_size(64);
        let mut reps = Reps::new(cfg);
        reps.on_timeout(Time::from_us(5));
        assert!(!reps.is_freezing());
    }

    #[test]
    fn freezing_expires_on_send_path_without_acks() {
        // A sender whose cached entropies all map to the failed path gets no
        // ACKs at all; freezing must still expire (time-based, §3.2) so the
        // sender resumes exploring instead of replaying dead paths forever.
        let (mut reps, mut rng) = reps_small_evs();
        reps.on_ack(&fb(7, false, Time::from_us(1)), &mut rng);
        reps.on_timeout(Time::from_us(10));
        assert!(reps.is_freezing());
        // Well past the freezing window, with no ACK in between:
        let _ = reps.next_ev(Time::from_us(500), &mut rng);
        assert!(!reps.is_freezing(), "freezing must expire without ACKs");
        // And the sender now explores (non-7 EVs appear).
        let evs: Vec<u16> = (0..32)
            .map(|_| reps.next_ev(Time::from_us(501), &mut rng))
            .collect();
        assert!(evs.iter().any(|&e| e != 7), "must explore after thawing");
    }

    #[test]
    fn freezing_before_any_ack_still_returns_valid_evs() {
        let (mut reps, mut rng) = reps_small_evs();
        reps.on_timeout(Time::from_us(1));
        // Nothing cached: selection falls back to random exploration rather
        // than replaying uninitialized slots.
        for _ in 0..16 {
            let ev = reps.next_ev(Time::from_us(2), &mut rng);
            assert!((ev as u32) < 256);
        }
    }

    #[test]
    fn respects_small_evs_sizes() {
        for evs in [16u32, 32, 256] {
            let mut reps = Reps::new(RepsConfig::default().with_evs_size(evs));
            let mut rng = Rng64::new(evs as u64);
            for i in 0..200 {
                let ev = reps.next_ev(Time::from_us(i), &mut rng);
                assert!((ev as u32) < evs, "ev {ev} out of EVS {evs}");
                // Some ACK traffic interleaved.
                if i % 3 == 0 {
                    reps.on_ack(&fb(ev, i % 6 == 0, Time::from_us(i)), &mut rng);
                }
            }
        }
    }

    #[test]
    fn decision_probe_and_diagnostics_track_the_ev_lifecycle() {
        let (mut reps, mut rng) = reps_small_evs();
        // Cold cache: fresh draw.
        let _ = reps.next_ev(Time::ZERO, &mut rng);
        assert_eq!(reps.last_decision(), EvDecision::Fresh);
        // Clean ACK then reuse: recycled.
        reps.on_ack(&fb(42, false, Time::from_us(1)), &mut rng);
        assert_eq!(reps.next_ev(Time::from_us(2), &mut rng), 42);
        assert_eq!(reps.last_decision(), EvDecision::Recycled);
        // Timeout freezes; the next draw replays the (now stale) cache.
        reps.on_timeout(Time::from_us(3));
        assert!(reps.is_frozen());
        assert_eq!(reps.next_ev(Time::from_us(4), &mut rng), 42);
        assert_eq!(reps.last_decision(), EvDecision::FrozenReplay);
        // Thaw via a late ACK.
        reps.on_ack(&fb(43, false, Time::from_us(200)), &mut rng);
        assert!(!reps.is_frozen());
        let mut diag = Vec::new();
        reps.diagnostics(&mut diag);
        let get = |name: &str| {
            diag.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("reps_fresh_draws"), 1);
        assert_eq!(get("reps_recycled_draws"), 1);
        assert_eq!(get("reps_frozen_replays"), 1);
        assert_eq!(get("reps_freezes"), 1);
        assert_eq!(get("reps_thaws"), 1);
        assert_eq!(get("reps_valid_entropies"), 1);
    }

    #[test]
    fn burst_of_acks_all_cached_up_to_buffer_depth() {
        // §3.1: bursts of back-to-back good ACKs must be cached and reusable.
        let (mut reps, mut rng) = reps_small_evs();
        for ev in 0..8u16 {
            reps.on_ack(&fb(ev + 100, false, Time::from_us(1)), &mut rng);
        }
        assert_eq!(reps.valid_entropies(), 8);
        let sent: Vec<u16> = (0..8)
            .map(|_| reps.next_ev(Time::from_us(2), &mut rng))
            .collect();
        assert_eq!(sent, (100..108).collect::<Vec<u16>>());
    }
}
