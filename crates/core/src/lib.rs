//! REPS — Recycled Entropy Packet Spraying.
//!
//! This crate implements the paper's primary contribution: a decentralized,
//! per-packet adaptive load balancer for out-of-order datacenter transports
//! (Bonato et al., *REPS: Recycled Entropy Packet Spraying for Adaptive Load
//! Balancing and Failure Mitigation*, EUROSYS '26).
//!
//! The algorithm caches entropy values (EVs) of uncongested paths in a small
//! circular buffer — about 25 bytes of state per connection regardless of
//! topology size — and recycles them for future packets, falling back to
//! uniform exploration when the cache runs dry. On failure suspicion it
//! enters *freezing mode*, replaying only cached entropies so traffic steers
//! away from black holes within a round-trip or two.
//!
//! # Examples
//!
//! ```
//! use reps::{AckFeedback, LoadBalancer, Reps};
//! use netsim::{Rng64, Time};
//!
//! let mut lb = Reps::default_paper();
//! let mut rng = Rng64::new(7);
//!
//! // Before any feedback REPS explores random entropies.
//! let ev = lb.next_ev(Time::ZERO, &mut rng);
//!
//! // A clean (non-ECN) ACK caches its entropy for reuse...
//! lb.on_ack(
//!     &AckFeedback { ev, ecn: false, now: Time::from_us(10), cwnd_packets: 16, rtt: Time::from_us(10) },
//!     &mut rng,
//! );
//! // ...and the next send recycles it.
//! assert_eq!(lb.next_ev(Time::from_us(11), &mut rng), ev);
//! ```

pub mod footprint;
pub mod lb;
pub mod reps;

pub use lb::{AckFeedback, EvDecision, LoadBalancer};
pub use reps::{Reps, RepsConfig};
