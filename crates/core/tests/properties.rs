//! Property-based tests for the REPS algorithm invariants.

use proptest::prelude::*;

use netsim::rng::Rng64;
use netsim::time::Time;
use reps::lb::{AckFeedback, LoadBalancer};
use reps::reps::{Reps, RepsConfig};

/// A random interaction step against a REPS instance.
#[derive(Debug, Clone)]
enum Step {
    Send,
    Ack { ev: u16, ecn: bool },
    Timeout,
}

fn step_strategy(evs: u32) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => Just(Step::Send),
        3 => (0..evs, any::<bool>()).prop_map(|(ev, ecn)| Step::Ack {
            ev: ev as u16,
            ecn
        }),
        1 => Just(Step::Timeout),
    ]
}

proptest! {
    /// Every entropy REPS emits is within the configured EVS, for any
    /// interleaving of sends, ACKs and timeouts.
    #[test]
    fn emitted_evs_always_in_evs(
        evs_exp in 4u32..16,
        buffer_size in 1usize..16,
        steps in proptest::collection::vec(step_strategy(1 << 12), 1..400),
        seed in any::<u64>(),
    ) {
        let evs = 1u32 << evs_exp.min(12);
        let cfg = RepsConfig {
            buffer_size,
            evs_size: evs,
            ..RepsConfig::default()
        };
        let mut reps = Reps::new(cfg);
        let mut rng = Rng64::new(seed);
        let mut now = Time::ZERO;
        for step in steps {
            now += Time::from_ns(100);
            match step {
                Step::Send => {
                    let ev = reps.next_ev(now, &mut rng);
                    prop_assert!((ev as u32) < evs, "ev {ev} outside EVS {evs}");
                }
                Step::Ack { ev, ecn } => {
                    reps.on_ack(
                        &AckFeedback {
                            ev: (ev as u32 % evs) as u16,
                            ecn,
                            now,
                            cwnd_packets: 16,
                            rtt: Time::from_us(10),
                        },
                        &mut rng,
                    );
                }
                Step::Timeout => reps.on_timeout(now),
            }
        }
    }

    /// The valid-entropy count never exceeds the buffer size, and only clean
    /// ACKs can increase it.
    #[test]
    fn valid_count_bounded_by_buffer(
        buffer_size in 1usize..12,
        steps in proptest::collection::vec(step_strategy(256), 1..300),
        seed in any::<u64>(),
    ) {
        let cfg = RepsConfig {
            buffer_size,
            evs_size: 256,
            ..RepsConfig::default()
        };
        let mut reps = Reps::new(cfg);
        let mut rng = Rng64::new(seed);
        let mut now = Time::ZERO;
        for step in steps {
            now += Time::from_ns(100);
            let before = reps.valid_entropies();
            match step {
                Step::Send => {
                    let _ = reps.next_ev(now, &mut rng);
                    prop_assert!(reps.valid_entropies() <= before,
                        "send must not mint validity");
                }
                Step::Ack { ev, ecn } => {
                    reps.on_ack(
                        &AckFeedback {
                            ev: ev % 256,
                            ecn,
                            now,
                            cwnd_packets: 8,
                            rtt: Time::from_us(10),
                        },
                        &mut rng,
                    );
                    if ecn {
                        prop_assert_eq!(reps.valid_entropies(), before,
                            "marked ACKs are discarded");
                    }
                }
                Step::Timeout => reps.on_timeout(now),
            }
            prop_assert!(reps.valid_entropies() <= buffer_size);
        }
    }

    /// After a burst of k clean ACKs into an empty, quiescent REPS, the next
    /// min(k, buffer) sends replay exactly those entropies FIFO.
    #[test]
    fn clean_ack_burst_replays_fifo(
        evs in proptest::collection::vec(0u16..1024, 1..20),
        seed in any::<u64>(),
    ) {
        let mut reps = Reps::new(RepsConfig {
            evs_size: 1024,
            ..RepsConfig::default()
        });
        let mut rng = Rng64::new(seed);
        for (i, &ev) in evs.iter().enumerate() {
            reps.on_ack(
                &AckFeedback {
                    ev,
                    ecn: false,
                    now: Time::from_us(i as u64),
                    cwnd_packets: 16,
                    rtt: Time::from_us(10),
                },
                &mut rng,
            );
        }
        // The oldest surviving entries are the last `buffer` ACKs, FIFO.
        let n = 8usize;
        let kept: Vec<u16> = if evs.len() <= n {
            evs.clone()
        } else {
            evs[evs.len() - n..].to_vec()
        };
        for expected in kept {
            let got = reps.next_ev(Time::from_us(100), &mut rng);
            prop_assert_eq!(got, expected);
        }
    }

    /// Freezing mode never emits an entropy that was not previously cached
    /// (when at least one clean ACK was cached first).
    #[test]
    fn freezing_only_replays_cached(
        cached in proptest::collection::vec(0u16..512, 1..8),
        sends in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut reps = Reps::new(RepsConfig {
            evs_size: 512,
            ..RepsConfig::default()
        });
        let mut rng = Rng64::new(seed);
        for (i, &ev) in cached.iter().enumerate() {
            reps.on_ack(
                &AckFeedback {
                    ev,
                    ecn: false,
                    now: Time::from_us(i as u64),
                    cwnd_packets: 16,
                    rtt: Time::from_us(10),
                },
                &mut rng,
            );
        }
        reps.on_timeout(Time::from_us(50));
        prop_assert!(reps.is_freezing());
        // All sends inside the freezing window replay cached entropies only.
        for _ in 0..sends {
            let ev = reps.next_ev(Time::from_us(60), &mut rng);
            prop_assert!(cached.contains(&ev),
                "frozen REPS emitted uncached ev {ev}");
        }
    }
}
