//! The discrete-event calendar: a self-tuning two-level calendar queue.
//!
//! # Bakeoff history: how the calendar got here
//!
//! The calendar went through three designs, each benchmarked in
//! `microbench`'s `calendar/*` suite before committing:
//!
//! 1. **`BinaryHeap` of POD entries** (PR 2). Packets were moved out of
//!    line into the engine-owned arena so every heap entry shrank to a
//!    32-byte POD (see [`Entry`]); at that size the std heap beat both a
//!    naive fixed-width bucket ring (~11.2 vs ~8.2 M ops/s in the
//!    hold-4096 model) and a hand-rolled 4-ary heap. The ring lost
//!    because its bucket width was a compile-time guess: with real event
//!    gaps spanning five orders of magnitude (83 ns serializations to
//!    multi-ms failure timers), most pops scanned long runs of empty
//!    buckets or linear-searched overfull ones.
//! 2. **Calendar queue v2** (this module). The ring's two defects are
//!    exactly what the classic calendar-queue design fixes: the bucket
//!    width *self-tunes* from the observed inter-event gap (an EWMA
//!    sampled at pop time) so occupancy stays near one event per bucket,
//!    and an **overflow level** (a small `BinaryHeap` of the same POD
//!    entries) absorbs far-future events — reconvergence timers, failure
//!    schedules, RTOs — that would otherwise force a huge ring horizon.
//!    Width and bucket count are re-tuned when occupancy crosses resize
//!    thresholds; in steady state the calendar allocates nothing (pinned
//!    by the counting-allocator test in `tests/alloc_calendar.rs`).
//!    O(1) push/pop replaces the heap's O(log n) sifts.
//!
//! # Structure
//!
//! * **Ring level**: `buckets.len()` (a power of two) time buckets of
//!   width `2^shift` picoseconds. An event at absolute time `t` belongs
//!   to absolute bucket `t >> shift`; the ring covers the window
//!   `[cur, cur + buckets.len())` of absolute buckets, stored at slot
//!   `abs & mask`. Only the *current* bucket is kept sorted (descending
//!   `(time, seq)`, so `Vec::pop` yields the minimum); other buckets are
//!   unsorted append-only and get sorted once, when the cursor reaches
//!   them.
//! * **Overflow level**: events beyond the ring window go to a min-heap
//!   and migrate into the ring as the cursor advances (one cheap peek
//!   per cursor step), or in bulk when the ring drains and the cursor
//!   jumps to the overflow head.
//! * **Past events**: a push at a time at or before the current bucket
//!   (legal — harnesses schedule control events "now") lands in the
//!   current bucket, where the sort order pops it first.
//!
//! # Total order and batch-drain invariants
//!
//! Pop order is the exact total order on `(time, seq)`: `seq` is unique
//! and assigned at push, so pop order can never depend on bucket layout,
//! width re-tunes, or overflow migrations — simulations stay
//! byte-for-byte reproducible across any calendar re-configuration (the
//! property test in `tests/calendar_order.rs` pins equivalence against a
//! reference binary heap over arbitrary interleaved push/pop sequences,
//! including same-timestamp FIFO ties).
//!
//! [`EventQueue::drain_batch_into`] supports the engine's batched
//! execution: it pops *every* event sharing the earliest pending
//! timestamp in one call. Two invariants make this safe:
//!
//! * events that share a timestamp always share an absolute bucket, so
//!   the batch is one truncation loop on the sorted current bucket;
//! * events pushed *while a batch executes* carry sequence numbers above
//!   every batch member, so same-timestamp newcomers drain in a
//!   follow-up batch, after the current one — exactly where the
//!   one-pop-at-a-time order would put them.
//!
//! The engine's drain helper preserves the order even when a run stops
//! mid-batch: leftovers keep their `(time, seq)` keys and are merged
//! against the calendar head key-by-key on resume (see
//! `Engine::drain_events`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::arena::{PacketRef, Slab};
use crate::ids::{HostId, LinkId, NodeRef, SwitchId};
use crate::time::Time;

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// The egress queue of `link` finished serializing its head packet.
    QueueService {
        /// Link whose queue should transmit.
        link: LinkId,
    },
    /// A packet finished propagating and arrives at `node`.
    Arrive {
        /// Receiving node.
        node: NodeRef,
        /// Handle of the packet in the engine's arena.
        pkt: PacketRef,
    },
    /// A transport timer fires at `host`.
    Timer {
        /// Owning host.
        host: HostId,
        /// Opaque token the endpoint uses to identify the timer.
        token: u64,
    },
    /// A fabric control action.
    Control(ControlEvent),
}

/// Fabric- and experiment-level control events.
#[derive(Debug, Clone, Copy)]
pub enum ControlEvent {
    /// Take a link down (blackhole until up).
    LinkDown(LinkId),
    /// Bring a link back up.
    LinkUp(LinkId),
    /// Change a link's rate to `bps`.
    LinkRate(LinkId, u64),
    /// Set a link's random drop (bit-error) probability.
    LinkBer(LinkId, f64),
    /// Set a link's gray-failure (silent loss) probability; 0.0 heals.
    LinkGray(LinkId, f64),
    /// Set a link's payload-corruption probability; 0.0 heals.
    LinkCorrupt(LinkId, f64),
    /// Fail a whole switch (all attached links go down).
    SwitchDown(SwitchId),
    /// Recover a whole switch.
    SwitchUp(SwitchId),
    /// Re-solve the fluid background-traffic rate shares.
    FluidWake,
    /// Periodic statistics sampling tick.
    StatsSample,
    /// Deliver a start signal to a host endpoint.
    HostStart(HostId),
    /// Opaque experiment-defined event, delivered to the harness callback.
    Custom(u64),
}

/// The compact calendar payload: every variant fits in 12 bytes.
///
/// `Arrive` (the hot variant) is stored directly; the rare wide payloads
/// — a timer's `u64` token, a control event — are parked in side slabs
/// and referenced by index, which keeps the whole [`Entry`] at 32 bytes
/// instead of 40. At a few thousand pending events that is the difference
/// between the bucket arrays living comfortably in L1/L2 or not.
#[derive(Debug, Clone, Copy)]
enum Slot {
    QueueService { link: LinkId },
    Arrive { node: NodeRef, pkt: PacketRef },
    Timer { idx: u32 },
    Control { idx: u32 },
}

/// A calendar entry: POD only, cheap to move through bucket sorts and
/// overflow sifts.
///
/// Kept well under the size of a [`Packet`](crate::packet::Packet) — the
/// `calendar_entries_are_small_pods` test pins the bound so a packet can
/// never creep back inline.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: Time,
    seq: u64,
    slot: Slot,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest `(time, seq)` compares *greatest*. This makes
        // the overflow `BinaryHeap` (a max-heap) pop earliest-first, and an
        // ascending `sort_unstable` of a bucket put the earliest entry at
        // the back, where `Vec::pop` removes it without shifting. `seq` is
        // unique, so this is a *total* order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Fewest ring buckets the calendar keeps (and its initial size).
const MIN_BUCKETS: usize = 16;
/// Most ring buckets a resize may grow to (bounds the ring's memory).
const MAX_BUCKETS: usize = 1 << 16;
/// Narrowest bucket width: 2^6 = 64 ps.
const MIN_SHIFT: u32 = 6;
/// Widest bucket width: 2^40 ps ≈ 1.1 s (also clamps EWMA gap samples).
const MAX_SHIFT: u32 = 40;
/// Starting width before any gap has been observed: 2^16 ps ≈ 65.5 ns,
/// about one MTU serialization at 400 Gbps.
const DEFAULT_SHIFT: u32 = 16;
/// Consecutive underfull pushes required before the ring shrinks (see
/// [`EventQueue`]'s `maybe_resize`).
const SHRINK_STREAK: u32 = 512;
/// log2 of the occupancy a rebuild aims for (~4 events per bucket).
/// Targeting one event per bucket (the textbook calendar) maximizes
/// bucket count and loses to cache misses: every push lands in a random
/// slot of a ring bigger than L2. Wider buckets shrink the ring 4x,
/// keep pushes local, and cost only a slightly longer (still tiny)
/// in-bucket sort at cursor arrival.
const TARGET_OCC_SHIFT: u32 = 3;

/// A deterministic event calendar (two-level, self-tuning — see the
/// module docs for the design and its invariants).
///
/// The rare wide payloads (timer tokens, control events) live in
/// [`Slab`]s so calendar entries stay 32-byte PODs (see [`Slot`]); the
/// slabs recycle slots, so a warmed-up calendar schedules without
/// allocating.
#[derive(Debug)]
pub struct EventQueue {
    /// Ring level: bucket vecs, each holding one bucket-width of events
    /// inside the current window. Physically never shrinks: a rebuild to
    /// fewer buckets just narrows `mask`, leaving the now-inactive slot
    /// vecs (and, crucially, their capacities) parked for the next grow —
    /// this is what keeps resize oscillation allocation-free after the
    /// ring's high-water mark is reached.
    buckets: Vec<Vec<Entry>>,
    /// `active_buckets - 1` where `active_buckets` is the power of two
    /// currently in use (≤ `buckets.len()`); masks absolute bucket
    /// numbers to slots.
    mask: u64,
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// Absolute bucket number (`time >> shift`) the cursor is draining.
    cur: u64,
    /// Whether the current bucket is sorted (see [`Entry::cmp`]).
    cur_sorted: bool,
    /// Events held in ring buckets.
    ring_len: usize,
    /// Overflow level: events beyond the ring window, earliest on top.
    overflow: BinaryHeap<Entry>,
    timers: Slab<(HostId, u64)>,
    controls: Slab<ControlEvent>,
    seq: u64,
    /// EWMA of observed non-zero inter-pop gaps, in picoseconds; the
    /// width self-tunes from this at resize time.
    gap_ewma: u64,
    /// Time of the most recent pop (EWMA sampling point).
    last_pop: Time,
    /// Whether `last_pop` is valid yet.
    popped_any: bool,
    /// Consecutive pushes that saw the ring underfull (shrink hysteresis).
    underflow_streak: u32,
    /// Rebuild scratch; retains capacity so resizes churn one buffer.
    rebuild_scratch: Vec<Entry>,
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            shift: DEFAULT_SHIFT,
            cur: 0,
            cur_sorted: false,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            timers: Slab::default(),
            controls: Slab::default(),
            seq: 0,
            gap_ewma: 1 << DEFAULT_SHIFT,
            last_pop: Time::ZERO,
            popped_any: false,
            underflow_streak: 0,
            rebuild_scratch: Vec::new(),
        }
    }
}

impl EventQueue {
    /// Creates an empty calendar.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Time, event: Event) {
        let slot = match event {
            Event::QueueService { link } => Slot::QueueService { link },
            Event::Arrive { node, pkt } => Slot::Arrive { node, pkt },
            Event::Timer { host, token } => Slot::Timer {
                idx: self.timers.insert((host, token)),
            },
            Event::Control(c) => Slot::Control {
                idx: self.controls.insert(c),
            },
        };
        let seq = self.seq;
        self.seq += 1;
        if self.ring_len == 0 && self.overflow.is_empty() {
            // Empty calendar: re-anchor the window at the event so a long
            // quiet gap cannot strand the cursor far behind.
            self.cur = at.as_ps() >> self.shift;
            self.cur_sorted = false;
        }
        self.place(Entry {
            time: at,
            seq,
            slot,
        });
        self.maybe_resize();
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        if !self.advance() {
            return None;
        }
        let idx = (self.cur & self.mask) as usize;
        let e = self.buckets[idx].pop().expect("advance found entries");
        self.ring_len -= 1;
        self.note_pop(e.time);
        Some((e.time, self.resolve(e.slot)))
    }

    /// Pops *every* event sharing the earliest pending timestamp,
    /// appending `(time, seq, event)` triples to `out` in pop order.
    /// Returns the batch timestamp, or `None` when the calendar is empty.
    ///
    /// `seq` is the FIFO tie-break token: callers that buffer a batch and
    /// may stop mid-way (the engine's drain helper) use it to merge
    /// leftovers against later calendar heads in exact `(time, seq)`
    /// order. See the module docs for why the batch is always contained
    /// in one bucket.
    pub fn drain_batch_into(&mut self, out: &mut Vec<(Time, u64, Event)>) -> Option<Time> {
        if !self.advance() {
            return None;
        }
        let idx = (self.cur & self.mask) as usize;
        let bucket = &self.buckets[idx];
        let len = bucket.len();
        let t = bucket[len - 1].time;
        // Sorted descending `(time, seq)`, so the same-timestamp batch is
        // exactly the suffix `[cut, len)`; walk it back-to-front for
        // ascending seqs, then cut it off in one truncate.
        let cut = bucket.partition_point(|e| e.time > t);
        for i in (cut..len).rev() {
            let e = self.buckets[idx][i];
            let ev = self.resolve(e.slot);
            out.push((t, e.seq, ev));
        }
        self.buckets[idx].truncate(cut);
        self.ring_len -= len - cut;
        self.note_pop(t);
        Some(t)
    }

    /// Returns the time of the next event without removing it.
    ///
    /// Takes `&mut self`: peeking may advance the cursor, sort the bucket
    /// it lands on and migrate overflow entries — all order-neutral.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    /// Returns the `(time, seq)` key of the next event without removing
    /// it (see [`EventQueue::drain_batch_into`] for what `seq` is for).
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        if !self.advance() {
            return None;
        }
        let e = self.buckets[(self.cur & self.mask) as usize]
            .last()
            .expect("advance found entries");
        Some((e.time, e.seq))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Debug-only invariant: whenever `cur_sorted` holds, the current
    /// bucket really is sorted ascending in [`Entry`]'s (reversed) order —
    /// strictly, since `(time, seq)` keys are unique — with the earliest
    /// entry at the back where `Vec::pop` takes it. Every path that files
    /// into or sorts the current bucket re-checks this.
    fn debug_assert_cur_bucket_sorted(&self) {
        if cfg!(debug_assertions) && self.cur_sorted {
            let bucket = &self.buckets[(self.cur & self.mask) as usize];
            debug_assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "current bucket lost its sort order"
            );
        }
    }

    /// Reconstructs the public event from a slot payload.
    fn resolve(&mut self, slot: Slot) -> Event {
        match slot {
            Slot::QueueService { link } => Event::QueueService { link },
            Slot::Arrive { node, pkt } => Event::Arrive { node, pkt },
            Slot::Timer { idx } => {
                let (host, token) = self.timers.take(idx);
                Event::Timer { host, token }
            }
            Slot::Control { idx } => Event::Control(self.controls.take(idx)),
        }
    }

    /// Files an entry into the ring or the overflow level. Does not touch
    /// the empty-calendar anchor or the resize thresholds — `push` does.
    fn place(&mut self, entry: Entry) {
        let abs = entry.time.as_ps() >> self.shift;
        // No overflow: `cur <= 2^58` (a time in ps shifted right by at
        // least MIN_SHIFT) and the active bucket count is at most 2^16.
        if abs > self.cur + self.mask {
            self.overflow.push(entry);
            return;
        }
        self.ring_len += 1;
        // Past-time pushes (abs < cur) land in the current bucket, where
        // the sort order pops them first.
        let idx = (abs.max(self.cur) & self.mask) as usize;
        let bucket = &mut self.buckets[idx];
        if self.cur_sorted && idx == (self.cur & self.mask) as usize {
            // The bucket being drained stays sorted: binary-search insert.
            let pos = bucket.partition_point(|e| *e < entry);
            bucket.insert(pos, entry);
            self.debug_assert_cur_bucket_sorted();
        } else {
            bucket.push(entry);
        }
    }

    /// Positions the cursor on the bucket holding the earliest event and
    /// sorts it. Returns `false` when the calendar is empty.
    fn advance(&mut self) -> bool {
        if self.ring_len == 0 {
            let Some(head) = self.overflow.peek() else {
                return false;
            };
            // Ring drained: jump the window to the overflow head (always
            // forward — overflow entries were beyond the window when
            // filed) and migrate everything now inside it.
            self.cur = head.time.as_ps() >> self.shift;
            self.cur_sorted = false;
            self.migrate();
            debug_assert!(self.ring_len > 0, "migration must land the head");
        }
        loop {
            let idx = (self.cur & self.mask) as usize;
            if !self.buckets[idx].is_empty() {
                if !self.cur_sorted {
                    self.buckets[idx].sort_unstable();
                    self.cur_sorted = true;
                }
                self.debug_assert_cur_bucket_sorted();
                return true;
            }
            self.cur += 1;
            self.cur_sorted = false;
            self.migrate();
        }
    }

    /// Pulls overflow events that fall inside the ring window after a
    /// cursor step or jump. One heap peek when nothing qualifies.
    fn migrate(&mut self) {
        let horizon = self.cur + self.mask + 1;
        while let Some(head) = self.overflow.peek() {
            if head.time.as_ps() >> self.shift >= horizon {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            self.ring_len += 1;
            let abs = e.time.as_ps() >> self.shift;
            let idx = (abs.max(self.cur) & self.mask) as usize;
            let bucket = &mut self.buckets[idx];
            if self.cur_sorted && idx == (self.cur & self.mask) as usize {
                let pos = bucket.partition_point(|x| *x < e);
                bucket.insert(pos, e);
            } else {
                bucket.push(e);
            }
        }
        // Everything still overflowing must be beyond the ring horizon —
        // otherwise `advance` could pop a ring entry that a stranded
        // overflow entry should have preceded.
        debug_assert!(
            self.overflow
                .peek()
                .is_none_or(|h| h.time.as_ps() >> self.shift >= horizon),
            "overflow head left inside the ring window after migrate"
        );
        self.debug_assert_cur_bucket_sorted();
    }

    /// Samples the inter-pop gap EWMA the width self-tunes from.
    /// Same-timestamp batches count as one sample point, so dense bursts
    /// cannot drive the width to zero.
    fn note_pop(&mut self, t: Time) {
        if t > self.last_pop {
            if self.popped_any {
                let gap = (t - self.last_pop).as_ps().min(1 << MAX_SHIFT);
                self.gap_ewma = (self.gap_ewma * 7 + gap) / 8;
            }
            self.last_pop = t;
        }
        self.popped_any = true;
    }

    /// Resizes when occupancy crosses the grow/shrink thresholds — the
    /// only points where the calendar touches the allocator in steady
    /// state (`tests/alloc_calendar.rs` pins this).
    ///
    /// Growth is immediate (an overfull ring degrades every pop), but a
    /// shrink needs the underflow to hold for [`SHRINK_STREAK`]
    /// consecutive pushes: a cyclic workload (burst, drain, repeat) dips
    /// under the threshold at every drain tail, and shrinking there would
    /// re-tune the width each cycle — remapping events onto bucket slots
    /// whose capacity never warmed, allocating in steady state. With the
    /// streak, cyclic load settles into one stable configuration.
    fn maybe_resize(&mut self) {
        let len = self.len();
        let nb = (self.mask + 1) as usize;
        if len > nb << (TARGET_OCC_SHIFT + 2) && nb < MAX_BUCKETS {
            self.underflow_streak = 0;
            self.rebuild(len);
        } else if nb > MIN_BUCKETS && len < nb / 4 {
            self.underflow_streak += 1;
            if self.underflow_streak >= SHRINK_STREAK {
                self.underflow_streak = 0;
                self.rebuild(len);
            }
        } else {
            self.underflow_streak = 0;
        }
    }

    /// Re-tunes width from the gap EWMA, resizes the ring toward one
    /// event per bucket, and re-files every pending entry. Order-neutral:
    /// entries keep their `(time, seq)` keys.
    fn rebuild(&mut self, len: usize) {
        let target = (len >> TARGET_OCC_SHIFT)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.popped_any {
            // Bucket width = 2^TARGET_OCC_SHIFT observed gaps.
            self.shift =
                (self.gap_ewma.max(1).ilog2() + TARGET_OCC_SHIFT).clamp(MIN_SHIFT, MAX_SHIFT);
        }
        let mut scratch = std::mem::take(&mut self.rebuild_scratch);
        scratch.clear();
        for b in &mut self.buckets {
            scratch.append(b);
        }
        scratch.extend(self.overflow.drain());
        // Grow the physical ring only past its high-water mark; shrinks
        // just narrow the mask so parked slot vecs keep their capacity.
        if target > self.buckets.len() {
            self.buckets.resize_with(target, Vec::new);
        }
        self.mask = (target - 1) as u64;
        self.ring_len = 0;
        // Re-anchor at the earliest pending entry so nothing is filed as
        // a past-time straggler.
        self.cur = scratch
            .iter()
            .map(|e| e.time.as_ps() >> self.shift)
            .min()
            .unwrap_or(0);
        self.cur_sorted = false;
        for entry in scratch.drain(..) {
            self.place(entry);
        }
        self.rebuild_scratch = scratch;
        // Occupancy accounting: a rebuild re-files entries between levels
        // but must never lose or duplicate one.
        debug_assert_eq!(
            self.ring_len + self.overflow.len(),
            len,
            "rebuild changed the pending-event count"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn timer(host: u32, token: u64) -> Event {
        Event::Timer {
            host: HostId(host),
            token,
        }
    }

    fn token_of(e: Event) -> u64 {
        match e {
            Event::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), timer(0, 3));
        q.push(Time::from_ns(10), timer(0, 1));
        q.push(Time::from_ns(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), timer(0, 0));
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn arrivals_carry_their_arena_handle() {
        let mut q = EventQueue::new();
        q.push(
            Time::from_ns(20),
            Event::Arrive {
                node: NodeRef::Host(HostId(1)),
                pkt: PacketRef(2),
            },
        );
        q.push(
            Time::from_ns(10),
            Event::Arrive {
                node: NodeRef::Host(HostId(1)),
                pkt: PacketRef(1),
            },
        );
        q.push(Time::from_ns(15), timer(0, 7));
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrive { pkt, .. } => pkt.0 as u64,
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 7, 2]);
    }

    #[test]
    fn calendar_entries_are_small_pods() {
        // The point of the arena indirection: bucket sorts and overflow
        // sifts move fixed-size entries, never packets. Pin the bound so
        // a packet can't creep back inline.
        assert!(
            std::mem::size_of::<Entry>() <= 32,
            "calendar entry grew to {} bytes",
            std::mem::size_of::<Entry>()
        );
        assert!(std::mem::size_of::<Entry>() < std::mem::size_of::<Packet>());
    }

    #[test]
    fn far_future_events_take_the_overflow_level_and_come_back() {
        let mut q = EventQueue::new();
        // Way beyond the initial 16-bucket × 65.5 ns window.
        q.push(Time::from_ms(50), timer(0, 3));
        q.push(Time::from_secs(2), timer(0, 4));
        q.push(Time::from_ns(10), timer(0, 1));
        q.push(Time::from_us(1), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn past_time_pushes_pop_first() {
        let mut q = EventQueue::new();
        q.push(Time::from_us(100), timer(0, 2));
        // Drain the cursor up to 100us territory, then schedule earlier.
        assert_eq!(q.peek_time(), Some(Time::from_us(100)));
        q.push(Time::from_ns(1), timer(0, 1));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn drain_batch_takes_exactly_the_tied_timestamp() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(20), timer(0, 10));
        q.push(Time::from_ns(10), timer(0, 0));
        q.push(Time::from_ns(10), timer(0, 1));
        q.push(Time::from_ns(10), timer(0, 2));
        let mut batch = Vec::new();
        assert_eq!(q.drain_batch_into(&mut batch), Some(Time::from_ns(10)));
        let tokens: Vec<u64> = batch.iter().map(|&(_, _, e)| token_of(e)).collect();
        assert_eq!(tokens, vec![0, 1, 2]);
        // Seqs come out ascending — the FIFO tie-break is preserved.
        assert!(batch.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(q.len(), 1);
        batch.clear();
        assert_eq!(q.drain_batch_into(&mut batch), Some(Time::from_ns(20)));
        assert_eq!(batch.len(), 1);
        assert_eq!(q.drain_batch_into(&mut batch), None);
    }

    #[test]
    fn occupancy_resizes_keep_the_order() {
        // Grow well past several resize thresholds, interleaving pops so
        // the gap EWMA has samples, then drain and check global order.
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut x = 0x9E37_79B9u64;
        for token in 0..5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = x % 1_000_000_000; // 0..1ms in ps
            q.push(Time::from_ps(t), timer(0, token));
            expect.push((t, token));
        }
        // Total order: (time, push order).
        expect.sort();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.as_ps(), token_of(e)))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empties_and_refills_across_quiet_gaps() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            // Each round jumps the clock far ahead of the previous window.
            let base = Time::from_ms(round * 10);
            q.push(base + Time::from_ns(5), timer(0, round * 2 + 1));
            q.push(base, timer(0, round * 2));
            assert_eq!(token_of(q.pop().unwrap().1), round * 2);
            assert_eq!(token_of(q.pop().unwrap().1), round * 2 + 1);
            assert!(q.is_empty());
        }
    }
}
