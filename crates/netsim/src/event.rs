//! The discrete-event calendar.
//!
//! A binary heap keyed on `(time, insertion sequence)` gives deterministic
//! FIFO tie-breaking for simultaneous events, which keeps whole simulations
//! reproducible for a fixed seed.
//!
//! # POD entries, arena-indexed packets
//!
//! A binary heap moves entries through every sift, so calendar entries
//! must stay small. [`Packet`]s are ~100 bytes (the `Body::Ack` variant
//! carries two `Vec`s); instead of storing them inline, an `Arrive` event
//! carries a 4-byte [`PacketRef`] into the engine-owned
//! [`PacketArena`](crate::arena::PacketArena), shrinking every heap entry
//! to a fixed-size POD: `(time, seq, discriminant + small payload)`.
//!
//! FIFO tie-break semantics are exactly the pre-refactor ones — the
//! `(time, seq)` key is assigned at push time as before, and `seq` is
//! unique, so the key is a *total* order: pop order can never depend on
//! the heap's internal layout, and simulations stay byte-for-byte
//! reproducible across the refactor (the sweep determinism suite and the
//! golden-output tests pin this).
//!
//! Both a bucketed-ring calendar and a hand-rolled 4-ary heap were
//! benchmarked against `std::BinaryHeap` over these POD entries before
//! committing (`microbench`'s `calendar/*` suite): with packets out of
//! line the std heap won the hold-model benchmark outright (~10.2 vs
//! ~6.9 M ops/s for the ring and ~6.5 M for the 4-ary variant on the
//! reference box) while needing no bucket-width tuning, no horizon bound
//! and no overflow path — so the std heap stays.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::arena::{PacketRef, Slab};
use crate::ids::{HostId, LinkId, NodeRef, SwitchId};
use crate::time::Time;

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// The egress queue of `link` finished serializing its head packet.
    QueueService {
        /// Link whose queue should transmit.
        link: LinkId,
    },
    /// A packet finished propagating and arrives at `node`.
    Arrive {
        /// Receiving node.
        node: NodeRef,
        /// Handle of the packet in the engine's arena.
        pkt: PacketRef,
    },
    /// A transport timer fires at `host`.
    Timer {
        /// Owning host.
        host: HostId,
        /// Opaque token the endpoint uses to identify the timer.
        token: u64,
    },
    /// A fabric control action.
    Control(ControlEvent),
}

/// Fabric- and experiment-level control events.
#[derive(Debug, Clone, Copy)]
pub enum ControlEvent {
    /// Take a link down (blackhole until up).
    LinkDown(LinkId),
    /// Bring a link back up.
    LinkUp(LinkId),
    /// Change a link's rate to `bps`.
    LinkRate(LinkId, u64),
    /// Set a link's random drop (bit-error) probability.
    LinkBer(LinkId, f64),
    /// Fail a whole switch (all attached links go down).
    SwitchDown(SwitchId),
    /// Recover a whole switch.
    SwitchUp(SwitchId),
    /// Periodic statistics sampling tick.
    StatsSample,
    /// Deliver a start signal to a host endpoint.
    HostStart(HostId),
    /// Opaque experiment-defined event, delivered to the harness callback.
    Custom(u64),
}

/// The compact heap payload: every variant fits in 12 bytes.
///
/// `Arrive` (the hot variant) is stored directly; the rare wide payloads
/// — a timer's `u64` token, a control event — are parked in side slabs
/// and referenced by index, which keeps the whole [`Entry`] at 32 bytes
/// instead of 40. At a few thousand pending events that is the difference
/// between the heap array living comfortably in L1/L2 or not.
#[derive(Debug, Clone, Copy)]
enum Slot {
    QueueService { link: LinkId },
    Arrive { node: NodeRef, pkt: PacketRef },
    Timer { idx: u32 },
    Control { idx: u32 },
}

/// A heap entry: POD only, cheap to move through sifts.
///
/// Kept well under the size of a [`Packet`] — the
/// `heap_entries_are_small_pods` test pins the bound so a packet can never
/// creep back inline.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: Time,
    seq: u64,
    slot: Slot,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the binary heap is a max-heap, we want earliest first.
        // `seq` is unique, so this is a *total* order: pop order can never
        // depend on the heap's internal shape.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar.
///
/// The rare wide payloads (timer tokens, control events) live in
/// [`Slab`]s so heap entries stay 32-byte PODs (see [`Slot`]); the slabs
/// recycle slots, so a warmed-up calendar schedules without allocating.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    timers: Slab<(HostId, u64)>,
    controls: Slab<ControlEvent>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty calendar.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Time, event: Event) {
        let slot = match event {
            Event::QueueService { link } => Slot::QueueService { link },
            Event::Arrive { node, pkt } => Slot::Arrive { node, pkt },
            Event::Timer { host, token } => Slot::Timer {
                idx: self.timers.insert((host, token)),
            },
            Event::Control(c) => Slot::Control {
                idx: self.controls.insert(c),
            },
        };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            slot,
        });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let e = self.heap.pop()?;
        let event = match e.slot {
            Slot::QueueService { link } => Event::QueueService { link },
            Slot::Arrive { node, pkt } => Event::Arrive { node, pkt },
            Slot::Timer { idx } => {
                let (host, token) = self.timers.take(idx);
                Event::Timer { host, token }
            }
            Slot::Control { idx } => Event::Control(self.controls.take(idx)),
        };
        Some((e.time, event))
    }

    /// Returns the time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn timer(host: u32, token: u64) -> Event {
        Event::Timer {
            host: HostId(host),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), timer(0, 3));
        q.push(Time::from_ns(10), timer(0, 1));
        q.push(Time::from_ns(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), timer(0, 0));
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn arrivals_carry_their_arena_handle() {
        let mut q = EventQueue::new();
        q.push(
            Time::from_ns(20),
            Event::Arrive {
                node: NodeRef::Host(HostId(1)),
                pkt: PacketRef(2),
            },
        );
        q.push(
            Time::from_ns(10),
            Event::Arrive {
                node: NodeRef::Host(HostId(1)),
                pkt: PacketRef(1),
            },
        );
        q.push(Time::from_ns(15), timer(0, 7));
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrive { pkt, .. } => pkt.0 as u64,
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 7, 2]);
    }

    #[test]
    fn heap_entries_are_small_pods() {
        // The point of the arena indirection: heap sifts move fixed-size
        // entries, never packets. Pin the bound so a packet can't creep
        // back inline.
        assert!(
            std::mem::size_of::<Entry>() <= 32,
            "calendar entry grew to {} bytes",
            std::mem::size_of::<Entry>()
        );
        assert!(std::mem::size_of::<Entry>() < std::mem::size_of::<Packet>());
    }
}
