//! The discrete-event calendar.
//!
//! A binary heap keyed on `(time, insertion sequence)` gives deterministic
//! FIFO tie-breaking for simultaneous events, which keeps whole simulations
//! reproducible for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ids::{HostId, LinkId, NodeRef, SwitchId};
use crate::packet::Packet;
use crate::time::Time;

/// A scheduled simulator event.
#[derive(Debug, Clone)]
pub enum Event {
    /// The egress queue of `link` finished serializing its head packet.
    QueueService {
        /// Link whose queue should transmit.
        link: LinkId,
    },
    /// A packet finished propagating and arrives at `node`.
    Arrive {
        /// Receiving node.
        node: NodeRef,
        /// The packet.
        pkt: Packet,
    },
    /// A transport timer fires at `host`.
    Timer {
        /// Owning host.
        host: HostId,
        /// Opaque token the endpoint uses to identify the timer.
        token: u64,
    },
    /// A fabric control action.
    Control(ControlEvent),
}

/// Fabric- and experiment-level control events.
#[derive(Debug, Clone)]
pub enum ControlEvent {
    /// Take a link down (blackhole until up).
    LinkDown(LinkId),
    /// Bring a link back up.
    LinkUp(LinkId),
    /// Change a link's rate to `bps`.
    LinkRate(LinkId, u64),
    /// Set a link's random drop (bit-error) probability.
    LinkBer(LinkId, f64),
    /// Fail a whole switch (all attached links go down).
    SwitchDown(SwitchId),
    /// Recover a whole switch.
    SwitchUp(SwitchId),
    /// Periodic statistics sampling tick.
    StatsSample,
    /// Deliver a start signal to a host endpoint.
    HostStart(HostId),
    /// Opaque experiment-defined event, delivered to the harness callback.
    Custom(u64),
}

#[derive(Debug)]
struct Entry {
    time: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the binary heap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty calendar.
    pub fn new() -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Time, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(host: u32, token: u64) -> Event {
        Event::Timer {
            host: HostId(host),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), timer(0, 3));
        q.push(Time::from_ns(10), timer(0, 1));
        q.push(Time::from_ns(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), timer(0, 0));
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
