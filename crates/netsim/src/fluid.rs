//! Fluid (flow-level) background traffic: analytic max-min rate shares
//! coexisting with packet-level foreground flows in one engine.
//!
//! The hybrid-fidelity split: REPS/OPS foreground behavior — the thing the
//! paper measures — stays packet-accurate, while background flows become a
//! fluid model that progresses in *closed form* between control events. A
//! [`FluidNet`] holds the background flow population; on every control
//! event that can change capacity (flow arrival, flow departure, link or
//! switch failure/recovery, rate change) the engine calls
//! [`FluidNet::resolve`], which
//!
//! 1. advances every active flow by `floor(rate · Δt / 8e12)` bytes,
//! 2. completes flows that ran out of bytes (exact: the wake the solver
//!    schedules at `ceil(remaining · 8e12 / rate)` guarantees the floor
//!    progression reaches zero at that instant),
//! 3. admits flows whose start time has arrived,
//! 4. re-solves max-min fair shares by integer water-filling, and
//! 5. reports the per-link background-rate deltas so the engine can fold
//!    them into each [`Link`](crate::link::Link)'s *effective* service
//!    rate (foreground packets see background load as reduced rate plus a
//!    deterministic queue-delay term — see `Link::set_background`).
//!
//! Rates are never recomputed per packet, and the solver never touches the
//! allocator in steady state: every table lives in generation-stamped
//! scratch buffers that retain their high-water capacity across resolves.
//! All arithmetic is integer picoseconds/bytes/bps (`u128` intermediates)
//! — no floats, no RNG — so hybrid cells stay byte-deterministic across
//! `--threads` and `--shard` splits.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::hash::ecmp_select;
use crate::ids::{FlowId, HostId, LinkId, NodeRef};
use crate::link::Link;
use crate::stats::FlowRecord;
use crate::time::Time;
use crate::topology::{RouteChoice, Topology};

/// Longest path a fluid flow can take (3-tier: host-up, ToR-up, T1-up,
/// core-down, T1-down, ToR-down).
pub const MAX_PATH: usize = 6;

/// Largest share of a link's rate the background may claim, in parts per
/// million. Keeps the residual rate foreground packets see strictly
/// positive and bounds the queue-delay term's denominator away from zero.
pub const MAX_BG_SHARE_PPM: u64 = 950_000;

/// Picoseconds-per-second times bits-per-byte: the bytes ↔ (bps × ps)
/// conversion constant.
const PS_PER_SEC_BITS: u128 = 8 * 1_000_000_000_000;

/// One background flow.
#[derive(Debug, Clone, Copy)]
struct FluidFlow {
    /// Flow id (also the entropy source for its deterministic path).
    id: u32,
    src: HostId,
    dst: HostId,
    /// Message size in bytes.
    bytes: u64,
    /// Arrival instant.
    start: Time,
    /// Bytes still to transfer.
    remaining: u64,
    /// Current max-min share in bits/s (0 while the path is down).
    rate_bps: u64,
    /// The fixed path, chosen once at admission-table build time.
    path: [LinkId; MAX_PATH],
    path_len: u8,
    /// Solver scratch: true once this flow's rate is frozen this solve.
    frozen: bool,
}

/// Counters surfaced through `--diagnostics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FluidCounters {
    /// Solver invocations ([`FluidNet::resolve`] calls).
    pub resolves: u64,
    /// Background flows admitted so far.
    pub admitted: u64,
    /// Background flows completed so far.
    pub completed: u64,
    /// Per-link residual-rate updates applied across all resolves.
    pub residual_updates: u64,
}

/// The background-flow population and its event-driven max-min solver.
#[derive(Debug)]
pub struct FluidNet {
    /// All background flows, sorted by `(start, id)` after [`FluidNet::finalize`].
    flows: Vec<FluidFlow>,
    /// Indices into `flows` of admitted, unfinished flows.
    active: Vec<u32>,
    /// First not-yet-admitted index into `flows`.
    next_arrival: usize,
    /// Instant the closed-form progression last ran to.
    last_advance: Time,
    /// Earliest `FluidWake` currently on the engine calendar (dedup so a
    /// burst of control events does not flood the calendar with wakes).
    pub(crate) scheduled_wake: Time,
    /// Persistent per-link background rate in bps (what the engine last
    /// applied), indexed by link.
    link_bg: Vec<u64>,
    /// Generation stamp per link (scratch validity marker).
    stamp: Vec<u32>,
    gen: u32,
    /// Links touched by the current active set (scratch).
    touched: Vec<u32>,
    /// Links touched by the previous solve (to zero departures).
    prev_touched: Vec<u32>,
    /// Water-filling scratch, valid where `stamp == gen`.
    cap: Vec<u64>,
    nflows: Vec<u32>,
    new_bg: Vec<u64>,
    /// CSR per-link flow lists (scratch): `flow_of[flow_start[li]..
    /// flow_start[li] + nflows0[li]]` are the active flows crossing `li`.
    flow_start: Vec<u32>,
    nflows0: Vec<u32>,
    flow_of: Vec<u32>,
    /// Lazy min-heap of `(fair_share, link)` candidates; stale entries are
    /// detected by recomputing the share at pop time.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Links whose background rate changed in the last resolve.
    changed: Vec<u32>,
    /// Completions produced by the last resolve, in admission order.
    completions: Vec<FlowRecord>,
    /// Diagnostics counters.
    pub counters: FluidCounters,
}

impl FluidNet {
    /// An empty background population over a fabric with `n_links` links.
    pub fn new(n_links: usize) -> FluidNet {
        FluidNet {
            flows: Vec::new(),
            active: Vec::new(),
            next_arrival: 0,
            last_advance: Time::ZERO,
            scheduled_wake: Time::ZERO,
            link_bg: vec![0; n_links],
            stamp: vec![0; n_links],
            gen: 0,
            touched: Vec::new(),
            prev_touched: Vec::new(),
            cap: vec![0; n_links],
            nflows: vec![0; n_links],
            new_bg: vec![0; n_links],
            flow_start: vec![0; n_links],
            nflows0: vec![0; n_links],
            flow_of: Vec::new(),
            heap: BinaryHeap::new(),
            changed: Vec::new(),
            completions: Vec::new(),
            counters: FluidCounters::default(),
        }
    }

    /// Adds a background flow. The path is fixed at add time: the same
    /// up/down walk a packet takes, with the flow id as the entropy value
    /// at every ECMP ascent — deterministic, RNG-free.
    pub fn add_flow(
        &mut self,
        topo: &Topology,
        id: u32,
        src: HostId,
        dst: HostId,
        bytes: u64,
        start: Time,
    ) {
        let (path, path_len) = path_for(topo, src, dst, flow_entropy(id));
        self.flows.push(FluidFlow {
            id,
            src,
            dst,
            bytes,
            start,
            remaining: bytes,
            rate_bps: 0,
            path,
            path_len,
            frozen: false,
        });
    }

    /// Sorts the admission table; must be called once after the last
    /// [`FluidNet::add_flow`] and before the first [`FluidNet::resolve`].
    pub fn finalize(&mut self) {
        self.flows.sort_by_key(|f| (f.start, f.id));
        self.next_arrival = 0;
    }

    /// Number of flows in the admission table.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of currently active background flows.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The next instant the background state changes on its own: the
    /// earliest predicted completion or the next arrival. `None` once the
    /// population is drained.
    pub fn next_event(&self) -> Option<Time> {
        let mut next: Option<Time> = None;
        for &fi in &self.active {
            let f = &self.flows[fi as usize];
            if f.rate_bps == 0 {
                continue; // path down; re-predicted on recovery
            }
            let need = f.remaining as u128 * PS_PER_SEC_BITS;
            let dt = need.div_ceil(f.rate_bps as u128) as u64;
            let t = self.last_advance + Time::from_ps(dt);
            next = Some(next.map_or(t, |n: Time| n.min(t)));
        }
        if let Some(f) = self.flows.get(self.next_arrival) {
            let t = f.start;
            next = Some(next.map_or(t, |n: Time| n.min(t)));
        }
        next
    }

    /// Links whose background rate changed in the last resolve.
    pub fn changed(&self) -> &[u32] {
        &self.changed
    }

    /// The background rate currently assigned to `link`.
    pub fn link_bg(&self, link: LinkId) -> u64 {
        self.link_bg[link.index()]
    }

    /// Drains the completions the last resolve produced.
    pub fn drain_completions(&mut self) -> std::vec::Drain<'_, FlowRecord> {
        self.completions.drain(..)
    }

    /// Advances, completes, admits and re-solves at `now`. Returns
    /// `(active_flows, links_updated)` for the trace probe.
    ///
    /// Allocation-free in steady state: every buffer retains capacity.
    pub fn resolve(&mut self, now: Time, links: &[Link]) -> (u32, u32) {
        self.counters.resolves += 1;
        // 1. Closed-form progression since the last control event.
        let dt = (now - self.last_advance).as_ps() as u128;
        if dt > 0 {
            for &fi in &self.active {
                let f = &mut self.flows[fi as usize];
                let sent = (f.rate_bps as u128 * dt / PS_PER_SEC_BITS) as u64;
                f.remaining = f.remaining.saturating_sub(sent);
            }
        }
        self.last_advance = now;
        // 2. Completions (in admission order — `active` preserves it).
        let flows = &self.flows;
        let completions = &mut self.completions;
        let completed = &mut self.counters.completed;
        self.active.retain(|&fi| {
            let f = &flows[fi as usize];
            if f.remaining == 0 {
                completions.push(FlowRecord {
                    flow: FlowId(f.id),
                    src: f.src,
                    dst: f.dst,
                    bytes: f.bytes,
                    start: f.start,
                    end: now,
                    retransmissions: 0,
                });
                *completed += 1;
                false
            } else {
                true
            }
        });
        // 3. Admissions.
        while self
            .flows
            .get(self.next_arrival)
            .is_some_and(|f| f.start <= now)
        {
            self.active.push(self.next_arrival as u32);
            self.next_arrival += 1;
            self.counters.admitted += 1;
        }
        // 4. Max-min fair shares by integer water-filling.
        self.solve(links);
        // 5. Per-link deltas for the engine to apply.
        self.collect_changes();
        self.counters.residual_updates += self.changed.len() as u64;
        (self.active.len() as u32, self.changed.len() as u32)
    }

    /// Integer water-filling: repeatedly take the tightest link (smallest
    /// `capacity / unfrozen-flow-count`), freeze every unfrozen flow that
    /// crosses it at that fair share, and charge the share to the rest of
    /// each frozen flow's path.
    ///
    /// The bottleneck order comes from a lazy min-heap of
    /// `(share, link)` candidates: freezing a flow re-pushes its other
    /// path links with their updated shares, and entries whose share no
    /// longer matches at pop time are re-pushed corrected. Per-link CSR
    /// flow lists make each freeze touch only the flows actually crossing
    /// the bottleneck, so a solve is `O(active · path_len · log links)`
    /// instead of the old `O(bottlenecks · active)` scan — the difference
    /// between milliseconds and minutes at 10k background flows.
    fn solve(&mut self, links: &[Link]) {
        self.gen = self.gen.wrapping_add(1);
        self.touched.clear();
        for &fi in &self.active {
            let f = &mut self.flows[fi as usize];
            f.frozen = false;
            f.rate_bps = 0;
            for &l in &f.path[..f.path_len as usize] {
                let li = l.index();
                if self.stamp[li] != self.gen {
                    self.stamp[li] = self.gen;
                    self.touched.push(li as u32);
                    let link = &links[li];
                    self.cap[li] = if link.up {
                        (link.rate_bps as u128 * MAX_BG_SHARE_PPM as u128 / 1_000_000) as u64
                    } else {
                        0
                    };
                    self.nflows[li] = 0;
                    self.new_bg[li] = 0;
                }
                self.nflows[li] += 1;
            }
        }
        // CSR flow lists: offsets from the touched-order prefix sum, then a
        // second flow pass fills (reusing `flow_start` as the write cursor;
        // `nflows0` keeps the immutable per-link count for range ends).
        let mut total = 0u32;
        for &li in &self.touched {
            let li = li as usize;
            self.flow_start[li] = total;
            self.nflows0[li] = self.nflows[li];
            total += self.nflows[li];
        }
        self.flow_of.clear();
        self.flow_of.resize(total as usize, 0);
        for &fi in &self.active {
            let f = &self.flows[fi as usize];
            for &l in &f.path[..f.path_len as usize] {
                let li = l.index();
                self.flow_of[self.flow_start[li] as usize] = fi;
                self.flow_start[li] += 1;
            }
        }
        for &li in &self.touched {
            let li = li as usize;
            self.flow_start[li] -= self.nflows0[li];
        }
        self.heap.clear();
        for &li in &self.touched {
            let l = li as usize;
            if self.nflows[l] > 0 {
                self.heap
                    .push(Reverse((self.cap[l] / self.nflows[l] as u64, li)));
            }
        }
        let mut unfrozen = self.active.len();
        while unfrozen > 0 {
            let Some(Reverse((share, li))) = self.heap.pop() else {
                break; // every remaining flow crosses only down links — guard
            };
            let l = li as usize;
            if self.nflows[l] == 0 {
                continue; // stale: all of its flows froze via other links
            }
            let fair = self.cap[l] / self.nflows[l] as u64;
            if fair != share {
                self.heap.push(Reverse((fair, li)));
                continue; // stale share: re-queue at the current value
            }
            let start = self.flow_start[l] as usize;
            let end = start + self.nflows0[l] as usize;
            for k in start..end {
                let fi = self.flow_of[k];
                let f = &mut self.flows[fi as usize];
                if f.frozen {
                    continue;
                }
                f.frozen = true;
                f.rate_bps = fair;
                unfrozen -= 1;
                for &pl in &f.path[..f.path_len as usize] {
                    let pi = pl.index();
                    self.cap[pi] = self.cap[pi].saturating_sub(fair);
                    self.nflows[pi] -= 1;
                    self.new_bg[pi] += fair;
                    if pi != l && self.nflows[pi] > 0 {
                        self.heap
                            .push(Reverse((self.cap[pi] / self.nflows[pi] as u64, pi as u32)));
                    }
                }
            }
        }
    }

    /// Diffs the freshly solved per-link rates against what the engine has
    /// applied, zeroing links the background departed from.
    fn collect_changes(&mut self) {
        self.changed.clear();
        for &li in &self.prev_touched {
            let li = li as usize;
            // Departed links: touched last solve, untouched now.
            if self.stamp[li] != self.gen && self.link_bg[li] != 0 {
                self.link_bg[li] = 0;
                self.changed.push(li as u32);
            }
        }
        for &li in &self.touched {
            let li = li as usize;
            if self.link_bg[li] != self.new_bg[li] {
                self.link_bg[li] = self.new_bg[li];
                self.changed.push(li as u32);
            }
        }
        std::mem::swap(&mut self.prev_touched, &mut self.touched);
    }
}

/// The entropy value a background flow sprays with: a cheap integer mix of
/// its id so sibling flows spread across ECMP groups.
fn flow_entropy(id: u32) -> u16 {
    (id ^ (id >> 16) ^ (id << 3)) as u16
}

/// The deterministic up/down path from `src` to `dst` under entropy `ev`:
/// exactly the walk a packet with that entropy takes through healthy
/// fabric (per-switch salted ECMP at every ascent).
fn path_for(topo: &Topology, src: HostId, dst: HostId, ev: u16) -> ([LinkId; MAX_PATH], u8) {
    let mut path = [LinkId(0); MAX_PATH];
    let mut len = 0u8;
    let mut link = topo.host_up[src.index()];
    loop {
        path[len as usize] = link;
        len += 1;
        match topo.links[link.index()].to {
            NodeRef::Host(h) => {
                debug_assert_eq!(h, dst, "fluid path must end at the destination");
                return (path, len);
            }
            NodeRef::Switch(sw) => {
                assert!(
                    (len as usize) < MAX_PATH,
                    "fluid path exceeded {MAX_PATH} hops"
                );
                link = match topo.route(sw, dst).expect("well-formed fabric") {
                    RouteChoice::Down(l) => l,
                    RouteChoice::Up(candidates) => {
                        let salt = topo.switches[sw.index()].salt;
                        candidates.at(ecmp_select(src, dst, ev, salt, candidates.len()))
                    }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::topology::FatTreeConfig;

    fn links_for(topo: &Topology) -> Vec<Link> {
        let cfg = SimConfig::paper_default();
        topo.links
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                Link::new(LinkId(i as u32), spec.from, spec.to, cfg.link_latency, &cfg)
            })
            .collect()
    }

    fn small() -> (Topology, Vec<Link>) {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 7);
        let links = links_for(&topo);
        (topo, links)
    }

    #[test]
    fn paths_follow_the_packet_walk() {
        let (topo, _) = small();
        let (path, len) = path_for(&topo, HostId(0), HostId(31), 9);
        assert_eq!(len, 4, "cross-rack 2-tier path is 4 links");
        // Path is connected: each link's head is the next link's tail.
        for w in path[..len as usize].windows(2) {
            assert_eq!(topo.links[w[0].index()].to, topo.links[w[1].index()].from);
        }
        assert_eq!(
            topo.links[path[len as usize - 1].index()].to,
            NodeRef::Host(HostId(31))
        );
        // Same-rack: 2 links.
        let (_, len) = path_for(&topo, HostId(0), HostId(1), 9);
        assert_eq!(len, 2);
    }

    #[test]
    fn single_flow_gets_the_capped_share_and_completes_exactly() {
        let (topo, links) = small();
        let mut net = FluidNet::new(links.len());
        // 1 MiB at t=0.
        net.add_flow(&topo, 0, HostId(0), HostId(31), 1 << 20, Time::ZERO);
        net.finalize();
        let (active, updated) = net.resolve(Time::ZERO, &links);
        assert_eq!(active, 1);
        assert_eq!(updated as usize, net.changed().len());
        let rate = (400_000_000_000u128 * MAX_BG_SHARE_PPM as u128 / 1_000_000) as u64;
        // Every link on the path carries the capped share.
        for &li in net.changed() {
            assert_eq!(net.link_bg(LinkId(li)), rate);
        }
        let done = net.next_event().expect("completion pending");
        // Exactly ceil(bytes * 8e12 / rate).
        let want = ((1u128 << 20) * PS_PER_SEC_BITS).div_ceil(rate as u128) as u64;
        assert_eq!(done.as_ps(), want);
        let (active, _) = net.resolve(done, &links);
        assert_eq!(active, 0, "flow must complete at the predicted instant");
        let recs: Vec<FlowRecord> = net.drain_completions().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].bytes, 1 << 20);
        assert_eq!(recs[0].end, done);
        assert_eq!(net.next_event(), None);
    }

    #[test]
    fn two_flows_sharing_a_link_split_it_evenly() {
        let (topo, links) = small();
        let mut net = FluidNet::new(links.len());
        // Two flows from the same host: they share the host's NIC uplink.
        net.add_flow(&topo, 0, HostId(0), HostId(31), 1 << 20, Time::ZERO);
        net.add_flow(&topo, 1, HostId(0), HostId(30), 1 << 20, Time::ZERO);
        net.finalize();
        net.resolve(Time::ZERO, &links);
        let nic = topo.host_up[0];
        let cap = (400_000_000_000u128 * MAX_BG_SHARE_PPM as u128 / 1_000_000) as u64;
        assert_eq!(
            net.link_bg(nic),
            (cap / 2) * 2,
            "even split on the shared NIC"
        );
    }

    #[test]
    fn down_path_stalls_and_recovers() {
        let (topo, mut links) = small();
        let mut net = FluidNet::new(links.len());
        net.add_flow(&topo, 0, HostId(0), HostId(31), 1 << 20, Time::ZERO);
        net.finalize();
        net.resolve(Time::ZERO, &links);
        let first_hop = topo.host_up[0];
        // Cut the first hop: rate drops to 0, no completion predicted.
        let mut arena = crate::arena::PacketArena::new();
        links[first_hop.index()].set_down(Time::from_us(1), &mut arena);
        net.resolve(Time::from_us(1), &links);
        assert_eq!(net.link_bg(first_hop), 0);
        assert_eq!(net.next_event(), None, "stalled flow predicts nothing");
        // Recovery: share comes back, completion predicted again.
        links[first_hop.index()].set_up();
        net.resolve(Time::from_us(5), &links);
        assert!(net.link_bg(first_hop) > 0);
        assert!(net.next_event().is_some());
    }

    #[test]
    fn resolve_is_deterministic_and_allocation_stable() {
        let (topo, links) = small();
        let run = || {
            let mut net = FluidNet::new(links.len());
            for i in 0..64u32 {
                net.add_flow(
                    &topo,
                    i,
                    HostId(i % 32),
                    HostId((i + 17) % 32),
                    64 << 10,
                    Time::from_us((i % 7) as u64),
                );
            }
            net.finalize();
            let mut log = Vec::new();
            let mut now = Time::ZERO;
            for _ in 0..200 {
                let (active, updated) = net.resolve(now, &links);
                log.push((now.as_ps(), active, updated));
                match net.next_event() {
                    Some(t) => now = t,
                    None => break,
                }
            }
            (log, net.counters.completed)
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b, "resolve schedule must be deterministic");
        assert_eq!(ca, 64, "all flows complete");
        assert_eq!(ca, cb);
    }

    #[test]
    fn arrivals_are_admitted_in_start_order() {
        let (topo, links) = small();
        let mut net = FluidNet::new(links.len());
        net.add_flow(&topo, 1, HostId(2), HostId(9), 4096, Time::from_us(10));
        net.add_flow(&topo, 0, HostId(1), HostId(8), 4096, Time::from_us(2));
        net.finalize();
        net.resolve(Time::ZERO, &links);
        assert_eq!(net.active_count(), 0);
        assert_eq!(net.next_event(), Some(Time::from_us(2)));
        net.resolve(Time::from_us(2), &links);
        assert_eq!(net.active_count(), 1);
        net.resolve(Time::from_us(10), &links);
        assert_eq!(net.counters.admitted, 2);
    }
}
