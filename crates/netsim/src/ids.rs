//! Strongly-typed identifiers for simulator entities.
//!
//! All simulator state lives in flat arenas indexed by these newtypes; the
//! types exist purely to prevent mixing, say, a queue index with a link index.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw arena index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A host (endpoint NIC) in the topology.
    HostId,
    "h"
);
id_type!(
    /// A switch in the topology.
    SwitchId,
    "sw"
);
id_type!(
    /// A unidirectional link (egress queue + propagation pipe).
    LinkId,
    "l"
);
id_type!(
    /// A transport connection (one sender/receiver pair).
    ConnId,
    "c"
);
id_type!(
    /// A flow/message tracked by the statistics collector.
    FlowId,
    "f"
);

/// The receiving side of a link: either a switch or a host NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// A switch identified by arena index.
    Switch(SwitchId),
    /// A host identified by arena index.
    Host(HostId),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Switch(s) => write!(f, "{s}"),
            NodeRef::Host(h) => write!(f, "{h}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(format!("{}", HostId(3)), "h3");
        assert_eq!(format!("{}", SwitchId(1)), "sw1");
        assert_eq!(format!("{}", LinkId(9)), "l9");
        assert_eq!(format!("{}", NodeRef::Host(HostId(2))), "h2");
    }

    #[test]
    fn index_round_trips() {
        let id = LinkId::from(17usize);
        assert_eq!(id.index(), 17);
    }
}
