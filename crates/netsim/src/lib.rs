//! A deterministic, packet-level datacenter network simulator.
//!
//! `netsim` is the substrate of the REPS reproduction: an htsim-equivalent
//! discrete-event simulator modelling output-queued switches with RED/ECN
//! marking and optional packet trimming, 2-/3-tier fat-tree fabrics with
//! ECMP (or per-packet adaptive) routing, link/switch failure injection, and
//! the statistics the paper's figures are computed from.
//!
//! # Architecture
//!
//! * [`engine::Engine`] owns the event calendar, link arena and endpoints.
//! * Transport stacks implement [`engine::Endpoint`] and interact with the
//!   fabric exclusively through [`engine::Ctx`].
//! * [`topology::Topology`] describes switches/links and answers routing
//!   queries; the engine executes them.
//! * Everything is deterministic for a fixed seed: the calendar breaks ties
//!   FIFO and all randomness flows from [`rng::Rng64`].
//!
//! # Hot-path design
//!
//! The per-packet inner loop is allocation-free in steady state:
//!
//! * in-fabric packets live in the engine-owned [`arena::PacketArena`];
//!   the calendar ([`event::EventQueue`]) and link queues move 4-byte
//!   [`arena::PacketRef`]s, so heap sifts and queue rotations never copy
//!   packet bodies;
//! * [`topology::Topology::route`] returns compact by-value
//!   [`topology::LinkRange`] descriptors (closed-form base/stride/count —
//!   no per-switch tables), and [`engine::RoutingView`] selects uplinks by
//!   index over a reusable engine-owned scratch buffer (failover filter)
//!   — no `Vec` is constructed on any packet path;
//! * every buffer (arena slots and free list, heap, link deques, action
//!   scratch) retains its high-water capacity across packets.
//!
//! These invariants are pinned by an allocation-counting integration test
//! (`tests/alloc.rs`), routing-equivalence property tests
//! (`tests/properties.rs`) and the sweep crate's golden-output tests.
//!
//! # Examples
//!
//! ```
//! use netsim::config::SimConfig;
//! use netsim::engine::Engine;
//! use netsim::topology::{FatTreeConfig, Topology};
//!
//! // The paper's 128-node, radix-16, non-oversubscribed 2-tier fabric.
//! let topo = Topology::build(FatTreeConfig::two_tier(16, 1), 42);
//! let engine = Engine::new(topo, SimConfig::paper_default(), 42);
//! assert_eq!(engine.topo.n_hosts, 128);
//! ```

pub mod arena;
pub mod config;
pub mod engine;
pub mod event;
pub mod failures;
pub mod fluid;
pub mod hash;
pub mod ids;
pub mod link;
pub mod packet;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use config::SimConfig;
pub use engine::{Command, Ctx, Endpoint, Engine, MessageSpec, RoutingMode, RoutingView};
pub use ids::{ConnId, FlowId, HostId, LinkId, NodeRef, SwitchId};
pub use packet::{Ack, Body, EvEcho, Packet, HEADER_BYTES};
pub use rng::Rng64;
pub use stats::{FlowRecord, Stats};
pub use time::Time;
pub use topology::{FatTreeConfig, Topology};
pub use trace::{EvDecision, NoTrace, Recorder, TraceEvent, TraceSink};
