//! Flight-recorder tracing: typed per-decision events, recorded only when
//! a caller asks for them.
//!
//! The simulator's summaries observe *outcomes* (FCTs, drops, utilization);
//! this module observes *decisions* — which uplink a switch picked for a
//! packet, which entropy value a load balancer chose and why, how deep a
//! receiver's reorder window ran, when a link died and when the transport
//! reacted. Every hook in the engine and transport is generic over a
//! [`TraceSink`]; the default sink is [`NoTrace`], a zero-sized no-op that
//! monomorphizes every `emit` call to nothing, so an untraced engine
//! compiles to exactly the pre-trace hot path (pinned by the
//! allocation-counting tests in `tests/alloc.rs` and
//! `tests/alloc_trace.rs`).
//!
//! [`Recorder`] is the opt-in sink: an append-only event log a traced run
//! can render into the per-cell `*.trace.jsonl` documents (`sweep::trace`)
//! and the `repsbench explain` report.
//!
//! The engine's batched event execution (`netsim::engine`, batch-drained
//! same-timestamp events and chained link service) dispatches in the
//! exact `(time, seq)` order the one-pop-at-a-time loop used, so hooks
//! fire in the same sequence and recorded trace documents stay
//! byte-identical — the sweep-level determinism tests pin this.

use crate::ids::{HostId, LinkId, SwitchId};
use crate::time::Time;

/// How a load balancer arrived at the entropy value it returned.
///
/// Lives here (rather than in the `reps` core crate) so the engine-level
/// event type can carry it without a dependency cycle; `reps::lb`
/// re-exports it as part of the [`LoadBalancer`](../../reps/lb/trait.LoadBalancer.html)
/// probe surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvDecision {
    /// A fresh draw from the entropy-value space (exploration).
    Fresh,
    /// A cached entropy recycled from a clean ACK (REPS' steady state).
    Recycled,
    /// A cached entropy replayed in freezing mode (failure reaction).
    FrozenReplay,
}

impl EvDecision {
    /// Stable lowercase label used in trace documents.
    pub fn label(self) -> &'static str {
        match self {
            EvDecision::Fresh => "fresh",
            EvDecision::Recycled => "recycled",
            EvDecision::FrozenReplay => "frozen",
        }
    }
}

/// One recorded decision or reaction.
///
/// Every variant carries the simulated instant `at`; identifiers are the
/// engine's own ([`SwitchId`], [`LinkId`], [`HostId`], connection ids), so
/// events can be joined against topology and series data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A switch sprayed a packet onto `link` (the per-hop path choice).
    PathChoice {
        /// When the choice was made.
        at: Time,
        /// The deciding switch.
        sw: SwitchId,
        /// The chosen uplink.
        link: LinkId,
        /// The packet's entropy value.
        ev: u16,
    },
    /// A sender's load balancer chose `ev` for an outgoing data packet.
    EvChoice {
        /// When the packet was committed.
        at: Time,
        /// The sending host.
        host: HostId,
        /// The sender-side connection id.
        conn: u32,
        /// The chosen entropy value.
        ev: u16,
        /// How the balancer arrived at it.
        decision: EvDecision,
        /// Whether the balancer was in freezing mode for this send.
        frozen: bool,
    },
    /// The balancer entered freezing mode (failure suspicion).
    Freeze {
        /// When freezing began.
        at: Time,
        /// The sending host.
        host: HostId,
        /// The sender-side connection id.
        conn: u32,
    },
    /// The balancer left freezing mode.
    Thaw {
        /// When freezing ended.
        at: Time,
        /// The sending host.
        host: HostId,
        /// The sender-side connection id.
        conn: u32,
    },
    /// A receiver accepted a data packet `depth` positions ahead of the
    /// in-order frontier (only out-of-order arrivals are recorded).
    Reorder {
        /// Arrival instant.
        at: Time,
        /// The receiving host.
        host: HostId,
        /// The receiver-side connection id.
        conn: u32,
        /// Out-of-order depth at acceptance.
        depth: u32,
    },
    /// A sender retransmitted sequence `seq` on entropy `ev`.
    Retransmit {
        /// When the retransmission was committed.
        at: Time,
        /// The sending host.
        host: HostId,
        /// The sender-side connection id.
        conn: u32,
        /// The retransmitted sequence number.
        seq: u64,
        /// The entropy value it was resent on.
        ev: u16,
    },
    /// A sender's RTO sweep expired `expired` in-flight packets.
    Timeout {
        /// The sweep instant.
        at: Time,
        /// The sending host.
        host: HostId,
        /// The sender-side connection id.
        conn: u32,
        /// Packets declared lost by this sweep.
        expired: u32,
    },
    /// A link went down (cable cut or switch failure).
    LinkDown {
        /// Failure instant.
        at: Time,
        /// The failed link.
        link: LinkId,
    },
    /// A link came back up.
    LinkUp {
        /// Recovery instant.
        at: Time,
        /// The recovered link.
        link: LinkId,
    },
    /// A link was degraded (or restored) to a new rate.
    LinkRate {
        /// Change instant.
        at: Time,
        /// The affected link.
        link: LinkId,
        /// The new rate in bits/s.
        bps: u64,
    },
    /// A link's bit-error rate changed.
    LinkBer {
        /// Change instant.
        at: Time,
        /// The affected link.
        link: LinkId,
    },
    /// A link entered (`on`) or left (`on == false`) gray failure —
    /// silent per-packet loss while reporting healthy.
    LinkGray {
        /// Onset or heal instant.
        at: Time,
        /// The affected link.
        link: LinkId,
        /// True at onset, false at heal.
        on: bool,
    },
    /// A link started (`on`) or stopped (`on == false`) corrupting
    /// payloads.
    LinkCorrupt {
        /// Onset or heal instant.
        at: Time,
        /// The affected link.
        link: LinkId,
        /// True at onset, false at heal.
        on: bool,
    },
    /// A whole switch went down (all its links with it).
    SwitchDown {
        /// Failure instant.
        at: Time,
        /// The failed switch.
        sw: SwitchId,
    },
    /// A switch came back up.
    SwitchUp {
        /// Recovery instant.
        at: Time,
        /// The recovered switch.
        sw: SwitchId,
    },
    /// The fluid background solver re-ran (hybrid-fidelity cells only).
    FluidResolve {
        /// Solve instant.
        at: Time,
        /// Active background flows after the solve.
        active: u32,
        /// Links whose residual rate changed.
        updated: u32,
    },
}

impl TraceEvent {
    /// The event's simulated instant.
    pub fn at(&self) -> Time {
        match *self {
            TraceEvent::PathChoice { at, .. }
            | TraceEvent::EvChoice { at, .. }
            | TraceEvent::Freeze { at, .. }
            | TraceEvent::Thaw { at, .. }
            | TraceEvent::Reorder { at, .. }
            | TraceEvent::Retransmit { at, .. }
            | TraceEvent::Timeout { at, .. }
            | TraceEvent::LinkDown { at, .. }
            | TraceEvent::LinkUp { at, .. }
            | TraceEvent::LinkRate { at, .. }
            | TraceEvent::LinkBer { at, .. }
            | TraceEvent::LinkGray { at, .. }
            | TraceEvent::LinkCorrupt { at, .. }
            | TraceEvent::SwitchDown { at, .. }
            | TraceEvent::SwitchUp { at, .. }
            | TraceEvent::FluidResolve { at, .. } => at,
        }
    }
}

/// A flight-recorder sink. The engine, transport and load balancers call
/// [`TraceSink::emit`] at every decision point; implementations choose
/// whether to keep the event.
///
/// Implementations must not observe or mutate simulation state — tracing
/// is read-only by contract, so a traced run produces byte-identical
/// results to an untraced one.
pub trait TraceSink {
    /// Records one event.
    fn emit(&mut self, event: TraceEvent);

    /// Whether events are being kept. Hooks may use this to skip work that
    /// exists only to build an event; [`NoTrace`] returns `false` so the
    /// optimizer drops the whole block.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default sink: keeps nothing, costs nothing. Every generic hook
/// monomorphized with `NoTrace` compiles to the untraced hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    #[inline(always)]
    fn emit(&mut self, _event: TraceEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// The opt-in sink: an append-only in-memory event log.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// Every recorded event, in emission order (deterministic for a fixed
    /// seed — emission order is simulation order).
    pub events: Vec<TraceEvent>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }
}

impl TraceSink for Recorder {
    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_discards_and_reports_disabled() {
        let mut sink = NoTrace;
        assert!(!sink.enabled());
        sink.emit(TraceEvent::LinkDown {
            at: Time::from_us(1),
            link: LinkId(3),
        });
    }

    #[test]
    fn recorder_keeps_emission_order() {
        let mut rec = Recorder::new();
        assert!(rec.enabled());
        rec.emit(TraceEvent::LinkDown {
            at: Time::from_us(1),
            link: LinkId(3),
        });
        rec.emit(TraceEvent::LinkUp {
            at: Time::from_us(2),
            link: LinkId(3),
        });
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].at(), Time::from_us(1));
        assert_eq!(rec.events[1].at(), Time::from_us(2));
    }

    #[test]
    fn decision_labels_are_stable() {
        assert_eq!(EvDecision::Fresh.label(), "fresh");
        assert_eq!(EvDecision::Recycled.label(), "recycled");
        assert_eq!(EvDecision::FrozenReplay.label(), "frozen");
    }
}
