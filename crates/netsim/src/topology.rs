//! Fat-tree topologies and up/down routing (§4.1).
//!
//! The builder produces the 2- and 3-tier Clos fabrics the paper simulates:
//! hosts attach to top-of-rack (T0) switches; T0s connect to aggregation
//! (T1) switches; in 3-tier fabrics pods of T0/T1 switches connect to core
//! (T2) groups. Oversubscription `o:1` shrinks the ToR uplink count relative
//! to its host ports.
//!
//! Routing is standard fat-tree up/down: a packet climbs (ECMP-hashed on its
//! entropy value) until it reaches a switch that is an ancestor of its
//! destination, then descends deterministically.

use crate::ids::{HostId, LinkId, NodeRef, SwitchId};

/// Which tier a switch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Top-of-rack.
    T0,
    /// Aggregation.
    T1,
    /// Core (3-tier fabrics only).
    T2,
}

/// Static description of one switch.
#[derive(Debug, Clone)]
pub struct SwitchMeta {
    /// Arena id.
    pub id: SwitchId,
    /// Tier.
    pub tier: Tier,
    /// Pod index (T0/T1; core group index for T2).
    pub pod: u32,
    /// Index within its tier, pod-local for 3-tier T0/T1.
    pub idx: u32,
    /// Uplinks, ordered.
    pub up_links: LinkRange,
    /// Downlinks, ordered by child index (host slot or child switch slot).
    pub down_links: LinkRange,
    /// Per-switch ECMP hash salt.
    pub salt: u64,
    /// False while the switch has failed.
    pub alive: bool,
}

/// A compact per-switch link table: an arithmetic progression of
/// [`LinkId`]s (`base`, `base + stride`, …).
///
/// The builder creates links in a fixed nested-loop order, which makes
/// every tier's uplink and downlink table an arithmetic progression — so
/// a 12-byte descriptor replaces a materialized `Vec<LinkId>` per switch.
/// That is what keeps a 100k-host fabric's route state in memory: the
/// tables are *computed*, not stored, and routing stays allocation-free
/// (a [`RouteChoice::Up`] carries the descriptor by value instead of
/// borrowing a slice). `topology_tables_match_link_scan` pins the
/// descriptors against tables rebuilt by scanning the links vec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkRange {
    base: u32,
    stride: u32,
    count: u32,
}

impl LinkRange {
    /// The empty table (a leaf tier with no uplinks).
    pub const EMPTY: LinkRange = LinkRange {
        base: 0,
        stride: 0,
        count: 0,
    };

    /// A table of `count` links starting at `base`, `stride` ids apart.
    pub fn new(base: u32, stride: u32, count: u32) -> LinkRange {
        LinkRange {
            base,
            stride,
            count,
        }
    }

    /// Number of links in the table.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th link.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn at(&self, i: usize) -> LinkId {
        assert!(i < self.count as usize, "link table index out of range");
        LinkId(self.base + self.stride * i as u32)
    }

    /// Iterates the table in slot order.
    pub fn iter(self) -> impl Iterator<Item = LinkId> {
        (0..self.count).map(move |i| LinkId(self.base + self.stride * i))
    }
}

/// A unidirectional link endpoint description produced by the builder.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Transmitting node.
    pub from: NodeRef,
    /// Receiving node.
    pub to: NodeRef,
}

/// Fat-tree shape parameters.
///
/// `two_tier`/`three_tier` build the paper's canonical fabrics from a switch
/// radix; `two_tier_custom` supports irregular testbeds such as the FPGA
/// cluster (128 endpoints under 2 ToRs with 8 T1s, §4.4).
#[derive(Debug, Clone)]
pub struct FatTreeConfig {
    /// 2 or 3 tiers.
    pub tiers: u8,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: u32,
    /// Uplinks per ToR (= T1 count in 2-tier, T1s per pod in 3-tier).
    pub tor_uplinks: u32,
    /// ToR count (total in 2-tier; per pod in 3-tier).
    pub tors: u32,
    /// Pod count (1 for 2-tier).
    pub pods: u32,
    /// Uplinks per T1 switch (3-tier only; cores per core-group).
    pub t1_uplinks: u32,
}

impl FatTreeConfig {
    /// A full 2-tier fat tree from switch radix `k` and oversubscription `o:1`.
    ///
    /// Hosts: `k * k * o / (o + 1)^2 * (o + 1) = k * hosts_per_tor`... more
    /// simply: each ToR has `k*o/(o+1)` host ports and `k/(o+1)` uplinks, and
    /// there are `k` ToRs (one per T1 port).
    ///
    /// # Panics
    ///
    /// Panics unless `k` is divisible by `o + 1`.
    pub fn two_tier(k: u32, oversubscription: u32) -> FatTreeConfig {
        let o = oversubscription.max(1);
        assert!(
            k.is_multiple_of(o + 1),
            "radix {k} not divisible by {}",
            o + 1
        );
        let tor_uplinks = k / (o + 1);
        let hosts_per_tor = k - tor_uplinks;
        FatTreeConfig {
            tiers: 2,
            hosts_per_tor,
            tor_uplinks,
            tors: k,
            pods: 1,
            t1_uplinks: 0,
        }
    }

    /// An arbitrary 2-tier fabric (e.g. the FPGA testbed shape).
    pub fn two_tier_custom(tors: u32, hosts_per_tor: u32, tor_uplinks: u32) -> FatTreeConfig {
        FatTreeConfig {
            tiers: 2,
            hosts_per_tor,
            tor_uplinks,
            tors,
            pods: 1,
            t1_uplinks: 0,
        }
    }

    /// A full 3-tier fat tree from radix `k` and ToR oversubscription `o:1`.
    ///
    /// With `o = 1` this is the classic k-ary fat tree: `k` pods, `k/2` ToRs
    /// and `k/2` T1s per pod, `(k/2)^2` cores, `k^3/4` hosts.
    pub fn three_tier(k: u32, oversubscription: u32) -> FatTreeConfig {
        let o = oversubscription.max(1);
        assert!(
            k.is_multiple_of(o + 1),
            "radix {k} not divisible by {}",
            o + 1
        );
        assert!(k.is_multiple_of(2), "radix must be even");
        let tor_uplinks = k / (o + 1);
        let hosts_per_tor = k - tor_uplinks;
        FatTreeConfig {
            tiers: 3,
            hosts_per_tor,
            tor_uplinks,
            tors: k / 2,
            pods: k,
            t1_uplinks: k / 2,
        }
    }

    /// Total number of hosts.
    pub fn n_hosts(&self) -> u32 {
        self.hosts_per_tor * self.tors * self.pods
    }

    /// Total ToR count.
    pub fn n_tors(&self) -> u32 {
        self.tors * self.pods
    }

    /// Total T1 count.
    pub fn n_t1(&self) -> u32 {
        self.tor_uplinks * self.pods
    }

    /// Total core count (0 for 2-tier).
    pub fn n_cores(&self) -> u32 {
        if self.tiers == 2 {
            0
        } else {
            self.tor_uplinks * self.t1_uplinks
        }
    }
}

/// The routing decision at a switch.
///
/// Answering a routing query never allocates: `Up` hands back the
/// switch's uplink table as a 12-byte [`LinkRange`] descriptor by value
/// and the caller picks an index (see
/// [`RoutingView::select_uplink`](crate::engine::RoutingView::select_uplink)).
#[derive(Debug, Clone, Copy)]
pub enum RouteChoice {
    /// Descend on this specific link.
    Down(LinkId),
    /// Ascend; pick among these equal-cost uplinks.
    Up(LinkRange),
}

/// A built topology: switches, link endpoints, host attachments.
#[derive(Debug)]
pub struct Topology {
    /// Shape parameters.
    pub cfg: FatTreeConfig,
    /// Host count.
    pub n_hosts: u32,
    /// Switch metadata (T0s first, then T1s, then T2s).
    pub switches: Vec<SwitchMeta>,
    /// Link endpoint specs, indexed by `LinkId`.
    pub links: Vec<LinkSpec>,
    /// Per-host uplink (host → ToR).
    pub host_up: Vec<LinkId>,
    /// Per-host downlink (ToR → host).
    pub host_down: Vec<LinkId>,
}

impl Topology {
    /// Builds the fabric described by `cfg`, salting switches from `seed`.
    pub fn build(cfg: FatTreeConfig, seed: u64) -> Topology {
        let mut sm = seed ^ 0x7070_1057_BADC_AB1E;
        Builder::new(cfg, &mut sm).build()
    }

    /// The ToR switch a host hangs off.
    pub fn tor_of(&self, host: HostId) -> SwitchId {
        SwitchId(host.0 / self.cfg.hosts_per_tor)
    }

    /// The pod a host belongs to (always 0 in 2-tier fabrics).
    pub fn pod_of(&self, host: HostId) -> u32 {
        let tor = host.0 / self.cfg.hosts_per_tor;
        tor / self.cfg.tors
    }

    /// Routes a packet for `dst` arriving at `sw`.
    ///
    /// Allocation-free: `Down` carries the link id, `Up` carries the
    /// switch's uplink-table descriptor by value. Returns `None` if the
    /// switch cannot make progress (should not happen in a well-formed
    /// fabric).
    pub fn route(&self, sw: SwitchId, dst: HostId) -> Option<RouteChoice> {
        let meta = &self.switches[sw.index()];
        let cfg = &self.cfg;
        let dst_tor_global = dst.0 / cfg.hosts_per_tor;
        match meta.tier {
            Tier::T0 => {
                let my_tor_global = meta.pod * cfg.tors + meta.idx;
                if dst_tor_global == my_tor_global {
                    let slot = (dst.0 % cfg.hosts_per_tor) as usize;
                    Some(RouteChoice::Down(meta.down_links.at(slot)))
                } else {
                    Some(RouteChoice::Up(meta.up_links))
                }
            }
            Tier::T1 => {
                let dst_pod = dst_tor_global / cfg.tors;
                if cfg.tiers == 2 || dst_pod == meta.pod {
                    let slot = (dst_tor_global % cfg.tors) as usize;
                    Some(RouteChoice::Down(meta.down_links.at(slot)))
                } else {
                    Some(RouteChoice::Up(meta.up_links))
                }
            }
            Tier::T2 => {
                let dst_pod = (dst_tor_global / cfg.tors) as usize;
                Some(RouteChoice::Down(meta.down_links.at(dst_pod)))
            }
        }
    }

    /// All bidirectional switch-to-switch cables, as `(up_link, down_link)`
    /// unidirectional pairs, for the failure experiments.
    pub fn cable_pairs(&self) -> Vec<(LinkId, LinkId)> {
        let mut pairs = Vec::new();
        for meta in &self.switches {
            // Each switch's uplinks pair with the peer switch's downlink back.
            for up in meta.up_links.iter() {
                let peer = match self.links[up.index()].to {
                    NodeRef::Switch(s) => s,
                    NodeRef::Host(_) => continue,
                };
                let me = NodeRef::Switch(meta.id);
                let down = self.switches[peer.index()]
                    .down_links
                    .iter()
                    .find(|&l| self.links[l.index()].to == me)
                    .expect("cable must be bidirectional");
                pairs.push((up, down));
            }
        }
        pairs
    }

    /// The `(up, down)` cable pairs from one specific ToR to its T1s.
    pub fn tor_uplink_pairs(&self, tor: SwitchId) -> Vec<(LinkId, LinkId)> {
        let meta = &self.switches[tor.index()];
        assert!(matches!(meta.tier, Tier::T0), "not a ToR: {tor}");
        let me = NodeRef::Switch(meta.id);
        meta.up_links
            .iter()
            .map(|up| {
                let peer = match self.links[up.index()].to {
                    NodeRef::Switch(s) => s,
                    NodeRef::Host(_) => unreachable!("ToR uplink must reach a switch"),
                };
                let down = self.switches[peer.index()]
                    .down_links
                    .iter()
                    .find(|&l| self.links[l.index()].to == me)
                    .expect("cable must be bidirectional");
                (up, down)
            })
            .collect()
    }

    /// All links adjacent to a switch (both directions), for switch failures.
    pub fn switch_links(&self, sw: SwitchId) -> Vec<LinkId> {
        let meta = &self.switches[sw.index()];
        let mut out: Vec<LinkId> = meta.up_links.iter().chain(meta.down_links.iter()).collect();
        let me = NodeRef::Switch(sw);
        for (i, spec) in self.links.iter().enumerate() {
            if spec.to == me {
                out.push(LinkId(i as u32));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// T1 switches (useful for targeted failures).
    pub fn t1_switches(&self) -> Vec<SwitchId> {
        self.switches
            .iter()
            .filter(|m| matches!(m.tier, Tier::T1))
            .map(|m| m.id)
            .collect()
    }

    /// T0 switches.
    pub fn t0_switches(&self) -> Vec<SwitchId> {
        self.switches
            .iter()
            .filter(|m| matches!(m.tier, Tier::T0))
            .map(|m| m.id)
            .collect()
    }
}

struct Builder {
    cfg: FatTreeConfig,
    salts: Vec<u64>,
    switches: Vec<SwitchMeta>,
    links: Vec<LinkSpec>,
    host_up: Vec<LinkId>,
    host_down: Vec<LinkId>,
}

impl Builder {
    fn new(cfg: FatTreeConfig, seed: &mut u64) -> Builder {
        let n_switches = (cfg.n_tors() + cfg.n_t1() + cfg.n_cores()) as usize;
        let salts = (0..n_switches)
            .map(|_| crate::rng::splitmix64(seed))
            .collect();
        Builder {
            cfg,
            salts,
            switches: Vec::new(),
            links: Vec::new(),
            host_up: Vec::new(),
            host_down: Vec::new(),
        }
    }

    fn add_link(&mut self, from: NodeRef, to: NodeRef) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { from, to });
        id
    }

    fn build(mut self) -> Topology {
        let cfg = self.cfg.clone();
        let n_tors = cfg.n_tors();
        let n_t1 = cfg.n_t1();
        let n_cores = cfg.n_cores();
        // Switch ids: [0, n_tors) T0, [n_tors, n_tors+n_t1) T1, rest T2.
        for pod in 0..cfg.pods {
            for t in 0..cfg.tors {
                let id = SwitchId(pod * cfg.tors + t);
                self.switches.push(SwitchMeta {
                    id,
                    tier: Tier::T0,
                    pod,
                    idx: t,
                    up_links: LinkRange::EMPTY,
                    down_links: LinkRange::EMPTY,
                    salt: self.salts[id.index()],
                    alive: true,
                });
            }
        }
        for pod in 0..cfg.pods {
            for g in 0..cfg.tor_uplinks {
                let id = SwitchId(n_tors + pod * cfg.tor_uplinks + g);
                self.switches.push(SwitchMeta {
                    id,
                    tier: Tier::T1,
                    pod,
                    idx: g,
                    up_links: LinkRange::EMPTY,
                    down_links: LinkRange::EMPTY,
                    salt: self.salts[id.index()],
                    alive: true,
                });
            }
        }
        for g in 0..cfg.tor_uplinks {
            for c in 0..cfg.t1_uplinks {
                let id = SwitchId(n_tors + n_t1 + g * cfg.t1_uplinks + c);
                self.switches.push(SwitchMeta {
                    id,
                    tier: Tier::T2,
                    pod: g,
                    idx: c,
                    up_links: LinkRange::EMPTY,
                    down_links: LinkRange::EMPTY,
                    salt: self.salts[id.index()],
                    alive: true,
                });
            }
        }
        debug_assert_eq!(self.switches.len(), (n_tors + n_t1 + n_cores) as usize);

        // Hosts <-> ToRs.
        let n_hosts = cfg.n_hosts();
        for h in 0..n_hosts {
            let host = HostId(h);
            let tor = SwitchId(h / cfg.hosts_per_tor);
            let up = self.add_link(NodeRef::Host(host), NodeRef::Switch(tor));
            let down = self.add_link(NodeRef::Switch(tor), NodeRef::Host(host));
            self.host_up.push(up);
            self.host_down.push(down);
        }

        // ToRs <-> T1s (within pod for 3-tier; global for 2-tier).
        for pod in 0..cfg.pods {
            for t in 0..cfg.tors {
                let tor = SwitchId(pod * cfg.tors + t);
                for g in 0..cfg.tor_uplinks {
                    let t1 = SwitchId(n_tors + pod * cfg.tor_uplinks + g);
                    self.add_link(NodeRef::Switch(tor), NodeRef::Switch(t1));
                    self.add_link(NodeRef::Switch(t1), NodeRef::Switch(tor));
                }
            }
        }

        // T1s <-> cores (3-tier only).
        if cfg.tiers == 3 {
            for pod in 0..cfg.pods {
                for g in 0..cfg.tor_uplinks {
                    let t1 = SwitchId(n_tors + pod * cfg.tor_uplinks + g);
                    for c in 0..cfg.t1_uplinks {
                        let core = SwitchId(n_tors + n_t1 + g * cfg.t1_uplinks + c);
                        self.add_link(NodeRef::Switch(t1), NodeRef::Switch(core));
                        self.add_link(NodeRef::Switch(core), NodeRef::Switch(t1));
                    }
                }
            }
        }

        // Link tables as closed-form descriptors. The creation loops above
        // lay links out so every table is an arithmetic progression of ids;
        // the formulas below reproduce exactly the tables the loops used to
        // materialize per switch (including the T1 slot-per-ToR and core
        // slot-per-pod invariants the `route` method relies on). With
        // `l0 = 2·hosts` and `l1 = l0 + 2·tors·K` (K = ToR uplinks,
        // C = T1 uplinks):
        //
        //   T0 T:      down = 2·T·H + 1           stride 2    len H
        //              up   = l0 + 2·T·K          stride 2    len K
        //   T1 (p,g):  down = l0 + 2(p·tors·K+g)+1 stride 2K  len tors
        //              up   = l1 + 2(p·K+g)·C     stride 2    len C
        //   T2 (g,c):  down = l1 + 2(g·C+c)+1     stride 2KC  len pods
        let l0 = 2 * n_hosts;
        let l1 = l0 + 2 * n_tors * cfg.tor_uplinks;
        let (k, c) = (cfg.tor_uplinks, cfg.t1_uplinks);
        for meta in &mut self.switches {
            match meta.tier {
                Tier::T0 => {
                    let t = meta.pod * cfg.tors + meta.idx;
                    meta.down_links =
                        LinkRange::new(2 * t * cfg.hosts_per_tor + 1, 2, cfg.hosts_per_tor);
                    meta.up_links = LinkRange::new(l0 + 2 * t * k, 2, k);
                }
                Tier::T1 => {
                    meta.down_links = LinkRange::new(
                        l0 + 2 * (meta.pod * cfg.tors * k + meta.idx) + 1,
                        2 * k,
                        cfg.tors,
                    );
                    meta.up_links = if cfg.tiers == 3 {
                        LinkRange::new(l1 + 2 * (meta.pod * k + meta.idx) * c, 2, c)
                    } else {
                        LinkRange::EMPTY
                    };
                }
                Tier::T2 => {
                    meta.down_links =
                        LinkRange::new(l1 + 2 * (meta.pod * c + meta.idx) + 1, 2 * k * c, cfg.pods);
                    meta.up_links = LinkRange::EMPTY;
                }
            }
        }

        Topology {
            n_hosts,
            cfg,
            switches: self.switches,
            links: self.links,
            host_up: self.host_up,
            host_down: self.host_down,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tier_counts_match_paper_128() {
        // Radix-16, 1:1 — the paper's 128-node microbenchmark fabric with
        // 8 uplinks per ToR.
        let cfg = FatTreeConfig::two_tier(16, 1);
        assert_eq!(cfg.n_hosts(), 128);
        assert_eq!(cfg.hosts_per_tor, 8);
        assert_eq!(cfg.tor_uplinks, 8);
        assert_eq!(cfg.n_tors(), 16);
        assert_eq!(cfg.n_t1(), 8);
    }

    #[test]
    fn two_tier_8192_nodes() {
        let cfg = FatTreeConfig::two_tier(128, 1);
        assert_eq!(cfg.n_hosts(), 8192);
    }

    #[test]
    fn three_tier_1024_nodes() {
        let cfg = FatTreeConfig::three_tier(16, 1);
        assert_eq!(cfg.n_hosts(), 1024);
        assert_eq!(cfg.n_cores(), 64);
    }

    #[test]
    fn oversubscription_shrinks_uplinks() {
        let cfg = FatTreeConfig::two_tier(16, 3);
        assert_eq!(cfg.tor_uplinks, 4);
        assert_eq!(cfg.hosts_per_tor, 12);
    }

    fn walk(topo: &Topology, src: HostId, dst: HostId, ev: u16) -> (usize, bool) {
        // Follow the route, always taking the hash choice on Up.
        let mut hops = 0;
        let mut at = topo.links[topo.host_up[src.index()].index()].to;
        loop {
            hops += 1;
            assert!(hops < 16, "routing loop detected");
            match at {
                NodeRef::Host(h) => return (hops, h == dst),
                NodeRef::Switch(sw) => {
                    let choice = topo.route(sw, dst).expect("route");
                    let link = match choice {
                        RouteChoice::Down(l) => l,
                        RouteChoice::Up(candidates) => {
                            let meta = &topo.switches[sw.index()];
                            let i =
                                crate::hash::ecmp_select(src, dst, ev, meta.salt, candidates.len());
                            candidates.at(i)
                        }
                    };
                    at = topo.links[link.index()].to;
                }
            }
        }
    }

    #[test]
    fn two_tier_all_pairs_reachable() {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 1);
        let n = topo.n_hosts;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                for ev in [0u16, 7, 999] {
                    let (hops, ok) = walk(&topo, HostId(s), HostId(d), ev);
                    assert!(ok, "h{s} -> h{d} failed");
                    let same_tor = s / topo.cfg.hosts_per_tor == d / topo.cfg.hosts_per_tor;
                    if same_tor {
                        assert_eq!(hops, 2, "same-rack path must be 2 hops");
                    } else {
                        assert_eq!(hops, 4, "cross-rack path must be 4 hops");
                    }
                }
            }
        }
    }

    #[test]
    fn three_tier_all_pairs_reachable() {
        let topo = Topology::build(FatTreeConfig::three_tier(4, 1), 1);
        let n = topo.n_hosts;
        assert_eq!(n, 16);
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                for ev in [0u16, 3, 12345] {
                    let (hops, ok) = walk(&topo, HostId(s), HostId(d), ev);
                    assert!(ok, "h{s} -> h{d} (ev {ev}) failed");
                    assert!(hops <= 6, "path too long: {hops}");
                }
            }
        }
    }

    #[test]
    fn different_evs_reach_different_t1s() {
        let topo = Topology::build(FatTreeConfig::two_tier(16, 1), 3);
        // From the first ToR, count distinct uplinks chosen across EVs.
        let tor = topo.tor_of(HostId(0));
        let meta = &topo.switches[tor.index()];
        let mut used = std::collections::BTreeSet::new();
        for ev in 0..512u16 {
            let i = crate::hash::ecmp_select(HostId(0), HostId(127), ev, meta.salt, 8);
            used.insert(i);
        }
        assert_eq!(used.len(), 8, "EVs must cover all uplinks");
    }

    #[test]
    fn cable_pairs_are_symmetric() {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 5);
        let pairs = topo.cable_pairs();
        // 8 ToRs x 4 uplinks = 32 cables.
        assert_eq!(pairs.len(), 32);
        for (up, down) in pairs {
            let u = &topo.links[up.index()];
            let d = &topo.links[down.index()];
            assert_eq!(u.from, d.to);
            assert_eq!(u.to, d.from);
        }
    }

    #[test]
    fn tor_uplink_pairs_count() {
        let topo = Topology::build(FatTreeConfig::two_tier(16, 1), 5);
        let pairs = topo.tor_uplink_pairs(SwitchId(0));
        assert_eq!(pairs.len(), 8);
    }

    #[test]
    fn switch_links_cover_both_directions() {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 5);
        // A T1 switch has 8 down links and 8 incoming links (no ups).
        let t1 = topo.t1_switches()[0];
        let links = topo.switch_links(t1);
        assert_eq!(links.len(), 16);
    }

    /// Rebuilds every switch's link tables by scanning the links vec (the
    /// representation the pre-descriptor builder materialized) and checks
    /// the closed-form [`LinkRange`] descriptors reproduce them exactly —
    /// including the T1 slot-per-ToR and core slot-per-pod orderings.
    fn assert_tables_match_link_scan(topo: &Topology) {
        for meta in &topo.switches {
            let me = NodeRef::Switch(meta.id);
            let mut up_scan: Vec<LinkId> = Vec::new();
            let mut down_scan: Vec<LinkId> = Vec::new();
            for (i, spec) in topo.links.iter().enumerate() {
                if spec.from != me {
                    continue;
                }
                let id = LinkId(i as u32);
                match spec.to {
                    NodeRef::Host(_) => down_scan.push(id),
                    NodeRef::Switch(peer) => {
                        let peer_meta = &topo.switches[peer.index()];
                        let ascending = match (meta.tier, peer_meta.tier) {
                            (Tier::T0, _) => true,
                            (Tier::T1, Tier::T2) => true,
                            _ => false,
                        };
                        if ascending {
                            up_scan.push(id);
                        } else {
                            down_scan.push(id);
                        }
                    }
                }
            }
            // Down tables are slot-ordered by child index, which for the
            // switch tiers means destination switch id order (the old
            // builder sorted T1 tables to guarantee this).
            down_scan.sort_by_key(|l| match topo.links[l.index()].to {
                NodeRef::Host(h) => h.0,
                NodeRef::Switch(s) => s.0,
            });
            let up: Vec<LinkId> = meta.up_links.iter().collect();
            let down: Vec<LinkId> = meta.down_links.iter().collect();
            assert_eq!(up, up_scan, "uplink table mismatch at {}", meta.id);
            assert_eq!(down, down_scan, "downlink table mismatch at {}", meta.id);
        }
    }

    #[test]
    fn topology_tables_match_link_scan() {
        assert_tables_match_link_scan(&Topology::build(FatTreeConfig::two_tier(8, 1), 1));
        assert_tables_match_link_scan(&Topology::build(FatTreeConfig::two_tier(16, 3), 2));
        assert_tables_match_link_scan(&Topology::build(
            FatTreeConfig::two_tier_custom(2, 64, 8),
            3,
        ));
        assert_tables_match_link_scan(&Topology::build(FatTreeConfig::three_tier(4, 1), 4));
        assert_tables_match_link_scan(&Topology::build(FatTreeConfig::three_tier(8, 3), 5));
    }

    #[test]
    fn hundred_k_host_topology_fits_in_memory() {
        // 1600 ToRs × 64 hosts = 102 400 hosts, 307 200 links, 1632
        // switches. With materialized per-switch Vec tables this held
        // ~1600·(64+32) + 32·1600 link ids in Vecs; with descriptors it is
        // 24 bytes of table state per switch, and building stays cheap
        // enough to run in a unit test.
        let cfg = FatTreeConfig::two_tier_custom(1600, 64, 32);
        let topo = Topology::build(cfg, 7);
        assert_eq!(topo.n_hosts, 102_400);
        assert_eq!(topo.links.len(), 2 * 102_400 + 2 * 1600 * 32);
        assert_eq!(topo.switches.len(), 1632);
        // Spot-check routing across the fabric.
        let (hops, ok) = walk(&topo, HostId(0), HostId(102_399), 17);
        assert!(ok);
        assert_eq!(hops, 4);
        let (hops, ok) = walk(&topo, HostId(5), HostId(60), 0);
        assert!(ok);
        assert_eq!(hops, 2, "same-rack path must be 2 hops");
        // The descriptor of the last ToR points at real links.
        let last_tor = &topo.switches[1599];
        assert_eq!(last_tor.down_links.len(), 64);
        assert_eq!(last_tor.up_links.len(), 32);
        for l in last_tor.up_links.iter() {
            assert_eq!(topo.links[l.index()].from, NodeRef::Switch(last_tor.id));
        }
    }

    #[test]
    fn fpga_testbed_shape() {
        // 128 endpoints, 2 ToRs, 8 T1s (§4.4.3).
        let cfg = FatTreeConfig::two_tier_custom(2, 64, 8);
        let topo = Topology::build(cfg, 9);
        assert_eq!(topo.n_hosts, 128);
        assert_eq!(topo.t0_switches().len(), 2);
        assert_eq!(topo.t1_switches().len(), 8);
        let (hops, ok) = walk(&topo, HostId(0), HostId(64), 17);
        assert!(ok);
        assert_eq!(hops, 4);
    }
}
