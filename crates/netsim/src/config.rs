//! Simulation profiles mirroring the paper's evaluation setup (§4.1).

use crate::time::Time;

/// Fabric-wide simulation parameters.
///
/// The default profile matches the paper's large-scale simulations:
/// 400 Gbps links, 4 KiB MTU, 500 ns link latency plus 500 ns switch
/// traversal, one-BDP queues with RED thresholds at 20 %/80 %, and a 70 µs
/// retransmission timeout.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Host (NIC) link rate in bits per second.
    pub link_bps: u64,
    /// Switch-to-switch link rate (defaults to `link_bps` when `None`).
    ///
    /// The FPGA testbed (§4.4) pairs 100 Gbps NICs with a 400 Gbps fabric.
    pub fabric_bps: Option<u64>,
    /// Maximum transport payload per packet, in bytes.
    pub mtu_bytes: u32,
    /// One-way propagation latency per link.
    pub link_latency: Time,
    /// Per-switch traversal latency, folded into link propagation.
    pub switch_latency: Time,
    /// Output-queue capacity in bytes.
    pub queue_capacity_bytes: u64,
    /// RED minimum marking threshold, as a fraction of queue capacity.
    pub kmin_fraction: f64,
    /// RED maximum marking threshold, as a fraction of queue capacity.
    pub kmax_fraction: f64,
    /// Retransmission timeout.
    pub rto: Time,
    /// Enable packet trimming in switch queues instead of tail drops.
    pub trimming: bool,
    /// If set, switches exclude a failed link from ECMP groups after this
    /// delay (routing reconvergence); `None` means no reconvergence happens
    /// within the simulation, the paper's default pessimistic assumption.
    pub ecmp_failover: Option<Time>,
    /// Width of the port-utilization statistics bucket.
    pub stats_bucket: Time,
    /// Period of queue-size sampling (0 disables sampling).
    pub sample_period: Time,
}

impl SimConfig {
    /// The paper's default 400 Gbps simulation profile.
    pub fn paper_default() -> SimConfig {
        let link_bps = 400_000_000_000;
        let mtu = 4096;
        // BDP for the network-wide RTT: the paper sets queue size to one BDP.
        // With 500 ns links + 500 ns switch latency, a 2-tier network RTT is
        // roughly 8 hops * 1 us + serialization ≈ 8.7 us; the paper uses
        // one-BDP queues. We use the same round figure the paper implies:
        // 400 Gbps * 8 us = 400 KB.
        let bdp_bytes = 400_000;
        SimConfig {
            link_bps,
            fabric_bps: None,
            mtu_bytes: mtu,
            link_latency: Time::from_ns(500),
            switch_latency: Time::from_ns(500),
            queue_capacity_bytes: bdp_bytes,
            kmin_fraction: 0.2,
            kmax_fraction: 0.8,
            rto: Time::from_us(70),
            trimming: false,
            ecmp_failover: None,
            stats_bucket: Time::from_us(20),
            sample_period: Time::from_us(1),
        }
    }

    /// The FPGA testbed profile (§4.4): 100 Gbps NICs, 8 KiB MTU, ~10–15 µs
    /// RTTs dominated by NIC buffering.
    pub fn fpga_testbed() -> SimConfig {
        SimConfig {
            link_bps: 100_000_000_000,
            fabric_bps: Some(400_000_000_000),
            mtu_bytes: 8192,
            link_latency: Time::from_us(2),
            switch_latency: Time::from_ns(600),
            queue_capacity_bytes: 160_000,
            kmin_fraction: 0.2,
            kmax_fraction: 0.8,
            rto: Time::from_us(200),
            trimming: false,
            ecmp_failover: None,
            stats_bucket: Time::from_us(50),
            sample_period: Time::from_us(2),
        }
    }

    /// RED K_min threshold in bytes.
    pub fn kmin_bytes(&self) -> u64 {
        (self.queue_capacity_bytes as f64 * self.kmin_fraction) as u64
    }

    /// RED K_max threshold in bytes.
    pub fn kmax_bytes(&self) -> u64 {
        (self.queue_capacity_bytes as f64 * self.kmax_fraction) as u64
    }

    /// Wire bytes of a full-MTU data packet.
    pub fn full_frame_bytes(&self) -> u32 {
        self.mtu_bytes + crate::packet::HEADER_BYTES
    }

    /// Serialization time of a full-MTU frame at the configured link rate.
    pub fn frame_time(&self) -> Time {
        Time::serialization(self.full_frame_bytes() as u64, self.link_bps)
    }

    /// A rough network RTT estimate for `hops` one-way switch hops.
    ///
    /// Used to size congestion windows and flowlet gaps; not used by the
    /// fabric itself.
    pub fn base_rtt(&self, hops: u32) -> Time {
        let one_way =
            (self.link_latency + self.switch_latency) * (hops as u64 + 1) + self.frame_time();
        let ack_way = (self.link_latency + self.switch_latency) * (hops as u64 + 1)
            + Time::serialization(crate::packet::HEADER_BYTES as u64, self.link_bps);
        one_way + ack_way
    }

    /// Bandwidth-delay product in bytes for a path with `hops` switch hops.
    pub fn bdp_bytes(&self, hops: u32) -> u64 {
        let rtt = self.base_rtt(hops);
        (self.link_bps as u128 * rtt.as_ps() as u128 / 8 / 1_000_000_000_000u128) as u64
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_spec() {
        let c = SimConfig::paper_default();
        assert_eq!(c.link_bps, 400_000_000_000);
        assert_eq!(c.mtu_bytes, 4096);
        assert_eq!(c.rto, Time::from_us(70));
        assert_eq!(c.kmin_bytes(), 80_000);
        assert_eq!(c.kmax_bytes(), 320_000);
    }

    #[test]
    fn frame_time_is_83_2ns() {
        let c = SimConfig::paper_default();
        assert_eq!(c.frame_time().as_ps(), 83_200);
    }

    #[test]
    fn bdp_is_plausible() {
        let c = SimConfig::paper_default();
        // 2-tier fabric: 4 switch hops each way.
        let bdp = c.bdp_bytes(4);
        // RTT ≈ 2 * (5 * 1us) + ser ≈ 10.1 us -> BDP ≈ 505 KB.
        assert!((300_000..700_000).contains(&bdp), "bdp = {bdp}");
    }

    #[test]
    fn fpga_profile_differs() {
        let c = SimConfig::fpga_testbed();
        assert_eq!(c.mtu_bytes, 8192);
        assert_eq!(c.link_bps, 100_000_000_000);
    }
}
