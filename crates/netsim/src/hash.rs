//! ECMP header hashing.
//!
//! Switches choose among equal-cost next hops by hashing the packet's
//! five-tuple surrogate — `(src, dst, entropy value)` — together with a
//! per-switch salt. The salt models vendor-specific hash seeds: two switches
//! hash the same header differently, which is what lets a single EV describe
//! a full multi-hop path while different switches still decorrelate.
//!
//! As the paper stresses (§2.2), the sender cannot invert this function;
//! distinct EVs may collide onto the same port. A well-mixed hash makes the
//! induced distribution near-uniform, which §4.5.2 quantifies.

use std::hash::{BuildHasher, Hasher};

use crate::ids::HostId;

/// A fast, deterministic hasher for the simulator's hot-path maps
/// (rustc-hash's FxHash algorithm: rotate-xor-multiply per word).
///
/// The per-packet paths hit several `HashMap`s (sender in-flight tables,
/// receiver demux, tracked-link stats); the default SipHash costs more
/// than the lookup itself for small integer keys. FxHash is not
/// DoS-resistant — irrelevant for a simulator — and, unlike
/// `RandomState`, it is fully deterministic, so map iteration order can
/// never vary between runs or platforms. (Order-sensitive consumers still
/// sort before drawing RNG values; see `transport::conn`.)
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// The [`BuildHasher`] producing [`FxHasher`]s (zero state, deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using the deterministic [`FxHasher`].
// detlint: allow(DET001) — this alias IS the deterministic replacement: FxBuildHasher has no per-process state
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Mixes the routing-relevant header fields with a switch salt.
///
/// This is the finalizer of SplitMix64 applied to the packed fields — cheap,
/// deterministic, and passes the avalanche requirements that matter here
/// (flipping any EV bit flips each output bit with ~1/2 probability).
pub fn ecmp_hash(src: HostId, dst: HostId, ev: u16, salt: u64) -> u64 {
    let mut z = (src.0 as u64) << 48 ^ (dst.0 as u64) << 24 ^ ev as u64;
    z ^= salt.rotate_left(17);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks an index in `[0, n)` for the given header and salt.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn ecmp_select(src: HostId, dst: HostId, ev: u16, salt: u64, n: usize) -> usize {
    assert!(n > 0, "ECMP group must be non-empty");
    // Multiply-shift: unbiased enough for power-of-two and small n alike,
    // and avoids the modulo bias of `hash % n`.
    let h = ecmp_hash(src, dst, ev, salt);
    ((h as u128 * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = ecmp_hash(HostId(1), HostId(2), 77, 42);
        let b = ecmp_hash(HostId(1), HostId(2), 77, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn ev_changes_hash() {
        let base = ecmp_hash(HostId(1), HostId(2), 0, 42);
        let mut changed = 0;
        for ev in 1..=256u16 {
            if ecmp_hash(HostId(1), HostId(2), ev, 42) != base {
                changed += 1;
            }
        }
        assert_eq!(changed, 256);
    }

    #[test]
    fn salt_decorrelates_switches() {
        // The same header must not pick the same port index on two switches
        // with independent salts more often than chance would suggest.
        let n = 8;
        let mut agree = 0;
        for ev in 0..1_000u16 {
            let a = ecmp_select(HostId(3), HostId(9), ev, 1111, n);
            let b = ecmp_select(HostId(3), HostId(9), ev, 2222, n);
            if a == b {
                agree += 1;
            }
        }
        // Expected ~125 agreements; allow a generous band.
        assert!((60..250).contains(&agree), "agreements = {agree}");
    }

    #[test]
    fn selection_is_roughly_uniform_over_evs() {
        let n = 16usize;
        let mut counts = vec![0u32; n];
        for ev in 0..u16::MAX {
            counts[ecmp_select(HostId(0), HostId(1), ev, 7, n)] += 1;
        }
        let expected = u16::MAX as f64 / n as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "port deviation {dev}");
        }
    }

    #[test]
    fn selection_in_range() {
        for n in 1..=9usize {
            for ev in 0..100u16 {
                assert!(ecmp_select(HostId(5), HostId(6), ev, 1, n) < n);
            }
        }
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        use std::hash::{BuildHasher, Hasher};
        let h = |n: u64| {
            let mut hasher = FxBuildHasher.build_hasher();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42), "same input, same hash");
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..1_000u64 {
            seen.insert(h(n));
        }
        assert_eq!(seen.len(), 1_000, "small integers must not collide");
    }

    #[test]
    fn fx_map_iteration_is_stable_across_instances() {
        // Determinism contract: two identically-filled maps iterate in the
        // same order (RandomState would not).
        let fill = || {
            let mut m: FxHashMap<u64, u32> = FxHashMap::default();
            for k in 0..100 {
                m.insert(k * 7919, k as u32);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(fill(), fill());
    }
}
