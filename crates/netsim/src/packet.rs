//! Packet representation shared by the fabric and the transport layer.
//!
//! The simulator models a UET-style (Ultra Ethernet Transport) wire format:
//! data packets carry a message id, a per-connection sequence number and an
//! entropy value (EV); acknowledgments echo the EV and the ECN (CE) mark of
//! the packet(s) they cover, optionally carrying several echoed EVs when ACK
//! coalescing is enabled (the paper's *Carry EVs* variant, §4.5.1).

use crate::ids::{ConnId, HostId};

/// Wire overhead per packet: Ethernet + IP + UDP + UET headers, rounded.
pub const HEADER_BYTES: u32 = 64;

/// A single echoed entropy observation carried by an ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvEcho {
    /// The entropy value copied from the data packet's header.
    pub ev: u16,
    /// Whether the data packet arrived with the ECN CE codepoint set.
    pub ecn: bool,
}

/// A small copy-on-build list storing up to `N` elements inline, spilling
/// to the heap only beyond that.
///
/// ACK bodies carry two variable-length lists (SACKed sequences, echoed
/// EVs). With per-packet ACKs — the steady-state hot path — each holds
/// exactly one element, so `Vec`s cost two heap allocations per
/// acknowledged packet. Inline storage makes the per-packet ACK path
/// allocation-free while coalesced ACKs (one per `ratio` packets) may
/// still spill; equality is by *content*, not representation.
#[derive(Debug, Clone)]
pub enum SmallList<T: Copy + Default, const N: usize> {
    /// Up to `N` elements stored in place.
    Inline {
        /// Number of valid elements in `buf`.
        len: u8,
        /// Inline storage; `buf[..len]` is valid.
        buf: [T; N],
    },
    /// Heap storage for lists that outgrew the inline buffer.
    Spill(Vec<T>),
}

impl<T: Copy + Default, const N: usize> SmallList<T, N> {
    /// Compile-time guard: the inline length is stored as `u8`, so an
    /// instantiation with `N > 255` would silently truncate lengths.
    const N_FITS_U8: () = assert!(
        N <= u8::MAX as usize,
        "SmallList inline capacity exceeds u8"
    );

    /// An empty list (inline, no allocation).
    pub fn new() -> SmallList<T, N> {
        #[allow(clippy::let_unit_value)]
        let () = Self::N_FITS_U8;
        SmallList::Inline {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// Builds a list from a slice: inline when it fits, one exact-size
    /// allocation otherwise.
    pub fn from_slice(items: &[T]) -> SmallList<T, N> {
        #[allow(clippy::let_unit_value)]
        let () = Self::N_FITS_U8;
        if items.len() <= N {
            let mut buf = [T::default(); N];
            buf[..items.len()].copy_from_slice(items);
            SmallList::Inline {
                len: items.len() as u8,
                buf,
            }
        } else {
            SmallList::Spill(items.to_vec())
        }
    }

    /// A one-element list (inline, no allocation).
    pub fn one(item: T) -> SmallList<T, N> {
        SmallList::from_slice(&[item])
    }

    /// Appends an element, spilling to the heap at inline capacity.
    pub fn push(&mut self, item: T) {
        match self {
            SmallList::Inline { len, buf } => {
                if (*len as usize) < N {
                    buf[*len as usize] = item;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N + 1);
                    v.extend_from_slice(&buf[..N]);
                    v.push(item);
                    *self = SmallList::Spill(v);
                }
            }
            SmallList::Spill(v) => v.push(item),
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallList::Inline { len, buf } => &buf[..*len as usize],
            SmallList::Spill(v) => v,
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallList<T, N> {
    fn default() -> SmallList<T, N> {
        SmallList::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SmallList<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallList<T, N> {
    fn eq(&self, other: &SmallList<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallList<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallList<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallList<T, N> {
        let mut list = SmallList::new();
        for item in iter {
            list.push(item);
        }
        list
    }
}

/// The SACKed-sequence list of an [`Ack`]: per-packet ACKs carry one
/// sequence; duplicates from retransmission races push it to two or
/// three, still inline.
pub type SeqList = SmallList<u64, 3>;

/// The echoed-EV list of an [`Ack`]: one echo per ACK except under the
/// *Carry EVs* coalescing variant.
pub type EchoList = SmallList<EvEcho, 5>;

/// Transport-level payload of a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// A data segment of a message.
    Data {
        /// Sequence number of this packet within its connection.
        seq: u64,
        /// Message index within the connection.
        msg: u32,
        /// Packet index within the message.
        msg_seq: u32,
        /// Total packets in the message (receiver-side completion).
        msg_pkts: u32,
        /// Opaque workload tag identifying the message (collective phases).
        tag: u64,
        /// Number of payload bytes carried (0 when trimmed).
        payload: u32,
        /// True when this is a retransmission.
        retx: bool,
        /// Sender's still-unsent bytes (EQDS receiver-driven demand hint).
        pending: u64,
    },
    /// An acknowledgment, possibly covering several data packets.
    Ack(Ack),
    /// A negative acknowledgment for a trimmed packet (trimming fast path).
    Nack {
        /// Sequence number whose payload was trimmed in the fabric.
        seq: u64,
    },
    /// A receiver-driven credit grant (EQDS-style congestion control).
    Credit {
        /// Number of payload bytes the sender may now transmit.
        bytes: u64,
    },
    /// A path probe used to test a possibly-failed path.
    Probe {
        /// Identifies the probe round.
        token: u64,
    },
    /// A probe response echoed by the receiver.
    ProbeReply {
        /// Token copied from the probe.
        token: u64,
    },
}

/// An acknowledgment body.
#[derive(Debug, Clone, PartialEq)]
pub struct Ack {
    /// Highest sequence number such that all packets below it were received.
    pub cum_ack: u64,
    /// Sequence numbers (possibly several when coalescing) acknowledged by
    /// this ACK, beyond the cumulative prefix.
    pub sacked: SeqList,
    /// Echoed entropy observations, oldest first.
    ///
    /// With per-packet ACKs this has exactly one element; with the
    /// *Carry EVs* coalescing variant it has up to the coalescing ratio.
    pub echoes: EchoList,
    /// Number of data packets this ACK covers (for ACK-clocked senders).
    pub covered: u32,
    /// Number of covered packets that carried an ECN mark.
    pub marked: u32,
    /// How many times each echoed entropy may be recycled (the *Reuse EVs*
    /// coalescing variant, §4.5.1; 1 in all other configurations).
    pub reuse: u32,
}

/// A packet traversing the simulated fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique id, assigned at creation, for tracing.
    pub id: u64,
    /// Sending host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Connection this packet belongs to.
    pub conn: ConnId,
    /// Entropy value steering ECMP hashing.
    pub ev: u16,
    /// Total wire size in bytes (header + payload).
    pub wire_bytes: u32,
    /// ECN congestion-experienced mark, set by switches under RED.
    pub ecn_ce: bool,
    /// Whether the payload was trimmed by an overloaded queue.
    pub trimmed: bool,
    /// Transport payload.
    pub body: Body,
}

impl Packet {
    /// Returns `true` for packets that should use the control priority band.
    ///
    /// ACKs, NACKs, credits, probes and trimmed headers are latency-critical
    /// and tiny; real deployments (and htsim's EQDS model) carry them in a
    /// strict-priority class so that congestion feedback survives congestion.
    pub fn is_control(&self) -> bool {
        self.trimmed
            || matches!(
                self.body,
                Body::Ack(_)
                    | Body::Nack { .. }
                    | Body::Credit { .. }
                    | Body::Probe { .. }
                    | Body::ProbeReply { .. }
            )
    }

    /// Returns `true` if this is an untrimmed data packet.
    pub fn is_data(&self) -> bool {
        !self.trimmed && matches!(self.body, Body::Data { .. })
    }

    /// Trims the packet to its header, dropping the payload.
    ///
    /// Mirrors switch packet-trimming (§2.1): the header continues through
    /// the fabric (in the control band) so that the receiver can NACK the
    /// loss promptly instead of waiting for a timeout.
    pub fn trim(&mut self) {
        self.trimmed = true;
        self.wire_bytes = HEADER_BYTES;
        if let Body::Data { payload, .. } = &mut self.body {
            *payload = 0;
        }
    }

    /// Convenience constructor for a single-message data packet.
    ///
    /// `seq` doubles as the packet index within a one-message connection;
    /// multi-message senders build [`Body::Data`] directly.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        id: u64,
        src: HostId,
        dst: HostId,
        conn: ConnId,
        ev: u16,
        seq: u64,
        payload: u32,
        retx: bool,
    ) -> Packet {
        Packet {
            id,
            src,
            dst,
            conn,
            ev,
            wire_bytes: payload + HEADER_BYTES,
            ecn_ce: false,
            trimmed: false,
            body: Body::Data {
                seq,
                msg: 0,
                msg_seq: seq as u32,
                msg_pkts: u32::MAX,
                tag: 0,
                payload,
                retx,
                pending: 0,
            },
        }
    }

    /// Convenience constructor for a minimum-size control packet.
    pub fn control(id: u64, src: HostId, dst: HostId, conn: ConnId, ev: u16, body: Body) -> Packet {
        Packet {
            id,
            src,
            dst,
            conn,
            ev,
            wire_bytes: HEADER_BYTES,
            ecn_ce: false,
            trimmed: false,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Packet {
        Packet::data(1, HostId(0), HostId(1), ConnId(0), 42, 7, 4096, false)
    }

    #[test]
    fn data_packet_wire_size_includes_header() {
        let p = sample_data();
        assert_eq!(p.wire_bytes, 4096 + HEADER_BYTES);
        assert!(p.is_data());
        assert!(!p.is_control());
    }

    #[test]
    fn trimming_shrinks_to_header_and_promotes() {
        let mut p = sample_data();
        p.trim();
        assert_eq!(p.wire_bytes, HEADER_BYTES);
        assert!(p.trimmed);
        assert!(p.is_control());
        assert!(!p.is_data());
        match p.body {
            Body::Data { payload, seq, .. } => {
                assert_eq!(payload, 0);
                assert_eq!(seq, 7);
            }
            _ => panic!("trim must preserve the data body"),
        }
    }

    #[test]
    fn small_list_stays_inline_up_to_capacity_then_spills() {
        let mut l: SmallList<u64, 3> = SmallList::new();
        assert!(l.is_empty());
        for v in [7u64, 8, 9] {
            l.push(v);
            assert!(matches!(l, SmallList::Inline { .. }));
        }
        assert_eq!(l.as_slice(), &[7, 8, 9]);
        l.push(10);
        assert!(matches!(l, SmallList::Spill(_)));
        assert_eq!(l.as_slice(), &[7, 8, 9, 10]);
        // Deref + iteration sugar.
        assert_eq!(l.len(), 4);
        assert_eq!(l.last(), Some(&10));
        assert_eq!((&l).into_iter().copied().sum::<u64>(), 34);
    }

    #[test]
    fn small_list_equality_is_by_content_not_representation() {
        let inline: SmallList<u64, 3> = SmallList::from_slice(&[1, 2]);
        let spilled = SmallList::<u64, 3>::Spill(vec![1, 2]);
        assert_eq!(inline, spilled);
        assert_ne!(inline, SmallList::from_slice(&[1, 2, 3]));
        let big: SmallList<u64, 3> = SmallList::from_slice(&[1, 2, 3, 4]);
        assert!(matches!(big, SmallList::Spill(_)));
        assert_eq!(big.as_slice(), &[1, 2, 3, 4]);
        let collected: SmallList<u64, 3> = (1..=2u64).collect();
        assert_eq!(collected, inline);
    }

    #[test]
    fn acks_are_control() {
        let p = Packet::control(
            2,
            HostId(1),
            HostId(0),
            ConnId(0),
            42,
            Body::Ack(Ack {
                cum_ack: 3,
                sacked: SeqList::new(),
                echoes: EchoList::one(EvEcho { ev: 42, ecn: false }),
                covered: 1,
                marked: 0,
                reuse: 1,
            }),
        );
        assert!(p.is_control());
        assert_eq!(p.wire_bytes, HEADER_BYTES);
    }
}
