//! The simulation engine: owns the fabric and drives the event loop.
//!
//! The engine wires a [`Topology`](crate::topology::Topology) into link
//! arenas, hosts endpoint implementations (the transport layer lives in the
//! `transport` crate and plugs in through the [`Endpoint`] trait), routes
//! packets through switches, applies failures, and feeds the statistics
//! collector.
//!
//! # Hot-path invariants
//!
//! The per-packet switch path (`route → select_uplink → push_link`) is
//! allocation-free in steady state, pinned by the allocation-counting test
//! in `tests/alloc.rs`:
//!
//! * packets live in the engine-owned [`PacketArena`]; the calendar and
//!   link queues move 4-byte [`PacketRef`]s, and a packet is written once
//!   (when the host hands it to its NIC) and mutated in place,
//! * routing queries return compact by-value link-table descriptors
//!   ([`RouteChoice`] carrying a [`LinkRange`]) computed in closed form —
//!   no per-switch table is materialized,
//! * uplink selection works by index; the only buffer it touches is the
//!   engine's reusable failover scratch (capacity bounded by the widest
//!   ECMP group, retained across packets),
//! * calendar, link deques, arena free list, the endpoint action buffer
//!   and the same-timestamp batch buffer all retain their high-water
//!   capacity.
//!
//! # Batched execution
//!
//! Every `run_*` entry point funnels into one drain helper that pulls
//! events from the calendar a same-timestamp batch at a time and chains
//! consecutive link-service completions inside a single link borrow —
//! see [`Engine::run_until`]'s shared `drain_events` and
//! `Engine::finish_service`. Batching is an execution strategy only:
//! dispatch order remains the exact `(time, seq)` total order, so traces,
//! statistics and golden outputs are byte-identical to the
//! one-pop-at-a-time engine. [`BatchStats`] exposes batch-shape counters
//! to the sweep's perf sink.

use crate::arena::{PacketArena, PacketRef};
use crate::config::SimConfig;
use crate::event::{ControlEvent, Event, EventQueue};
use crate::fluid::FluidNet;
use crate::hash::ecmp_select;
use crate::ids::{FlowId, HostId, LinkId, NodeRef, SwitchId};
use crate::link::{DropReason, EnqueueOutcome, Link};
use crate::packet::Packet;
use crate::rng::Rng64;
use crate::stats::{FlowRecord, Stats};
use crate::time::Time;
use crate::topology::{LinkRange, RouteChoice, Topology};
use crate::trace::{NoTrace, TraceEvent, TraceSink};

/// How switches pick among equal-cost uplinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Hash the packet header (five-tuple + EV). The default, and what every
    /// host-driven load balancer in the paper assumes.
    #[default]
    EcmpHash,
    /// Per-packet adaptive routing: the switch picks the least-loaded uplink
    /// (random tie-break). Models NVIDIA Adaptive RoCE / Spectrum-X (§4.1).
    Adaptive,
}

/// Counters for the batched event-execution path.
///
/// Diagnostics only — they feed the sweep's perf record stream (which is
/// not byte-golden) and never influence simulation behavior.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchStats {
    /// Same-timestamp batches drained from the calendar.
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// `QueueService` completions that started the next packet's
    /// serialization in the same link borrow (the batched service path).
    pub chained_services: u64,
}

/// A request to start (or enqueue) an application message on a host.
#[derive(Debug, Clone, Copy)]
pub struct MessageSpec {
    /// Flow id used in the completion record.
    pub flow: FlowId,
    /// Destination host.
    pub dst: HostId,
    /// Payload bytes.
    pub bytes: u64,
    /// Opaque workload tag (collective phase, trace index, ...).
    pub tag: u64,
}

/// Commands the harness can inject into endpoints.
#[derive(Debug, Clone)]
pub enum Command {
    /// Begin transmitting a message.
    StartMessage(MessageSpec),
    /// Endpoint-defined command.
    Custom(u64),
}

/// Actions an endpoint can emit during a callback.
#[derive(Debug)]
enum Action {
    Send(Packet),
    Timer { at: Time, token: u64 },
    Complete(FlowRecord),
    Timeout,
    Retransmission,
}

/// The callback context handed to endpoints.
///
/// All interaction with the fabric goes through this context; endpoints never
/// touch the engine directly, which keeps them deterministic and testable in
/// isolation.
///
/// The context is generic over the engine's [`TraceSink`]; with the default
/// [`NoTrace`] every `trace.emit(...)` call monomorphizes to nothing, so
/// untraced endpoints keep the exact pre-trace hot path.
pub struct Ctx<'a, S: TraceSink = NoTrace> {
    /// Current simulation time.
    pub now: Time,
    /// The host this endpoint lives on.
    pub host: HostId,
    /// Fabric profile (MTU, RTO, rates).
    pub cfg: &'a SimConfig,
    /// Deterministic per-engine random stream.
    pub rng: &'a mut Rng64,
    /// The engine's flight recorder (a no-op unless the run is traced).
    pub trace: &'a mut S,
    next_pkt_id: &'a mut u64,
    actions: &'a mut Vec<Action>,
}

impl<S: TraceSink> Ctx<'_, S> {
    /// Hands the packet to the host NIC for transmission.
    pub fn send(&mut self, pkt: Packet) {
        self.actions.push(Action::Send(pkt));
    }

    /// Allocates a fabric-unique packet id.
    pub fn fresh_packet_id(&mut self) -> u64 {
        let id = *self.next_pkt_id;
        *self.next_pkt_id += 1;
        id
    }

    /// Schedules `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.actions.push(Action::Timer {
            at: self.now + delay,
            token,
        });
    }

    /// Reports a completed flow to the statistics collector.
    pub fn complete_flow(&mut self, record: FlowRecord) {
        self.actions.push(Action::Complete(record));
    }

    /// Counts a sender-observed timeout (for the drop/timeout statistics).
    pub fn note_timeout(&mut self) {
        self.actions.push(Action::Timeout);
    }

    /// Counts a retransmitted packet.
    pub fn note_retransmission(&mut self) {
        self.actions.push(Action::Retransmission);
    }
}

/// A host endpoint: the transport layer's hook into the engine.
///
/// Generic over the engine's [`TraceSink`] (default [`NoTrace`]), so
/// `impl Endpoint for T` keeps meaning what it always did — an untraced
/// endpoint — while a single `impl<S: TraceSink> Endpoint<S> for T` serves
/// traced and untraced engines from one body.
pub trait Endpoint<S: TraceSink = NoTrace> {
    /// A packet addressed to this host arrived.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_, S>);
    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, S>);
    /// The harness injected a command (message start, custom).
    fn on_command(&mut self, cmd: Command, ctx: &mut Ctx<'_, S>);
    /// Concrete-type access for post-run instrumentation.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// A no-op endpoint for hosts that only absorb packets.
#[derive(Debug, Default)]
pub struct NullEndpoint;

impl<S: TraceSink> Endpoint<S> for NullEndpoint {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_, S>) {}
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_, S>) {}
    fn on_command(&mut self, _cmd: Command, _ctx: &mut Ctx<'_, S>) {}
}

/// A borrowed view of the routing-relevant engine state.
///
/// Packaging the immutable parts (`topo`, `links`) separately from the
/// mutable ones (`rng`, the scratch buffer) lets the per-packet switch
/// path run on disjoint field borrows of the engine — and makes the
/// selection logic testable in isolation (the routing-equivalence
/// property tests drive it directly).
pub struct RoutingView<'a> {
    /// Static topology (routing tables).
    pub topo: &'a Topology,
    /// Link arena, for failure state and queue depths.
    pub links: &'a [Link],
    /// Current simulation time.
    pub now: Time,
    /// ECMP reconvergence delay ([`SimConfig::ecmp_failover`]).
    pub failover: Option<Time>,
    /// Uplink selection mode.
    pub mode: RoutingMode,
}

impl RoutingView<'_> {
    /// True when routing still considers `link` usable toward `dst`:
    /// either the link (and the next hop's onward down-path) is up, or the
    /// reconvergence delay since its failure has not elapsed yet.
    pub fn failover_usable(&self, link: LinkId, dst: HostId, delay: Time) -> bool {
        let l = &self.links[link.index()];
        if !l.up && self.now >= l.down_since + delay {
            return false;
        }
        // Route withdrawal: if the next-hop switch would descend toward
        // `dst` over a link that failed long enough ago, upstream routing
        // has excluded this path too.
        if let NodeRef::Switch(peer) = l.to {
            if let Some(RouteChoice::Down(down)) = self.topo.route(peer, dst) {
                let d = &self.links[down.index()];
                if !d.up && self.now >= d.down_since + delay {
                    return false;
                }
            }
        }
        true
    }

    /// Applies ECMP failover filtering, then hash or adaptive selection.
    ///
    /// Allocation-free on the packet path: the failover filter fills the
    /// caller's reusable `scratch` buffer (capacity persists across
    /// packets, bounded by the widest ECMP group) and the adaptive
    /// least-queue tie-break selects by index instead of materializing the
    /// tie set. The tie-break draws exactly one RNG value with the same
    /// bound as the pre-refactor `Vec`-based implementation, so packet
    /// traces are byte-identical.
    pub fn select_uplink(
        &self,
        candidates: LinkRange,
        pkt: &Packet,
        salt: u64,
        rng: &mut Rng64,
        scratch: &mut Vec<LinkId>,
    ) -> LinkId {
        assert!(!candidates.is_empty(), "empty ECMP group");
        // `None` = select over the whole descriptor; `Some` = over the
        // failover-filtered scratch slice. When every path is withdrawn we
        // fall back to the full group (the packet blackholes instead of
        // vanishing from the model).
        let filtered: Option<&[LinkId]> = match self.failover {
            Some(delay) => {
                scratch.clear();
                scratch.extend(
                    candidates
                        .iter()
                        .filter(|&l| self.failover_usable(l, pkt.dst, delay)),
                );
                if scratch.is_empty() {
                    None
                } else {
                    Some(scratch.as_slice())
                }
            }
            None => None,
        };
        let len = filtered.map_or(candidates.len(), <[LinkId]>::len);
        let get = |i: usize| filtered.map_or_else(|| candidates.at(i), |s| s[i]);
        match self.mode {
            RoutingMode::EcmpHash => get(ecmp_select(pkt.src, pkt.dst, pkt.ev, salt, len)),
            RoutingMode::Adaptive => {
                let mut min = u64::MAX;
                let mut ties = 0usize;
                for i in 0..len {
                    let q = self.links[get(i).index()].queued_bytes;
                    if q < min {
                        min = q;
                        ties = 1;
                    } else if q == min {
                        ties += 1;
                    }
                }
                let want = rng.gen_index(ties);
                let mut seen = 0usize;
                for i in 0..len {
                    let l = get(i);
                    if self.links[l.index()].queued_bytes == min {
                        if seen == want {
                            return l;
                        }
                        seen += 1;
                    }
                }
                unreachable!("tie index {want} within tie count {ties}")
            }
        }
    }
}

/// The discrete-event simulation engine.
///
/// Generic over a [`TraceSink`] flight recorder; the default [`NoTrace`]
/// keeps every trace hook a no-op the optimizer removes, so `Engine` (the
/// default) is exactly the pre-trace engine. [`Engine::with_trace`] builds
/// a recording engine.
pub struct Engine<S: TraceSink = NoTrace> {
    /// Current simulation time.
    pub now: Time,
    /// Fabric profile.
    pub cfg: SimConfig,
    /// Static topology.
    pub topo: Topology,
    /// Link arena (index = `LinkId`).
    pub links: Vec<Link>,
    /// Statistics collector.
    pub stats: Stats,
    /// Uplink selection mode.
    pub routing: RoutingMode,
    /// Total events dispatched across all `run_*` calls (events/sec
    /// accounting for the sweep perf sink).
    pub events_processed: u64,
    /// In-fabric packet storage; calendar and links hold [`PacketRef`]s.
    pub arena: PacketArena,
    /// The flight recorder ([`NoTrace`] unless the run is traced).
    pub trace: S,
    /// Batched-execution counters (see [`BatchStats`]).
    pub batch_stats: BatchStats,
    events: EventQueue,
    /// Reusable same-timestamp batch buffer ([`Engine::drain_events`]).
    batch: Vec<(Time, u64, Event)>,
    /// First undispatched element of `batch` (leftovers after a mid-batch
    /// stop keep their position here).
    batch_pos: usize,
    endpoints: Vec<Option<Box<dyn Endpoint<S>>>>,
    rng: Rng64,
    next_pkt_id: u64,
    /// Queue sampling continues while `now` is below this.
    sample_until: Time,
    /// True while a `StatsSample` chain is on the calendar (guards
    /// [`Engine::enable_sampling`] against scheduling a second chain).
    sampling_scheduled: bool,
    scratch_actions: Vec<Action>,
    /// Reusable failover-filter buffer for [`RoutingView::select_uplink`].
    scratch_uplinks: Vec<LinkId>,
    /// Fluid background-traffic model (hybrid-fidelity cells only; `None`
    /// keeps the pure packet engine untouched).
    pub fluid: Option<FluidNet>,
}

impl Engine {
    /// Builds an untraced engine over `topo` with fabric profile `cfg`.
    pub fn new(topo: Topology, cfg: SimConfig, seed: u64) -> Engine {
        Engine::with_trace(topo, cfg, seed, NoTrace)
    }
}

impl<S: TraceSink> Engine<S> {
    /// Builds an engine whose decision points feed `trace`.
    ///
    /// Tracing is read-only by contract: a traced engine draws the same
    /// RNG stream and produces the same statistics as an untraced one.
    pub fn with_trace(topo: Topology, cfg: SimConfig, seed: u64, trace: S) -> Engine<S> {
        let mut links = Vec::with_capacity(topo.links.len());
        for (i, spec) in topo.links.iter().enumerate() {
            // Fold the downstream switch traversal latency into propagation.
            let latency = match spec.to {
                NodeRef::Switch(_) => cfg.link_latency + cfg.switch_latency,
                NodeRef::Host(_) => cfg.link_latency,
            };
            let mut link = Link::new(LinkId(i as u32), spec.from, spec.to, latency, &cfg);
            if matches!(spec.from, NodeRef::Host(_)) {
                // Host NIC egress: deep source queue, no fabric marking.
                link.make_host_egress();
            }
            if let (NodeRef::Switch(_), NodeRef::Switch(_), Some(bps)) =
                (spec.from, spec.to, cfg.fabric_bps)
            {
                link.rate_bps = bps;
                link.nominal_bps = bps;
            }
            links.push(link);
        }
        let endpoints = (0..topo.n_hosts).map(|_| None).collect();
        let stats = Stats::new(cfg.stats_bucket);
        Engine {
            now: Time::ZERO,
            cfg,
            topo,
            links,
            stats,
            routing: RoutingMode::EcmpHash,
            events_processed: 0,
            arena: PacketArena::new(),
            trace,
            batch_stats: BatchStats::default(),
            events: EventQueue::new(),
            batch: Vec::new(),
            batch_pos: 0,
            endpoints,
            rng: Rng64::new(seed ^ 0x5EED_0FEB_ECD1_4E75),
            next_pkt_id: 0,
            sample_until: Time::ZERO,
            sampling_scheduled: false,
            scratch_actions: Vec::new(),
            scratch_uplinks: Vec::new(),
            fluid: None,
        }
    }

    /// Installs the endpoint for `host`.
    pub fn set_endpoint(&mut self, host: HostId, ep: Box<dyn Endpoint<S>>) {
        self.endpoints[host.index()] = Some(ep);
    }

    /// Immutable access to an endpoint (for harness inspection).
    pub fn endpoint(&self, host: HostId) -> Option<&dyn Endpoint<S>> {
        self.endpoints[host.index()].as_deref()
    }

    /// Schedules a control event at absolute time `at`.
    pub fn schedule_control(&mut self, at: Time, ev: ControlEvent) {
        self.events.push(at, Event::Control(ev));
    }

    /// Enables periodic queue sampling on tracked links until `until`.
    ///
    /// Idempotent while a sampling chain is already on the calendar:
    /// calling it again only extends (or shortens) the horizon instead of
    /// scheduling a second, double-recording `StatsSample` chain.
    pub fn enable_sampling(&mut self, until: Time) {
        self.sample_until = until;
        if self.cfg.sample_period > Time::ZERO && !self.sampling_scheduled {
            self.sampling_scheduled = true;
            self.events
                .push(self.now, Event::Control(ControlEvent::StatsSample));
        }
    }

    /// Delivers `cmd` to `host`'s endpoint at the current simulation time.
    pub fn command(&mut self, host: HostId, cmd: Command) {
        let mut ep = self.endpoints[host.index()]
            .take()
            .expect("command sent to host without endpoint");
        let mut actions = std::mem::take(&mut self.scratch_actions);
        {
            let mut ctx = Ctx {
                now: self.now,
                host,
                cfg: &self.cfg,
                rng: &mut self.rng,
                trace: &mut self.trace,
                next_pkt_id: &mut self.next_pkt_id,
                actions: &mut actions,
            };
            ep.on_command(cmd, &mut ctx);
        }
        self.endpoints[host.index()] = Some(ep);
        self.apply_actions(host, &mut actions);
        self.scratch_actions = actions;
    }

    /// Runs until the calendar empties or `deadline` passes.
    ///
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let n = self.drain_events(deadline, |_| false);
        if self.now < deadline && self.pending_events() == 0 {
            self.now = deadline;
        }
        n
    }

    /// Runs until every expected flow completed, or `deadline`.
    ///
    /// Returns `true` on completion.
    pub fn run_to_completion(&mut self, deadline: Time) -> bool {
        self.drain_events(deadline, Stats::all_flows_done);
        self.stats.all_flows_done()
    }

    /// Runs until at least one *new* flow completes, the calendar empties,
    /// or `deadline` passes. Returns `true` if a new completion appeared.
    pub fn run_until_next_completion(&mut self, deadline: Time) -> bool {
        let before = self.stats.flows.len();
        self.drain_events(deadline, |s| s.flows.len() > before);
        self.stats.flows.len() > before
    }

    /// The shared drain loop behind every `run_*` entry point: dispatches
    /// events in exact `(time, seq)` order until the calendar empties,
    /// the next event lies past `deadline`, or `stop(&stats)` turns true.
    /// Returns the number of events dispatched.
    ///
    /// Events are pulled a same-timestamp *batch* at a time
    /// ([`EventQueue::drain_batch_into`]), which amortizes calendar
    /// cursor/sort work over the batch. Exactness:
    ///
    /// * the deadline cannot fire mid-batch on the hot path — a batch
    ///   shares one timestamp, checked before dispatching any of it;
    /// * a `stop` can fire mid-batch, leaving leftovers in `self.batch`.
    ///   Dispatch pushes only at-or-after `now`, with seqs above every
    ///   batch member, so leftovers stay ahead of anything pushed *during*
    ///   the run — but between runs the harness may schedule controls at
    ///   earlier keys, so the resume path (the first loop) re-checks the
    ///   calendar head key against the leftover head per event.
    fn drain_events(&mut self, deadline: Time, mut stop: impl FnMut(&Stats) -> bool) -> u64 {
        let mut n = 0;
        // Resume path: leftovers from a previous mid-batch stop, merged
        // against the calendar key-by-key.
        while self.batch_pos < self.batch.len() {
            if stop(&self.stats) {
                return n;
            }
            let (bt, bseq, bev) = self.batch[self.batch_pos];
            match self.events.peek_key() {
                Some((ct, cseq)) if (ct, cseq) < (bt, bseq) => {
                    if ct > deadline {
                        return n;
                    }
                    let (at, ev) = self.events.pop().expect("peeked");
                    self.now = at;
                    self.dispatch(ev);
                }
                _ => {
                    if bt > deadline {
                        return n;
                    }
                    self.batch_pos += 1;
                    self.now = bt;
                    self.dispatch(bev);
                }
            }
            n += 1;
        }
        // Hot path: whole batches.
        'refill: loop {
            if stop(&self.stats) {
                return n;
            }
            self.batch.clear();
            self.batch_pos = 0;
            match self.events.peek_time() {
                Some(t) if t <= deadline => {}
                _ => return n,
            }
            self.events.drain_batch_into(&mut self.batch);
            self.batch_stats.batches += 1;
            self.batch_stats.max_batch = self.batch_stats.max_batch.max(self.batch.len() as u64);
            loop {
                let (at, _, ev) = self.batch[self.batch_pos];
                self.batch_pos += 1;
                self.now = at;
                self.dispatch(ev);
                n += 1;
                if self.batch_pos == self.batch.len() {
                    continue 'refill;
                }
                if stop(&self.stats) {
                    return n;
                }
            }
        }
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.events.len() + (self.batch.len() - self.batch_pos)
    }

    fn dispatch(&mut self, ev: Event) {
        self.events_processed += 1;
        match ev {
            Event::QueueService { link } => self.finish_service(link),
            Event::Arrive { node, pkt } => match node {
                NodeRef::Switch(sw) => self.arrive_at_switch(sw, pkt),
                NodeRef::Host(h) => self.arrive_at_host(h, pkt),
            },
            Event::Timer { host, token } => self.fire_timer(host, token),
            Event::Control(c) => self.control(c),
        }
    }

    /// Starts serializing the next queued packet, if the link is idle.
    fn start_service(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.index()];
        if link.busy || !link.up {
            return;
        }
        let Some((pkt, ser)) = link.begin_service(&self.arena) else {
            return;
        };
        link.busy = true;
        link.in_service = Some(pkt);
        self.events
            .push(self.now + ser, Event::QueueService { link: link_id });
    }

    /// A serialization completed: deliver the committed packet and chain
    /// straight into the next packet's service *inside the same link
    /// borrow* — the batched service path. A link running at capacity sees
    /// an unbroken train of `QueueService` events; chaining pays one
    /// link-slot lookup and one arena access per packet where the
    /// unbatched completion-then-`start_service` shape paid two of each.
    /// Stale events (the link failed meanwhile) are no-ops.
    fn finish_service(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.index()];
        let Some(pkt) = link.in_service.take() else {
            return;
        };
        let latency = link.latency;
        let to = link.to;
        let ber = link.ber;
        let gray = link.gray;
        let corrupt = link.corrupt;
        // Chain while the link is hot. The link is provably up (a down
        // link flushes `in_service`, so we could not get here) and no
        // longer busy — exactly the state `start_service` would re-check.
        let next = link.begin_service(&self.arena);
        if let Some((npkt, _)) = next {
            link.in_service = Some(npkt);
            self.batch_stats.chained_services += 1;
        } else {
            link.busy = false;
        }
        let (wire_bytes, is_data) = {
            let p = self.arena.get(pkt);
            (p.wire_bytes as u64, p.is_data())
        };
        self.stats
            .on_transmit(link_id, self.now, wire_bytes, is_data);
        // The fault checks mirror the BER short-circuit: a clean link
        // (all three probabilities 0.0) draws no randomness here, so the
        // RNG stream — and every downstream byte — is untouched by the
        // fault machinery's existence.
        if ber > 0.0 && self.rng.gen_bool(ber) {
            self.arena.take(pkt);
            self.stats.on_drop(DropReason::BitError);
        } else if gray > 0.0 && self.rng.gen_bool(gray) {
            self.arena.take(pkt);
            self.stats.on_drop(DropReason::Gray);
        } else if corrupt > 0.0 && self.rng.gen_bool(corrupt) {
            self.arena.take(pkt);
            self.stats.on_drop(DropReason::Corrupt);
        } else {
            self.events
                .push(self.now + latency, Event::Arrive { node: to, pkt });
        }
        // Calendar push order assigns seqs: the Arrive above must precede
        // the chained QueueService, exactly as the unbatched path ordered
        // its pushes — this keeps every output byte-identical.
        if let Some((_, ser)) = next {
            self.events
                .push(self.now + ser, Event::QueueService { link: link_id });
        }
    }

    fn arrive_at_switch(&mut self, sw: SwitchId, pkt: PacketRef) {
        if !self.topo.switches[sw.index()].alive {
            self.arena.take(pkt);
            self.stats.on_drop(DropReason::LinkDown);
            return;
        }
        // Disjoint field borrows: the routing view reads `topo`/`links`
        // and the packet header stays in the arena, while selection draws
        // from `rng` and fills the scratch buffer — no packet-path copies
        // or allocations.
        let Engine {
            ref topo,
            ref links,
            ref cfg,
            ref arena,
            ref mut rng,
            ref mut scratch_uplinks,
            ref mut trace,
            now,
            routing,
            ..
        } = *self;
        let header = arena.get(pkt);
        let view = RoutingView {
            topo,
            links,
            now,
            failover: cfg.ecmp_failover,
            mode: routing,
        };
        let out = match topo.route(sw, header.dst) {
            Some(RouteChoice::Down(l)) => Some(l),
            Some(RouteChoice::Up(candidates)) => {
                let salt = topo.switches[sw.index()].salt;
                let link = view.select_uplink(candidates, header, salt, rng, scratch_uplinks);
                trace.emit(TraceEvent::PathChoice {
                    at: now,
                    sw,
                    link,
                    ev: header.ev,
                });
                Some(link)
            }
            None => None,
        };
        match out {
            Some(link) => self.push_link(link, pkt),
            None => {
                self.arena.take(pkt);
                self.stats.on_drop(DropReason::LinkDown);
            }
        }
    }

    /// Enqueues `pkt` on `link`, recording the outcome and scheduling service.
    fn push_link(&mut self, link_id: LinkId, pkt: PacketRef) {
        let link = &mut self.links[link_id.index()];
        match link.enqueue(pkt, &mut self.arena, &mut self.rng) {
            EnqueueOutcome::Queued { marked } => {
                if marked {
                    self.stats.on_ecn_mark();
                }
            }
            EnqueueOutcome::Trimmed => self.stats.on_trim(),
            EnqueueOutcome::Dropped(reason) => {
                self.stats.on_drop(reason);
                return;
            }
        }
        self.start_service(link_id);
    }

    fn arrive_at_host(&mut self, host: HostId, pkt: PacketRef) {
        let pkt = self.arena.take(pkt);
        let Some(mut ep) = self.endpoints[host.index()].take() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.scratch_actions);
        {
            let mut ctx = Ctx {
                now: self.now,
                host,
                cfg: &self.cfg,
                rng: &mut self.rng,
                trace: &mut self.trace,
                next_pkt_id: &mut self.next_pkt_id,
                actions: &mut actions,
            };
            ep.on_packet(pkt, &mut ctx);
        }
        self.endpoints[host.index()] = Some(ep);
        self.apply_actions(host, &mut actions);
        self.scratch_actions = actions;
    }

    fn fire_timer(&mut self, host: HostId, token: u64) {
        let Some(mut ep) = self.endpoints[host.index()].take() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.scratch_actions);
        {
            let mut ctx = Ctx {
                now: self.now,
                host,
                cfg: &self.cfg,
                rng: &mut self.rng,
                trace: &mut self.trace,
                next_pkt_id: &mut self.next_pkt_id,
                actions: &mut actions,
            };
            ep.on_timer(token, &mut ctx);
        }
        self.endpoints[host.index()] = Some(ep);
        self.apply_actions(host, &mut actions);
        self.scratch_actions = actions;
    }

    fn apply_actions(&mut self, host: HostId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send(pkt) => {
                    let up = self.topo.host_up[host.index()];
                    let pkt = self.arena.insert(pkt);
                    self.push_link(up, pkt);
                }
                Action::Timer { at, token } => {
                    self.events.push(at, Event::Timer { host, token });
                }
                Action::Complete(record) => {
                    self.stats.on_flow_complete(record);
                }
                Action::Timeout => self.stats.counters.timeouts += 1,
                Action::Retransmission => self.stats.counters.retransmissions += 1,
            }
        }
    }

    /// Attaches a fluid background population and schedules its first
    /// wake. No-op on an empty population.
    pub fn attach_fluid(&mut self, mut fluid: FluidNet) {
        if let Some(t) = fluid.next_event() {
            let at = t.max(self.now);
            fluid.scheduled_wake = at;
            self.events
                .push(at, Event::Control(ControlEvent::FluidWake));
        }
        self.fluid = Some(fluid);
    }

    /// Re-solves the fluid background model at `now` and folds the new
    /// per-link residual rates into the packet layer. Called on every
    /// capacity-changing control event and on scheduled `FluidWake`s;
    /// between calls the background progresses in closed form, so a stale
    /// wake is just a cheap deterministic re-solve.
    fn fluid_resolve(&mut self) {
        let Some(mut fluid) = self.fluid.take() else {
            return;
        };
        let (active, updated) = fluid.resolve(self.now, &self.links);
        let frame = self.cfg.full_frame_bytes() as u64;
        for &li in fluid.changed() {
            let l = LinkId(li);
            self.links[l.index()].set_background(fluid.link_bg(l), frame);
        }
        for rec in fluid.drain_completions() {
            self.stats.on_flow_complete(rec);
        }
        self.trace.emit(TraceEvent::FluidResolve {
            at: self.now,
            active,
            updated,
        });
        if let Some(t) = fluid.next_event() {
            let t = t.max(self.now);
            // Dedup: only push a wake if it beats the one already on the
            // calendar (or that one has already fired).
            if fluid.scheduled_wake <= self.now || t < fluid.scheduled_wake {
                fluid.scheduled_wake = t;
                self.events.push(t, Event::Control(ControlEvent::FluidWake));
            }
        }
        self.fluid = Some(fluid);
    }

    fn control(&mut self, ev: ControlEvent) {
        match ev {
            ControlEvent::LinkDown(l) => {
                self.trace.emit(TraceEvent::LinkDown {
                    at: self.now,
                    link: l,
                });
                let flushed = self.links[l.index()].set_down(self.now, &mut self.arena);
                for _ in 0..flushed {
                    self.stats.on_drop(DropReason::LinkDown);
                }
                self.fluid_resolve();
            }
            ControlEvent::LinkUp(l) => {
                self.trace.emit(TraceEvent::LinkUp {
                    at: self.now,
                    link: l,
                });
                self.links[l.index()].set_up();
                self.fluid_resolve();
            }
            ControlEvent::LinkRate(l, bps) => {
                self.trace.emit(TraceEvent::LinkRate {
                    at: self.now,
                    link: l,
                    bps,
                });
                self.links[l.index()].set_rate(bps);
                self.fluid_resolve();
            }
            ControlEvent::LinkBer(l, p) => {
                self.trace.emit(TraceEvent::LinkBer {
                    at: self.now,
                    link: l,
                });
                self.links[l.index()].ber = p;
            }
            ControlEvent::LinkGray(l, p) => {
                self.trace.emit(TraceEvent::LinkGray {
                    at: self.now,
                    link: l,
                    on: p > 0.0,
                });
                self.links[l.index()].gray = p;
            }
            ControlEvent::LinkCorrupt(l, p) => {
                self.trace.emit(TraceEvent::LinkCorrupt {
                    at: self.now,
                    link: l,
                    on: p > 0.0,
                });
                self.links[l.index()].corrupt = p;
            }
            ControlEvent::SwitchDown(sw) => {
                self.trace.emit(TraceEvent::SwitchDown { at: self.now, sw });
                self.topo.switches[sw.index()].alive = false;
                for l in self.topo.switch_links(sw) {
                    let flushed = self.links[l.index()].set_down(self.now, &mut self.arena);
                    for _ in 0..flushed {
                        self.stats.on_drop(DropReason::LinkDown);
                    }
                }
                self.fluid_resolve();
            }
            ControlEvent::SwitchUp(sw) => {
                self.trace.emit(TraceEvent::SwitchUp { at: self.now, sw });
                self.topo.switches[sw.index()].alive = true;
                for l in self.topo.switch_links(sw) {
                    self.links[l.index()].set_up();
                }
                self.fluid_resolve();
            }
            ControlEvent::FluidWake => {
                self.fluid_resolve();
            }
            ControlEvent::StatsSample => {
                // Iterate the cached tracked-link list by index: no
                // per-tick Vec, and insertion order is deterministic.
                for i in 0..self.stats.tracked_count() {
                    let l = self.stats.tracked_id(i);
                    let bytes = self.links[l.index()].queued_bytes;
                    self.stats.on_queue_sample(l, self.now, bytes);
                }
                if self.now < self.sample_until && self.cfg.sample_period > Time::ZERO {
                    self.events.push(
                        self.now + self.cfg.sample_period,
                        Event::Control(ControlEvent::StatsSample),
                    );
                } else {
                    self.sampling_scheduled = false;
                }
            }
            ControlEvent::HostStart(h) => {
                self.command(h, Command::Custom(0));
            }
            ControlEvent::Custom(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConnId;
    use crate::packet::Body;
    use crate::topology::FatTreeConfig;

    /// Echo endpoint: bounces every data packet back as a 64-byte reply and
    /// records what it saw.
    #[derive(Default)]
    struct Echo {
        seen: Vec<u64>,
        replies: Vec<u64>,
    }

    impl Endpoint for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            match pkt.body {
                Body::Data { seq, .. } => {
                    self.seen.push(seq);
                    let id = ctx.fresh_packet_id();
                    let reply = Packet::control(
                        id,
                        ctx.host,
                        pkt.src,
                        pkt.conn,
                        pkt.ev,
                        Body::Nack { seq },
                    );
                    ctx.send(reply);
                }
                Body::Nack { seq } => self.replies.push(seq),
                _ => {}
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
        fn on_command(&mut self, cmd: Command, ctx: &mut Ctx<'_>) {
            if let Command::StartMessage(spec) = cmd {
                let id = ctx.fresh_packet_id();
                let pkt = Packet::data(
                    id,
                    ctx.host,
                    spec.dst,
                    ConnId(0),
                    (spec.tag & 0xFFFF) as u16,
                    spec.tag,
                    ctx.cfg.mtu_bytes,
                    false,
                );
                ctx.send(pkt);
            }
        }
    }

    fn small_engine(seed: u64) -> Engine {
        let topo = Topology::build(FatTreeConfig::two_tier(16, 1), seed);
        let cfg = SimConfig::paper_default();
        let mut engine = Engine::new(topo, cfg, seed);
        for h in 0..engine.topo.n_hosts {
            engine.set_endpoint(HostId(h), Box::new(Echo::default()));
        }
        engine
    }

    #[test]
    fn packet_crosses_fabric_and_returns() {
        let mut engine = small_engine(1);
        engine.command(
            HostId(0),
            Command::StartMessage(MessageSpec {
                flow: FlowId(0),
                dst: HostId(40),
                bytes: 4096,
                tag: 5,
            }),
        );
        engine.run_until(Time::from_us(100));
        // Cross-rack: 4 hops out (data), 4 hops back (control reply).
        assert_eq!(engine.stats.counters.data_tx, 4);
        assert_eq!(engine.stats.counters.ctrl_tx, 4);
        assert_eq!(engine.stats.counters.total_drops(), 0);
    }

    #[test]
    fn rtt_matches_profile_estimate() {
        let mut engine = small_engine(2);
        // Cross-rack: 4 switch hops each way. The config estimate should be
        // within a microsecond of the observed echo time.
        engine.command(
            HostId(0),
            Command::StartMessage(MessageSpec {
                flow: FlowId(0),
                dst: HostId(40),
                bytes: 4096,
                tag: 1,
            }),
        );
        let processed = engine.run_until(Time::from_us(50));
        assert!(processed > 0);
        // Echo reply arrives: check via counters; exact latency checked by
        // the estimate being sane (serialization + 8 hops of 1us).
        let est = engine.cfg.base_rtt(4);
        assert!(
            est > Time::from_us(8) && est < Time::from_us(12),
            "est={est}"
        );
    }

    #[test]
    fn down_link_blackholes_traffic() {
        let mut engine = small_engine(3);
        // Fail host 40's ToR downlink before sending.
        let down = engine.topo.host_down[40];
        engine.schedule_control(Time::ZERO, ControlEvent::LinkDown(down));
        engine.run_until(Time::from_ns(1));
        engine.command(
            HostId(0),
            Command::StartMessage(MessageSpec {
                flow: FlowId(0),
                dst: HostId(40),
                bytes: 4096,
                tag: 2,
            }),
        );
        engine.run_until(Time::from_us(100));
        assert_eq!(engine.stats.counters.drops_link_down, 1);
        assert_eq!(engine.stats.counters.ctrl_tx, 0, "no reply expected");
    }

    #[test]
    fn switch_failure_blackholes() {
        let mut engine = small_engine(4);
        let t1 = engine.topo.t1_switches()[0];
        engine.schedule_control(Time::ZERO, ControlEvent::SwitchDown(t1));
        engine.run_until(Time::from_ns(1));
        // Spray many packets; those hashed through the dead T1 die.
        for i in 0..64 {
            engine.command(
                HostId(0),
                Command::StartMessage(MessageSpec {
                    flow: FlowId(i),
                    dst: HostId(40),
                    bytes: 4096,
                    tag: i as u64,
                }),
            );
        }
        engine.run_until(Time::from_ms(1));
        assert!(engine.stats.counters.drops_link_down > 0);
        assert!(
            engine.stats.counters.ctrl_tx > 0,
            "healthy paths still work"
        );
    }

    #[test]
    fn adaptive_routing_avoids_loaded_uplink() {
        let mut engine = small_engine(5);
        engine.routing = RoutingMode::Adaptive;
        for i in 0..32 {
            engine.command(
                HostId(0),
                Command::StartMessage(MessageSpec {
                    flow: FlowId(i),
                    dst: HostId(40),
                    bytes: 4096,
                    tag: i as u64,
                }),
            );
        }
        engine.run_until(Time::from_ms(1));
        assert_eq!(engine.stats.counters.total_drops(), 0);
        // 32 cross-rack packets, 4 hops each.
        assert_eq!(engine.stats.counters.data_tx, 32 * 4);
    }

    #[test]
    fn timers_fire_in_order() {
        /// Emits a flow record per timer so the firing order is observable
        /// through the statistics collector.
        struct TimerLog;
        impl Endpoint for TimerLog {
            fn on_packet(&mut self, _p: Packet, _c: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
                ctx.complete_flow(FlowRecord {
                    flow: FlowId(token as u32),
                    src: ctx.host,
                    dst: ctx.host,
                    bytes: 0,
                    start: Time::ZERO,
                    end: ctx.now,
                    retransmissions: 0,
                });
            }
            fn on_command(&mut self, _cmd: Command, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Time::from_us(30), 3);
                ctx.set_timer(Time::from_us(10), 1);
                ctx.set_timer(Time::from_us(20), 2);
            }
        }
        let topo = Topology::build(FatTreeConfig::two_tier(4, 1), 1);
        let mut engine = Engine::new(topo, SimConfig::paper_default(), 1);
        engine.set_endpoint(HostId(0), Box::new(TimerLog));
        engine.command(HostId(0), Command::Custom(1));
        engine.run_until(Time::from_us(100));
        let order: Vec<u32> = engine.stats.flows.iter().map(|f| f.flow.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(engine.stats.flows[0].end, Time::from_us(10));
    }

    #[test]
    fn enable_sampling_twice_does_not_double_record() {
        let run = |enables: u32| {
            let mut engine = small_engine(7);
            let up = engine.topo.host_up[0];
            engine.stats.track_link(up);
            for _ in 0..enables {
                engine.enable_sampling(Time::from_us(50));
            }
            engine.command(
                HostId(0),
                Command::StartMessage(MessageSpec {
                    flow: FlowId(0),
                    dst: HostId(40),
                    bytes: 4096,
                    tag: 0,
                }),
            );
            engine.run_until(Time::from_us(60));
            engine.stats.link_series(up).unwrap().queue_samples.len()
        };
        let once = run(1);
        let twice = run(2);
        assert!(once >= 50, "sampling must run: {once}");
        assert_eq!(once, twice, "second enable_sampling must not double-record");
    }

    #[test]
    fn sampling_can_be_rearmed_after_the_chain_ends() {
        let mut engine = small_engine(8);
        let up = engine.topo.host_up[0];
        engine.stats.track_link(up);
        engine.enable_sampling(Time::from_us(10));
        engine.run_until(Time::from_us(20));
        let first = engine.stats.link_series(up).unwrap().queue_samples.len();
        assert!(first >= 10, "first chain must sample: {first}");
        // The first chain has expired; re-enabling must start a new one.
        engine.enable_sampling(Time::from_us(40));
        engine.run_until(Time::from_us(50));
        let total = engine.stats.link_series(up).unwrap().queue_samples.len();
        assert!(
            total >= first + 10,
            "re-arm after expiry must sample again: {first} -> {total}"
        );
    }

    #[test]
    fn sampling_records_queue_series() {
        let mut engine = small_engine(7);
        let up = engine.topo.host_up[0];
        engine.stats.track_link(up);
        engine.enable_sampling(Time::from_us(50));
        engine.command(
            HostId(0),
            Command::StartMessage(MessageSpec {
                flow: FlowId(0),
                dst: HostId(40),
                bytes: 4096,
                tag: 0,
            }),
        );
        engine.run_until(Time::from_us(60));
        let series = engine.stats.link_series(up).unwrap();
        assert!(series.queue_samples.len() >= 50);
    }
}
