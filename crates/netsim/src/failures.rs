//! Failure-scenario builders for the paper's §4.3.3 and Appendix C.3.
//!
//! These helpers translate a high-level failure description ("one cable for
//! 100 µs", "5 % of switches", "1 % BER on a cable") into the link/switch
//! control events the engine executes. All randomness is drawn from a caller
//! -provided [`Rng64`] so scenarios are reproducible.

use crate::engine::Engine;
use crate::event::ControlEvent;
use crate::ids::{LinkId, SwitchId};
use crate::rng::Rng64;
use crate::time::Time;
use crate::trace::TraceSink;

/// A single failure instance in a scenario.
#[derive(Debug, Clone)]
pub enum Failure {
    /// Both directions of a cable go down at `at`; recover after `duration`
    /// (`None` = permanent).
    Cable {
        /// The `(forward, reverse)` unidirectional link pair.
        pair: (LinkId, LinkId),
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// A whole switch fails.
    Switch {
        /// The switch.
        sw: SwitchId,
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// A cable degrades to `bps` (both directions).
    Degrade {
        /// The `(forward, reverse)` link pair.
        pair: (LinkId, LinkId),
        /// Degradation instant.
        at: Time,
        /// New rate.
        bps: u64,
    },
    /// A cable starts dropping packets with probability `p` per packet.
    BitError {
        /// The `(forward, reverse)` link pair.
        pair: (LinkId, LinkId),
        /// Onset instant.
        at: Time,
        /// Per-packet corruption probability.
        p: f64,
    },
}

/// A set of failures applied to one engine run.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// The failures, in no particular order.
    pub failures: Vec<Failure>,
}

impl FailurePlan {
    /// An empty plan (healthy network).
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// Adds a failure.
    pub fn with(mut self, f: Failure) -> FailurePlan {
        self.failures.push(f);
        self
    }

    /// Fails `fraction` of all switch-to-switch cables at `at`.
    pub fn random_cables(
        topo_pairs: &[(LinkId, LinkId)],
        fraction: f64,
        at: Time,
        duration: Option<Time>,
        rng: &mut Rng64,
    ) -> FailurePlan {
        let mut pairs = topo_pairs.to_vec();
        rng.shuffle(&mut pairs);
        let n = ((pairs.len() as f64 * fraction).round() as usize).min(pairs.len());
        FailurePlan {
            failures: pairs[..n]
                .iter()
                .map(|&pair| Failure::Cable { pair, at, duration })
                .collect(),
        }
    }

    /// Fails `fraction` of the given switches at `at`.
    pub fn random_switches(
        switches: &[SwitchId],
        fraction: f64,
        at: Time,
        duration: Option<Time>,
        rng: &mut Rng64,
    ) -> FailurePlan {
        let mut sw = switches.to_vec();
        rng.shuffle(&mut sw);
        let n = ((sw.len() as f64 * fraction).round() as usize).min(sw.len());
        FailurePlan {
            failures: sw[..n]
                .iter()
                .map(|&s| Failure::Switch {
                    sw: s,
                    at,
                    duration,
                })
                .collect(),
        }
    }

    /// Degrades `fraction` of the cables to `bps` from the start (the
    /// asymmetric-network scenarios of §4.3.2).
    pub fn degrade_random_cables(
        topo_pairs: &[(LinkId, LinkId)],
        fraction: f64,
        bps: u64,
        rng: &mut Rng64,
    ) -> FailurePlan {
        let mut pairs = topo_pairs.to_vec();
        rng.shuffle(&mut pairs);
        let n = ((pairs.len() as f64 * fraction).round() as usize).clamp(1, pairs.len());
        FailurePlan {
            failures: pairs[..n]
                .iter()
                .map(|&pair| Failure::Degrade {
                    pair,
                    at: Time::ZERO,
                    bps,
                })
                .collect(),
        }
    }

    /// Merges another plan into this one.
    pub fn extend(&mut self, other: FailurePlan) {
        self.failures.extend(other.failures);
    }

    /// Schedules every failure onto the engine calendar.
    ///
    /// The engine emits [`crate::trace::TraceEvent`] link/switch events as
    /// each scheduled control event executes, so a traced run records the
    /// full failure/recovery timeline without extra bookkeeping here.
    pub fn install<S: TraceSink>(&self, engine: &mut Engine<S>) {
        for f in &self.failures {
            match f {
                Failure::Cable { pair, at, duration } => {
                    engine.schedule_control(*at, ControlEvent::LinkDown(pair.0));
                    engine.schedule_control(*at, ControlEvent::LinkDown(pair.1));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::LinkUp(pair.0));
                        engine.schedule_control(*at + *d, ControlEvent::LinkUp(pair.1));
                    }
                }
                Failure::Switch { sw, at, duration } => {
                    engine.schedule_control(*at, ControlEvent::SwitchDown(*sw));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::SwitchUp(*sw));
                    }
                }
                Failure::Degrade { pair, at, bps } => {
                    engine.schedule_control(*at, ControlEvent::LinkRate(pair.0, *bps));
                    engine.schedule_control(*at, ControlEvent::LinkRate(pair.1, *bps));
                }
                Failure::BitError { pair, at, p } => {
                    engine.schedule_control(*at, ControlEvent::LinkBer(pair.0, *p));
                    engine.schedule_control(*at, ControlEvent::LinkBer(pair.1, *p));
                }
            }
        }
    }

    /// Number of failure instances.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::topology::{FatTreeConfig, Topology};

    fn engine() -> Engine {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 1);
        Engine::new(topo, SimConfig::paper_default(), 1)
    }

    #[test]
    fn cable_failure_takes_both_directions_down_then_recovers() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[0];
        FailurePlan::none()
            .with(Failure::Cable {
                pair,
                at: Time::from_us(10),
                duration: Some(Time::from_us(20)),
            })
            .install(&mut e);
        e.run_until(Time::from_us(15));
        assert!(!e.links[pair.0.index()].up);
        assert!(!e.links[pair.1.index()].up);
        e.run_until(Time::from_us(40));
        assert!(e.links[pair.0.index()].up);
        assert!(e.links[pair.1.index()].up);
    }

    #[test]
    fn random_cables_picks_requested_fraction() {
        let mut e = engine();
        let pairs = e.topo.cable_pairs();
        let mut rng = Rng64::new(42);
        let plan = FailurePlan::random_cables(&pairs, 0.25, Time::ZERO, None, &mut rng);
        assert_eq!(plan.len(), pairs.len() / 4);
        plan.install(&mut e);
        e.run_until(Time::from_ns(1));
        let down = e.links.iter().filter(|l| !l.up).count();
        assert_eq!(down, pairs.len() / 4 * 2);
    }

    #[test]
    fn random_switches_fraction() {
        let e = engine();
        let t1s = e.topo.t1_switches();
        let mut rng = Rng64::new(7);
        let plan = FailurePlan::random_switches(&t1s, 0.5, Time::ZERO, None, &mut rng);
        assert_eq!(plan.len(), t1s.len() / 2);
    }

    #[test]
    fn degrade_changes_rate_both_ways() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[3];
        let mut rng = Rng64::new(1);
        // fraction small enough to pick exactly one pair via clamp.
        let plan = FailurePlan {
            failures: vec![Failure::Degrade {
                pair,
                at: Time::ZERO,
                bps: 200_000_000_000,
            }],
        };
        let _ = &mut rng;
        plan.install(&mut e);
        e.run_until(Time::from_ns(1));
        assert_eq!(e.links[pair.0.index()].rate_bps, 200_000_000_000);
        assert_eq!(e.links[pair.1.index()].rate_bps, 200_000_000_000);
    }

    #[test]
    fn bit_error_sets_probability() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[1];
        FailurePlan::none()
            .with(Failure::BitError {
                pair,
                at: Time::from_us(1),
                p: 0.01,
            })
            .install(&mut e);
        e.run_until(Time::from_us(2));
        assert!((e.links[pair.0.index()].ber - 0.01).abs() < 1e-12);
    }
}
