//! Failure-scenario builders for the paper's §4.3.3 and Appendix C.3.
//!
//! These helpers translate a high-level failure description ("one cable for
//! 100 µs", "5 % of switches", "1 % BER on a cable") into the link/switch
//! control events the engine executes. All randomness is drawn from a caller
//! -provided [`Rng64`] so scenarios are reproducible.

use crate::engine::Engine;
use crate::event::ControlEvent;
use crate::ids::{LinkId, SwitchId};
use crate::rng::Rng64;
use crate::time::Time;
use crate::trace::TraceSink;

/// A single failure instance in a scenario.
#[derive(Debug, Clone)]
pub enum Failure {
    /// Both directions of a cable go down at `at`; recover after `duration`
    /// (`None` = permanent).
    Cable {
        /// The `(forward, reverse)` unidirectional link pair.
        pair: (LinkId, LinkId),
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// A whole switch fails.
    Switch {
        /// The switch.
        sw: SwitchId,
        /// Failure instant.
        at: Time,
        /// Optional recovery delay.
        duration: Option<Time>,
    },
    /// A cable degrades to `bps` (both directions).
    Degrade {
        /// The `(forward, reverse)` link pair.
        pair: (LinkId, LinkId),
        /// Degradation instant.
        at: Time,
        /// New rate.
        bps: u64,
    },
    /// A cable starts dropping packets with probability `p` per packet.
    BitError {
        /// The `(forward, reverse)` link pair.
        pair: (LinkId, LinkId),
        /// Onset instant.
        at: Time,
        /// Per-packet corruption probability.
        p: f64,
        /// Optional heal delay (restores `ber = 0.0`; `None` = permanent).
        duration: Option<Time>,
    },
    /// A cable gray-fails: packets are silently lost with probability `p`
    /// while both directions keep reporting healthy (no routing signal).
    GrayDrop {
        /// The `(forward, reverse)` link pair.
        pair: (LinkId, LinkId),
        /// Onset instant.
        at: Time,
        /// Per-packet silent-loss probability.
        p: f64,
        /// Optional heal delay (`None` = permanent).
        duration: Option<Time>,
    },
    /// A cable corrupts payloads with probability `p`; corrupted packets
    /// are discarded and counted separately from drops.
    Corrupt {
        /// The `(forward, reverse)` link pair.
        pair: (LinkId, LinkId),
        /// Onset instant.
        at: Time,
        /// Per-packet corruption probability.
        p: f64,
        /// Optional heal delay (`None` = permanent).
        duration: Option<Time>,
    },
    /// A cable flaps: down for `period - up_time` then up for `up_time`,
    /// repeating from `at` until `until`. Expanded into a bounded
    /// control-event schedule at install time, so calendar growth is
    /// `O((until - at) / period)` — never unbounded.
    Flap {
        /// The `(forward, reverse)` link pair.
        pair: (LinkId, LinkId),
        /// First down instant.
        at: Time,
        /// Full flap period (down + up).
        period: Time,
        /// Portion of each period the link is up (`>= period` means the
        /// link never goes down; `ZERO` means a plain cut at `at`).
        up_time: Time,
        /// Horizon: no control event is scheduled at or beyond it.
        until: Time,
    },
    /// One direction of a cable blackholes; the reverse keeps working —
    /// the asymmetric failure ECMP-style reconvergence cannot see.
    UnidirBlackhole {
        /// The failing unidirectional link.
        link: LinkId,
        /// Failure instant.
        at: Time,
        /// Optional recovery delay (`None` = permanent).
        duration: Option<Time>,
    },
}

/// A set of failures applied to one engine run.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// The failures, in no particular order.
    pub failures: Vec<Failure>,
}

impl FailurePlan {
    /// An empty plan (healthy network).
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// Adds a failure.
    pub fn with(mut self, f: Failure) -> FailurePlan {
        self.failures.push(f);
        self
    }

    /// Fails `fraction` of all switch-to-switch cables at `at`.
    pub fn random_cables(
        topo_pairs: &[(LinkId, LinkId)],
        fraction: f64,
        at: Time,
        duration: Option<Time>,
        rng: &mut Rng64,
    ) -> FailurePlan {
        let mut pairs = topo_pairs.to_vec();
        rng.shuffle(&mut pairs);
        let n = ((pairs.len() as f64 * fraction).round() as usize).min(pairs.len());
        FailurePlan {
            failures: pairs[..n]
                .iter()
                .map(|&pair| Failure::Cable { pair, at, duration })
                .collect(),
        }
    }

    /// Fails `fraction` of the given switches at `at`.
    pub fn random_switches(
        switches: &[SwitchId],
        fraction: f64,
        at: Time,
        duration: Option<Time>,
        rng: &mut Rng64,
    ) -> FailurePlan {
        let mut sw = switches.to_vec();
        rng.shuffle(&mut sw);
        let n = ((sw.len() as f64 * fraction).round() as usize).min(sw.len());
        FailurePlan {
            failures: sw[..n]
                .iter()
                .map(|&s| Failure::Switch {
                    sw: s,
                    at,
                    duration,
                })
                .collect(),
        }
    }

    /// Degrades `fraction` of the cables to `bps` from the start (the
    /// asymmetric-network scenarios of §4.3.2).
    pub fn degrade_random_cables(
        topo_pairs: &[(LinkId, LinkId)],
        fraction: f64,
        bps: u64,
        rng: &mut Rng64,
    ) -> FailurePlan {
        let mut pairs = topo_pairs.to_vec();
        rng.shuffle(&mut pairs);
        let n = ((pairs.len() as f64 * fraction).round() as usize).clamp(1, pairs.len());
        FailurePlan {
            failures: pairs[..n]
                .iter()
                .map(|&pair| Failure::Degrade {
                    pair,
                    at: Time::ZERO,
                    bps,
                })
                .collect(),
        }
    }

    /// Merges another plan into this one.
    pub fn extend(&mut self, other: FailurePlan) {
        self.failures.extend(other.failures);
    }

    /// Schedules every failure onto the engine calendar.
    ///
    /// The engine emits [`crate::trace::TraceEvent`] link/switch events as
    /// each scheduled control event executes, so a traced run records the
    /// full failure/recovery timeline without extra bookkeeping here.
    pub fn install<S: TraceSink>(&self, engine: &mut Engine<S>) {
        for f in &self.failures {
            match f {
                Failure::Cable { pair, at, duration } => {
                    engine.schedule_control(*at, ControlEvent::LinkDown(pair.0));
                    engine.schedule_control(*at, ControlEvent::LinkDown(pair.1));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::LinkUp(pair.0));
                        engine.schedule_control(*at + *d, ControlEvent::LinkUp(pair.1));
                    }
                }
                Failure::Switch { sw, at, duration } => {
                    engine.schedule_control(*at, ControlEvent::SwitchDown(*sw));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::SwitchUp(*sw));
                    }
                }
                Failure::Degrade { pair, at, bps } => {
                    engine.schedule_control(*at, ControlEvent::LinkRate(pair.0, *bps));
                    engine.schedule_control(*at, ControlEvent::LinkRate(pair.1, *bps));
                }
                Failure::BitError {
                    pair,
                    at,
                    p,
                    duration,
                } => {
                    engine.schedule_control(*at, ControlEvent::LinkBer(pair.0, *p));
                    engine.schedule_control(*at, ControlEvent::LinkBer(pair.1, *p));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::LinkBer(pair.0, 0.0));
                        engine.schedule_control(*at + *d, ControlEvent::LinkBer(pair.1, 0.0));
                    }
                }
                Failure::GrayDrop {
                    pair,
                    at,
                    p,
                    duration,
                } => {
                    engine.schedule_control(*at, ControlEvent::LinkGray(pair.0, *p));
                    engine.schedule_control(*at, ControlEvent::LinkGray(pair.1, *p));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::LinkGray(pair.0, 0.0));
                        engine.schedule_control(*at + *d, ControlEvent::LinkGray(pair.1, 0.0));
                    }
                }
                Failure::Corrupt {
                    pair,
                    at,
                    p,
                    duration,
                } => {
                    engine.schedule_control(*at, ControlEvent::LinkCorrupt(pair.0, *p));
                    engine.schedule_control(*at, ControlEvent::LinkCorrupt(pair.1, *p));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::LinkCorrupt(pair.0, 0.0));
                        engine.schedule_control(*at + *d, ControlEvent::LinkCorrupt(pair.1, 0.0));
                    }
                }
                Failure::Flap {
                    pair,
                    at,
                    period,
                    up_time,
                    until,
                } => {
                    if *up_time >= *period {
                        // duty = 1: the link never actually goes down.
                        continue;
                    }
                    if *up_time == Time::ZERO {
                        // duty = 0: a plain permanent cut at onset.
                        if *at < *until {
                            engine.schedule_control(*at, ControlEvent::LinkDown(pair.0));
                            engine.schedule_control(*at, ControlEvent::LinkDown(pair.1));
                        }
                        continue;
                    }
                    let down_time = *period - *up_time;
                    let mut t = *at;
                    while t < *until {
                        engine.schedule_control(t, ControlEvent::LinkDown(pair.0));
                        engine.schedule_control(t, ControlEvent::LinkDown(pair.1));
                        let up_at = t + down_time;
                        if up_at >= *until {
                            break;
                        }
                        engine.schedule_control(up_at, ControlEvent::LinkUp(pair.0));
                        engine.schedule_control(up_at, ControlEvent::LinkUp(pair.1));
                        t += *period;
                    }
                }
                Failure::UnidirBlackhole { link, at, duration } => {
                    engine.schedule_control(*at, ControlEvent::LinkDown(*link));
                    if let Some(d) = duration {
                        engine.schedule_control(*at + *d, ControlEvent::LinkUp(*link));
                    }
                }
            }
        }
    }

    /// Number of failure instances.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::topology::{FatTreeConfig, Topology};

    fn engine() -> Engine {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 1);
        Engine::new(topo, SimConfig::paper_default(), 1)
    }

    #[test]
    fn cable_failure_takes_both_directions_down_then_recovers() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[0];
        FailurePlan::none()
            .with(Failure::Cable {
                pair,
                at: Time::from_us(10),
                duration: Some(Time::from_us(20)),
            })
            .install(&mut e);
        e.run_until(Time::from_us(15));
        assert!(!e.links[pair.0.index()].up);
        assert!(!e.links[pair.1.index()].up);
        e.run_until(Time::from_us(40));
        assert!(e.links[pair.0.index()].up);
        assert!(e.links[pair.1.index()].up);
    }

    #[test]
    fn random_cables_picks_requested_fraction() {
        let mut e = engine();
        let pairs = e.topo.cable_pairs();
        let mut rng = Rng64::new(42);
        let plan = FailurePlan::random_cables(&pairs, 0.25, Time::ZERO, None, &mut rng);
        assert_eq!(plan.len(), pairs.len() / 4);
        plan.install(&mut e);
        e.run_until(Time::from_ns(1));
        let down = e.links.iter().filter(|l| !l.up).count();
        assert_eq!(down, pairs.len() / 4 * 2);
    }

    #[test]
    fn random_switches_fraction() {
        let e = engine();
        let t1s = e.topo.t1_switches();
        let mut rng = Rng64::new(7);
        let plan = FailurePlan::random_switches(&t1s, 0.5, Time::ZERO, None, &mut rng);
        assert_eq!(plan.len(), t1s.len() / 2);
    }

    #[test]
    fn degrade_changes_rate_both_ways() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[3];
        let mut rng = Rng64::new(1);
        // fraction small enough to pick exactly one pair via clamp.
        let plan = FailurePlan {
            failures: vec![Failure::Degrade {
                pair,
                at: Time::ZERO,
                bps: 200_000_000_000,
            }],
        };
        let _ = &mut rng;
        plan.install(&mut e);
        e.run_until(Time::from_ns(1));
        assert_eq!(e.links[pair.0.index()].rate_bps, 200_000_000_000);
        assert_eq!(e.links[pair.1.index()].rate_bps, 200_000_000_000);
    }

    #[test]
    fn bit_error_sets_probability() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[1];
        FailurePlan::none()
            .with(Failure::BitError {
                pair,
                at: Time::from_us(1),
                p: 0.01,
                duration: None,
            })
            .install(&mut e);
        e.run_until(Time::from_us(2));
        assert!((e.links[pair.0.index()].ber - 0.01).abs() < 1e-12);
        // No heal was scheduled: the probability is permanent.
        e.run_until(Time::from_ms(10));
        assert!((e.links[pair.0.index()].ber - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bit_error_duration_heals_both_directions() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[1];
        FailurePlan::none()
            .with(Failure::BitError {
                pair,
                at: Time::from_us(1),
                p: 0.05,
                duration: Some(Time::from_us(10)),
            })
            .install(&mut e);
        e.run_until(Time::from_us(5));
        assert!((e.links[pair.0.index()].ber - 0.05).abs() < 1e-12);
        assert!((e.links[pair.1.index()].ber - 0.05).abs() < 1e-12);
        e.run_until(Time::from_us(20));
        assert_eq!(e.links[pair.0.index()].ber, 0.0, "heal must restore 0.0");
        assert_eq!(e.links[pair.1.index()].ber, 0.0);
    }

    #[test]
    fn gray_and_corrupt_set_then_heal() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[2];
        FailurePlan::none()
            .with(Failure::GrayDrop {
                pair,
                at: Time::from_us(1),
                p: 0.02,
                duration: Some(Time::from_us(10)),
            })
            .with(Failure::Corrupt {
                pair,
                at: Time::from_us(1),
                p: 0.03,
                duration: None,
            })
            .install(&mut e);
        e.run_until(Time::from_us(5));
        assert!((e.links[pair.0.index()].gray - 0.02).abs() < 1e-12);
        assert!((e.links[pair.1.index()].corrupt - 0.03).abs() < 1e-12);
        // The link stays "up" throughout: gray failures give routing no
        // signal to react to.
        assert!(e.links[pair.0.index()].up);
        e.run_until(Time::from_us(20));
        assert_eq!(e.links[pair.0.index()].gray, 0.0);
        assert!((e.links[pair.0.index()].corrupt - 0.03).abs() < 1e-12);
    }

    #[test]
    fn flap_alternates_down_and_up() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[0];
        FailurePlan::none()
            .with(Failure::Flap {
                pair,
                at: Time::from_us(10),
                period: Time::from_us(20),
                up_time: Time::from_us(10),
                until: Time::from_us(100),
            })
            .install(&mut e);
        // Down at 10, up at 20, down at 30, up at 40, ...
        e.run_until(Time::from_us(15));
        assert!(!e.links[pair.0.index()].up);
        e.run_until(Time::from_us(25));
        assert!(e.links[pair.0.index()].up);
        e.run_until(Time::from_us(35));
        assert!(!e.links[pair.0.index()].up);
    }

    #[test]
    fn flap_duty_edges_and_horizon_bound_the_schedule() {
        // duty = 1 (up_time == period): no events at all.
        let mut e = engine();
        let pair = e.topo.cable_pairs()[0];
        let before = e.pending_events();
        FailurePlan::none()
            .with(Failure::Flap {
                pair,
                at: Time::from_us(10),
                period: Time::from_us(20),
                up_time: Time::from_us(20),
                until: Time::from_ms(100),
            })
            .install(&mut e);
        assert_eq!(e.pending_events(), before, "duty=1 must schedule nothing");

        // duty = 0 (up_time == ZERO): exactly one LinkDown per direction.
        FailurePlan::none()
            .with(Failure::Flap {
                pair,
                at: Time::from_us(10),
                period: Time::from_us(20),
                up_time: Time::ZERO,
                until: Time::from_ms(100),
            })
            .install(&mut e);
        assert_eq!(e.pending_events(), before + 2, "duty=0 is a single cut");
        e.run_until(Time::from_us(15));
        assert!(!e.links[pair.0.index()].up);
        e.run_until(Time::from_ms(99));
        assert!(!e.links[pair.0.index()].up, "duty=0 never recovers");

        // The horizon truncates the schedule: 20us period over a 100us
        // window is at most 5 cycles x 4 events, never the millions an
        // unbounded expansion of a long deadline would make.
        let mut e = engine();
        let before = e.pending_events();
        FailurePlan::none()
            .with(Failure::Flap {
                pair,
                at: Time::ZERO,
                period: Time::from_us(20),
                up_time: Time::from_us(10),
                until: Time::from_us(100),
            })
            .install(&mut e);
        let scheduled = e.pending_events() - before;
        assert_eq!(scheduled, 20, "5 cycles x (2 down + 2 up) events");
        // An onset at/after the horizon schedules nothing at all.
        let before = e.pending_events();
        FailurePlan::none()
            .with(Failure::Flap {
                pair,
                at: Time::from_us(100),
                period: Time::from_us(20),
                up_time: Time::from_us(10),
                until: Time::from_us(100),
            })
            .install(&mut e);
        assert_eq!(e.pending_events(), before);
    }

    #[test]
    fn unidir_blackhole_kills_one_direction_only() {
        let mut e = engine();
        let pair = e.topo.cable_pairs()[4];
        FailurePlan::none()
            .with(Failure::UnidirBlackhole {
                link: pair.0,
                at: Time::from_us(10),
                duration: Some(Time::from_us(20)),
            })
            .install(&mut e);
        e.run_until(Time::from_us(15));
        assert!(!e.links[pair.0.index()].up, "failed direction is down");
        assert!(e.links[pair.1.index()].up, "reverse direction stays up");
        e.run_until(Time::from_us(40));
        assert!(e.links[pair.0.index()].up, "recovers after duration");
    }
}
