//! Measurement plumbing: everything the paper's figures are built from.
//!
//! The collector records per-link utilization in fixed-width time buckets
//! (Fig. 2/4/7 style), periodic queue-occupancy samples, drop/trim/mark
//! counters by cause, and per-flow completion records (FCT distributions,
//! goodput, drops). Tracking is opt-in per link so that 8192-node runs can
//! restrict bookkeeping to the switch under study.

use crate::hash::FxHashMap;
use crate::ids::{FlowId, HostId, LinkId};
use crate::link::DropReason;
use crate::time::Time;

/// A completed (or failed) flow record.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Flow identifier assigned by the workload.
    pub flow: FlowId,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Message payload bytes.
    pub bytes: u64,
    /// Time the first packet was handed to the NIC.
    pub start: Time,
    /// Time the last acknowledgment arrived back at the sender.
    pub end: Time,
    /// Number of retransmitted packets.
    pub retransmissions: u64,
}

impl FlowRecord {
    /// Flow completion time.
    pub fn fct(&self) -> Time {
        self.end.saturating_sub(self.start)
    }

    /// Application goodput in bits per second.
    pub fn goodput_bps(&self) -> f64 {
        let secs = self.fct().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / secs
        }
    }
}

/// A `(time, queued_bytes)` queue occupancy sample.
#[derive(Debug, Clone, Copy)]
pub struct QueueSample {
    /// Sample instant.
    pub at: Time,
    /// Queue occupancy in bytes.
    pub bytes: u64,
}

/// Per-link tracked series.
#[derive(Debug, Default, Clone)]
pub struct LinkSeries {
    /// Bytes transmitted per utilization bucket.
    pub bucket_bytes: Vec<u64>,
    /// Periodic queue occupancy samples.
    pub queue_samples: Vec<QueueSample>,
}

/// Global drop/mark counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Tail drops due to full queues.
    pub drops_queue_full: u64,
    /// Packets blackholed by down links.
    pub drops_link_down: u64,
    /// Packets lost to the bit-error model.
    pub drops_bit_error: u64,
    /// Packets silently lost on gray-failing links.
    pub drops_gray: u64,
    /// Packets discarded as corrupted payloads.
    pub drops_corrupt: u64,
    /// Payloads trimmed by switches.
    pub trims: u64,
    /// Data packets ECN-marked on admission.
    pub ecn_marks: u64,
    /// Data packets transmitted (serialized onto a wire).
    pub data_tx: u64,
    /// Control packets transmitted.
    pub ctrl_tx: u64,
    /// Retransmissions performed by senders.
    pub retransmissions: u64,
    /// Timeout events observed by senders.
    pub timeouts: u64,
}

impl Counters {
    /// All packet losses, independent of cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_queue_full
            + self.drops_link_down
            + self.drops_bit_error
            + self.drops_gray
            + self.drops_corrupt
    }
}

/// An ordered, owned snapshot of every tracked link's series.
///
/// This is the export surface for out-of-process sinks (the sweep crate's
/// `--series` JSONL stream): links appear in tracking order — the same
/// deterministic order sampling walks them — and the data is owned, so a
/// sink can outlive the engine that recorded it.
#[derive(Debug, Clone, Default)]
pub struct SeriesExport {
    /// Utilization bucket width the series were recorded at.
    pub bucket_width: Time,
    /// Per-link series, in tracking order.
    pub links: Vec<(LinkId, LinkSeries)>,
}

impl SeriesExport {
    /// Number of exported links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no links were tracked.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// The statistics collector owned by the engine.
#[derive(Debug)]
pub struct Stats {
    /// Width of a utilization bucket.
    pub bucket_width: Time,
    /// Per-tracked-link series.
    tracked: FxHashMap<LinkId, LinkSeries>,
    /// Tracked links in insertion order — the cached iteration list, so
    /// per-tick sampling walks links by index without allocating (and in
    /// a deterministic order, unlike the map). Maintained by
    /// [`Stats::track_link`].
    tracked_order: Vec<LinkId>,
    /// Completed flow records, in completion order.
    pub flows: Vec<FlowRecord>,
    /// Global counters.
    pub counters: Counters,
    /// Number of flows the experiment expects (for completion checks).
    pub expected_flows: usize,
}

impl Stats {
    /// Creates a collector with the given utilization bucket width.
    pub fn new(bucket_width: Time) -> Stats {
        Stats {
            bucket_width,
            tracked: FxHashMap::default(),
            tracked_order: Vec::new(),
            flows: Vec::new(),
            counters: Counters::default(),
            expected_flows: 0,
        }
    }

    /// Enables utilization/queue tracking for `link`.
    pub fn track_link(&mut self, link: LinkId) {
        if !self.tracked.contains_key(&link) {
            self.tracked_order.push(link);
            self.tracked.insert(link, LinkSeries::default());
        }
    }

    /// Returns the tracked series for `link`, if tracking was enabled.
    pub fn link_series(&self, link: LinkId) -> Option<&LinkSeries> {
        self.tracked.get(&link)
    }

    /// Number of tracked links (pairs with [`Stats::tracked_id`] for
    /// allocation-free iteration).
    pub fn tracked_count(&self) -> usize {
        self.tracked_order.len()
    }

    /// The `i`-th tracked link, in tracking order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.tracked_count()`.
    pub fn tracked_id(&self, i: usize) -> LinkId {
        self.tracked_order[i]
    }

    /// Iterates over all tracked links, in tracking order.
    pub fn tracked_links(&self) -> impl Iterator<Item = (&LinkId, &LinkSeries)> {
        self.tracked_order
            .iter()
            .map(move |l| (l, &self.tracked[l]))
    }

    /// Whether the given link is tracked.
    pub fn is_tracked(&self, link: LinkId) -> bool {
        self.tracked.contains_key(&link)
    }

    /// Snapshots every tracked link's series, in tracking order.
    pub fn export_series(&self) -> SeriesExport {
        SeriesExport {
            bucket_width: self.bucket_width,
            links: self
                .tracked_order
                .iter()
                .map(|l| (*l, self.tracked[l].clone()))
                .collect(),
        }
    }

    /// Records `bytes` transmitted on `link` at `now`.
    pub fn on_transmit(&mut self, link: LinkId, now: Time, bytes: u64, is_data: bool) {
        if is_data {
            self.counters.data_tx += 1;
        } else {
            self.counters.ctrl_tx += 1;
        }
        // Macro runs track nothing: skip the map probe on every transmit.
        if self.tracked_order.is_empty() {
            return;
        }
        if let Some(series) = self.tracked.get_mut(&link) {
            let bucket = (now.as_ps() / self.bucket_width.as_ps().max(1)) as usize;
            if series.bucket_bytes.len() <= bucket {
                series.bucket_bytes.resize(bucket + 1, 0);
            }
            series.bucket_bytes[bucket] += bytes;
        }
    }

    /// Records a queue occupancy sample for `link`.
    pub fn on_queue_sample(&mut self, link: LinkId, at: Time, bytes: u64) {
        if let Some(series) = self.tracked.get_mut(&link) {
            series.queue_samples.push(QueueSample { at, bytes });
        }
    }

    /// Records a drop.
    pub fn on_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::QueueFull => self.counters.drops_queue_full += 1,
            DropReason::LinkDown => self.counters.drops_link_down += 1,
            DropReason::BitError => self.counters.drops_bit_error += 1,
            DropReason::Gray => self.counters.drops_gray += 1,
            DropReason::Corrupt => self.counters.drops_corrupt += 1,
        }
    }

    /// Records a trim.
    pub fn on_trim(&mut self) {
        self.counters.trims += 1;
    }

    /// Records an ECN mark.
    pub fn on_ecn_mark(&mut self) {
        self.counters.ecn_marks += 1;
    }

    /// Records a completed flow.
    pub fn on_flow_complete(&mut self, record: FlowRecord) {
        self.flows.push(record);
    }

    /// True once every expected flow has completed.
    pub fn all_flows_done(&self) -> bool {
        self.expected_flows > 0 && self.flows.len() >= self.expected_flows
    }

    /// Maximum flow completion time (the paper's workload runtime metric).
    pub fn max_fct(&self) -> Time {
        self.flows
            .iter()
            .map(FlowRecord::fct)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Latest completion instant across flows.
    pub fn makespan(&self) -> Time {
        self.flows.iter().map(|f| f.end).max().unwrap_or(Time::ZERO)
    }

    /// Mean flow completion time.
    pub fn avg_fct(&self) -> Time {
        if self.flows.is_empty() {
            return Time::ZERO;
        }
        let sum: u128 = self.flows.iter().map(|f| f.fct().as_ps() as u128).sum();
        Time((sum / self.flows.len() as u128) as u64)
    }

    /// `q`-quantile of the FCT distribution (0 ≤ q ≤ 1).
    pub fn fct_quantile(&self, q: f64) -> Time {
        if self.flows.is_empty() {
            return Time::ZERO;
        }
        let mut fcts: Vec<Time> = self.flows.iter().map(FlowRecord::fct).collect();
        fcts.sort_unstable();
        let idx = ((fcts.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        fcts[idx]
    }

    /// Mean per-flow goodput in Gbps.
    pub fn avg_goodput_gbps(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.flows.iter().map(FlowRecord::goodput_bps).sum::<f64>() / self.flows.len() as f64 / 1e9
    }
}

/// Utilization of one bucket in Gbps given the bucket width.
pub fn bucket_gbps(bytes: u64, bucket_width: Time) -> f64 {
    let secs = bucket_width.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        bytes as f64 * 8.0 / secs / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(flow: u32, start_us: u64, end_us: u64) -> FlowRecord {
        FlowRecord {
            flow: FlowId(flow),
            src: HostId(0),
            dst: HostId(1),
            bytes: 1_000_000,
            start: Time::from_us(start_us),
            end: Time::from_us(end_us),
            retransmissions: 0,
        }
    }

    #[test]
    fn fct_and_goodput() {
        let r = record(0, 10, 110);
        assert_eq!(r.fct(), Time::from_us(100));
        // 1 MB in 100 us = 80 Gbps.
        assert!((r.goodput_bps() / 1e9 - 80.0).abs() < 1e-6);
    }

    #[test]
    fn aggregates() {
        let mut s = Stats::new(Time::from_us(20));
        s.expected_flows = 3;
        s.on_flow_complete(record(0, 0, 100));
        s.on_flow_complete(record(1, 0, 200));
        assert!(!s.all_flows_done());
        s.on_flow_complete(record(2, 0, 300));
        assert!(s.all_flows_done());
        assert_eq!(s.max_fct(), Time::from_us(300));
        assert_eq!(s.avg_fct(), Time::from_us(200));
        assert_eq!(s.fct_quantile(0.0), Time::from_us(100));
        assert_eq!(s.fct_quantile(1.0), Time::from_us(300));
    }

    #[test]
    fn utilization_buckets_accumulate() {
        let mut s = Stats::new(Time::from_us(20));
        let l = LinkId(0);
        s.track_link(l);
        s.on_transmit(l, Time::from_us(5), 1000, true);
        s.on_transmit(l, Time::from_us(15), 500, true);
        s.on_transmit(l, Time::from_us(25), 100, true);
        let series = s.link_series(l).unwrap();
        assert_eq!(series.bucket_bytes, vec![1500, 100]);
        assert_eq!(s.counters.data_tx, 3);
    }

    #[test]
    fn untracked_links_cost_nothing() {
        let mut s = Stats::new(Time::from_us(20));
        s.on_transmit(LinkId(3), Time::from_us(5), 1000, false);
        assert!(s.link_series(LinkId(3)).is_none());
        assert_eq!(s.counters.ctrl_tx, 1);
    }

    #[test]
    fn export_series_snapshots_in_tracking_order() {
        let mut s = Stats::new(Time::from_us(20));
        // Track in non-sorted id order: the export must preserve it.
        for id in [5u32, 2, 9] {
            s.track_link(LinkId(id));
        }
        s.on_transmit(LinkId(2), Time::from_us(5), 1000, true);
        s.on_queue_sample(LinkId(9), Time::from_us(7), 333);
        let export = s.export_series();
        assert_eq!(export.len(), 3);
        assert!(!export.is_empty());
        assert_eq!(export.bucket_width, Time::from_us(20));
        let ids: Vec<u32> = export.links.iter().map(|(l, _)| l.0).collect();
        assert_eq!(ids, vec![5, 2, 9]);
        assert_eq!(export.links[1].1.bucket_bytes, vec![1000]);
        assert_eq!(export.links[2].1.queue_samples[0].bytes, 333);
        // The export is a snapshot: mutating the collector afterwards does
        // not change it.
        s.on_transmit(LinkId(2), Time::from_us(5), 1000, true);
        assert_eq!(export.links[1].1.bucket_bytes, vec![1000]);
    }

    #[test]
    fn drop_counters_split_by_cause() {
        let mut s = Stats::new(Time::from_us(20));
        s.on_drop(DropReason::QueueFull);
        s.on_drop(DropReason::LinkDown);
        s.on_drop(DropReason::LinkDown);
        s.on_drop(DropReason::BitError);
        s.on_drop(DropReason::Gray);
        s.on_drop(DropReason::Gray);
        s.on_drop(DropReason::Corrupt);
        assert_eq!(s.counters.drops_queue_full, 1);
        assert_eq!(s.counters.drops_link_down, 2);
        assert_eq!(s.counters.drops_bit_error, 1);
        assert_eq!(s.counters.drops_gray, 2);
        assert_eq!(s.counters.drops_corrupt, 1);
        assert_eq!(s.counters.total_drops(), 7);
    }

    #[test]
    fn bucket_gbps_conversion() {
        // 1000 bytes in 20 us = 0.4 Gbps.
        let g = bucket_gbps(1000, Time::from_us(20));
        assert!((g - 0.4).abs() < 1e-9);
    }
}
