//! Links: a rate-limited egress queue plus a fixed-latency propagation pipe.
//!
//! Each *unidirectional* link owns its egress queue. The queue implements
//! two strict-priority bands (control before data), byte-based RED/ECN
//! marking between `K_min` and `K_max` (§2.1), tail-drop or packet trimming
//! when full, and runtime-mutable rate and failure state for the failure
//! experiments (§4.3.3).
//!
//! Queues hold [`PacketRef`]s into the engine-owned
//! [`PacketArena`](crate::arena::PacketArena) rather than packets by value:
//! enqueue/dequeue move 4 bytes, and marking/trimming mutate the packet in
//! place. The arena is threaded through the few operations that need the
//! packet itself.

use std::collections::VecDeque;

use crate::arena::{PacketArena, PacketRef};
use crate::config::SimConfig;
use crate::ids::{LinkId, NodeRef};
use crate::packet::Packet;
use crate::rng::Rng64;
use crate::time::Time;

/// Why a packet was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Queue full (congestion loss).
    QueueFull,
    /// The link is administratively or physically down (blackhole).
    LinkDown,
    /// Random corruption (bit-error-rate model).
    BitError,
    /// Silent loss on a gray-failing link (per-packet probability, no
    /// signal to routing — the link stays "up").
    Gray,
    /// Payload corrupted in flight and discarded at the receiver side of
    /// the wire (distinguished from [`DropReason::Gray`] so the failure
    /// figures can tell silent loss from corruption).
    Corrupt,
}

/// Result of offering a packet to an egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet accepted; `marked` tells whether RED set the CE bit.
    Queued {
        /// True when the packet was ECN-marked on admission.
        marked: bool,
    },
    /// Packet payload was trimmed; the header was queued in the control band.
    Trimmed,
    /// Packet dropped (and already released from the arena).
    Dropped(DropReason),
}

/// A unidirectional link: egress queue, propagation delay, endpoint.
#[derive(Debug)]
pub struct Link {
    /// This link's id (index in the engine arena).
    pub id: LinkId,
    /// Node the link delivers to.
    pub to: NodeRef,
    /// Node the link transmits from (for reporting).
    pub from: NodeRef,
    /// Propagation latency (includes downstream switch traversal).
    pub latency: Time,
    /// Current transmit rate in bits per second.
    pub rate_bps: u64,
    /// Nominal rate (for restoring after degradation).
    pub nominal_bps: u64,
    /// True while the cable is up.
    pub up: bool,
    /// Instant the link last went down (valid when `!up`).
    pub down_since: Time,
    /// Probability that a serialized packet is corrupted and dropped.
    pub ber: f64,
    /// Gray-failure probability: chance a serialized packet is silently
    /// lost while the link reports healthy (0.0 = clean link).
    pub gray: f64,
    /// Payload-corruption probability: chance a serialized packet arrives
    /// corrupted and is discarded (0.0 = clean link).
    pub corrupt: f64,
    /// True while a `QueueService` event is outstanding.
    pub busy: bool,
    /// The packet currently being serialized (committed at service start so
    /// a control-band arrival cannot swap itself into a data packet's slot).
    pub in_service: Option<PacketRef>,
    /// Generation counter invalidating stale service events after failures.
    pub service_gen: u64,
    /// Control-priority band (ACKs, credits, trimmed headers).
    ctrl: VecDeque<PacketRef>,
    /// Data band.
    data: VecDeque<PacketRef>,
    /// Bytes across both bands.
    pub queued_bytes: u64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// RED K_min in bytes.
    pub kmin_bytes: u64,
    /// RED K_max in bytes.
    pub kmax_bytes: u64,
    /// Enable trimming instead of tail-dropping data packets.
    pub trimming: bool,
    /// Whether RED/ECN marking applies (switch egress yes, host NIC no).
    pub mark_enabled: bool,
    /// Fluid background load carried by this link in bits/s (hybrid
    /// fidelity only; 0 in pure packet mode). Foreground packets see it as
    /// reduced effective rate plus [`Link::bg_wait`] per service.
    pub bg_bps: u64,
    /// Deterministic per-packet queueing-delay term modelling interleaving
    /// with background frames (an M/D/1-style `ρ/(2(1−ρ))` wait at the
    /// background's utilization, computed once in `set_background`).
    pub bg_wait: Time,
    /// Cached picoseconds-per-byte for the service hot path, valid while
    /// `ser_rate` equals the current *effective* rate; 0 means the rate
    /// does not divide the ps/s constant evenly and the generic division
    /// must run. Tagged with the rate it was computed for so direct
    /// `rate_bps` writes (the engine's fabric-rate override, degradation
    /// controls) and background-rate changes auto-heal on next use.
    ser_ps_per_byte: u64,
    /// Effective rate `ser_ps_per_byte` was derived from (0 = never
    /// computed).
    ser_rate: u64,
}

impl Link {
    /// Creates a link from the fabric profile.
    pub fn new(id: LinkId, from: NodeRef, to: NodeRef, latency: Time, cfg: &SimConfig) -> Link {
        Link {
            id,
            to,
            from,
            latency,
            rate_bps: cfg.link_bps,
            nominal_bps: cfg.link_bps,
            up: true,
            down_since: Time::ZERO,
            ber: 0.0,
            gray: 0.0,
            corrupt: 0.0,
            busy: false,
            in_service: None,
            service_gen: 0,
            ctrl: VecDeque::new(),
            data: VecDeque::new(),
            queued_bytes: 0,
            capacity_bytes: cfg.queue_capacity_bytes,
            kmin_bytes: cfg.kmin_bytes(),
            kmax_bytes: cfg.kmax_bytes(),
            trimming: cfg.trimming,
            bg_bps: 0,
            bg_wait: Time::ZERO,
            ser_ps_per_byte: 0,
            ser_rate: 0,
            mark_enabled: true,
        }
    }

    /// Reconfigures this link as a host NIC egress: a deep source queue
    /// (the transport window is the real injection limit) without RED
    /// marking or trimming — congestion signalling is a fabric feature.
    pub fn make_host_egress(&mut self) {
        self.capacity_bytes = 64 * 1024 * 1024;
        self.mark_enabled = false;
        self.trimming = false;
    }

    /// Number of packets waiting across both bands.
    pub fn queued_packets(&self) -> usize {
        self.ctrl.len() + self.data.len()
    }

    /// Offers a packet to the queue, applying RED marking and drop/trim
    /// policy. Does not schedule service; the engine does that.
    ///
    /// On [`EnqueueOutcome::Dropped`] the packet has been removed from the
    /// arena; the ref must not be used again.
    pub fn enqueue(
        &mut self,
        pkt: PacketRef,
        arena: &mut PacketArena,
        rng: &mut Rng64,
    ) -> EnqueueOutcome {
        if !self.up {
            arena.take(pkt);
            return EnqueueOutcome::Dropped(DropReason::LinkDown);
        }
        // One arena access for the whole admission decision.
        let p = arena.get_mut(pkt);
        let wire_bytes = p.wire_bytes as u64;
        let is_data = p.is_data();
        let is_control = p.is_control();
        let fits = self.queued_bytes + wire_bytes <= self.capacity_bytes;
        if !fits {
            if self.trimming && is_data {
                p.trim();
                // Trimmed headers ride the control band; they are tiny, so we
                // admit them even at capacity (bounded by packet count).
                self.queued_bytes += p.wire_bytes as u64;
                self.ctrl.push_back(pkt);
                return EnqueueOutcome::Trimmed;
            }
            arena.take(pkt);
            return EnqueueOutcome::Dropped(DropReason::QueueFull);
        }
        // RED marking on admission, based on the instantaneous occupancy the
        // packet observes (the paper's K_min/K_max description).
        let marked = if self.mark_enabled && is_data {
            let occupancy = self.queued_bytes;
            let prob = red_mark_probability(occupancy, self.kmin_bytes, self.kmax_bytes);
            prob > 0.0 && rng.gen_bool(prob)
        } else {
            false
        };
        if marked {
            p.ecn_ce = true;
        }
        self.queued_bytes += wire_bytes;
        if is_control {
            self.ctrl.push_back(pkt);
        } else {
            self.data.push_back(pkt);
        }
        EnqueueOutcome::Queued { marked }
    }

    /// Removes the next packet to transmit (control band first).
    pub fn dequeue(&mut self, arena: &PacketArena) -> Option<PacketRef> {
        let pkt = self.ctrl.pop_front().or_else(|| self.data.pop_front())?;
        self.queued_bytes -= arena.get(pkt).wire_bytes as u64;
        Some(pkt)
    }

    /// Dequeues the next packet *and* computes its serialization time in a
    /// single arena access — the engine's batched service path uses this
    /// so a completion that chains straight into the next packet's service
    /// touches the arena once instead of twice (`dequeue` +
    /// `serialization_time`).
    pub fn begin_service(&mut self, arena: &PacketArena) -> Option<(PacketRef, Time)> {
        let pkt = self.ctrl.pop_front().or_else(|| self.data.pop_front())?;
        let wire = arena.get(pkt).wire_bytes as u64;
        self.queued_bytes -= wire;
        let eff = self.effective_bps();
        if self.ser_rate != eff {
            const PS_PER_SEC_BITS: u64 = 8 * 1_000_000_000_000;
            self.ser_rate = eff;
            self.ser_ps_per_byte = if eff > 0 && PS_PER_SEC_BITS.is_multiple_of(eff) {
                PS_PER_SEC_BITS / eff
            } else {
                0
            };
        }
        // When the rate divides the ps/s constant (every realistic rate:
        // 400G -> 20 ps/B), `bytes * 8e12 / rate == bytes * (8e12 / rate)`
        // exactly, so the division-free product is bit-identical to
        // `Time::serialization`. The `< 2^21` guard mirrors its fast path's
        // overflow bound.
        let ser = if self.ser_ps_per_byte != 0 && wire < (1 << 21) {
            Time::from_ps(wire * self.ser_ps_per_byte)
        } else {
            Time::serialization(wire, eff)
        };
        Some((pkt, ser + self.bg_wait))
    }

    /// Wire size of the next packet to transmit, if any.
    pub fn peek_bytes(&self, arena: &PacketArena) -> Option<u64> {
        self.ctrl
            .front()
            .or_else(|| self.data.front())
            .map(|&p| arena.get(p).wire_bytes as u64)
    }

    /// Serialization time of `pkt` at the current rate.
    pub fn serialization_time(&self, pkt: &Packet) -> Time {
        Time::serialization(pkt.wire_bytes as u64, self.rate_bps)
    }

    /// Takes the link down, flushing all queued packets (they are lost,
    /// including the frame on the wire mid-serialization) back into the
    /// arena's free list.
    ///
    /// Returns the number of packets flushed.
    pub fn set_down(&mut self, now: Time, arena: &mut PacketArena) -> usize {
        self.up = false;
        self.down_since = now;
        let mut flushed = 0;
        for pkt in self.ctrl.drain(..).chain(self.data.drain(..)) {
            arena.take(pkt);
            flushed += 1;
        }
        if let Some(pkt) = self.in_service.take() {
            arena.take(pkt);
            flushed += 1;
        }
        self.busy = false;
        self.service_gen += 1;
        self.queued_bytes = 0;
        flushed
    }

    /// Brings the link back up.
    pub fn set_up(&mut self) {
        self.up = true;
    }

    /// Degrades (or restores) the link rate.
    pub fn set_rate(&mut self, bps: u64) {
        self.rate_bps = bps;
    }

    /// The rate foreground packets serialize at: nominal minus fluid
    /// background, floored at 1 bps while the link is nominally up so
    /// service always completes. Equal to `rate_bps` when no background
    /// is applied — the pure-packet fast path is untouched.
    #[inline]
    pub fn effective_bps(&self) -> u64 {
        if self.bg_bps == 0 {
            self.rate_bps
        } else {
            self.rate_bps.saturating_sub(self.bg_bps).max(1)
        }
    }

    /// Applies a fluid background load of `bg_bps` to this link and
    /// derives the deterministic queue-delay term foreground packets pay
    /// per service: an M/D/1-style mean wait of `ρ/(2(1−ρ))` background
    /// frame-serialization times at background utilization `ρ`, with
    /// `frame_bytes` as the representative frame size. Integer-only
    /// (parts-per-million utilization, `u128` intermediates). A zero load
    /// restores pure packet behavior bit-for-bit.
    pub fn set_background(&mut self, bg_bps: u64, frame_bytes: u64) {
        // The solver already caps shares at MAX_BG_SHARE_PPM of the rate;
        // clamp defensively so `effective_bps` stays positive regardless.
        self.bg_bps = if self.rate_bps > 0 {
            bg_bps.min(self.rate_bps - 1)
        } else {
            0
        };
        if self.bg_bps == 0 {
            self.bg_wait = Time::ZERO;
            return;
        }
        let u_ppm = (self.bg_bps as u128 * 1_000_000 / self.rate_bps as u128) as u64;
        let u_ppm = u_ppm.min(crate::fluid::MAX_BG_SHARE_PPM);
        let frame_ps = Time::serialization(frame_bytes, self.rate_bps).as_ps();
        let wait = frame_ps as u128 * u_ppm as u128 / (2 * (1_000_000 - u_ppm) as u128);
        self.bg_wait = Time::from_ps(wait as u64);
    }
}

/// RED marking probability for a queue occupancy given byte thresholds.
///
/// Zero below `kmin`, one above `kmax`, linear in between — the gentle RED
/// variant the paper configures (§4.1: K_min 20 %, K_max 80 %).
pub fn red_mark_probability(occupancy: u64, kmin: u64, kmax: u64) -> f64 {
    if occupancy <= kmin {
        0.0
    } else if occupancy >= kmax {
        1.0
    } else {
        (occupancy - kmin) as f64 / (kmax - kmin) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConnId, HostId, SwitchId};

    fn test_link(cfg: &SimConfig) -> Link {
        Link::new(
            LinkId(0),
            NodeRef::Host(HostId(0)),
            NodeRef::Switch(SwitchId(0)),
            cfg.link_latency,
            cfg,
        )
    }

    fn data_pkt(arena: &mut PacketArena, id: u64, bytes: u32) -> PacketRef {
        arena.insert(Packet::data(
            id,
            HostId(0),
            HostId(1),
            ConnId(0),
            0,
            id,
            bytes,
            false,
        ))
    }

    #[test]
    fn red_probability_profile() {
        assert_eq!(red_mark_probability(0, 100, 200), 0.0);
        assert_eq!(red_mark_probability(100, 100, 200), 0.0);
        assert!((red_mark_probability(150, 100, 200) - 0.5).abs() < 1e-9);
        assert_eq!(red_mark_probability(200, 100, 200), 1.0);
        assert_eq!(red_mark_probability(999, 100, 200), 1.0);
    }

    #[test]
    fn fifo_order_within_band() {
        let cfg = SimConfig::paper_default();
        let mut link = test_link(&cfg);
        let mut arena = PacketArena::new();
        let mut rng = Rng64::new(1);
        for i in 0..5 {
            let p = data_pkt(&mut arena, i, 1000);
            assert!(matches!(
                link.enqueue(p, &mut arena, &mut rng),
                EnqueueOutcome::Queued { .. }
            ));
        }
        for i in 0..5 {
            let p = link.dequeue(&arena).unwrap();
            assert_eq!(arena.take(p).id, i);
        }
        assert!(link.dequeue(&arena).is_none());
        assert_eq!(link.queued_bytes, 0);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn control_band_preempts_data() {
        let cfg = SimConfig::paper_default();
        let mut link = test_link(&cfg);
        let mut arena = PacketArena::new();
        let mut rng = Rng64::new(1);
        let d = data_pkt(&mut arena, 1, 1000);
        link.enqueue(d, &mut arena, &mut rng);
        let ack = arena.insert(Packet::control(
            2,
            HostId(1),
            HostId(0),
            ConnId(0),
            0,
            crate::packet::Body::Nack { seq: 0 },
        ));
        link.enqueue(ack, &mut arena, &mut rng);
        let first = link.dequeue(&arena).unwrap();
        assert_eq!(arena.get(first).id, 2, "control must go first");
        let second = link.dequeue(&arena).unwrap();
        assert_eq!(arena.get(second).id, 1);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut cfg = SimConfig::paper_default();
        cfg.queue_capacity_bytes = 10_000;
        let mut link = test_link(&cfg);
        let mut arena = PacketArena::new();
        let mut rng = Rng64::new(1);
        let mut queued = 0;
        let mut dropped = 0;
        for i in 0..10 {
            let p = data_pkt(&mut arena, i, 2000);
            match link.enqueue(p, &mut arena, &mut rng) {
                EnqueueOutcome::Queued { .. } => queued += 1,
                EnqueueOutcome::Dropped(DropReason::QueueFull) => dropped += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(queued > 0 && dropped > 0);
        assert!(link.queued_bytes <= cfg.queue_capacity_bytes);
        assert_eq!(arena.live(), queued, "dropped packets leave the arena");
    }

    #[test]
    fn trimming_replaces_drop() {
        let mut cfg = SimConfig::paper_default();
        cfg.queue_capacity_bytes = 5_000;
        cfg.trimming = true;
        let mut link = test_link(&cfg);
        let mut arena = PacketArena::new();
        let mut rng = Rng64::new(1);
        let a = data_pkt(&mut arena, 0, 4000);
        link.enqueue(a, &mut arena, &mut rng);
        let b = data_pkt(&mut arena, 1, 4000);
        match link.enqueue(b, &mut arena, &mut rng) {
            EnqueueOutcome::Trimmed => {}
            other => panic!("expected trim, got {other:?}"),
        }
        // The trimmed header is in the control band, served first.
        let first = link.dequeue(&arena).unwrap();
        let first = arena.take(first);
        assert!(first.trimmed);
        assert_eq!(first.id, 1);
    }

    #[test]
    fn ecn_marks_above_kmin() {
        let mut cfg = SimConfig::paper_default();
        cfg.queue_capacity_bytes = 100_000;
        let mut link = test_link(&cfg);
        let mut arena = PacketArena::new();
        let mut rng = Rng64::new(1);
        // Fill to above K_max (80KB) and verify marks start appearing.
        let mut marks = 0;
        for i in 0..24 {
            let p = data_pkt(&mut arena, i, 4096);
            if let EnqueueOutcome::Queued { marked } = link.enqueue(p, &mut arena, &mut rng) {
                if marked {
                    marks += 1;
                }
            }
        }
        assert!(marks > 0, "expected ECN marks above K_min");
        // First packet (empty queue) is never marked.
        let head = link.dequeue(&arena).unwrap();
        assert!(!arena.get(head).ecn_ce);
    }

    #[test]
    fn down_link_blackholes_and_flushes() {
        let cfg = SimConfig::paper_default();
        let mut link = test_link(&cfg);
        let mut arena = PacketArena::new();
        let mut rng = Rng64::new(1);
        let p = data_pkt(&mut arena, 0, 1000);
        link.enqueue(p, &mut arena, &mut rng);
        let flushed = link.set_down(Time::from_us(10), &mut arena);
        assert_eq!(flushed, 1);
        assert_eq!(arena.live(), 0, "flushed packets leave the arena");
        let q = data_pkt(&mut arena, 1, 1000);
        assert_eq!(
            link.enqueue(q, &mut arena, &mut rng),
            EnqueueOutcome::Dropped(DropReason::LinkDown)
        );
        link.set_up();
        let r = data_pkt(&mut arena, 2, 1000);
        assert!(matches!(
            link.enqueue(r, &mut arena, &mut rng),
            EnqueueOutcome::Queued { .. }
        ));
    }

    #[test]
    fn rate_change_affects_serialization() {
        let cfg = SimConfig::paper_default();
        let mut link = test_link(&cfg);
        let pkt = Packet::data(0, HostId(0), HostId(1), ConnId(0), 0, 0, 4096, false);
        let fast = link.serialization_time(&pkt);
        link.set_rate(200_000_000_000);
        let slow = link.serialization_time(&pkt);
        assert_eq!(slow.as_ps(), fast.as_ps() * 2);
    }
}
