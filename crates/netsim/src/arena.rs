//! The engine-owned packet arena.
//!
//! A [`Packet`] is ~100 bytes (and its `Body::Ack` variant owns two
//! `Vec`s), so moving packets by value through the calendar, link queues
//! and service slots costs several memcpys per hop. Instead, the engine
//! stores every in-fabric packet in one [`PacketArena`] and passes a
//! 4-byte [`PacketRef`] through the event queue and link queues; the
//! packet itself is written once when the host hands it to the NIC and
//! read/mutated in place (ECN marking, trimming) until it is delivered to
//! the destination endpoint or dropped.
//!
//! Freed slots go on a free list and are reused before the slot vector
//! grows, so the arena converges to the simulation's in-flight high-water
//! mark and then recycles slots without touching the allocator — one of
//! the invariants behind the zero-allocation switch path (see the
//! allocation-counting test in `tests/alloc.rs`).

use crate::packet::Packet;

/// A handle to a packet parked in a [`PacketArena`].
///
/// Plain index, deliberately `Copy`: calendar entries and link queues
/// move 4 bytes instead of the packet. The arena's owner is responsible
/// for not using a ref after [`PacketArena::take`] — enforced by the
/// `Option` occupancy check, which panics on use-after-take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(pub u32);

/// A generic slot-recycling slab: `Vec<Option<T>>` plus a free list.
///
/// The building block behind [`PacketArena`] and the calendar's
/// out-of-line timer/control payload storage
/// ([`EventQueue`](crate::event::EventQueue)).
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

// Manual impl: the derive would needlessly require `T: Default`.
impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Slab<T> {
    /// Parks a value, returning its slot index.
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none(), "free slot occupied");
                self.slots[i as usize] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Removes and returns the value in slot `i`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (use-after-take).
    pub fn take(&mut self, i: u32) -> T {
        let v = self.slots[i as usize].take().expect("slab slot empty");
        self.free.push(i);
        v
    }

    /// Borrows the value in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (use-after-take).
    pub fn get(&self, i: u32) -> &T {
        self.slots[i as usize].as_ref().expect("slab slot empty")
    }

    /// Mutably borrows the value in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (use-after-take).
    pub fn get_mut(&mut self, i: u32) -> &mut T {
        self.slots[i as usize].as_mut().expect("slab slot empty")
    }

    /// Number of occupied slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Slot high-water mark.
    pub fn high_water(&self) -> usize {
        self.slots.len()
    }
}

/// Slab-style packet storage with slot recycling.
#[derive(Debug, Default)]
pub struct PacketArena {
    slab: Slab<Packet>,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// Parks a packet, returning its handle.
    pub fn insert(&mut self, pkt: Packet) -> PacketRef {
        PacketRef(self.slab.insert(pkt))
    }

    /// Removes and returns the packet behind `r`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (use-after-take).
    pub fn take(&mut self, r: PacketRef) -> Packet {
        self.slab.take(r.0)
    }

    /// Borrows the packet behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (use-after-take).
    pub fn get(&self, r: PacketRef) -> &Packet {
        self.slab.get(r.0)
    }

    /// Mutably borrows the packet behind `r` (marking, trimming).
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (use-after-take).
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        self.slab.get_mut(r.0)
    }

    /// Number of packets currently parked.
    pub fn live(&self) -> usize {
        self.slab.live()
    }

    /// Slot high-water mark (diagnostics: peak in-flight packets).
    pub fn high_water(&self) -> usize {
        self.slab.high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConnId, HostId};

    fn pkt(id: u64) -> Packet {
        Packet::data(id, HostId(0), HostId(1), ConnId(0), 0, id, 4096, false)
    }

    #[test]
    fn insert_take_round_trips() {
        let mut a = PacketArena::new();
        let r1 = a.insert(pkt(1));
        let r2 = a.insert(pkt(2));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(r1).id, 1);
        assert_eq!(a.get(r2).id, 2);
        assert_eq!(a.take(r1).id, 1);
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn slots_are_recycled() {
        let mut a = PacketArena::new();
        for round in 0..50u64 {
            let refs: Vec<PacketRef> = (0..4).map(|i| a.insert(pkt(round * 4 + i))).collect();
            for r in refs {
                a.take(r);
            }
        }
        assert_eq!(a.live(), 0);
        assert!(a.high_water() <= 4, "arena grew: {}", a.high_water());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(1));
        a.get_mut(r).ecn_ce = true;
        assert!(a.get(r).ecn_ce);
        assert!(a.take(r).ecn_ce);
    }

    #[test]
    #[should_panic(expected = "slab slot empty")]
    fn use_after_take_panics() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(1));
        a.take(r);
        a.get(r);
    }
}
