//! Deterministic pseudo-random number generation for the simulator.
//!
//! Every stochastic decision in the simulator (ECMP salts, RED marking,
//! entropy exploration, workload sampling) draws from [`Rng64`], a
//! xoshiro256** generator seeded through SplitMix64. Using our own small
//! generator keeps simulations bit-for-bit reproducible across platforms and
//! dependency upgrades, which the integration tests rely on.

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use netsim::rng::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

/// Advances a SplitMix64 state and returns the next output.
///
/// Used for seeding and as a cheap stateless mixer for hash salts.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly random integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly random `usize` index in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.gen_index(slice.len())]
    }

    /// Forks an independent child generator.
    ///
    /// The child stream is decorrelated from the parent by reseeding through
    /// SplitMix64, so per-component generators never share sequences.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Rng64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.gen_range(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Rng64::new(11);
        let n = 100_000;
        let bins = 10u64;
        let mut counts = vec![0u64; bins as usize];
        for _ in 0..n {
            counts[rng.gen_range(bins) as usize] += 1;
        }
        let expected = n as f64 / bins as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bin deviation {dev} too large");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng64::new(5);
        for _ in 0..1_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng64::new(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng64::new(21);
        let mut child = parent.fork();
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }
}
