//! Simulation time represented as integer picoseconds.
//!
//! The paper's default profile (400 Gbps links, 4 KiB MTU + 64 B header)
//! serializes one full frame in exactly 83,200 ps, so picosecond resolution
//! keeps every per-hop delay exact and the simulation fully deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant (or duration) in simulated time, in picoseconds.
///
/// `Time` is deliberately a single type for both instants and durations:
/// the simulator only ever adds offsets to the current clock, and keeping a
/// single type avoids a proliferation of conversions in hot paths.
///
/// # Examples
///
/// ```
/// use netsim::time::Time;
///
/// let t = Time::from_us(70); // The paper's retransmission timeout.
/// assert_eq!(t.as_ns(), 70_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The zero instant (simulation start).
    pub const ZERO: Time = Time(0);

    /// The largest representable instant, used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000_000)
    }

    /// Returns the value in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the value in whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value in microseconds as a float, for reporting.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the value in seconds as a float, for rate computations.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction, returning [`Time::ZERO`] on underflow.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The duration's stable label in the coarsest exact unit: `25us`,
    /// `500ns` or `77ps`. Distinct durations always get distinct labels,
    /// and [`Time::parse_label`] is the exact inverse — the pair is what
    /// cell keys and the LB/grid grammars spell durations with.
    pub fn label(self) -> String {
        if self.0.is_multiple_of(1_000_000) {
            format!("{}us", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            format!("{}ns", self.0 / 1_000)
        } else {
            format!("{}ps", self.0)
        }
    }

    /// Parses a duration label (`25us`, `500ns`, `77ps`); the inverse of
    /// [`Time::label`]. Also accepts the coarser `ms` spelling as input
    /// convenience (`10ms` == `10000us`); labels never render it, so the
    /// render/parse pair stays a bijection on canonical labels.
    pub fn parse_label(s: &str) -> Result<Time, String> {
        for (suffix, make) in [
            ("ms", Time::from_ms as fn(u64) -> Time),
            ("us", Time::from_us),
            ("ns", Time::from_ns),
            ("ps", Time::from_ps),
        ] {
            if let Some(v) = s.strip_suffix(suffix) {
                return v
                    .parse::<u64>()
                    .map(make)
                    .map_err(|e| format!("bad duration {s:?}: {e}"));
            }
        }
        Err(format!(
            "bad duration {s:?} (expected e.g. 25us, 500ns, 77ps)"
        ))
    }

    /// Returns the serialization time of `bytes` at `rate_bps` bits per second.
    ///
    /// Exact integer arithmetic; the wide path uses 128 bits so that no
    /// realistic byte count or rate can overflow. Every frame-sized input
    /// (the per-packet hot path) takes the single-`u64`-division fast path,
    /// which computes the identical truncated quotient.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn serialization(bytes: u64, rate_bps: u64) -> Time {
        assert!(rate_bps > 0, "link rate must be positive");
        // bits * 1e12 fits u64 for bits < 2^24 (1.7e19 < u64::MAX): all
        // frames up to 2 MiB, i.e. every packet the simulator makes.
        if bytes < (1 << 21) {
            return Time(bytes * 8 * 1_000_000_000_000 / rate_bps);
        }
        let bits = bytes as u128 * 8;
        let ps = bits * 1_000_000_000_000u128 / rate_bps as u128;
        Time(ps as u64)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(Time::from_ns(1).as_ps(), 1_000);
        assert_eq!(Time::from_us(1).as_ns(), 1_000);
        assert_eq!(Time::from_ms(1).as_us(), 1_000);
        assert_eq!(Time::from_secs(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn serialization_time_matches_paper_profile() {
        // 4 KiB payload + 64 B header at 400 Gbps: (4160 * 8) / 400e9 s = 83.2 ns.
        let t = Time::serialization(4096 + 64, 400_000_000_000);
        assert_eq!(t.as_ps(), 83_200);
    }

    #[test]
    fn serialization_time_100g() {
        // The FPGA profile: 8 KiB + 64 B at 100 Gbps = 660.48 ns.
        let t = Time::serialization(8192 + 64, 100_000_000_000);
        assert_eq!(t.as_ps(), 660_480);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Time::from_ns(5);
        let b = Time::from_ns(3);
        assert_eq!((a + b).as_ns(), 8);
        assert_eq!((a - b).as_ns(), 2);
        assert_eq!((a * 3).as_ns(), 15);
        assert_eq!((a / 5).as_ns(), 1);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_ns(1) < Time::from_us(1));
        assert!(Time::MAX > Time::from_secs(1_000));
    }

    #[test]
    fn labels_pick_the_coarsest_exact_unit_and_round_trip() {
        for (t, label) in [
            (Time::ZERO, "0us"),
            (Time::from_us(25), "25us"),
            (Time::from_ns(500), "500ns"),
            (Time(1_500_077), "1500077ps"),
            (Time::from_secs(5), "5000000us"),
        ] {
            assert_eq!(t.label(), label);
            assert_eq!(Time::parse_label(label), Ok(t));
        }
        assert!(Time::parse_label("5").is_err());
        assert!(Time::parse_label("xus").is_err());
        assert!(Time::parse_label("-3ns").is_err());
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Time::from_ps(5)), "5ps");
        assert_eq!(format!("{}", Time::from_us(2)), "2.000us");
    }
}
