//! Allocation accounting for the adversarial-fault drop checks.
//!
//! The fault axis put two extra per-packet checks on the hot path
//! (gray-loss and corruption probabilities, right after the bit-error
//! check). The contract: with no fault installed — `fault=none`, every
//! cell that existed before the axis — those checks must cost **zero**
//! heap allocations and zero RNG draws in steady state, and even with an
//! active gray fault the per-packet work is an inline RNG draw and a
//! counter bump, never an allocation. A counting global allocator pins
//! both, so a regression (a boxed reason, a per-drop `Vec`, a formatted
//! label) fails immediately.
//!
//! This file intentionally contains a single test: the counter is
//! process-global, and a sibling test running on another thread would
//! add its own allocations to the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::config::SimConfig;
use netsim::engine::{Command, Ctx, Endpoint, Engine, RoutingMode};
use netsim::event::ControlEvent;
use netsim::ids::{ConnId, HostId, LinkId};
use netsim::packet::Packet;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to `System` unchanged; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Sends a burst of cross-rack data packets on every `Custom` command;
/// receivers are plain sinks (same harness as `tests/alloc.rs`).
struct Spray {
    burst: u32,
    next_ev: u16,
}

impl Endpoint for Spray {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    fn on_command(&mut self, _cmd: Command, ctx: &mut Ctx<'_>) {
        for i in 0..self.burst {
            let id = ctx.fresh_packet_id();
            let dst = HostId(16 + (i % 16));
            self.next_ev = self.next_ev.wrapping_add(7);
            let pkt = Packet::data(
                id,
                ctx.host,
                dst,
                ConnId(0),
                self.next_ev,
                i as u64,
                ctx.cfg.mtu_bytes,
                false,
            );
            ctx.send(pkt);
        }
    }
}

fn spray(engine: &mut Engine, burst: u32, until: Time) {
    engine.set_endpoint(HostId(0), Box::new(Spray { burst, next_ev: 1 }));
    engine.command(HostId(0), Command::Custom(0));
    engine.run_until(until);
}

#[test]
fn fault_checks_are_allocation_free_after_warmup() {
    // Phase 1: healthy fabric — the `fault=none` baseline every
    // pre-fault-axis cell runs with. Phase 2: a gray fault active on
    // every uplink of ToR 0, so the measured packets actually take the
    // gray branch (RNG draw + occasional counted drop).
    for (name, gray_p) in [("fault=none", 0.0), ("gray active", 0.02)] {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 7);
        let mut engine = Engine::new(topo, SimConfig::paper_default(), 7);
        engine.routing = RoutingMode::EcmpHash;
        if gray_p > 0.0 {
            // ToR 0's uplinks are the first links out of the source rack;
            // flag a handful so sprayed traffic crosses at least one.
            for l in 0..8 {
                engine.schedule_control(Time::ZERO, ControlEvent::LinkGray(LinkId(l), gray_p));
            }
        }
        // Warm-up grows the arena, calendar, deques and scratch buffers
        // to their high-water marks.
        spray(&mut engine, 2048, Time::from_ms(1));
        assert_eq!(engine.pending_events(), 0, "[{name}] warm-up must drain");

        let before = ALLOCS.load(Ordering::Relaxed);
        spray(&mut engine, 512, Time::from_ms(2));
        let during = ALLOCS.load(Ordering::Relaxed) - before;

        assert_eq!(
            engine.pending_events(),
            0,
            "[{name}] measured phase must drain"
        );
        // The only allocation permitted is the boxed endpoint the harness
        // itself installs in `spray` (1 Box + its fields rounding).
        assert!(
            during <= 1,
            "[{name}] fault checks allocated {during} times for 512 packets"
        );
        assert!(
            engine.stats.counters.data_tx >= 3 * (2048 + 512),
            "[{name}] traffic did not cross the fabric: {:?}",
            engine.stats.counters
        );
        if gray_p > 0.0 {
            assert!(
                engine.stats.counters.drops_gray > 0,
                "gray branch never taken: {:?}",
                engine.stats.counters
            );
        }
    }
}
