//! Allocation accounting for the calendar queue itself.
//!
//! The two-level calendar (`netsim::event`) promises **zero**
//! steady-state heap allocations: every buffer it owns — the bucket
//! ring, each bucket's `Vec`, the overflow heap, the payload slabs, the
//! rebuild scratch — grows to a high-water mark during warm-up and is
//! then reused forever. Occupancy-threshold rebuilds may retune the
//! bucket width, but the physical ring never shrinks, so a steady
//! workload settles into a fixed configuration and allocates nothing.
//!
//! This test drives the queue directly (no engine, no links) through a
//! hold model with same-timestamp ties, batch drains and far-future
//! pushes that cycle through the overflow level, and pins the measured
//! phase at zero allocations under a counting global allocator. The
//! engine-level proof (switch path + arena + calendar together) lives
//! in `tests/alloc.rs`.
//!
//! This file intentionally contains a single test: the counter is
//! process-global, and a sibling test running on another thread would
//! add its own allocations to the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::event::{Event, EventQueue};
use netsim::ids::HostId;
use netsim::rng::Rng64;
use netsim::time::Time;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to `System` unchanged; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// One hold-model step: drain the head batch (ties pop together), then
/// refile one event per drained slot at a jittered future time. Every
/// 64th refile goes far-future so the overflow level stays in rotation,
/// and every 16th is an exact tie with the previous push.
fn step(q: &mut EventQueue, batch: &mut Vec<(Time, u64, Event)>, rng: &mut Rng64, i: u64) {
    batch.clear();
    let t = q
        .drain_batch_into(batch)
        .expect("hold model never drains the queue");
    let mut last = t;
    for (k, (_, _, ev)) in batch.drain(..).enumerate() {
        let at = match (i + k as u64) % 64 {
            0 => t + Time::from_us(50 + rng.gen_range(1 << 10)),
            n if n % 16 == 1 => last,
            _ => t + Time::from_ns(1 + rng.gen_range(1 << 12)),
        };
        last = at;
        q.push(at, ev);
    }
}

#[test]
fn calendar_steady_state_allocates_nothing() {
    #[cfg(not(miri))]
    const HELD: u64 = 4096;
    #[cfg(not(miri))]
    const WARMUP: u64 = 1 << 16;
    #[cfg(not(miri))]
    const MEASURED: u64 = 1 << 13;
    // Miri runs the same model at a fraction of the iteration count —
    // still enough to cross occupancy rebuilds, bucket sorts and overflow
    // migrations, but small enough to finish in CI minutes.
    #[cfg(miri)]
    const HELD: u64 = 128;
    #[cfg(miri)]
    const WARMUP: u64 = 1 << 9;
    #[cfg(miri)]
    const MEASURED: u64 = 1 << 6;

    let mut q = EventQueue::new();
    let mut rng = Rng64::new(7);
    let mut batch: Vec<(Time, u64, Event)> = Vec::new();
    for token in 0..HELD {
        q.push(
            Time::from_ns(rng.gen_range(1 << 16)),
            Event::Timer {
                host: HostId(0),
                token,
            },
        );
    }

    // Warm-up: long enough for the occupancy rebuilds to settle, the
    // cursor to lap the ring many times (every active slot touched),
    // the overflow heap to reach its high-water mark, and the shrink
    // hysteresis streak to prove the configuration stable.
    for i in 0..WARMUP {
        step(&mut q, &mut batch, &mut rng, i);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..MEASURED {
        step(&mut q, &mut batch, &mut rng, WARMUP + i);
    }
    let during = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(
        q.len(),
        HELD as usize,
        "hold model must conserve its events"
    );
    // The zero-alloc pin is native-only: miri's short warm-up does not
    // settle the high-water mark, and there the test's job is checking
    // the calendar's pointer discipline, not its allocator behaviour.
    #[cfg(not(miri))]
    assert_eq!(
        during, 0,
        "calendar steady state must not allocate: {during} allocations \
         across {MEASURED} batch cycles"
    );
    #[cfg(miri)]
    let _ = during;
}
