//! Allocation accounting for the hybrid-fidelity residual-capacity path.
//!
//! The fluid background model touches the packet hot path in exactly one
//! place: [`Link::begin_service`] now serves at the *effective* rate
//! (line rate minus the background share) and adds a precomputed
//! queue-wait term. The contract: with no fluid model attached —
//! `fidelity=pkt`, every cell that existed before the axis — that path
//! must cost **zero** additional heap allocations in steady state, and
//! even with an active fluid background the per-packet work is integer
//! arithmetic against two cached fields, never an allocation. A counting
//! global allocator pins both, so a regression (a per-packet rate lookup
//! table, a boxed residual state) fails immediately.
//!
//! This file intentionally contains a single test: the counter is
//! process-global, and a sibling test running on another thread would
//! add its own allocations to the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::config::SimConfig;
use netsim::engine::{Command, Ctx, Endpoint, Engine, RoutingMode};
use netsim::fluid::FluidNet;
use netsim::ids::{ConnId, HostId};
use netsim::packet::Packet;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to `System` unchanged; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Sends a burst of cross-rack data packets on every `Custom` command;
/// receivers are plain sinks (same harness as `tests/alloc.rs`).
struct Spray {
    burst: u32,
    next_ev: u16,
}

impl Endpoint for Spray {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    fn on_command(&mut self, _cmd: Command, ctx: &mut Ctx<'_>) {
        for i in 0..self.burst {
            let id = ctx.fresh_packet_id();
            let dst = HostId(16 + (i % 16));
            self.next_ev = self.next_ev.wrapping_add(7);
            let pkt = Packet::data(
                id,
                ctx.host,
                dst,
                ConnId(0),
                self.next_ev,
                i as u64,
                ctx.cfg.mtu_bytes,
                false,
            );
            ctx.send(pkt);
        }
    }
}

fn spray(engine: &mut Engine, burst: u32, until: Time) {
    engine.set_endpoint(HostId(0), Box::new(Spray { burst, next_ev: 1 }));
    engine.command(HostId(0), Command::Custom(0));
    engine.run_until(until);
}

#[test]
fn fluid_residual_path_is_allocation_free_after_warmup() {
    // Phase 1: no fluid model — `fidelity=pkt`, the baseline every
    // pre-fidelity-axis cell runs with. Phase 2: long-lived fluid
    // background flows crossing the same uplinks the sprayed packets use,
    // so every measured `begin_service` takes the reduced-effective-rate
    // branch with a nonzero queue-wait term.
    for (name, with_fluid) in [("fidelity=pkt", false), ("fluid active", true)] {
        let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 7);
        let mut engine = Engine::new(topo, SimConfig::paper_default(), 7);
        engine.routing = RoutingMode::EcmpHash;
        if with_fluid {
            // Background flows large enough to outlive the run: the
            // residual stays pinned on the links for every measured
            // packet, and no completion records are produced mid-measure.
            let mut fluid = FluidNet::new(engine.links.len());
            for (i, src) in (1u32..5).enumerate() {
                fluid.add_flow(
                    &engine.topo,
                    i as u32,
                    HostId(src),
                    HostId(20 + i as u32),
                    1 << 34,
                    Time::ZERO,
                );
            }
            fluid.finalize();
            engine.attach_fluid(fluid);
        }
        // Warm-up grows the arena, calendar, deques and scratch buffers
        // to their high-water marks and runs the first fluid resolve.
        // With fluid attached, one far-future completion wake stays
        // legitimately pending — the flows are sized to outlive the run.
        let residue = usize::from(with_fluid);
        spray(&mut engine, 2048, Time::from_ms(1));
        // A second warm-up pass with the measured burst shape: the
        // background-shifted event timing packs calendar buckets
        // differently than the big burst, so the exact measured workload
        // must run once for every container to hit its high-water mark.
        spray(&mut engine, 512, Time::from_ms(2));
        assert_eq!(
            engine.pending_events(),
            residue,
            "[{name}] warm-up must drain"
        );
        if with_fluid {
            assert!(
                engine.links.iter().any(|l| l.bg_bps > 0),
                "[{name}] fluid background never reached the links"
            );
        }

        let before = ALLOCS.load(Ordering::Relaxed);
        spray(&mut engine, 512, Time::from_ms(3));
        let during = ALLOCS.load(Ordering::Relaxed) - before;

        assert_eq!(
            engine.pending_events(),
            residue,
            "[{name}] measured phase must drain"
        );
        // The only allocation permitted is the boxed endpoint the harness
        // itself installs in `spray` (1 Box + its fields rounding).
        assert!(
            during <= 1,
            "[{name}] residual path allocated {during} times for 512 packets"
        );
        assert!(
            engine.stats.counters.data_tx >= 3 * (2048 + 512 + 512),
            "[{name}] traffic did not cross the fabric: {:?}",
            engine.stats.counters
        );
    }
}
