//! Zero-overhead contract of the flight recorder when tracing is off.
//!
//! The engine's hot path carries trace probes (`trace.emit(PathChoice)`
//! on every uplink selection); with the default [`NoTrace`] sink those
//! calls must monomorphize to nothing. This test first proves the probe
//! really sits on the measured path — the same traffic through a
//! [`Recorder`]-instrumented engine captures path-choice events — and
//! then pins that the untraced engine performs **zero** heap allocations
//! for that traffic after warm-up. Any accidental cost added behind the
//! probe (a formatted label, an event buffered before the `enabled()`
//! check) fails here immediately.
//!
//! This file intentionally contains a single test: the counter is
//! process-global, and a sibling test running on another thread would
//! add its own allocations to the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::config::SimConfig;
use netsim::engine::{Command, Ctx, Endpoint, Engine, RoutingMode};
use netsim::ids::{ConnId, HostId};
use netsim::packet::Packet;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};
use netsim::trace::{Recorder, TraceEvent, TraceSink};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to `System` unchanged; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Sends a burst of cross-rack data packets on every `Custom` command,
/// exactly as in `alloc.rs` — but generic over the trace sink so the
/// same endpoint drives both the recorded and the untraced engine.
struct Spray {
    burst: u32,
    next_ev: u16,
}

impl<S: TraceSink> Endpoint<S> for Spray {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_, S>) {}
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_, S>) {}
    fn on_command(&mut self, _cmd: Command, ctx: &mut Ctx<'_, S>) {
        for i in 0..self.burst {
            let id = ctx.fresh_packet_id();
            let dst = HostId(16 + (i % 16));
            self.next_ev = self.next_ev.wrapping_add(7);
            let pkt = Packet::data(
                id,
                ctx.host,
                dst,
                ConnId(0),
                self.next_ev,
                i as u64,
                ctx.cfg.mtu_bytes,
                false,
            );
            ctx.send(pkt);
        }
    }
}

fn spray_engine<S: TraceSink>(trace: S) -> Engine<S> {
    // 32 hosts: 8 ToRs x 4 hosts, 4 T1s. Host 0 sprays to hosts 16..32,
    // so every packet crosses an uplink and hits the PathChoice probe.
    let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 7);
    let mut engine = Engine::with_trace(topo, SimConfig::paper_default(), 7, trace);
    engine.routing = RoutingMode::Adaptive;
    engine
}

fn spray<S: TraceSink>(engine: &mut Engine<S>, burst: u32, until: Time) {
    engine.set_endpoint(HostId(0), Box::new(Spray { burst, next_ev: 1 }));
    engine.command(HostId(0), Command::Custom(0));
    engine.run_until(until);
}

#[test]
fn trace_probes_cost_nothing_when_tracing_is_off() {
    // First, the probe must actually be on this path: the identical
    // traffic through a recording engine captures one PathChoice per
    // uplink traversal.
    let mut recorded = spray_engine(Recorder::new());
    spray(&mut recorded, 512, Time::from_ms(1));
    assert_eq!(recorded.pending_events(), 0, "recorded phase must drain");
    let path_choices = recorded
        .trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PathChoice { .. }))
        .count();
    assert!(
        path_choices >= 512,
        "probe not on the measured path: {path_choices} path choices"
    );

    // Now the untraced engine: after warm-up has grown every buffer,
    // the same traffic must allocate exactly zero times beyond the one
    // boxed endpoint the harness itself installs.
    let mut engine = spray_engine(netsim::trace::NoTrace);
    spray(&mut engine, 2048, Time::from_ms(2));
    assert_eq!(engine.pending_events(), 0, "warm-up must drain");

    let before = ALLOCS.load(Ordering::Relaxed);
    spray(&mut engine, 512, Time::from_ms(3));
    let during = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(engine.pending_events(), 0, "measured phase must drain");
    assert!(
        during <= 1,
        "NoTrace engine allocated {during} times for 512 packets"
    );
    assert!(
        engine.stats.counters.data_tx >= 3 * (2048 + 512),
        "traffic did not cross the fabric: {:?}",
        engine.stats.counters
    );
}
