//! Total-order equivalence proof for the calendar queue.
//!
//! The two-level calendar in `netsim::event` replaced a
//! `BinaryHeap`-of-POD (see the module docs for the bakeoff history).
//! Correctness rests on one invariant: pops come out in the exact
//! `(time, seq)` total order the heap produced, where `seq` is the push
//! sequence number — same-timestamp events pop FIFO. Every golden
//! output, cell key and derived seed depends on that order.
//!
//! These properties drive random op streams — pushes with tied
//! timestamps, far-future pushes that take the overflow level,
//! past-time pushes, interleaved pops and batch drains — through both
//! the calendar and a `BinaryHeap<Reverse<(time, seq)>>` reference, and
//! assert the sequences are identical element by element. The streams
//! are long enough to cross the occupancy resize thresholds, so grows,
//! shrinks and width re-tunes are exercised mid-comparison.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use netsim::event::{Event, EventQueue};
use netsim::ids::HostId;
use netsim::time::Time;

/// The reference model: the exact order the pre-calendar heap produced.
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<(Time, u64, u64)>>,
    seq: u64,
}

impl RefHeap {
    fn push(&mut self, at: Time, token: u64) {
        self.heap.push(Reverse((at, self.seq, token)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, u64, u64)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek(&self) -> Option<(Time, u64)> {
        self.heap.peek().map(|Reverse((t, s, _))| (*t, *s))
    }
}

/// Extracts the identity token the ops encode into timer events.
fn token_of(ev: &Event) -> u64 {
    match ev {
        Event::Timer { token, .. } => *token,
        other => panic!("ops only push timers, popped {other:?}"),
    }
}

/// Pushes one op's event into both queues, deriving the timestamp from
/// the op byte: small uniform deltas (the common case), exact ties with
/// the previous push, far-future jumps that must take the overflow
/// level, and past-time pushes below the current pop horizon.
fn push_op(
    q: &mut EventQueue,
    r: &mut RefHeap,
    kind: u8,
    raw: u32,
    now: Time,
    last_push: &mut Time,
    token: u64,
) {
    let at = match kind % 8 {
        // Tie: identical timestamp to the previous push (FIFO proof).
        0 => *last_push,
        // Far future: way past any plausible ring horizon.
        1 => now + Time::from_us(100 + (raw % 10_000) as u64),
        // Past time: at or below the pop horizon.
        2 => Time::from_ps(now.as_ps().saturating_sub((raw % 4096) as u64)),
        // Small deltas: the steady-state inter-event gap.
        _ => now + Time::from_ps(1 + (raw % (1 << 14)) as u64),
    };
    *last_push = at;
    q.push(
        at,
        Event::Timer {
            host: HostId(0),
            token,
        },
    );
    r.push(at, token);
}

proptest! {
    /// Interleaved push/pop streams: the calendar's `(time, seq)` pop
    /// sequence equals the reference heap's, element by element.
    #[test]
    fn pop_sequence_matches_binheap_reference(
        ops in proptest::collection::vec(any::<(u8, u8, u32)>(), 1..600),
        drain_tail in any::<bool>(),
    ) {
        let mut q = EventQueue::new();
        let mut r = RefHeap::default();
        let mut now = Time::ZERO;
        let mut last_push = Time::ZERO;
        let mut token = 0u64;

        for (action, kind, raw) in ops {
            // ~1/4 pops keep the queues partially drained so the
            // cursor sweeps and resize thresholds both trigger.
            if action % 4 == 0 {
                let want = r.pop();
                let got_key = q.peek_key();
                prop_assert_eq!(got_key, want.map(|(t, s, _)| (t, s)), "peek_key diverged");
                let got = q.pop();
                match (got, want) {
                    (None, None) => {}
                    (Some((gt, ev)), Some((wt, _, wtok))) => {
                        prop_assert_eq!(gt, wt, "pop time diverged");
                        prop_assert_eq!(token_of(&ev), wtok, "pop identity diverged");
                        now = gt;
                    }
                    (g, w) => prop_assert!(false, "pop presence diverged: {g:?} vs {w:?}"),
                }
            } else {
                push_op(&mut q, &mut r, kind, raw, now, &mut last_push, token);
                token += 1;
            }
            prop_assert_eq!(q.len(), r.heap.len(), "length diverged");
        }

        if drain_tail {
            // Exhaust both completely: the tail crosses shrink
            // thresholds and the ring-empty → overflow-jump path.
            while let Some((wt, _, wtok)) = r.pop() {
                let (gt, ev) = q.pop().expect("calendar drained early");
                prop_assert_eq!(gt, wt, "tail pop time diverged");
                prop_assert_eq!(token_of(&ev), wtok, "tail identity diverged");
            }
            prop_assert!(q.pop().is_none(), "calendar held extra events");
        }
    }

    /// Batch drains take exactly the maximal tied-timestamp run, in seq
    /// order, and the remaining stream still matches the reference.
    #[test]
    fn batch_drain_matches_binheap_reference(
        ops in proptest::collection::vec(any::<(u8, u8, u32)>(), 1..400),
    ) {
        let mut q = EventQueue::new();
        let mut r = RefHeap::default();
        let mut now = Time::ZERO;
        let mut last_push = Time::ZERO;
        let mut token = 0u64;
        let mut batch = Vec::new();

        for (action, kind, raw) in ops {
            if action % 5 == 0 {
                batch.clear();
                let got_t = q.drain_batch_into(&mut batch);
                prop_assert_eq!(got_t, r.peek().map(|(t, _)| t), "batch head time diverged");
                // The batch must be the full tied-run at the head time,
                // in ascending seq order, matching the reference pops.
                for &(bt, bseq, ref ev) in &batch {
                    let (wt, wseq, wtok) = r.pop().expect("reference drained early");
                    prop_assert_eq!(bt, wt, "batch entry time diverged");
                    prop_assert_eq!(bseq, wseq, "batch entry seq diverged");
                    prop_assert_eq!(token_of(ev), wtok, "batch identity diverged");
                }
                if let Some(t) = got_t {
                    // Maximality: the next reference event is strictly later.
                    if let Some((nt, _)) = r.peek() {
                        prop_assert!(nt > t, "batch stopped inside a tied run");
                    }
                    now = t;
                }
            } else {
                push_op(&mut q, &mut r, kind, raw, now, &mut last_push, token);
                token += 1;
            }
            prop_assert_eq!(q.len(), r.heap.len(), "length diverged");
        }
    }
}
