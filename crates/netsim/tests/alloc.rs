//! Allocation accounting for the per-packet hot path.
//!
//! Pins the zero-allocation contract of the switch path
//! (`route → select_uplink → push_link`) plus the calendar and arena:
//! after a warm-up phase has grown every buffer to its high-water mark
//! (arena slots, calendar heap, link deques, scratch buffers), pushing
//! more traffic through the fabric must perform **zero** heap
//! allocations. A counting global allocator makes any regression — a
//! cloned route table, a filter `Vec`, a packet moved back inline — fail
//! this test immediately.
//!
//! This file intentionally contains a single test: the counter is
//! process-global, and a sibling test running on another thread would
//! add its own allocations to the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::config::SimConfig;
use netsim::engine::{Command, Ctx, Endpoint, Engine, RoutingMode};
use netsim::ids::{ConnId, HostId};
use netsim::packet::Packet;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, Topology};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to `System` unchanged; only adds a relaxed counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Sends a burst of cross-rack data packets on every `Custom` command.
/// Receivers are plain sinks, so all traffic exercises exactly the fabric
/// path under test and nothing else.
struct Spray {
    burst: u32,
    next_ev: u16,
}

impl Endpoint for Spray {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    fn on_command(&mut self, _cmd: Command, ctx: &mut Ctx<'_>) {
        for i in 0..self.burst {
            let id = ctx.fresh_packet_id();
            // Rotate destinations across the remote racks so downlinks do
            // not overflow, and rotate EVs so every uplink gets exercised.
            let dst = HostId(16 + (i % 16));
            self.next_ev = self.next_ev.wrapping_add(7);
            let pkt = Packet::data(
                id,
                ctx.host,
                dst,
                ConnId(0),
                self.next_ev,
                i as u64,
                ctx.cfg.mtu_bytes,
                false,
            );
            ctx.send(pkt);
        }
    }
}

fn spray_engine(cfg: SimConfig, routing: RoutingMode) -> Engine {
    // 32 hosts: 8 ToRs x 4 hosts, 4 T1s. Host 0 sprays to hosts 16..32.
    let topo = Topology::build(FatTreeConfig::two_tier(8, 1), 7);
    let mut engine = Engine::new(topo, cfg, 7);
    engine.routing = routing;
    engine.set_endpoint(
        HostId(0),
        Box::new(Spray {
            burst: 0,
            next_ev: 0,
        }),
    );
    engine
}

fn spray(engine: &mut Engine, burst: u32, until: Time) {
    // Reach into the endpoint via a fresh one: simpler to re-install with
    // the desired burst than to downcast.
    engine.set_endpoint(HostId(0), Box::new(Spray { burst, next_ev: 1 }));
    engine.command(HostId(0), Command::Custom(0));
    engine.run_until(until);
}

#[test]
fn switch_path_is_allocation_free_after_warmup() {
    let configs: [(&str, SimConfig, RoutingMode); 3] = [
        ("ecmp", SimConfig::paper_default(), RoutingMode::EcmpHash),
        (
            "adaptive",
            SimConfig::paper_default(),
            RoutingMode::Adaptive,
        ),
        (
            "ecmp+failover",
            {
                let mut c = SimConfig::paper_default();
                c.ecmp_failover = Some(Time::from_us(5));
                c
            },
            RoutingMode::EcmpHash,
        ),
    ];
    for (name, cfg, routing) in configs {
        let mut engine = spray_engine(cfg, routing);
        // Warm-up: a burst strictly larger than the measured phase grows
        // the arena, calendar, link deques and scratch buffers to their
        // high-water marks.
        spray(&mut engine, 2048, Time::from_ms(1));
        assert_eq!(engine.pending_events(), 0, "warm-up must drain");

        let before = ALLOCS.load(Ordering::Relaxed);
        spray(&mut engine, 512, Time::from_ms(2));
        let during = ALLOCS.load(Ordering::Relaxed) - before;

        assert_eq!(engine.pending_events(), 0, "measured phase must drain");
        // The only allocation permitted is the boxed endpoint the harness
        // itself installs in `spray` (1 Box + its fields rounding).
        assert!(
            during <= 1,
            "[{name}] switch path allocated {during} times for 512 packets"
        );
        // Every packet crosses at least 3 hops (the last hop may tail-drop
        // under the deliberately bursty load).
        assert!(
            engine.stats.counters.data_tx >= 3 * (2048 + 512),
            "[{name}] traffic did not cross the fabric: {:?}",
            engine.stats.counters
        );
    }
}
