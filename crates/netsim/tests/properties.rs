//! Property-based tests for the simulator substrate: topology/routing
//! invariants, tracker correctness, hash uniformity — plus the
//! zero-allocation refactor's equivalence proofs: the borrowed routing
//! tables and the indexed uplink selection must make bit-identical
//! choices to the pre-refactor `Vec`-based implementations (preserved
//! below as test-local references).

use proptest::prelude::*;

use netsim::arena::PacketArena;
use netsim::config::SimConfig;
use netsim::engine::{RoutingMode, RoutingView};
use netsim::hash::ecmp_select;
use netsim::ids::{ConnId, HostId, LinkId, NodeRef};
use netsim::link::Link;
use netsim::packet::Packet;
use netsim::rng::Rng64;
use netsim::time::Time;
use netsim::topology::{FatTreeConfig, RouteChoice, Topology};

/// Walks a packet from `src` to `dst`, taking the hash choice on every
/// ECMP ascent; returns hop count on success.
fn walk(topo: &Topology, src: HostId, dst: HostId, ev: u16) -> Option<usize> {
    let mut at = topo.links[topo.host_up[src.index()].index()].to;
    for hops in 1..=16 {
        match at {
            NodeRef::Host(h) => return (h == dst).then_some(hops),
            NodeRef::Switch(sw) => {
                let link = match topo.route(sw, dst)? {
                    RouteChoice::Down(l) => l,
                    RouteChoice::Up(c) => {
                        let salt = topo.switches[sw.index()].salt;
                        c.at(ecmp_select(src, dst, ev, salt, c.len()))
                    }
                };
                at = topo.links[link.index()].to;
            }
        }
    }
    None
}

/// The routing decision as the pre-refactor `Topology::route` returned it
/// (an owned uplink list instead of a borrowed table).
#[derive(Debug, Clone, PartialEq)]
enum RefChoice {
    Down(LinkId),
    Up(Vec<LinkId>),
}

/// Verbatim port of the pre-refactor `Topology::route` (allocating). The
/// per-switch tables it indexed are materialized from the compact
/// descriptors — `topology_tables_match_link_scan` (in `netsim::topology`)
/// separately proves the descriptors match a raw scan of the links vec.
fn ref_route(topo: &Topology, sw: netsim::ids::SwitchId, dst: HostId) -> Option<RefChoice> {
    use netsim::topology::Tier;
    let meta = &topo.switches[sw.index()];
    let up_links: Vec<LinkId> = meta.up_links.iter().collect();
    let down_links: Vec<LinkId> = meta.down_links.iter().collect();
    let cfg = &topo.cfg;
    let dst_tor_global = dst.0 / cfg.hosts_per_tor;
    match meta.tier {
        Tier::T0 => {
            let my_tor_global = meta.pod * cfg.tors + meta.idx;
            if dst_tor_global == my_tor_global {
                let slot = (dst.0 % cfg.hosts_per_tor) as usize;
                Some(RefChoice::Down(down_links[slot]))
            } else {
                Some(RefChoice::Up(up_links))
            }
        }
        Tier::T1 => {
            let dst_pod = dst_tor_global / cfg.tors;
            if cfg.tiers == 2 || dst_pod == meta.pod {
                let slot = (dst_tor_global % cfg.tors) as usize;
                Some(RefChoice::Down(down_links[slot]))
            } else {
                Some(RefChoice::Up(up_links))
            }
        }
        Tier::T2 => {
            let dst_pod = (dst_tor_global / cfg.tors) as usize;
            Some(RefChoice::Down(down_links[dst_pod]))
        }
    }
}

/// Verbatim port of the pre-refactor `Engine::failover_usable`.
fn ref_failover_usable(
    topo: &Topology,
    links: &[Link],
    now: Time,
    link: LinkId,
    dst: HostId,
    delay: Time,
) -> bool {
    let l = &links[link.index()];
    if !l.up && now >= l.down_since + delay {
        return false;
    }
    if let NodeRef::Switch(peer) = l.to {
        if let Some(RefChoice::Down(down)) = ref_route(topo, peer, dst) {
            let d = &links[down.index()];
            if !d.up && now >= d.down_since + delay {
                return false;
            }
        }
    }
    true
}

/// Verbatim port of the pre-refactor `Engine::select_uplink`
/// (`Vec`-based failover filter and adaptive tie-break).
#[allow(clippy::too_many_arguments)]
fn ref_select_uplink(
    topo: &Topology,
    links: &[Link],
    now: Time,
    failover: Option<Time>,
    mode: RoutingMode,
    salt: u64,
    pkt: &Packet,
    candidates: Vec<LinkId>,
    rng: &mut Rng64,
) -> LinkId {
    let usable: Vec<LinkId> = match failover {
        Some(delay) => {
            let filtered: Vec<LinkId> = candidates
                .iter()
                .copied()
                .filter(|&l| ref_failover_usable(topo, links, now, l, pkt.dst, delay))
                .collect();
            if filtered.is_empty() {
                candidates
            } else {
                filtered
            }
        }
        None => candidates,
    };
    match mode {
        RoutingMode::EcmpHash => {
            let i = ecmp_select(pkt.src, pkt.dst, pkt.ev, salt, usable.len());
            usable[i]
        }
        RoutingMode::Adaptive => {
            let min = usable
                .iter()
                .map(|l| links[l.index()].queued_bytes)
                .min()
                .expect("non-empty");
            let least: Vec<LinkId> = usable
                .iter()
                .copied()
                .filter(|l| links[l.index()].queued_bytes == min)
                .collect();
            *rng.choose(&least)
        }
    }
}

/// Builds the engine's link arena for a topology and applies a random
/// failure/congestion state drawn from `seed`.
fn random_link_state(topo: &Topology, seed: u64) -> (Vec<Link>, Time) {
    let cfg = SimConfig::paper_default();
    let mut rng = Rng64::new(seed);
    let mut arena = PacketArena::new();
    let mut links: Vec<Link> = topo
        .links
        .iter()
        .enumerate()
        .map(|(i, spec)| Link::new(LinkId(i as u32), spec.from, spec.to, cfg.link_latency, &cfg))
        .collect();
    let now = Time::from_us(rng.gen_range(200));
    for link in &mut links {
        link.queued_bytes = rng.gen_range(1 << 18);
        // ~20% of links failed at some instant before `now`.
        if rng.gen_bool(0.2) {
            let at = Time::from_us(rng.gen_range(200)).min(now);
            link.set_down(at, &mut arena);
        }
    }
    (links, now)
}

proptest! {
    /// The borrowed `route` returns exactly what the pre-refactor
    /// allocating version returned, across random fabrics.
    #[test]
    fn borrowed_route_matches_reference(
        two_tier in any::<bool>(),
        radix_half in 2u32..7,
        oversub in 1u32..4,
        seed in any::<u64>(),
        pick in any::<(u32, u32)>(),
    ) {
        let cfg = if two_tier {
            FatTreeConfig::two_tier(radix_half * (oversub + 1), oversub)
        } else {
            FatTreeConfig::three_tier(radix_half * 2, 1)
        };
        let topo = Topology::build(cfg, seed);
        let sw = netsim::ids::SwitchId(pick.0 % topo.switches.len() as u32);
        let dst = HostId(pick.1 % topo.n_hosts);
        match (topo.route(sw, dst), ref_route(&topo, sw, dst)) {
            (Some(RouteChoice::Down(a)), Some(RefChoice::Down(b))) => prop_assert_eq!(a, b),
            (Some(RouteChoice::Up(a)), Some(RefChoice::Up(b))) => {
                prop_assert_eq!(a.iter().collect::<Vec<_>>(), b)
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "shape mismatch: {a:?} vs {b:?}"),
        }
    }

    /// The indexed, scratch-buffer uplink selection picks bit-identical
    /// links — and leaves the RNG in the same state — as the pre-refactor
    /// `Vec`-based selection, across random fabrics, destinations,
    /// failure sets, failover delays and both routing modes.
    #[test]
    fn indexed_select_uplink_matches_reference(
        radix_half in 2u32..7,
        seed in any::<u64>(),
        state_seed in any::<u64>(),
        pick in any::<(u32, u32, u16)>(),
        failover_us in prop_oneof![Just(None), (0u64..100).prop_map(Some)],
        adaptive in any::<bool>(),
    ) {
        let topo = Topology::build(FatTreeConfig::two_tier(radix_half * 2, 1), seed);
        let (links, now) = random_link_state(&topo, state_seed);
        let n = topo.n_hosts;
        let src = HostId(pick.0 % n);
        let dst = HostId(pick.1 % n);
        // Select at the source ToR; only meaningful for Up routes.
        let tor = topo.tor_of(src);
        prop_assume!(topo.tor_of(dst) != tor);
        let candidates = match topo.route(tor, dst).expect("route") {
            RouteChoice::Up(c) => c,
            RouteChoice::Down(_) => unreachable!("cross-rack must ascend"),
        };
        let salt = topo.switches[tor.index()].salt;
        let pkt = Packet::data(1, src, dst, ConnId(0), pick.2, 0, 4096, false);
        let failover = failover_us.map(Time::from_us);
        let mode = if adaptive { RoutingMode::Adaptive } else { RoutingMode::EcmpHash };

        let view = RoutingView { topo: &topo, links: &links, now, failover, mode };
        let mut rng_new = Rng64::new(seed ^ 0xABCD);
        let mut rng_ref = rng_new.clone();
        let mut scratch = Vec::new();
        let got = view.select_uplink(candidates, &pkt, salt, &mut rng_new, &mut scratch);
        let want = ref_select_uplink(
            &topo, &links, now, failover, mode, salt, &pkt,
            candidates.iter().collect(), &mut rng_ref,
        );
        prop_assert_eq!(got, want, "selected link diverged");
        prop_assert_eq!(rng_new.next_u64(), rng_ref.next_u64(), "RNG stream diverged");
    }
}

proptest! {
    /// Any host pair is connected under any entropy in any 2-tier fabric.
    #[test]
    fn two_tier_universal_reachability(
        radix_half in 2u32..9,
        oversub in 1u32..4,
        seed in any::<u64>(),
        ev in any::<u16>(),
        pair in any::<(u32, u32)>(),
    ) {
        let k = radix_half * (oversub + 1);
        let cfg = FatTreeConfig::two_tier(k, oversub);
        let topo = Topology::build(cfg, seed);
        let n = topo.n_hosts;
        let src = HostId(pair.0 % n);
        let dst = HostId(pair.1 % n);
        prop_assume!(src != dst);
        let hops = walk(&topo, src, dst, ev);
        prop_assert!(hops.is_some(), "{src} -> {dst} unreachable");
        prop_assert!(hops.unwrap() <= 4);
    }

    /// Any host pair is connected under any entropy in any 3-tier fabric.
    #[test]
    fn three_tier_universal_reachability(
        k_half in 1u32..5,
        seed in any::<u64>(),
        ev in any::<u16>(),
        pair in any::<(u32, u32)>(),
    ) {
        let cfg = FatTreeConfig::three_tier(k_half * 2, 1);
        let topo = Topology::build(cfg, seed);
        let n = topo.n_hosts;
        let src = HostId(pair.0 % n);
        let dst = HostId(pair.1 % n);
        prop_assume!(src != dst);
        let hops = walk(&topo, src, dst, ev);
        prop_assert!(hops.is_some(), "{src} -> {dst} unreachable");
        prop_assert!(hops.unwrap() <= 6);
    }

    /// Every cable pair is mutually inverse.
    #[test]
    fn cable_pairs_are_inverse(radix_half in 2u32..8, seed in any::<u64>()) {
        let topo = Topology::build(FatTreeConfig::two_tier(radix_half * 2, 1), seed);
        for (up, down) in topo.cable_pairs() {
            let u = &topo.links[up.index()];
            let d = &topo.links[down.index()];
            prop_assert_eq!(u.from, d.to);
            prop_assert_eq!(u.to, d.from);
        }
    }

    /// ECMP selection is always in range and deterministic.
    #[test]
    fn ecmp_select_in_range_and_stable(
        src in any::<u32>(),
        dst in any::<u32>(),
        ev in any::<u16>(),
        salt in any::<u64>(),
        n in 1usize..64,
    ) {
        let a = ecmp_select(HostId(src), HostId(dst), ev, salt, n);
        let b = ecmp_select(HostId(src), HostId(dst), ev, salt, n);
        prop_assert!(a < n);
        prop_assert_eq!(a, b);
    }

    /// RED marking probability is monotone in occupancy and clamped.
    #[test]
    fn red_probability_monotone(
        kmin in 1u64..1_000_000,
        span in 1u64..1_000_000,
        occ_a in any::<u64>(),
        occ_b in any::<u64>(),
    ) {
        let kmax = kmin + span;
        let a = occ_a % (2 * kmax);
        let b = occ_b % (2 * kmax);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = netsim::link::red_mark_probability(lo, kmin, kmax);
        let p_hi = netsim::link::red_mark_probability(hi, kmin, kmax);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo <= p_hi);
    }
}
