//! Property-based tests for the simulator substrate: topology/routing
//! invariants, tracker correctness, hash uniformity.

use proptest::prelude::*;

use netsim::hash::ecmp_select;
use netsim::ids::{HostId, NodeRef};
use netsim::topology::{FatTreeConfig, RouteChoice, Topology};

/// Walks a packet from `src` to `dst`, taking the hash choice on every
/// ECMP ascent; returns hop count on success.
fn walk(topo: &Topology, src: HostId, dst: HostId, ev: u16) -> Option<usize> {
    let mut at = topo.links[topo.host_up[src.index()].index()].to;
    for hops in 1..=16 {
        match at {
            NodeRef::Host(h) => return (h == dst).then_some(hops),
            NodeRef::Switch(sw) => {
                let link = match topo.route(sw, dst)? {
                    RouteChoice::Down(l) => l,
                    RouteChoice::Up(c) => {
                        let salt = topo.switches[sw.index()].salt;
                        c[ecmp_select(src, dst, ev, salt, c.len())]
                    }
                };
                at = topo.links[link.index()].to;
            }
        }
    }
    None
}

proptest! {
    /// Any host pair is connected under any entropy in any 2-tier fabric.
    #[test]
    fn two_tier_universal_reachability(
        radix_half in 2u32..9,
        oversub in 1u32..4,
        seed in any::<u64>(),
        ev in any::<u16>(),
        pair in any::<(u32, u32)>(),
    ) {
        let k = radix_half * (oversub + 1);
        let cfg = FatTreeConfig::two_tier(k, oversub);
        let topo = Topology::build(cfg, seed);
        let n = topo.n_hosts;
        let src = HostId(pair.0 % n);
        let dst = HostId(pair.1 % n);
        prop_assume!(src != dst);
        let hops = walk(&topo, src, dst, ev);
        prop_assert!(hops.is_some(), "{src} -> {dst} unreachable");
        prop_assert!(hops.unwrap() <= 4);
    }

    /// Any host pair is connected under any entropy in any 3-tier fabric.
    #[test]
    fn three_tier_universal_reachability(
        k_half in 1u32..5,
        seed in any::<u64>(),
        ev in any::<u16>(),
        pair in any::<(u32, u32)>(),
    ) {
        let cfg = FatTreeConfig::three_tier(k_half * 2, 1);
        let topo = Topology::build(cfg, seed);
        let n = topo.n_hosts;
        let src = HostId(pair.0 % n);
        let dst = HostId(pair.1 % n);
        prop_assume!(src != dst);
        let hops = walk(&topo, src, dst, ev);
        prop_assert!(hops.is_some(), "{src} -> {dst} unreachable");
        prop_assert!(hops.unwrap() <= 6);
    }

    /// Every cable pair is mutually inverse.
    #[test]
    fn cable_pairs_are_inverse(radix_half in 2u32..8, seed in any::<u64>()) {
        let topo = Topology::build(FatTreeConfig::two_tier(radix_half * 2, 1), seed);
        for (up, down) in topo.cable_pairs() {
            let u = &topo.links[up.index()];
            let d = &topo.links[down.index()];
            prop_assert_eq!(u.from, d.to);
            prop_assert_eq!(u.to, d.from);
        }
    }

    /// ECMP selection is always in range and deterministic.
    #[test]
    fn ecmp_select_in_range_and_stable(
        src in any::<u32>(),
        dst in any::<u32>(),
        ev in any::<u16>(),
        salt in any::<u64>(),
        n in 1usize..64,
    ) {
        let a = ecmp_select(HostId(src), HostId(dst), ev, salt, n);
        let b = ecmp_select(HostId(src), HostId(dst), ev, salt, n);
        prop_assert!(a < n);
        prop_assert_eq!(a, b);
    }

    /// RED marking probability is monotone in occupancy and clamped.
    #[test]
    fn red_probability_monotone(
        kmin in 1u64..1_000_000,
        span in 1u64..1_000_000,
        occ_a in any::<u64>(),
        occ_b in any::<u64>(),
    ) {
        let kmax = kmin + span;
        let a = occ_a % (2 * kmax);
        let b = occ_b % (2 * kmax);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = netsim::link::red_mark_probability(lo, kmin, kmax);
        let p_hi = netsim::link::red_mark_probability(hi, kmin, kmax);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo <= p_hi);
    }
}
