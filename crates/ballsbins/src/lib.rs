//! Theoretical balls-into-bins models from the REPS paper (§5).
//!
//! * [`batched::BatchedBallsBins`] — the OPS model: uniform throws at rate
//!   `λn` per round; max load diverges as `λ → 1` (Fig. 17).
//! * [`recycled::RecycledBallsBins`] — the REPS model: colors remember
//!   below-threshold bins and are recycled round-robin; converges to
//!   `≤ τ` queues at full injection (Theorem 5.1, Fig. 18), including the
//!   ACK-coalescing variant (Fig. 20).
//! * [`imbalance`] — the EVS-size load-imbalance analysis of §4.5.2
//!   (Fig. 14), run against the fabric's real ECMP hash.

pub mod batched;
pub mod imbalance;
pub mod recycled;

pub use batched::{average_max_load, BatchedBallsBins};
pub use imbalance::{imbalance_stats, trial_imbalance, ImbalanceStats};
pub use recycled::{theorem_parameters, RecycledBallsBins};
