//! EVS-size load-imbalance model (§4.5.2, Fig. 14).
//!
//! Output ports are bins, entropy values are balls: for each active flow we
//! throw one ball per EV (hashed with per-flow header randomness) into the
//! `n` uplinks and measure the load imbalance `λ = max/(m/n) − 1`. Small
//! EVS → high imbalance; 2^16 EVs → near-uniform.

use netsim::hash::ecmp_select;
use netsim::ids::HostId;
use netsim::rng::Rng64;

/// Summary statistics over trials.
#[derive(Debug, Clone, Copy)]
pub struct ImbalanceStats {
    /// Mean load imbalance.
    pub mean: f64,
    /// 2.5th percentile.
    pub p2_5: f64,
    /// 97.5th percentile.
    pub p97_5: f64,
}

/// Load imbalance of one trial: `flows` flows each spraying `evs` entropies
/// over `ports` uplinks through the fabric's real ECMP hash.
pub fn trial_imbalance(ports: usize, evs: u32, flows: u32, rng: &mut Rng64) -> f64 {
    assert!(ports > 0 && evs > 0 && flows > 0);
    let mut counts = vec![0u64; ports];
    for _ in 0..flows {
        // Each flow contributes distinct header fields: model as a random
        // (src, dst, salt) triple feeding the same switch hash.
        let src = HostId(rng.next_u64() as u32);
        let dst = HostId(rng.next_u64() as u32);
        let salt = rng.next_u64();
        for ev in 0..evs {
            let port = ecmp_select(src, dst, ev as u16, salt, ports);
            counts[port] += 1;
        }
    }
    let m = (evs as u64 * flows as u64) as f64;
    let max = *counts.iter().max().expect("ports > 0") as f64;
    max / (m / ports as f64) - 1.0
}

/// Runs `trials` independent trials and summarizes (Fig. 14's bands).
pub fn imbalance_stats(
    ports: usize,
    evs: u32,
    flows: u32,
    trials: usize,
    seed: u64,
) -> ImbalanceStats {
    assert!(trials > 0);
    let mut vals: Vec<f64> = (0..trials)
        .map(|t| {
            let mut rng = Rng64::new(seed ^ (t as u64).wrapping_mul(0xA5A5_5A5A_1234_5678));
            trial_imbalance(ports, evs, flows, &mut rng)
        })
        .collect();
    vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let idx = |q: f64| ((vals.len() - 1) as f64 * q).round() as usize;
    ImbalanceStats {
        mean,
        p2_5: vals[idx(0.025)],
        p97_5: vals[idx(0.975)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_shrinks_with_evs_size_one_flow() {
        // Fig. 14a: with 1 flow and 32 uplinks, 2^5 EVs are badly imbalanced
        // and 2^16 EVs are near-uniform.
        let small = imbalance_stats(32, 32, 1, 50, 1);
        let large = imbalance_stats(32, 1 << 16, 1, 20, 1);
        assert!(small.mean > 1.0, "2^5 EVs mean {}", small.mean);
        assert!(large.mean < 0.10, "2^16 EVs mean {}", large.mean);
        assert!(small.mean > 10.0 * large.mean);
    }

    #[test]
    fn more_flows_average_out_imbalance() {
        // Fig. 14b: 32 flows smooth the distribution at equal EVS size.
        let one = imbalance_stats(32, 256, 1, 40, 2);
        let many = imbalance_stats(32, 256, 32, 40, 2);
        assert!(many.mean < one.mean, "one {} many {}", one.mean, many.mean);
    }

    #[test]
    fn percentile_band_brackets_mean() {
        let s = imbalance_stats(32, 1024, 4, 60, 3);
        assert!(s.p2_5 <= s.mean && s.mean <= s.p97_5);
        assert!(s.p2_5 >= 0.0 - 1e-9);
    }

    #[test]
    fn matches_paper_order_of_magnitude_at_2_8() {
        // The paper reports ~10% imbalance with 32 flows below 2^8 EVs and
        // <1% at 2^16 (§4.5.2).
        let at256 = imbalance_stats(32, 256, 32, 40, 4);
        assert!(
            (0.05..0.5).contains(&at256.mean),
            "2^8/32 flows mean {}",
            at256.mean
        );
        let at64k = imbalance_stats(32, 1 << 16, 32, 10, 4);
        assert!(at64k.mean < 0.03, "2^16/32 flows mean {}", at64k.mean);
    }
}
