//! The batched balls-into-bins model of OPS (§5.1).
//!
//! `n` output ports are bins. Each round every non-empty bin serves one
//! ball, then a batch of `⌊λn⌋` balls (plus a Bernoulli remainder) arrives,
//! each thrown uniformly at random. At `λ → 1` the maximum load grows
//! without bound — the theoretical reason OPS builds unbounded queues at
//! full injection (Fig. 17).

use netsim::rng::Rng64;

/// The batched uniform-throw process.
#[derive(Debug, Clone)]
pub struct BatchedBallsBins {
    /// Per-bin occupancy.
    bins: Vec<u64>,
    /// Injection rate as a fraction of `n` balls per round.
    lambda: f64,
}

impl BatchedBallsBins {
    /// Creates the process with `n` bins at injection rate `lambda`.
    pub fn new(n: usize, lambda: f64) -> BatchedBallsBins {
        assert!(n > 0);
        assert!(lambda > 0.0);
        BatchedBallsBins {
            bins: vec![0; n],
            lambda,
        }
    }

    /// Number of bins.
    pub fn n(&self) -> usize {
        self.bins.len()
    }

    /// Current per-bin loads.
    pub fn loads(&self) -> &[u64] {
        &self.bins
    }

    /// Maximum bin load.
    pub fn max_load(&self) -> u64 {
        self.bins.iter().copied().max().unwrap_or(0)
    }

    /// Total balls in the system.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Number of balls to inject this round (deterministic part plus a
    /// Bernoulli remainder so the long-run rate is exactly `λn`).
    fn batch_size(&self, rng: &mut Rng64) -> usize {
        let exact = self.lambda * self.bins.len() as f64;
        let base = exact.floor() as usize;
        let frac = exact - base as f64;
        base + usize::from(rng.gen_bool(frac))
    }

    /// Advances one round: serve every non-empty bin, then throw the batch.
    pub fn step(&mut self, rng: &mut Rng64) {
        for b in &mut self.bins {
            *b = b.saturating_sub(1);
        }
        let batch = self.batch_size(rng);
        let n = self.bins.len() as u64;
        for _ in 0..batch {
            let i = rng.gen_range(n) as usize;
            self.bins[i] += 1;
        }
    }

    /// Runs `rounds` steps, returning the max load after each round.
    pub fn run(&mut self, rounds: usize, rng: &mut Rng64) -> Vec<u64> {
        (0..rounds)
            .map(|_| {
                self.step(rng);
                self.max_load()
            })
            .collect()
    }
}

/// Average of `trials` independent max-load trajectories (Fig. 17's series).
pub fn average_max_load(
    n: usize,
    lambda: f64,
    rounds: usize,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let mut acc = vec![0.0f64; rounds];
    for t in 0..trials {
        let mut rng = Rng64::new(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
        let mut process = BatchedBallsBins::new(n, lambda);
        for (i, m) in process.run(rounds, &mut rng).into_iter().enumerate() {
            acc[i] += m as f64;
        }
    }
    acc.iter_mut().for_each(|v| *v /= trials as f64);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcritical_load_stays_bounded() {
        let mut rng = Rng64::new(1);
        let mut p = BatchedBallsBins::new(64, 0.5);
        let trace = p.run(2_000, &mut rng);
        // At λ=0.5 the queue must stay small — O(log n / log log n)-ish.
        let tail_max = trace[1_000..].iter().max().unwrap();
        assert!(*tail_max < 10, "tail max {tail_max}");
    }

    #[test]
    fn near_critical_load_grows() {
        // The paper's λ = 0.99: max queue grows over the first 1000 rounds.
        let early = average_max_load(64, 0.99, 100, 20, 7);
        let late = average_max_load(64, 0.99, 1_000, 20, 7);
        assert!(
            late[999] > early[99] * 1.5,
            "no growth: early {} late {}",
            early[99],
            late[999]
        );
    }

    #[test]
    fn more_ports_grow_faster() {
        // Fig. 17's message: larger n → faster-growing max queue.
        let small = average_max_load(4, 0.99, 1_000, 20, 3);
        let large = average_max_load(128, 0.99, 1_000, 20, 3);
        assert!(
            large[999] > small[999],
            "128 ports {} should exceed 4 ports {}",
            large[999],
            small[999]
        );
    }

    #[test]
    fn ball_conservation_per_step() {
        let mut rng = Rng64::new(5);
        let mut p = BatchedBallsBins::new(10, 1.0);
        for _ in 0..100 {
            let before = p.total();
            let nonempty = p.loads().iter().filter(|&&b| b > 0).count() as u64;
            p.step(&mut rng);
            // Exactly λn=10 arrive, `nonempty` depart.
            assert_eq!(p.total(), before - nonempty + 10);
        }
    }

    #[test]
    fn batch_size_long_run_average() {
        let mut rng = Rng64::new(9);
        let p = BatchedBallsBins::new(10, 0.55);
        let total: usize = (0..10_000).map(|_| p.batch_size(&mut rng)).sum();
        let avg = total as f64 / 10_000.0;
        assert!((avg - 5.5).abs() < 0.1, "avg batch {avg}");
    }
}
