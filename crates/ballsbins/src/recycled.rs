//! The recycled balls-into-bins model of REPS (§5.1, Theorem 5.1).
//!
//! `b·n` colors cycle round-robin in batches of `n`. When a bin serves a
//! ball, the ball's color *remembers* the bin if the bin's load is at most
//! the threshold `τ` (unless it already remembers one) and *forgets* it if
//! the load exceeds `τ`. Thrown colors go to their remembered bin, or
//! uniformly at random if they remember none. Theorem 5.1: for `τ ≥ 4 ln n`
//! and `b ≥ 2.4 ln n` the process converges to all-bins-below-`τ` in
//! `O(n log n)` rounds with `O(log n)` maximum load throughout.
//!
//! The coalesced variant (Appendix C.1, Fig. 20) updates color memory only
//! on every `k`-th service, modelling ACK coalescing: unacknowledged
//! entropies are simply never recycled.

use std::collections::VecDeque;

use netsim::rng::Rng64;

/// The recycled-color process.
#[derive(Debug, Clone)]
pub struct RecycledBallsBins {
    /// FIFO queues of colors per bin.
    bins: Vec<VecDeque<u32>>,
    /// Color memory: remembered bin per color.
    memory: Vec<Option<u32>>,
    /// Threshold τ.
    tau: u64,
    /// Next color batch start (round-robin over all colors).
    cursor: usize,
    /// Memory updates happen on every `coalesce`-th service (1 = always).
    coalesce: u32,
    /// Service counter for the coalescing rule.
    services: u64,
}

impl RecycledBallsBins {
    /// Creates the process with `n` bins, `b * n` colors and threshold `tau`.
    pub fn new(n: usize, b: usize, tau: u64) -> RecycledBallsBins {
        RecycledBallsBins::with_coalescing(n, b, tau, 1)
    }

    /// Creates the coalesced variant: memory updates every `k`-th service.
    pub fn with_coalescing(n: usize, b: usize, tau: u64, k: u32) -> RecycledBallsBins {
        assert!(n > 0 && b > 0);
        RecycledBallsBins {
            bins: vec![VecDeque::new(); n],
            memory: vec![None; n * b],
            tau,
            cursor: 0,
            coalesce: k.max(1),
            services: 0,
        }
    }

    /// Number of bins.
    pub fn n(&self) -> usize {
        self.bins.len()
    }

    /// Maximum bin load.
    pub fn max_load(&self) -> u64 {
        self.bins.iter().map(|b| b.len() as u64).max().unwrap_or(0)
    }

    /// Per-bin loads.
    pub fn loads(&self) -> Vec<u64> {
        self.bins.iter().map(|b| b.len() as u64).collect()
    }

    /// Fraction of colors that remember a bin.
    pub fn remembering_fraction(&self) -> f64 {
        let m = self.memory.iter().filter(|m| m.is_some()).count();
        m as f64 / self.memory.len() as f64
    }

    /// True when every bin is at or below τ and every color remembers.
    pub fn converged(&self) -> bool {
        self.bins.iter().all(|b| b.len() as u64 <= self.tau)
            && self.memory.iter().all(|m| m.is_some())
    }

    /// Advances one round: serve every non-empty bin (FIFO), then throw the
    /// next batch of `n` colors.
    pub fn step(&mut self, rng: &mut Rng64) {
        // Service phase.
        for i in 0..self.bins.len() {
            let Some(color) = self.bins[i].pop_front() else {
                continue;
            };
            self.services += 1;
            if !self.services.is_multiple_of(self.coalesce as u64) {
                // Coalesced away: the entropy is never echoed back, so it is
                // not re-cached — the color forgets (matches REPS, where a
                // consumed buffer slot is only re-validated by an ACK).
                self.memory[color as usize] = None;
                continue;
            }
            let load = self.bins[i].len() as u64;
            if load <= self.tau {
                if self.memory[color as usize].is_none() {
                    self.memory[color as usize] = Some(i as u32);
                }
            } else {
                self.memory[color as usize] = None;
            }
        }
        // Arrival phase: the next n colors in round-robin order.
        let n = self.bins.len();
        let colors = self.memory.len();
        for j in 0..n {
            let color = (self.cursor + j) % colors;
            let bin = match self.memory[color] {
                Some(b) => b as usize,
                None => rng.gen_range(n as u64) as usize,
            };
            self.bins[bin].push_back(color as u32);
        }
        self.cursor = (self.cursor + n) % colors;
    }

    /// Runs `rounds` steps, returning the max load after each.
    pub fn run(&mut self, rounds: usize, rng: &mut Rng64) -> Vec<u64> {
        (0..rounds)
            .map(|_| {
                self.step(rng);
                self.max_load()
            })
            .collect()
    }

    /// Steps until [`RecycledBallsBins::converged`] or `max_rounds`.
    ///
    /// Returns the number of rounds taken, or `None` on non-convergence.
    pub fn run_until_converged(&mut self, max_rounds: usize, rng: &mut Rng64) -> Option<usize> {
        for round in 0..max_rounds {
            self.step(rng);
            if self.converged() {
                return Some(round + 1);
            }
        }
        None
    }
}

/// Theorem 5.1's parameter recommendations for `n` bins.
pub fn theorem_parameters(n: usize) -> (usize, u64) {
    let ln_n = (n.max(2) as f64).ln();
    let b = (2.4 * ln_n).ceil() as usize;
    let tau = (4.0 * ln_n).ceil() as u64;
    (b.max(1), tau.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_bounded_at_full_injection() {
        // The headline contrast of §5.1: at λ = 1 OPS queues diverge while
        // recycling keeps them O(τ) forever. (The paper's figures stop at
        // 200–2000 rounds; we additionally check a 20k-round tail.)
        let n = 16;
        let (b, tau) = theorem_parameters(n);
        let mut rng = Rng64::new(1);
        let mut p = RecycledBallsBins::new(n, b, tau);
        let trace = p.run(20_000, &mut rng);
        let mid_max = *trace[5_000..10_000].iter().max().unwrap();
        let tail_max = *trace[15_000..].iter().max().unwrap();
        assert!(tail_max <= 4 * tau, "tail max {tail_max} vs tau {tau}");
        // No divergence: the tail is not materially above the middle.
        assert!(
            tail_max <= mid_max * 2,
            "queues still growing: mid {mid_max} tail {tail_max}"
        );
        let mut ops_rng = Rng64::new(1);
        let mut ops = crate::batched::BatchedBallsBins::new(n, 1.0);
        let ops_trace = ops.run(20_000, &mut ops_rng);
        assert!(
            *ops_trace.last().unwrap() > 4 * tail_max,
            "OPS should diverge well past recycled"
        );
    }

    #[test]
    fn stays_below_tau_after_convergence_small_case() {
        // The paper's Fig. 18 setting: n = 5.
        let n = 5;
        let (b, tau) = theorem_parameters(n);
        let mut rng = Rng64::new(2);
        let mut p = RecycledBallsBins::new(n, b, tau);
        p.run(2_000, &mut rng);
        let tail = p.run(500, &mut rng);
        assert!(
            tail.iter().all(|&m| m <= tau + 1),
            "queues exceed τ: {tail:?}"
        );
    }

    #[test]
    fn recycled_beats_oblivious_at_full_rate() {
        let n = 32;
        let (b, tau) = theorem_parameters(n);
        let mut rng1 = Rng64::new(3);
        let mut rng2 = Rng64::new(3);
        let mut rec = RecycledBallsBins::new(n, b, tau);
        let mut ops = crate::batched::BatchedBallsBins::new(n, 1.0);
        let rec_trace = rec.run(3_000, &mut rng1);
        let ops_trace = ops.run(3_000, &mut rng2);
        let rec_tail: u64 = rec_trace[2_500..].iter().sum();
        let ops_tail: u64 = ops_trace[2_500..].iter().sum();
        assert!(
            rec_tail * 2 < ops_tail,
            "recycled tail {rec_tail} not well below OPS tail {ops_tail}"
        );
    }

    #[test]
    fn memory_forms_within_paper_horizon() {
        // Within Fig. 18's horizon most colors have locked onto a bin.
        let n = 16;
        let (b, tau) = theorem_parameters(n);
        let mut rng = Rng64::new(4);
        let mut p = RecycledBallsBins::new(n, b, tau);
        p.run(5, &mut rng);
        let early = p.remembering_fraction();
        p.run(195, &mut rng);
        let at200 = p.remembering_fraction();
        assert!(
            at200 > early && at200 > 0.6,
            "memory did not form: {early} -> {at200}"
        );
    }

    #[test]
    fn coalescing_degrades_gracefully() {
        // Fig. 20 (2000-round horizon): light coalescing stays near τ;
        // even 8:1 remains advantageous over OPS.
        let n = 16;
        let (b, tau) = theorem_parameters(n);
        let mut tails = Vec::new();
        for k in [1u32, 2, 4, 8] {
            let mut rng = Rng64::new(5);
            let mut p = RecycledBallsBins::with_coalescing(n, b, tau, k);
            let trace = p.run(2_000, &mut rng);
            let tail = trace[1_500..].iter().sum::<u64>() as f64 / 500.0;
            tails.push(tail);
        }
        let mut ops_rng = Rng64::new(5);
        let mut ops = crate::batched::BatchedBallsBins::new(n, 1.0);
        let ops_trace = ops.run(2_000, &mut ops_rng);
        let ops_tail = ops_trace[1_500..].iter().sum::<u64>() as f64 / 500.0;
        // Heavier coalescing cannot beat per-ACK recycling.
        assert!(tails[0] <= tails[3] + 1.0, "tails {tails:?}");
        // Per-ACK recycling keeps queues near τ at this horizon.
        assert!(
            tails[0] <= 1.5 * tau as f64 + 2.0,
            "tails {tails:?} tau {tau}"
        );
        // Every coalescing ratio still beats oblivious spraying.
        for (i, t) in tails.iter().enumerate() {
            assert!(*t < ops_tail, "k-index {i}: {t} vs OPS {ops_tail}");
        }
    }

    #[test]
    fn theorem_parameters_scale_logarithmically() {
        let (b16, tau16) = theorem_parameters(16);
        let (b256, tau256) = theorem_parameters(256);
        assert!(b256 > b16 && tau256 > tau16);
        assert!(tau256 <= 2 * tau16, "log scaling, not linear");
    }
}
