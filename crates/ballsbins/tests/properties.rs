//! Property-based tests for the balls-into-bins models.

use proptest::prelude::*;

use ballsbins::batched::BatchedBallsBins;
use ballsbins::recycled::{theorem_parameters, RecycledBallsBins};
use netsim::rng::Rng64;

proptest! {
    /// Ball conservation in the batched model: each round removes one per
    /// non-empty bin and injects the batch.
    #[test]
    fn batched_conservation(
        n in 1usize..128,
        lambda in 0.1f64..1.0,
        rounds in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let mut p = BatchedBallsBins::new(n, lambda);
        for _ in 0..rounds {
            let before = p.total();
            let nonempty = p.loads().iter().filter(|&&b| b > 0).count() as u64;
            p.step(&mut rng);
            let after = p.total();
            // after = before - nonempty + batch, where batch ∈ {⌊λn⌋, ⌈λn⌉}.
            let batch = after + nonempty - before;
            let floor = (lambda * n as f64).floor() as u64;
            prop_assert!(batch == floor || batch == floor + 1,
                "batch {batch} outside {{{floor}, {}}}", floor + 1);
        }
    }

    /// The recycled model conserves color identity: the number of in-flight
    /// balls of any color never exceeds what round-robin injection allows,
    /// and bin loads always sum to the total thrown minus served.
    #[test]
    fn recycled_load_accounting(
        n in 2usize..64,
        rounds in 1usize..200,
        seed in any::<u64>(),
    ) {
        let (b, tau) = theorem_parameters(n);
        let mut rng = Rng64::new(seed);
        let mut p = RecycledBallsBins::new(n, b, tau);
        let mut thrown = 0u64;
        let mut served = 0u64;
        for _ in 0..rounds {
            let nonempty = p.loads().iter().filter(|&&l| l > 0).count() as u64;
            p.step(&mut rng);
            served += nonempty;
            thrown += n as u64;
            let total: u64 = p.loads().iter().sum();
            prop_assert_eq!(total, thrown - served, "load accounting broken");
        }
    }

    /// The remembering fraction is always a valid probability and the
    /// process never panics across parameter space (including coalescing).
    #[test]
    fn recycled_total_function(
        n in 1usize..48,
        b in 1usize..16,
        tau in 0u64..32,
        k in 1u32..10,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let mut p = RecycledBallsBins::with_coalescing(n, b, tau, k);
        for _ in 0..100 {
            p.step(&mut rng);
        }
        let f = p.remembering_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(p.max_load() <= 100 * n as u64);
    }

    /// Imbalance is non-negative and bounded by `ports - 1` (all balls in
    /// one bin).
    #[test]
    fn imbalance_bounds(
        ports in 1usize..64,
        evs_exp in 3u32..12,
        flows in 1u32..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let v = ballsbins::imbalance::trial_imbalance(ports, 1 << evs_exp, flows, &mut rng);
        prop_assert!(v >= -1e-9, "negative imbalance {v}");
        prop_assert!(v <= ports as f64 - 1.0 + 1e-9, "imbalance {v} above bound");
    }
}
