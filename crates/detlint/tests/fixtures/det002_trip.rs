//! DET002 seeded violation: wall-clock reads outside the allowlist.
//! Linted under the virtual path `crates/sweep/src/fixture.rs`.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub fn jittered_seed() -> u64 {
    // A wall-clock-derived seed: the canonical DET002 disaster.
    let t = Instant::now();
    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;
    epoch ^ t.elapsed().as_nanos() as u64
}
