//! SAFE001 clean file: every unsafe block/impl carries its argument.

pub fn first_byte(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}

pub struct Wrapper(u64);

// SAFETY: Wrapper is a plain u64 with no thread-affine state; sending it
// across threads cannot violate any invariant.
// (A second comment line between the SAFETY line and the impl is fine.)
unsafe impl Send for Wrapper {}

/// An `unsafe fn` *declaration* is not flagged — its obligations are
/// discharged at call sites, which need their own unsafe blocks.
///
/// # Safety
///
/// `i` must be in bounds for `xs`.
pub unsafe fn get_at(xs: &[u8], i: usize) -> u8 {
    // SAFETY: the function's contract puts `i` in bounds.
    unsafe { *xs.get_unchecked(i) }
}
