//! DET003 clean file: ordinary integer `as usize` casts must not fire.

pub fn widen(n: u32, k: u16) -> usize {
    let a = n as usize;
    let b = k as usize;
    a + b
}

pub fn index(mask: u64, cur: u64) -> usize {
    (cur & mask) as usize
}
