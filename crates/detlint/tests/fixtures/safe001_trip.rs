//! SAFE001 seeded violation: undocumented unsafe.

pub fn first_byte(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}

pub struct Wrapper(u64);

unsafe impl Send for Wrapper {}
