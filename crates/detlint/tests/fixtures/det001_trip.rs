//! DET001 seeded violation: RandomState maps in a simulation crate.
//! Linted under the virtual path `crates/netsim/src/fixture.rs`.

use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u64]) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    // Iteration order reaches the return value — the PR 1 bug class.
    counts.into_iter().map(|(_, c)| c as usize).sum::<usize>() + seen.len()
}
