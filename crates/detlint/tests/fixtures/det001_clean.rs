//! DET001 clean file: deterministic maps only, plus the words the rule
//! must NOT fire on — `HashMap` in comments and string literals, and a
//! pragma-annotated alias. Linted under `crates/netsim/src/fixture.rs`.

use std::collections::BTreeMap;

// A doc mention of HashMap iteration order must not trip the lexer-aware
// rule, and neither must the string below.
pub const NOTE: &str = "HashMap and HashSet are banned here";

// detlint: allow(DET001) — fixture alias standing in for netsim::hash's own
pub type FxishMap<K, V> = std::collections::HashMap<K, V>;

pub fn tally(xs: &[u64]) -> usize {
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.len()
}
