//! DET002 clean file: a pragma-annotated perf measurement, and `Instant`
//! used as a type (no `::now`) — neither may fire.
//! Linted under the virtual path `crates/sweep/src/fixture.rs`.

use std::time::Instant;

pub fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}

pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    // detlint: allow(DET002) — wall-clock perf measurement; never reaches result bytes
    let start = Instant::now();
    let out = f();
    (out, elapsed_ns(start))
}
