//! DET004 seeded violation: float arithmetic where keys/seeds are made.
//! Linted under the virtual path `crates/netsim/src/hash.rs` (a
//! whole-file seed-derivation scope).

pub fn wobbly_select(h: u64, n: usize) -> usize {
    // Rounding-dependent port choice: varies by platform and opt level.
    let frac = (h as f64) / (u64::MAX as f64);
    (frac * n as f64) as usize
}
