//! DET004 clean file: integer-only derivation, with floats confined to
//! the `#[cfg(test)]` module (statistical assertions are exactly where
//! floats belong). Linted under `crates/netsim/src/hash.rs`.

pub fn select(h: u64, n: usize) -> usize {
    ((h as u128 * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roughly_uniform() {
        let mut counts = vec![0u32; 8];
        for h in 0..100_000u64 {
            counts[select(h.wrapping_mul(0x9E37_79B9_7F4A_7C15), 8)] += 1;
        }
        let expected = 100_000.0 / 8.0;
        for &c in &counts {
            assert!(((c as f64) - expected).abs() / expected < 0.05);
        }
    }
}
