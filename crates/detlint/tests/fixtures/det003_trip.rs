//! DET003 seeded violation: addresses becoming values.

pub fn addr_as_key(xs: &[u64]) -> usize {
    // An ASLR-dependent "hash": different every process.
    xs.as_ptr() as usize
}

pub fn ref_addr(x: &u64) -> usize {
    x as *const u64 as usize
}
