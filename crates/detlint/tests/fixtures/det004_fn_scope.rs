//! DET004 function-level scoping: linted under the virtual path
//! `crates/sweep/src/matrix.rs`, where only `key`/`scenario`/
//! `derived_seed`/`fnv1a64` bodies are seed scopes. The float inside
//! `key` must fire; the float in `load_factor` must not.

pub struct Cell {
    pub load: f32,
    pub seed: u32,
}

impl Cell {
    pub fn key(&self) -> String {
        // VIOLATION: a float formatted into the cell key.
        format!("cell/load={:.2}/s={}", self.load * 1.5, self.seed)
    }
}

pub fn load_factor(cells: &[Cell]) -> f64 {
    // Fine: report-side aggregation, not a key scope.
    cells.iter().map(|c| c.load as f64).sum::<f64>() / cells.len() as f64
}
