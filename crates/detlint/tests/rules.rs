//! detlint's own coverage: per-rule fixture pairs (a seeded violation
//! that must trip, a clean file that must pass), lexer round-trips, the
//! pragma grammar, and — the one that keeps CI and `cargo test` in
//! agreement — a live workspace-clean check.

use std::path::Path;

use detlint::lexer::{lex, TokKind};
use detlint::rules::{lint_source, Rule};
use detlint::walk::{lint_workspace, rust_sources};

/// Codes of the findings `src` produces when linted under `path`.
fn codes(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src)
        .into_iter()
        .map(|f| f.rule.code())
        .collect()
}

fn assert_trips(path: &str, src: &str, rule: Rule, at_least: usize) {
    let hits = codes(path, src)
        .iter()
        .filter(|c| **c == rule.code())
        .count();
    assert!(
        hits >= at_least,
        "{path}: expected >= {at_least} {} findings, got {:?}",
        rule.code(),
        codes(path, src)
    );
}

fn assert_clean(path: &str, src: &str) {
    assert_eq!(
        codes(path, src),
        Vec::<&str>::new(),
        "{path}: expected no findings"
    );
}

// ---------------------------------------------------------------- DET001

#[test]
fn det001_fires_on_randomstate_maps_in_sim_crates() {
    let src = include_str!("fixtures/det001_trip.rs");
    // Two type mentions + two constructions of each map kind.
    assert_trips("crates/netsim/src/fixture.rs", src, Rule::Det001, 4);
    assert_trips("crates/sweep/tests/fixture.rs", src, Rule::Det001, 4);
}

#[test]
fn det001_ignores_clean_files_comments_strings_and_other_crates() {
    let trip = include_str!("fixtures/det001_trip.rs");
    let clean = include_str!("fixtures/det001_clean.rs");
    assert_clean("crates/netsim/src/fixture.rs", clean);
    // Outside the simulation crates the rule does not apply at all.
    assert_clean("crates/harness/src/fixture.rs", trip);
    assert_clean("crates/workloads/src/fixture.rs", trip);
}

// ---------------------------------------------------------------- DET002

#[test]
fn det002_fires_on_wall_clock_reads() {
    let src = include_str!("fixtures/det002_trip.rs");
    // Instant::now + two SystemTime mentions (import + ::now).
    assert_trips("crates/sweep/src/fixture.rs", src, Rule::Det002, 2);
    // DET002 is workspace-wide, not just simulation crates.
    assert_trips("crates/harness/src/fixture.rs", src, Rule::Det002, 2);
}

#[test]
fn det002_allows_tinybench_and_pragmad_sites() {
    let trip = include_str!("fixtures/det002_trip.rs");
    let clean = include_str!("fixtures/det002_clean.rs");
    assert_clean("crates/tinybench/src/fixture.rs", trip);
    assert_clean("crates/sweep/src/fixture.rs", clean);
}

// ---------------------------------------------------------------- DET003

#[test]
fn det003_fires_on_pointer_to_usize_casts() {
    let src = include_str!("fixtures/det003_trip.rs");
    assert_trips("crates/netsim/src/fixture.rs", src, Rule::Det003, 2);
    // Address-as-value is banned everywhere, not only sim crates.
    assert_trips("crates/harness/src/fixture.rs", src, Rule::Det003, 2);
}

#[test]
fn det003_ignores_integer_widening_casts() {
    let clean = include_str!("fixtures/det003_clean.rs");
    assert_clean("crates/netsim/src/fixture.rs", clean);
}

// ---------------------------------------------------------------- DET004

#[test]
fn det004_fires_on_floats_in_seed_scopes() {
    let src = include_str!("fixtures/det004_trip.rs");
    assert_trips("crates/netsim/src/hash.rs", src, Rule::Det004, 3);
    assert_trips("crates/sweep/src/shard.rs", src, Rule::Det004, 3);
    // The same code under an unscoped path is fine.
    assert_clean("crates/netsim/src/stats.rs", src);
}

#[test]
fn det004_spares_cfg_test_modules_and_unscoped_functions() {
    let clean = include_str!("fixtures/det004_clean.rs");
    assert_clean("crates/netsim/src/hash.rs", clean);
    let fn_scope = include_str!("fixtures/det004_fn_scope.rs");
    // Exactly the float inside `fn key` — not the struct field type or
    // the report-side aggregation.
    let findings = lint_source("crates/sweep/src/matrix.rs", fn_scope);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Det004);
    assert!(fn_scope
        .lines()
        .nth(findings[0].line as usize - 1)
        .unwrap()
        .contains("1.5"));
}

// --------------------------------------------------------------- SAFE001

#[test]
fn safe001_fires_on_undocumented_unsafe() {
    let src = include_str!("fixtures/safe001_trip.rs");
    // One block + one impl.
    assert_trips("crates/netsim/src/fixture.rs", src, Rule::Safe001, 2);
    assert_trips("src/fixture.rs", src, Rule::Safe001, 2);
}

#[test]
fn safe001_accepts_adjacent_safety_comments() {
    let clean = include_str!("fixtures/safe001_clean.rs");
    assert_clean("crates/netsim/src/fixture.rs", clean);
}

#[test]
fn safe001_requires_adjacency() {
    // A blank line between the SAFETY comment and the unsafe breaks the
    // association: the argument must sit on the code it justifies.
    let src = "// SAFETY: stale, far away\n\nfn f(xs: &[u8]) -> u8 {\n    \
               unsafe { *xs.get_unchecked(0) }\n}\n";
    assert_trips("src/fixture.rs", src, Rule::Safe001, 1);
}

// ---------------------------------------------------------------- pragmas

#[test]
fn pragma_suppresses_only_its_rule_and_line() {
    let src = "use std::collections::HashMap;\n\
               // detlint: allow(DET001) — fixture exemption\n\
               fn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    let found = codes("crates/netsim/src/fixture.rs", src);
    // Line 1 (the import) and line 4 (the construction) still fire; only
    // line 3 is covered.
    assert_eq!(found, vec!["DET001", "DET001"], "{found:?}");
}

#[test]
fn pragma_with_unknown_rule_or_missing_reason_is_a_finding() {
    let unknown = "// detlint: allow(DET999) — whatever\nfn f() {}\n";
    assert_trips("src/fixture.rs", unknown, Rule::Pragma001, 1);
    let unreasoned = "// detlint: allow(DET001)\nfn f() {}\n";
    assert_trips("src/fixture.rs", unreasoned, Rule::Pragma001, 1);
    let fine = "// detlint: allow(DET001) — a justified exemption\nfn f() {}\n";
    assert_clean("src/fixture.rs", fine);
}

#[test]
fn pragma_accepts_plain_dash_and_rule_lists() {
    let src = "// detlint: allow(DET001,DET002) - both justified here\n\
               fn f(m: HashMap<u32, u32>) -> HashMap<u32, u32> { m }\n";
    // Both HashMap mentions share the pragma'd line.
    assert_clean("crates/netsim/src/fixture.rs", src);
}

// ------------------------------------------------------------------ lexer

#[test]
fn lexer_round_trips_every_fixture_and_this_file() {
    let sources: &[&str] = &[
        include_str!("fixtures/det001_trip.rs"),
        include_str!("fixtures/det001_clean.rs"),
        include_str!("fixtures/det002_trip.rs"),
        include_str!("fixtures/det002_clean.rs"),
        include_str!("fixtures/det003_trip.rs"),
        include_str!("fixtures/det003_clean.rs"),
        include_str!("fixtures/det004_trip.rs"),
        include_str!("fixtures/det004_clean.rs"),
        include_str!("fixtures/det004_fn_scope.rs"),
        include_str!("fixtures/safe001_trip.rs"),
        include_str!("fixtures/safe001_clean.rs"),
        include_str!("rules.rs"),
    ];
    for src in sources {
        let rebuilt: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(&rebuilt, src, "lexer must be lossless");
    }
}

#[test]
fn lexer_round_trips_the_whole_workspace() {
    let root = workspace_root();
    for (rel, abs) in rust_sources(&root).expect("walk") {
        let src = std::fs::read_to_string(&abs).expect("read");
        let rebuilt: String = lex(&src).iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless on {rel}");
    }
}

#[test]
fn lexer_classifies_the_tricky_cases() {
    let kinds = |src: &str| -> Vec<TokKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    };
    // A string containing HashMap is a Str, not an Ident.
    assert_eq!(kinds(r#""HashMap""#), vec![TokKind::Str]);
    assert_eq!(kinds(r##"r#"raw HashMap"#"##), vec![TokKind::Str]);
    assert_eq!(kinds("// HashMap"), vec![TokKind::LineComment]);
    assert_eq!(
        kinds("/* nested /* HashMap */ */"),
        vec![TokKind::BlockComment]
    );
    // Char literal vs lifetime.
    assert_eq!(kinds("'a'"), vec![TokKind::Char]);
    assert_eq!(kinds("'\\n'"), vec![TokKind::Char]);
    assert_eq!(
        kinds("&'a str"),
        vec![TokKind::Punct, TokKind::Lifetime, TokKind::Ident]
    );
    // Float vs int vs range.
    assert_eq!(kinds("1.5"), vec![TokKind::Float]);
    assert_eq!(kinds("1e9"), vec![TokKind::Float]);
    assert_eq!(kinds("3f64"), vec![TokKind::Float]);
    assert_eq!(kinds("0x1f"), vec![TokKind::Int]);
    assert_eq!(
        kinds("1..5"),
        vec![TokKind::Int, TokKind::Punct, TokKind::Punct, TokKind::Int]
    );
    // Raw identifier.
    assert_eq!(kinds("r#type"), vec![TokKind::Ident]);
}

// ------------------------------------------------------- the live workspace

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// The acceptance-criterion test: the real workspace is clean, so the CI
/// `cargo run -p detlint -- --check` gate and `cargo test` agree.
#[test]
fn the_live_workspace_is_clean() {
    let findings = lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The walker must actually be walking: if it ever silently returned an
/// empty file set, `the_live_workspace_is_clean` would vacuously pass.
#[test]
fn the_walker_sees_the_whole_workspace() {
    let files = rust_sources(&workspace_root()).expect("walk");
    assert!(
        files.len() > 100,
        "expected >100 workspace sources, saw {}",
        files.len()
    );
    let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
    for expected in [
        "crates/netsim/src/engine.rs",
        "crates/sweep/src/matrix.rs",
        "crates/detlint/src/rules.rs",
        "src/lib.rs",
    ] {
        assert!(rels.contains(&expected), "walker missed {expected}");
    }
    // The seeded-violation fixtures must stay excluded.
    assert!(
        rels.iter().all(|r| !r.contains("tests/fixtures")),
        "fixtures must not be linted as workspace sources"
    );
}
