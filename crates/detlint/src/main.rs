//! The `detlint` CLI. See the library docs for the rule catalogue.
//!
//! ```text
//! cargo run -p detlint -- --check            # lint the workspace, exit 1 on findings
//! cargo run -p detlint -- --check --root DIR # lint another tree
//! cargo run -p detlint -- --list-rules       # print the rule catalogue
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::rules::Rule;
use detlint::walk::lint_workspace;

fn usage() -> &'static str {
    "usage: detlint [--check] [--root DIR] [--list-rules]\n\
     \n\
     Lints every .rs file under DIR (default: the current directory) against\n\
     the repo determinism-and-safety rules. Exits 1 when any finding remains,\n\
     2 on usage or I/O errors."
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Linting is the only mode; --check names it for CI clarity.
            "--check" => {}
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if list_rules {
        for rule in Rule::ALL {
            println!("{}: {}", rule.code(), rule.explain());
        }
        return ExitCode::SUCCESS;
    }
    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("detlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "detlint: {} finding(s); suppress only with `// detlint: allow(RULE) — reason`",
            findings.len()
        );
        ExitCode::FAILURE
    }
}
