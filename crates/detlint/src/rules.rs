//! The determinism-and-safety rules, their scopes, and the pragma engine.
//!
//! Every rule here exists because a real bug class shipped (or nearly
//! shipped) in this repo — see the crate docs for the catalogue. Rules
//! operate on the lossless token stream from [`crate::lexer`], so a
//! `HashMap` in a doc comment or a string literal never fires.
//!
//! # Suppression pragmas
//!
//! A finding is suppressible **only** via an inline pragma:
//!
//! ```text
//! // detlint: allow(DET001) — reason the exemption is sound
//! ```
//!
//! A pragma is a *plain* comment (`//` or `/* */`, never a doc comment)
//! whose text begins with `detlint:`. It covers the line it shares with
//! code, or — when it stands on its own line — the next line that
//! contains code. Multiple rules may be listed (`allow(DET001,DET002)`).
//! The reason is mandatory and the rule names must be real: a malformed
//! pragma is itself a finding ([`Rule::Pragma001`]), so a typo can never
//! silently disable a rule.

use crate::lexer::{lex, TokKind, Token};

/// The rule catalogue. See each variant's doc and [`Rule::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::collections::HashMap`/`HashSet` in simulation crates.
    Det001,
    /// Wall-clock reads (`Instant::now`, `SystemTime`) outside the
    /// perf-measurement allowlist.
    Det002,
    /// Pointer-to-`usize` casts (address-as-value).
    Det003,
    /// Float arithmetic inside cell-key / seed-derivation scopes.
    Det004,
    /// An `unsafe` block or impl without a `// SAFETY:` comment.
    Safe001,
    /// A malformed `detlint:` pragma (unknown rule or missing reason).
    Pragma001,
}

impl Rule {
    /// The stable code used in output and pragmas.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Det001 => "DET001",
            Rule::Det002 => "DET002",
            Rule::Det003 => "DET003",
            Rule::Det004 => "DET004",
            Rule::Safe001 => "SAFE001",
            Rule::Pragma001 => "PRAGMA001",
        }
    }

    /// Parses a pragma rule name.
    pub fn from_code(s: &str) -> Option<Rule> {
        Some(match s {
            "DET001" => Rule::Det001,
            "DET002" => Rule::Det002,
            "DET003" => Rule::Det003,
            "DET004" => Rule::Det004,
            "SAFE001" => Rule::Safe001,
            _ => return None,
        })
    }

    /// One-line rationale, printed by `--list-rules`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Det001 => {
                "RandomState HashMap/HashSet in a simulation crate: iteration order varies \
                 per process, which shipped three cross-process nondeterminism bugs in PR 1 \
                 (RTO sweeps, retransmit queues, ACK flushes). Use netsim::hash::FxHashMap \
                 for hot paths or BTreeMap/BTreeSet where order reaches output."
            }
            Rule::Det002 => {
                "Wall-clock read outside the perf-measurement allowlist: results derived \
                 from Instant/SystemTime differ run-to-run, breaking byte-identical JSONL \
                 across --threads/--shard splits."
            }
            Rule::Det003 => {
                "Pointer cast to usize: addresses differ per process (ASLR), so any value \
                 derived from one — a hash, a sort key, a cache address — is nondeterministic."
            }
            Rule::Det004 => {
                "Float arithmetic in a cell-key or seed-derivation scope: rounding is \
                 platform/opt-level sensitive, and cell keys, derived seeds, shard \
                 membership and cache addresses must be exact integer/string functions."
            }
            Rule::Safe001 => {
                "unsafe block or impl without an immediately preceding `// SAFETY:` comment \
                 stating the invariant that makes it sound."
            }
            Rule::Pragma001 => {
                "Malformed `detlint:` pragma — unknown rule name or missing reason. Every \
                 exemption must name a real rule and justify itself."
            }
        }
    }

    /// All suppressible rules, for `--list-rules`.
    pub const ALL: [Rule; 5] = [
        Rule::Det001,
        Rule::Det002,
        Rule::Det003,
        Rule::Det004,
        Rule::Safe001,
    ];
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable detail.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path,
            self.line,
            self.col,
            self.rule.code(),
            self.msg
        )
    }
}

/// Crates whose sources (including tests) fall under DET001: these feed
/// simulation state or sweep output, where iteration order can reach
/// bytes-on-disk or RNG draws.
const DET001_CRATES: [&str; 5] = [
    "crates/netsim/",
    "crates/transport/",
    "crates/core/",
    "crates/baselines/",
    "crates/sweep/",
];

/// Paths allowed to read wall clocks without a pragma: the whole purpose
/// of these files is measuring wall time.
const DET002_ALLOW: [&str; 1] = ["crates/tinybench/"];

/// Files whose *entire* non-test code is a seed-derivation scope (DET004).
const DET004_FILES: [&str; 2] = ["crates/netsim/src/hash.rs", "crates/sweep/src/shard.rs"];

/// (file, function names) pairs where only the named function bodies are
/// cell-key/seed scopes — `matrix.rs` legitimately uses floats elsewhere
/// (load factors, report aggregation).
const DET004_FNS: [(&str, &[&str]); 1] = [(
    "crates/sweep/src/matrix.rs",
    &["key", "scenario", "derived_seed", "fnv1a64"],
)];

/// Lints one source file. `path` must be workspace-relative with forward
/// slashes — rule scoping keys off it.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let code: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let mut findings = Vec::new();
    let pragmas = collect_pragmas(path, &tokens, &code, &mut findings);
    let test_regions = cfg_test_regions(&code);
    let fn_spans = fn_body_spans(&code);

    det001(path, &code, &mut findings);
    det002(path, &code, &mut findings);
    det003(path, &code, &mut findings);
    det004(path, &code, &test_regions, &fn_spans, &mut findings);
    safe001(path, &tokens, &code, &mut findings);

    findings.retain(|f| {
        f.rule == Rule::Pragma001
            || !pragmas
                .iter()
                .any(|p| p.rule == f.rule && p.target_line == f.line)
    });
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// A parsed, well-formed suppression pragma.
struct Pragma {
    rule: Rule,
    target_line: u32,
}

/// Extracts pragmas from comment tokens; malformed ones become
/// [`Rule::Pragma001`] findings.
fn collect_pragmas(
    path: &str,
    tokens: &[Token<'_>],
    code: &[&Token<'_>],
    findings: &mut Vec<Finding>,
) -> Vec<Pragma> {
    let mut out = Vec::new();
    for t in tokens {
        // A pragma is a *plain* comment whose text begins with `detlint:`
        // — doc comments (`///`, `//!`, `/**`, `/*!`) are prose and may
        // mention the pragma grammar without being pragmas.
        let body = match t.kind {
            TokKind::LineComment => {
                let b = &t.text[2..];
                if b.starts_with('/') || b.starts_with('!') {
                    continue;
                }
                b
            }
            TokKind::BlockComment => {
                let b = &t.text[2..];
                if b.starts_with('*') || b.starts_with('!') {
                    continue;
                }
                b.strip_suffix("*/").unwrap_or(b)
            }
            _ => continue,
        };
        let Some(rest) = body.trim_start().strip_prefix("detlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        // The pragma covers its own line when code shares it, otherwise
        // the next line that contains code.
        let target_line = code
            .iter()
            .find(|c| c.line == t.line && c.col < t.col)
            .map(|c| c.line)
            .or_else(|| code.iter().find(|c| c.line > t.end_line()).map(|c| c.line))
            .unwrap_or(t.line);
        match parse_pragma(rest) {
            Ok(rules) => {
                for rule in rules {
                    out.push(Pragma { rule, target_line });
                }
            }
            Err(why) => findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::Pragma001,
                msg: why,
            }),
        }
    }
    out
}

/// Parses `allow(RULE[,RULE...]) — reason` (the text after `detlint:`).
fn parse_pragma(rest: &str) -> Result<Vec<Rule>, String> {
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(RULE) — reason` after `detlint:`, got {:?}",
            rest.chars().take(40).collect::<String>()
        ));
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(` in pragma".to_string());
    };
    let mut rules = Vec::new();
    for name in args[..close].split(',') {
        let name = name.trim();
        match Rule::from_code(name) {
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule {name:?} in pragma")),
        }
    }
    if rules.is_empty() {
        return Err("empty rule list in pragma".to_string());
    }
    // The reason: anything non-empty after a `—`/`--`/`-`/`:` separator.
    let after = args[close + 1..].trim_start();
    let reason = after
        .strip_prefix('\u{2014}')
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix('-'))
        .or_else(|| after.strip_prefix(':'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(
            "pragma needs a reason: `detlint: allow(RULE) — why this exemption is sound`"
                .to_string(),
        );
    }
    Ok(rules)
}

/// Token-index ranges (into the code-token list) covered by
/// `#[cfg(test)] mod ... { ... }` blocks.
fn cfg_test_regions(code: &[&Token<'_>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let is_attr = code[i].text == "#"
            && code[i + 1].text == "["
            && code[i + 2].text == "cfg"
            && code[i + 3].text == "("
            && code[i + 4].text == "test"
            && code[i + 5].text == ")"
            && code[i + 6].text == "]";
        if !is_attr {
            i += 1;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = i + 7;
        while j < code.len() && code[j].text == "#" {
            let mut depth = 0i32;
            j += 1;
            while j < code.len() {
                match code[j].text {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if code.get(j).map(|t| t.text) == Some("mod") {
            if let Some(open) = code[j..].iter().position(|t| t.text == "{") {
                let open = j + open;
                let close = matching_brace(code, open);
                out.push((open, close));
                i = open + 1;
                continue;
            }
        }
        i = j;
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(code: &[&Token<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// `(name, body_open, body_close)` spans for every `fn` item, by
/// code-token index. Closures stay attributed to their enclosing fn.
fn fn_body_spans(code: &[&Token<'_>]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].text != "fn" || code[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = code[i + 1].text.to_string();
        // The body `{` is the first brace at zero paren/bracket depth;
        // a `;` there instead means a bodyless trait/extern decl.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut open = None;
        while j < code.len() {
            match code[j].text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = open {
            out.push((name, open, matching_brace(code, open)));
            i = open + 1;
        } else {
            i = j + 1;
        }
    }
    out
}

/// DET001: `HashMap`/`HashSet` identifiers in simulation crates.
fn det001(path: &str, code: &[&Token<'_>], findings: &mut Vec<Finding>) {
    if !DET001_CRATES.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for t in code {
        if t.kind == TokKind::Ident && matches!(t.text, "HashMap" | "HashSet") {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::Det001,
                msg: format!(
                    "{} in a simulation crate: RandomState iteration order is \
                     per-process; use netsim::hash::FxHashMap or BTreeMap/BTreeSet",
                    t.text
                ),
            });
        }
    }
}

/// DET002: `Instant::now` / `SystemTime` outside the allowlist.
fn det002(path: &str, code: &[&Token<'_>], findings: &mut Vec<Finding>) {
    if DET002_ALLOW.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let wall = match t.text {
            "SystemTime" => true,
            "Instant" => {
                code.get(i + 1).map(|t| t.text) == Some(":")
                    && code.get(i + 2).map(|t| t.text) == Some(":")
                    && code.get(i + 3).map(|t| t.text) == Some("now")
            }
            _ => false,
        };
        if wall {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::Det002,
                msg: format!(
                    "wall-clock read ({}) outside the perf-measurement allowlist",
                    if t.text == "SystemTime" {
                        "SystemTime"
                    } else {
                        "Instant::now"
                    }
                ),
            });
        }
    }
}

/// How many tokens DET003 looks back from an `as usize` for pointer
/// provenance; `;`/`{`/`}` stop the scan earlier.
const DET003_LOOKBACK: usize = 16;

/// DET003: `as usize` applied to a pointer.
fn det003(path: &str, code: &[&Token<'_>], findings: &mut Vec<Finding>) {
    for i in 0..code.len().saturating_sub(1) {
        if code[i].text != "as" || code[i + 1].text != "usize" {
            continue;
        }
        let start = i.saturating_sub(DET003_LOOKBACK);
        let mut pointerish = false;
        for j in (start..i).rev() {
            match code[j].text {
                ";" | "{" | "}" => break,
                "as_ptr" | "as_mut_ptr" | "addr_of" | "addr_of_mut" => {
                    pointerish = true;
                    break;
                }
                "as" if code.get(j + 1).map(|t| t.text) == Some("*")
                    && matches!(code.get(j + 2).map(|t| t.text), Some("const") | Some("mut")) =>
                {
                    pointerish = true;
                    break;
                }
                _ => {}
            }
        }
        if pointerish {
            let t = code[i];
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::Det003,
                msg: "pointer cast to usize: addresses are per-process (ASLR) and must \
                      never become values"
                    .to_string(),
            });
        }
    }
}

/// DET004: floats inside cell-key/seed-derivation scopes.
fn det004(
    path: &str,
    code: &[&Token<'_>],
    test_regions: &[(usize, usize)],
    fn_spans: &[(String, usize, usize)],
    findings: &mut Vec<Finding>,
) {
    let whole_file = DET004_FILES.contains(&path);
    let scoped_fns: Option<&[&str]> = DET004_FNS
        .iter()
        .find(|(p, _)| *p == path)
        .map(|(_, fns)| *fns);
    if !whole_file && scoped_fns.is_none() {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        let floaty = t.kind == TokKind::Float
            || (t.kind == TokKind::Ident && matches!(t.text, "f32" | "f64"));
        if !floaty {
            continue;
        }
        let in_test = test_regions.iter().any(|&(a, b)| a <= i && i <= b);
        let in_scope = (whole_file && !in_test)
            || scoped_fns.is_some_and(|fns| {
                fn_spans
                    .iter()
                    .any(|(name, a, b)| *a <= i && i <= *b && fns.contains(&name.as_str()))
            });
        if in_scope {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::Det004,
                msg: format!(
                    "float ({}) in a cell-key/seed-derivation scope: keys, seeds, shard \
                     membership and cache addresses must be exact integer functions",
                    t.text
                ),
            });
        }
    }
}

/// SAFE001: `unsafe` blocks/impls need an adjacent `// SAFETY:` comment.
fn safe001(path: &str, tokens: &[Token<'_>], code: &[&Token<'_>], findings: &mut Vec<Finding>) {
    // Line classification: lines holding code, and lines covered by a
    // comment whose text contains `SAFETY:`.
    let mut code_lines = std::collections::BTreeSet::new();
    for t in code {
        for l in t.line..=t.end_line() {
            code_lines.insert(l);
        }
    }
    let mut comment_lines = std::collections::BTreeMap::new();
    for t in tokens {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            let has_safety = t.text.contains("SAFETY:");
            for l in t.line..=t.end_line() {
                let e = comment_lines.entry(l).or_insert(false);
                *e = *e || has_safety;
            }
        }
    }
    for (i, t) in code.iter().enumerate() {
        if t.text != "unsafe" {
            continue;
        }
        // Only blocks and impls; `unsafe fn`/`unsafe trait` declarations
        // are covered at their call/impl sites.
        let next = code.get(i + 1).map(|t| t.text);
        if next != Some("{") && next != Some("impl") {
            continue;
        }
        // Same-line comment (e.g. `let p = /* SAFETY: x */ unsafe {`)?
        let mut ok = comment_lines.get(&t.line).copied().unwrap_or(false);
        // Otherwise walk up through the contiguous comment block above.
        let mut l = t.line.saturating_sub(1);
        while !ok && l >= 1 {
            match comment_lines.get(&l) {
                Some(&has_safety) if !code_lines.contains(&l) => {
                    ok = has_safety;
                    if ok {
                        break;
                    }
                    l -= 1;
                }
                // A code line or a blank line breaks adjacency.
                _ => break,
            }
        }
        if !ok {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::Safe001,
                msg: "unsafe block/impl without an immediately preceding `// SAFETY:` \
                      comment stating why it is sound"
                    .to_string(),
            });
        }
    }
}
