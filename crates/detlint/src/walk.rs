//! Workspace traversal: every `.rs` file, deterministically ordered.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "bench-results"];

/// Path suffixes excluded from linting: the seeded-violation fixtures
/// exist to trip the rules.
const SKIP_SUFFIXES: [&str; 1] = ["crates/detlint/tests/fixtures"];

/// Collects every lintable `.rs` file under `root`, sorted by its
/// workspace-relative forward-slash path. Returns `(relative, absolute)`
/// pairs.
pub fn rust_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if SKIP_SUFFIXES.iter().any(|s| rel.contains(s)) {
                continue;
            }
            out.push((rel, path));
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every source under `root`, returning all findings in path order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<crate::rules::Finding>> {
    let mut findings = Vec::new();
    for (rel, abs) in rust_sources(root)? {
        let src = std::fs::read_to_string(&abs)?;
        findings.extend(crate::rules::lint_source(&rel, &src));
    }
    Ok(findings)
}
