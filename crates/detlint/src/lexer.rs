//! A hand-rolled Rust lexer — just enough fidelity for linting.
//!
//! The rules in [`crate::rules`] must never fire on the word `HashMap`
//! inside a doc comment or a string literal, so the lexer's one job is to
//! classify every byte of the source into the right token kind:
//! comments (line, nested block), string-likes (plain, raw `r#".."#`,
//! byte, C), char literals vs lifetimes, numbers (with float detection),
//! identifiers (including raw `r#ident`) and single-char punctuation.
//!
//! It is *lossless*: concatenating the `text` of every token reproduces
//! the input byte-for-byte (pinned by the round-trip tests in
//! `tests/rules.rs`), which is what makes the classification trustworthy
//! — nothing is ever silently skipped.

/// What a token is, at the granularity the lint rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Runs of whitespace (kept so the token stream is lossless).
    Whitespace,
    /// `// ...` including doc (`///`, `//!`) forms, without the newline.
    LineComment,
    /// `/* ... */`, nested; may span lines.
    BlockComment,
    /// Identifiers and keywords, including raw `r#ident` forms.
    Ident,
    /// `'a`, `'static`, `'_` — also loop labels.
    Lifetime,
    /// Integer literal (any base, with `_` separators and suffixes).
    Int,
    /// Float literal (`1.0`, `1e9`, `2.5e-3`, `1f64`, ...).
    Float,
    /// String-likes: `"..."`, `r"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: kind, exact source text, and 1-based position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokKind,
    /// The exact source slice (lossless).
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte on that line.
    pub col: u32,
}

impl Token<'_> {
    /// 1-based line of the token's *last* byte (block comments and
    /// string literals may span lines).
    pub fn end_line(&self) -> u32 {
        self.line + self.text.bytes().filter(|&b| b == b'\n').count() as u32
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next unread char.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += c.len_utf8() as u32;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Tokenizes `src` losslessly (see module docs).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while cur.pos < src.len() {
        let start = cur.pos;
        let (line, col) = (cur.line, cur.col);
        let kind = next_kind(&mut cur);
        out.push(Token {
            kind,
            text: &src[start..cur.pos],
            line,
            col,
        });
    }
    out
}

/// Consumes one token's worth of input and returns its kind.
fn next_kind(cur: &mut Cursor<'_>) -> TokKind {
    let c = cur.peek().expect("caller checked non-empty");
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return TokKind::Whitespace;
    }
    if c == '/' {
        match cur.peek_at(1) {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return TokKind::LineComment;
            }
            Some('*') => {
                block_comment(cur);
                return TokKind::BlockComment;
            }
            _ => {
                cur.bump();
                return TokKind::Punct;
            }
        }
    }
    // String-like prefixes must win over plain identifiers: `r"..."`,
    // `r#".."#`, `b"..."`, `br#".."#`, `b'x'`, `c"..."`, `cr#".."#`.
    if matches!(c, 'r' | 'b' | 'c') {
        if let Some(kind) = string_prefix(cur) {
            return kind;
        }
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    if c.is_ascii_digit() {
        return number(cur);
    }
    if c == '"' {
        cur.bump();
        plain_string_body(cur);
        return TokKind::Str;
    }
    if c == '\'' {
        return char_or_lifetime(cur);
    }
    cur.bump();
    TokKind::Punct
}

/// Consumes a nested block comment (lenient on EOF: an unterminated
/// comment swallows the rest of the file, which is what rustc does too
/// before erroring).
fn block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

/// Tries to lex a raw/byte/C string (or raw identifier) starting at an
/// `r`/`b`/`c` prefix. Returns `None` when it is just an identifier.
fn string_prefix(cur: &mut Cursor<'_>) -> Option<TokKind> {
    let c0 = cur.peek()?;
    // Longest first: two-char prefixes `br`/`cr` + raw body.
    let (skip, raw, body) = match (c0, cur.peek_at(1)) {
        ('b', Some('r')) | ('c', Some('r')) => match cur.peek_at(2) {
            Some('"') | Some('#') => (2, true, cur.peek_at(2)?),
            _ => return None,
        },
        ('r', Some(n @ ('"' | '#'))) => (1, true, n),
        ('b' | 'c', Some('"')) => (1, false, '"'),
        ('b', Some('\'')) => {
            cur.bump();
            cur.bump();
            char_body(cur);
            return Some(TokKind::Char);
        }
        _ => return None,
    };
    if raw && body == '#' {
        // Count the `#`s; `r#ident` (one hash, then ident-start) is a raw
        // identifier, not a string.
        let mut hashes = 0usize;
        while cur.peek_at(skip + hashes) == Some('#') {
            hashes += 1;
        }
        match cur.peek_at(skip + hashes) {
            Some('"') => {}
            Some(c) if hashes == 1 && is_ident_start(c) && c0 == 'r' => {
                cur.bump(); // 'r'
                cur.bump(); // '#'
                cur.eat_while(is_ident_continue);
                return Some(TokKind::Ident);
            }
            _ => return None,
        }
        for _ in 0..skip + hashes + 1 {
            cur.bump();
        }
        raw_string_body(cur, hashes);
        return Some(TokKind::Str);
    }
    for _ in 0..skip + 1 {
        cur.bump();
    }
    if raw {
        raw_string_body(cur, 0);
    } else {
        plain_string_body(cur);
    }
    Some(TokKind::Str)
}

/// Consumes an escaped string body after the opening quote.
fn plain_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string body after `r##"`, expecting `"##` with
/// `hashes` hash marks to close.
fn raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
        }
    }
}

/// Consumes a char-literal body after the opening `'`.
fn char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'x'` / `'\n'` (char literals) from `'a` / `'static`
/// (lifetimes): a lifetime is `'` + ident with no closing quote.
fn char_or_lifetime(cur: &mut Cursor<'_>) -> TokKind {
    match (cur.peek_at(1), cur.peek_at(2)) {
        (Some('\\'), _) => {
            cur.bump();
            char_body(cur);
            TokKind::Char
        }
        (Some(c1), Some('\'')) if c1 != '\'' => {
            cur.bump(); // '
            cur.bump(); // c1
            cur.bump(); // '
            TokKind::Char
        }
        (Some(c1), _) if is_ident_start(c1) || c1.is_ascii_digit() => {
            cur.bump();
            cur.eat_while(is_ident_continue);
            TokKind::Lifetime
        }
        _ => {
            cur.bump();
            TokKind::Punct
        }
    }
}

/// Consumes a numeric literal, deciding int vs float.
///
/// Float forms: a `.` followed by a digit (or by nothing identifier- or
/// dot-like: `1.`), an exponent (`1e9`, `2.5E-3`), or an `f32`/`f64`
/// suffix. `1..n` stays an int followed by a range, and `0x1f` stays an
/// int whose hex digits happen to include `f`.
fn number(cur: &mut Cursor<'_>) -> TokKind {
    let radix_prefix = cur.peek() == Some('0')
        && matches!(cur.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefix {
        cur.bump();
        cur.bump();
        cur.eat_while(is_ident_continue);
        return TokKind::Int;
    }
    let mut float = false;
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    if cur.peek() == Some('.') {
        match cur.peek_at(1) {
            // `1..5` range or `1.method()` — the dot is not ours.
            Some('.') => return TokKind::Int,
            Some(c) if is_ident_start(c) => return TokKind::Int,
            _ => {
                float = true;
                cur.bump();
                cur.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
        }
    }
    if matches!(cur.peek(), Some('e' | 'E')) {
        // Only an exponent when digits (with optional sign) follow;
        // otherwise it's a suffix-ish identifier boundary.
        let signed = matches!(cur.peek_at(1), Some('+' | '-'));
        let digit_at = if signed { 2 } else { 1 };
        if cur.peek_at(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            cur.bump();
            if signed {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (`u32`, `f64`, ...).
    if cur.peek().is_some_and(is_ident_start) {
        let f_suffix = cur.peek() == Some('f');
        cur.eat_while(is_ident_continue);
        if f_suffix {
            float = true;
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}
