//! `detlint` — offline determinism-and-safety static analysis.
//!
//! Every guarantee this repo sells — byte-identical JSONL across
//! `--threads`/`--shard` splits, cache addresses that are pure functions
//! of cell keys, golden-pinned figures — rests on invariants that unit
//! tests can only check *after the fact*. PR 1 shipped (and then had to
//! fix) three real cross-process nondeterminism bugs, all one bug class:
//! `RandomState` `HashMap` iteration order reaching RNG draws and output
//! bytes (RTO sweeps, retransmit queues, ACK flushes). `detlint` catches
//! that class — and its relatives — statically, at the PR boundary, with
//! zero dependencies so it runs before anything else compiles.
//!
//! # Determinism rules
//!
//! | Rule | What it flags | Why |
//! |------|---------------|-----|
//! | `DET001` | `HashMap`/`HashSet` in `netsim`/`transport`/`core`/`baselines`/`sweep` | `RandomState` iteration order varies per process — the PR 1 bug class. Use [`netsim::hash`]'s `FxHashMap` (deterministic) or `BTreeMap`/`BTreeSet` where order reaches output. |
//! | `DET002` | `Instant::now` / `SystemTime` outside `crates/tinybench/` | Wall-clock values must never reach result bytes; perf measurement sites carry a pragma so each is a reviewed artifact. |
//! | `DET003` | pointer-to-`usize` casts (`.as_ptr() as usize`, `as *const T as usize`) | Addresses are per-process (ASLR); an address that becomes a value (hash, key, sort tiebreak) is nondeterminism. |
//! | `DET004` | float literals / `f32`/`f64` in cell-key and seed-derivation scopes (`sweep::matrix::{key,scenario,derived_seed,fnv1a64}`, all of `sweep::shard` and `netsim::hash`) | Keys, derived seeds, shard membership and cache addresses must be exact integer/string functions — float rounding is platform- and opt-level-sensitive. |
//! | `SAFE001` | `unsafe` blocks/impls without an immediately preceding `// SAFETY:` comment | The arena/calendar PRs introduced unsafe whose soundness lived only in review; the argument now lives next to the code. |
//!
//! # Pragmas
//!
//! Findings are suppressible only inline:
//!
//! ```text
//! // detlint: allow(DET001) — this alias IS the deterministic replacement
//! ```
//!
//! so every exemption is grep-able (`grep -rn 'detlint: allow'`) and
//! reviewed. The reason is mandatory; an unknown rule name or a missing
//! reason is itself a finding (`PRAGMA001`).
//!
//! # Design
//!
//! No `syn`, no crates.io: a hand-rolled lossless lexer
//! ([`lexer`]) classifies every byte (comments, raw strings, char vs
//! lifetime, float vs int), and the rules ([`rules`]) walk the token
//! stream with path- and function-level scoping. `cargo run -p detlint
//! -- --check` walks the workspace and exits non-zero on any finding;
//! the same engine is exercised by fixture tests (one seeded-violation
//! and one clean file per rule) and by a live workspace-clean test, so
//! CI and `cargo test` agree.
//!
//! [`netsim::hash`]: ../netsim/hash/index.html

pub mod lexer;
pub mod rules;
pub mod walk;
