//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the real `proptest` cannot be fetched. The property tests
//! only use a small slice of its API; this crate provides that slice with
//! deterministic pseudo-random sampling (no shrinking):
//!
//! * the [`proptest!`] macro (multiple `#[test]` functions, `pat in strategy`
//!   arguments),
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer and
//!   float ranges, tuples, [`prelude::Just`] and [`strategy::Union`],
//! * [`prelude::any`] for the primitive types the tests draw,
//! * [`collection::vec`],
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!` and `prop_oneof!`.
//!
//! Each test function runs `PROPTEST_CASES` sampled cases (default 64) from
//! a seed derived from the test name, so failures reproduce exactly.
//!
//! [`proptest`]: https://crates.io/crates/proptest

/// Sampling RNG: splitmix64, deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a raw seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Multiply-shift; bias is irrelevant for test sampling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Derives the per-test RNG from the test name (stable across runs).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// Number of sampled cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Marker returned by `prop_assume!` rejections; the case is skipped.
#[derive(Debug)]
pub struct TestSkip;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A source of sampled values (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut r = rng.below(self.total);
            for (w, s) in &self.arms {
                if r < *w as u64 {
                    return s.sample(rng);
                }
                r -= *w as u64;
            }
            unreachable!("weight walk exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    // i128 intermediates: signed ranges (negative starts)
                    // and full-width unsigned ranges both fit.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the primitive types the tests draw.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
        fn arbitrary(rng: &mut TestRng) -> (A, B) {
            (A::arbitrary(rng), B::arbitrary(rng))
        }
    }

    impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
        fn arbitrary(rng: &mut TestRng) -> (A, B, C) {
            (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of `element` samples with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn` samples its arguments and runs the body
/// for [`cases`] iterations.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..$crate::cases() {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestSkip> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                let _ = __outcome;
            }
        }
    )+};
}

/// Asserts within a property body (panics with the sampled case visible).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current sampled case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestSkip);
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![$((
            $weight,
            {
                let __b: ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> =
                    ::std::boxed::Box::new($strat);
                __b
            },
        )),+])
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}
