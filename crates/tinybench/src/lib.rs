//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the real `criterion` cannot be fetched (the `bench` crate
//! keeps its criterion benches behind `autobenches = false` for the same
//! reason). The micro-benchmarks only need a small slice of the API; this
//! crate provides that slice — in the same spirit as `proptest-shim` —
//! with wall-clock measurement and machine-readable JSON output:
//!
//! * [`Harness::bench_function`] with a criterion-style [`Bencher`]
//!   (`iter`, `iter_batched`, `iter_custom`),
//! * per-bench element throughput via [`Bencher::elements`]
//!   (criterion's `Throughput::Elements`),
//! * automatic iteration-count calibration against a wall-clock budget,
//!   overridable for CI smoke runs (`TINYBENCH_TARGET_MS`,
//!   [`Harness::target_ms`]),
//! * a fixed-field-order JSON report ([`Harness::to_json`]) so downstream
//!   tooling can diff runs and gate regressions.
//!
//! Measurements are wall-clock medians over a handful of samples — good
//! enough to detect the 1.5–2x hot-path changes this repo tracks, not a
//! substitute for criterion's statistics.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-bench measurement budget in milliseconds (CLI/env override).
const DEFAULT_TARGET_MS: u64 = 200;
/// Samples per bench; the median is reported.
const SAMPLES: usize = 5;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/name` style, caller-chosen).
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Median wall-clock time of one sample, in nanoseconds.
    pub sample_ns: u64,
    /// Nanoseconds per iteration (median sample / iters).
    pub ns_per_iter: f64,
    /// Iterations per second.
    pub iters_per_sec: f64,
    /// Elements processed per iteration, when the bench declared throughput.
    pub elements_per_iter: Option<u64>,
    /// Elements per second (`elements_per_iter * iters_per_sec`).
    pub elems_per_sec: Option<f64>,
}

impl BenchResult {
    /// Renders the result as one JSON object with a fixed field order.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"name\":\"");
        for c in self.name.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
                c => s.push(c),
            }
        }
        s.push_str(&format!(
            "\",\"iters\":{},\"sample_ns\":{},\"ns_per_iter\":{:.3},\"iters_per_sec\":{:.3}",
            self.iters, self.sample_ns, self.ns_per_iter, self.iters_per_sec
        ));
        match (self.elements_per_iter, self.elems_per_sec) {
            (Some(n), Some(eps)) => {
                s.push_str(&format!(
                    ",\"elements_per_iter\":{n},\"elems_per_sec\":{eps:.3}"
                ));
            }
            _ => s.push_str(",\"elements_per_iter\":null,\"elems_per_sec\":null"),
        }
        s.push('}');
        s
    }
}

/// The timing context handed to each benchmark closure.
///
/// The harness calls the closure several times while calibrating `iters`;
/// the closure must time exactly `self.iters` executions of the routine
/// through one of the `iter*` methods.
pub struct Bencher {
    /// Number of routine executions this call must time.
    pub iters: u64,
    elapsed: Duration,
    elements: Option<u64>,
}

impl Bencher {
    /// Times `iters` back-to-back executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time
    /// (criterion's `iter_batched` with per-iteration batches).
    pub fn iter_batched<S, O, Setup, F>(&mut self, mut setup: Setup, mut routine: F)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Hands full timing control to the routine: it receives the iteration
    /// count and must return the elapsed wall-clock time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.elapsed = routine(self.iters);
    }

    /// Declares that each iteration processes `n` elements, enabling the
    /// elements-per-second throughput column (criterion's
    /// `Throughput::Elements`).
    pub fn elements(&mut self, n: u64) {
        self.elements = Some(n);
    }
}

/// The benchmark harness: runs closures, collects [`BenchResult`]s.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<BenchResult>,
    target: Option<Duration>,
    filter: Option<String>,
}

impl Harness {
    /// A harness with the default measurement budget (or the
    /// `TINYBENCH_TARGET_MS` environment override).
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Overrides the per-sample wall-clock budget (CI smoke runs).
    pub fn target_ms(mut self, ms: u64) -> Harness {
        self.target = Some(Duration::from_millis(ms.max(1)));
        self
    }

    /// Only runs benches whose name contains `pat` (substring match);
    /// everything else is skipped silently and left out of the report.
    pub fn filter(mut self, pat: &str) -> Harness {
        self.filter = Some(pat.to_string());
        self
    }

    fn target(&self) -> Duration {
        if let Some(t) = self.target {
            return t;
        }
        let ms = std::env::var("TINYBENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_TARGET_MS);
        Duration::from_millis(ms)
    }

    /// Runs one benchmark: calibrates the iteration count until a sample
    /// fills the wall-clock budget, then reports the median of
    /// [`SAMPLES`] samples.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        let target = self.target();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            elements: None,
        };
        // Calibration: grow iters geometrically until one sample takes at
        // least the budget (or the count stops mattering for huge routines).
        loop {
            f(&mut b);
            if b.elapsed >= target || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                // Aim 20% past the budget to converge in one or two steps.
                let ratio = target.as_secs_f64() / b.elapsed.as_secs_f64() * 1.2;
                ratio.clamp(2.0, 100.0) as u64
            };
            b.iters = b.iters.saturating_mul(grow);
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let sample_ns = median.as_nanos() as u64;
        let ns_per_iter = sample_ns as f64 / b.iters as f64;
        let iters_per_sec = if ns_per_iter > 0.0 {
            1e9 / ns_per_iter
        } else {
            0.0
        };
        let elems_per_sec = b.elements.map(|n| n as f64 * iters_per_sec);
        let result = BenchResult {
            name: name.to_string(),
            iters: b.iters,
            sample_ns,
            ns_per_iter,
            iters_per_sec,
            elements_per_iter: b.elements,
            elems_per_sec,
        };
        eprintln!("{}", render_line(&result));
        self.results.push(result);
    }

    /// All results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders every result as a JSON array (fixed field order, one object
    /// per bench, execution order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            s.push_str("  ");
            s.push_str(&r.to_json());
        }
        s.push_str("\n]\n");
        s
    }
}

/// One human-readable progress line per bench (stderr).
fn render_line(r: &BenchResult) -> String {
    let mut line = format!(
        "{:<40} {:>12} ns/iter {:>14.0} iters/s",
        r.name,
        format_ns(r.ns_per_iter),
        r.iters_per_sec
    );
    if let Some(eps) = r.elems_per_sec {
        line.push_str(&format!("  {:>12.2} M elems/s", eps / 1e6));
    }
    line
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.1}m", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

/// Extracts `"field":<number>` for the record with `"name":"<name>"` from a
/// tinybench JSON report. Good enough for regression gating without a JSON
/// dependency; returns `None` when the record or field is missing.
pub fn json_field(report: &str, name: &str, field: &str) -> Option<f64> {
    let probe = format!("\"name\":\"{name}\"");
    let start = report.find(&probe)?;
    let record = &report[start..];
    let end = record.find('}')?;
    let record = &record[..end];
    let fprobe = format!("\"{field}\":");
    let fstart = record.find(&fprobe)? + fprobe.len();
    let rest = &record[fstart..];
    let stop = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..stop].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_and_measures_a_cheap_routine() {
        let mut h = Harness::new().target_ms(5);
        let mut acc = 0u64;
        h.bench_function("spin", |b| {
            b.iter(|| {
                acc = acc.wrapping_mul(31).wrapping_add(1);
                acc
            })
        });
        let r = &h.results()[0];
        assert!(r.iters > 1, "cheap routine must calibrate up: {}", r.iters);
        assert!(r.ns_per_iter > 0.0);
        assert!(r.iters_per_sec > 0.0);
        assert_eq!(r.elements_per_iter, None);
    }

    #[test]
    fn throughput_elements_are_reported() {
        let mut h = Harness::new().target_ms(2);
        h.bench_function("batch", |b| {
            b.elements(100);
            b.iter(|| std::hint::black_box(42))
        });
        let r = &h.results()[0];
        assert_eq!(r.elements_per_iter, Some(100));
        let eps = r.elems_per_sec.expect("throughput set");
        assert!((eps / r.iters_per_sec - 100.0).abs() < 1e-6);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut h = Harness::new().target_ms(2);
        h.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>())
        });
        assert!(h.results()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn iter_custom_controls_timing() {
        let mut h = Harness::new().target_ms(1);
        h.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(iters * 10))
        });
        let r = &h.results()[0];
        assert!((r.ns_per_iter - 10.0).abs() < 1.0, "{}", r.ns_per_iter);
    }

    #[test]
    fn json_roundtrips_through_field_extractor() {
        let mut h = Harness::new().target_ms(1);
        h.bench_function("a/b", |b| {
            b.elements(7);
            b.iter(|| 1u32)
        });
        let json = h.to_json();
        assert!(json.starts_with("[\n"), "{json}");
        let eps = json_field(&json, "a/b", "elems_per_sec").expect("field");
        assert!(eps > 0.0);
        let iters = json_field(&json, "a/b", "iters").expect("field");
        assert!(iters >= 1.0);
        assert_eq!(json_field(&json, "missing", "iters"), None);
        assert_eq!(json_field(&json, "a/b", "missing"), None);
    }

    #[test]
    fn json_escapes_names() {
        let r = BenchResult {
            name: "quo\"te\\".to_string(),
            iters: 1,
            sample_ns: 1,
            ns_per_iter: 1.0,
            iters_per_sec: 1.0,
            elements_per_iter: None,
            elems_per_sec: None,
        };
        let j = r.to_json();
        assert!(j.contains("quo\\\"te\\\\"), "{j}");
    }
}
