//! The fleet contract, as properties:
//!
//! 1. for any shard count and any filter, every cell lands in exactly one
//!    shard, and `merge`-ing the per-shard outputs reproduces the
//!    unsharded JSONL byte-for-byte;
//! 2. a warm cache answers the entire sweep (0 cells executed) with bytes
//!    identical to the uncached run — including when the warmth was
//!    accumulated shard by shard.

use proptest::prelude::*;

use baselines::kind::LbKind;
use reps::reps::RepsConfig;
use sweep::matrix::{Cell, LabeledLb, ScenarioMatrix};
use sweep::spec::{FabricSpec, FailureSpec, WorkloadSpec};
use sweep::{merge_contents, run_cells, run_cells_cached, to_jsonl, CellCache, Shard};

/// A small but non-trivial grid: 2 lbs × 2 workloads × 2 failures × seeds.
fn small_matrix(seeds: u32) -> ScenarioMatrix {
    ScenarioMatrix::new("shard-merge-test")
        .fabrics([FabricSpec::two_tier(4, 1)])
        .lbs([
            LabeledLb::plain(LbKind::Ops { evs_size: 1 << 16 }),
            LabeledLb::plain(LbKind::Reps(RepsConfig::default())),
        ])
        .workloads([
            WorkloadSpec::Tornado { bytes: 16 << 10 },
            WorkloadSpec::Permutation { bytes: 16 << 10 },
        ])
        .failures([
            FailureSpec::None,
            FailureSpec::OneCable {
                at: netsim::time::Time::from_us(5),
                duration: None,
            },
        ])
        .seeds(seeds)
}

/// Applies an arbitrary axis filter, mimicking `--filter`-style selection.
fn filtered(cells: &[Cell], pick: (bool, bool, bool)) -> Vec<Cell> {
    cells
        .iter()
        .filter(|c| {
            (pick.0 || c.lb.label == "REPS")
                && (pick.1 || c.workload.label().starts_with("tornado"))
                && (pick.2 || c.failures.label() == "none")
        })
        .cloned()
        .collect()
}

proptest! {
    /// Union-of-shards == unsharded run, byte for byte, for any shard
    /// count and filter; and the shards partition the cell set.
    #[test]
    fn sharded_union_merges_to_the_unsharded_bytes(
        count in 2u32..6,
        pick in any::<(bool, bool, bool)>(),
    ) {
        let cells = filtered(&small_matrix(2).expand(), pick);
        prop_assume!(!cells.is_empty());
        let unsharded = to_jsonl(&run_cells(&cells, 4));

        let mut shard_files: Vec<(String, String)> = Vec::new();
        let mut owned_total = 0usize;
        for index in 1..=count {
            let shard = Shard { index, count };
            // Exactly-one-shard: each cell is owned by this shard iff no
            // other shard owns it (checked via the running total below).
            let owned = shard.select(cells.clone());
            owned_total += owned.len();
            shard_files.push((
                format!("shard{index}.jsonl"),
                to_jsonl(&run_cells(&owned, 4)),
            ));
        }
        prop_assert_eq!(owned_total, cells.len(), "shards must partition the cells");
        let merged = merge_contents(&shard_files).expect("disjoint shards merge");
        prop_assert_eq!(merged.to_jsonl(), unsharded);
    }
}

#[test]
fn shard_membership_ignores_the_filter() {
    // The same surviving cell must stay in the same shard whichever
    // filter selected it — the property that makes fleet runs cacheable.
    let all = small_matrix(2).expand();
    let shard = Shard { index: 1, count: 3 };
    let from_all: std::collections::BTreeSet<String> =
        shard.select(all.clone()).iter().map(Cell::key).collect();
    for pick in [
        (false, true, true),
        (true, false, true),
        (true, true, false),
    ] {
        for c in shard.select(filtered(&all, pick)) {
            assert!(
                from_all.contains(&c.key()),
                "filter moved {} into shard {shard}",
                c.key()
            );
        }
    }
}

#[test]
fn warm_cache_executes_zero_cells_and_reproduces_the_bytes() {
    let dir = std::env::temp_dir().join(format!("reps-shard-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cells = small_matrix(1).expand();
    let uncached = to_jsonl(&run_cells(&cells, 4));

    // Warm the cache shard by shard (two "boxes" sharing a cache dir)...
    let cache = CellCache::open(&dir, "shard-test").unwrap();
    for index in 1..=2 {
        let shard = Shard { index, count: 2 };
        let owned = shard.select(cells.clone());
        let run = run_cells_cached(&owned, 4, Some(&cache));
        assert_eq!(run.misses, owned.len(), "cold shard runs everything");
    }
    // ...then the full sweep is answered entirely from cache.
    let warm = run_cells_cached(&cells, 4, Some(&cache));
    assert_eq!(
        (warm.hits, warm.misses),
        (cells.len(), 0),
        "warm run must execute nothing"
    );
    assert!(warm.executed.is_empty());
    assert_eq!(
        to_jsonl(&warm.results),
        uncached,
        "cache hits must be byte-identical to the uncached run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
