//! Spec-file DSL properties:
//!
//! 1. parse → render → parse is byte-stable for arbitrary matrices, and
//!    the reparsed matrix expands to the identical cell keys;
//! 2. every built-in preset re-expressed as a spec file expands to
//!    identical cell keys (the DSL can say everything the Rust builders
//!    say, at both scales);
//! 3. malformed inputs report precise 1-based line numbers.

use proptest::prelude::*;

use harness::Scale;
use netsim::time::Time;
use sweep::matrix::ScenarioMatrix;
use sweep::spec::{FabricSpec, FailureSpec, WorkloadSpec};
use sweep::{presets, specfile};

/// Deterministic pool sampler (the proptest shim draws the seed; subset
/// selection stays local so pools of unequal length compose).
struct Pick(u64);

impl Pick {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A non-empty, order-preserving subset of `pool`.
    fn subset<T: Clone>(&mut self, pool: &[T]) -> Vec<T> {
        loop {
            let mask = self.next();
            let picked: Vec<T> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
                .map(|(_, v)| v.clone())
                .collect();
            if !picked.is_empty() {
                return picked;
            }
        }
    }

    fn choice<T: Clone>(&mut self, pool: &[T]) -> T {
        pool[(self.next() % pool.len() as u64) as usize].clone()
    }
}

fn arbitrary_matrix(seed: u64) -> ScenarioMatrix {
    use baselines::kind::LbKind;
    let mut pick = Pick(seed);
    let lb_labels = [
        "ECMP",
        "OPS",
        "REPS",
        "PLB",
        "MPRDMA",
        "MPTCP",
        "Flowlet",
        "BitMap",
        "Adaptive RoCE",
        "REPS-nofreeze",
        "REPS+freeze@50us",
        "REPS{evs=256,freeze=off}",
        "REPS{buf=16,fto=50us,freezeat=500ns}",
        "OPS{evs=64}",
        "PLB{thresh=0.1,rounds=3}",
        "Flowlet{gap=80us}",
        "BitMap{evs=1024,clear=50us}",
        "MPTCP{subflows=4}",
    ];
    let lb_text = format!("lb = {}", pick.subset(&lb_labels).join(", "));
    let mut m = specfile::parse(&format!("[seed-{seed}]\n{lb_text}\n"))
        .expect("lb axis parses")
        .remove(0);
    m.fabrics = pick.subset(&[
        FabricSpec::two_tier(8, 1),
        FabricSpec::two_tier(6, 2),
        FabricSpec::three_tier(4, 1),
        FabricSpec::custom(2, 8, 4),
        FabricSpec::leaf_spine(4, 4, 2),
    ]);
    m.workloads = pick.subset(&[
        WorkloadSpec::Tornado { bytes: 1 << 16 },
        WorkloadSpec::Permutation { bytes: 3 << 10 },
        WorkloadSpec::Incast {
            degree: 4,
            bytes: 1 << 12,
        },
        WorkloadSpec::AllToAll {
            bytes: 1 << 10,
            window: 2,
        },
        WorkloadSpec::DcTrace {
            load_pct: 40,
            duration: Time::from_us(30),
        },
    ]);
    m.failures = pick.subset(&[
        FailureSpec::None,
        FailureSpec::OneCable {
            at: Time::from_us(5),
            duration: Some(Time::from_us(20)),
        },
        FailureSpec::RandomSwitches {
            pct: 10,
            at: Time::from_us(8),
            duration: None,
        },
        FailureSpec::DegradedUplinks { pct: 5, gbps: 100 },
        FailureSpec::Rolling {
            count: 2,
            period: Time::from_us(30),
            down_for: Time::from_us(40),
        },
    ]);
    m.reconv = pick.subset(&[None, Some(Time::from_us(10)), Some(Time::from_ns(500))]);
    // Every fabric in the pool has at least 2 ToRs.
    m.track = pick.subset(&[0u32, 1]);
    m.seeds = pick.subset(&[0u32, 1, 5, 9]);
    m.deadline = pick.choice(&[Time::from_secs(2), Time::from_us(123), Time::from_ns(77)]);
    if pick.next() & 1 == 1 {
        let bg_lb = if pick.next() & 1 == 1 {
            LbKind::Ecmp
        } else {
            // A parameterized background exercises the spec-grammar render
            // path of the `background` setting.
            LbKind::parse("REPS{evs=128,freeze=off}").expect("background spec parses")
        };
        m.background = Some((WorkloadSpec::Tornado { bytes: 1 << 12 }, bg_lb));
    }
    m
}

fn keys(m: &ScenarioMatrix) -> Vec<String> {
    m.expand().iter().map(|c| c.key()).collect()
}

proptest! {
    /// parse ∘ render is the identity on matrices (up to the axis configs
    /// the labels stand for), and render ∘ parse is byte-stable.
    #[test]
    fn round_trip_is_byte_exact(seed in any::<u64>()) {
        let m = arbitrary_matrix(seed);
        let text = specfile::render_matrix(&m);
        let parsed = specfile::parse(&text).expect("rendered matrix parses");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(
            specfile::render_matrix(&parsed[0]),
            text,
            "render must be parse-stable"
        );
        prop_assert_eq!(keys(&parsed[0]), keys(&m), "cell keys must survive the trip");
    }

    /// Multi-matrix documents round-trip as a whole.
    #[test]
    fn multi_matrix_documents_round_trip(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let ms = vec![arbitrary_matrix(a), arbitrary_matrix(b)];
        let text = specfile::render(&ms);
        let parsed = specfile::parse(&text).expect("rendered document parses");
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(specfile::render(&parsed), text);
    }
}

#[test]
fn every_builtin_preset_reexpresses_with_identical_cell_keys() {
    for scale in [Scale::Quick, Scale::Full] {
        for m in presets::all(scale) {
            let text = specfile::render_matrix(&m);
            let parsed = specfile::parse(&text).unwrap_or_else(|e| {
                panic!("{} ({scale:?}) does not re-parse: {e}\n{text}", m.name)
            });
            assert_eq!(parsed.len(), 1, "{}", m.name);
            assert_eq!(
                keys(&parsed[0]),
                keys(&m),
                "{} ({scale:?}): spec-file re-expression changed cell keys",
                m.name
            );
        }
    }
}

#[test]
fn ablation_grid_reproduces_the_builtin_ablation_presets() {
    // A parameter sweep is now a text file: the shipped example grid
    // expands to exactly the built-in ablation presets' cells — identical
    // keys, so identical derived seeds, shard membership and cache
    // addresses.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/ablation.grid");
    let text = std::fs::read_to_string(path).expect("examples/ablation.grid exists");
    let parsed = specfile::parse(&text).expect("ablation grid parses");
    let names: Vec<&str> = parsed.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, vec!["evs-sensitivity", "flowlet-gap"]);
    for m in &parsed {
        let builtin = presets::by_name(&m.name, Scale::Quick).expect("names a built-in preset");
        assert_eq!(
            keys(m),
            keys(&builtin),
            "{}: the example grid drifted from the built-in preset",
            m.name
        );
    }
}

#[test]
fn malformed_inputs_name_their_line() {
    for (text, line, needle) in [
        ("[g]\nplanet = mars", 2, "unknown axis"),
        ("[g]\nlb =", 2, "empty value list"),
        ("[g]\nworkload = tornado-1B,", 2, "empty value"),
        ("[g]\n\n# pad\n[g]", 4, "duplicate matrix name"),
        ("fabric = 2t-k8-o1", 1, "outside a [matrix]"),
        ("[g]\nseed = 1\n\nseed = 2", 4, "duplicate axis"),
        ("[g]\nfabric = 4d-hypercube", 2, "bad fabric"),
        ("[g]\nreconv = sometimes", 2, "bad duration"),
        ("[g]\ncoalesce = plain0", 2, "at least 1"),
        (
            "[g]\nbackground = tornado-1B+ECMP, none",
            2,
            "exactly one value",
        ),
        ("[g]\nbackground = chaos", 2, "is not `workload+LB`"),
        ("[g]\nbackground = chaos+ECMP", 2, "unknown workload"),
        ("[g]\ncc = CUBIC", 2, "unknown cc"),
        ("[g]\nseed = one", 2, "bad seed"),
        ("[g]\nlb = OPS, OPS", 2, "duplicate lb value"),
    ] {
        let err = specfile::parse(text).expect_err(text);
        assert_eq!(err.line, line, "{text:?} -> {err}");
        assert!(err.to_string().contains(needle), "{text:?} -> {err}");
    }
}

#[test]
fn parse_file_prefixes_the_path() {
    let dir = std::env::temp_dir().join(format!("reps-specfile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.grid");
    std::fs::write(&path, "[g]\nlb = WAT\n").unwrap();
    let err = specfile::parse_file(&path.to_string_lossy()).expect_err("bad lb");
    assert!(err.contains("bad.grid:line 2:"), "{err}");
    assert!(specfile::parse_file("/no/such/file.grid")
        .expect_err("missing file")
        .contains("/no/such/file.grid"),);
    let _ = std::fs::remove_dir_all(&dir);
}
