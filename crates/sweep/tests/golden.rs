//! Golden-output pinning for the DES hot-path refactor.
//!
//! The zero-allocation engine rework (borrowed routing tables, indexed
//! uplink selection, the arena-indexed POD calendar) must not change a
//! single output byte: these tests replay small `fig*` presets and
//! compare the JSONL result stream against snapshots recorded from the
//! pre-refactor engine (`tests/golden/*.jsonl`, generated with
//! `repsbench run --filter <preset> --quiet --out <file>` at quick
//! scale).
//!
//! If a future change *intentionally* alters simulation behaviour —
//! a model fix, a new default — regenerate the snapshots with the same
//! command and call the change out in the PR. If these tests fail
//! *unintentionally*, an engine change broke determinism; do not
//! regenerate.

use harness::Scale;
use sweep::{glob, presets, run_cells, to_jsonl};

fn preset_jsonl(name: &str) -> String {
    let cells: Vec<_> = presets::all(Scale::Quick)
        .into_iter()
        .filter(|m| glob::matches(name, &m.name))
        .flat_map(|m| m.expand())
        .collect();
    assert!(!cells.is_empty(), "no preset matches {name:?}");
    to_jsonl(&run_cells(&cells, 4))
}

#[test]
fn fig02_tornado_micro_output_is_byte_identical_to_pre_refactor() {
    assert_eq!(
        preset_jsonl("fig02*"),
        include_str!("golden/fig02-tornado-micro.quick.jsonl"),
        "fig02 output drifted from the pre-refactor golden snapshot"
    );
}

#[test]
fn fig07_failure_micro_output_is_byte_identical_to_pre_refactor() {
    assert_eq!(
        preset_jsonl("fig07*"),
        include_str!("golden/fig07-failure-micro.quick.jsonl"),
        "fig07 output drifted from the pre-refactor golden snapshot"
    );
}

// The two axis presets introduced with the spec-file layer (oversubscribed
// fabrics, reconvergence-delay sweeps) are locked deterministic from day
// one: snapshots recorded at quick scale with
// `repsbench run --filter <preset> --quiet --out <file>`.

// The LB-grammar ablation presets are likewise locked from day one:
// every axis value is a canonical LB-spec string, and the snapshot pins
// both the spec-derived cell keys and the simulation bytes.

#[test]
fn evs_sensitivity_output_is_byte_identical_to_its_snapshot() {
    assert_eq!(
        preset_jsonl("evs-sensitivity"),
        include_str!("golden/evs-sensitivity.quick.jsonl"),
        "evs-sensitivity output drifted from its day-one golden snapshot"
    );
}

#[test]
fn flowlet_gap_output_is_byte_identical_to_its_snapshot() {
    assert_eq!(
        preset_jsonl("flowlet-gap"),
        include_str!("golden/flowlet-gap.quick.jsonl"),
        "flowlet-gap output drifted from its day-one golden snapshot"
    );
}

#[test]
fn oversub_asym_output_is_byte_identical_to_its_snapshot() {
    assert_eq!(
        preset_jsonl("oversub-asym"),
        include_str!("golden/oversub-asym.quick.jsonl"),
        "oversub-asym output drifted from its day-one golden snapshot"
    );
}

#[test]
fn reconv_delay_output_is_byte_identical_to_its_snapshot() {
    assert_eq!(
        preset_jsonl("reconv-delay"),
        include_str!("golden/reconv-delay.quick.jsonl"),
        "reconv-delay output drifted from its day-one golden snapshot"
    );
}

// The adversarial-fault presets are locked from day one too: the snapshot
// pins the `ft=` key components, the cell-derived cable choices, the
// bounded flap schedules and the gray/corrupt drop counters all at once —
// any nondeterminism in fault-plan expansion shows up as a byte diff.

#[test]
fn gray_failures_output_is_byte_identical_to_its_snapshot() {
    assert_eq!(
        preset_jsonl("gray-failures"),
        include_str!("golden/gray-failures.quick.jsonl"),
        "gray-failures output drifted from its day-one golden snapshot"
    );
}

#[test]
fn flap_reconv_output_is_byte_identical_to_its_snapshot() {
    assert_eq!(
        preset_jsonl("flap-reconv"),
        include_str!("golden/flap-reconv.quick.jsonl"),
        "flap-reconv output drifted from its day-one golden snapshot"
    );
}

// The hybrid-fidelity preset is locked from day one: the snapshot pins
// the `fi=` key components, the pkt cells' bytes (which must equal a
// pre-fidelity-axis run exactly — the axis default changes nothing) and
// the fluid-background cells' analytically-derived foreground FCTs.

#[test]
fn hybrid_scale_output_is_byte_identical_to_its_snapshot() {
    assert_eq!(
        preset_jsonl("hybrid-scale"),
        include_str!("golden/hybrid-scale.quick.jsonl"),
        "hybrid-scale output drifted from its day-one golden snapshot"
    );
}
