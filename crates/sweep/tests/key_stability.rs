//! Cell-key stability: extending the key material (the reconvergence axis,
//! new fabrics, new presets) must not move a single *pre-existing* cell.
//!
//! A cell's key determines its derived RNG seed, its cache address and its
//! fleet-shard assignment; a silent key change invalidates every warm
//! cache and reshuffles shard membership without anyone noticing. The
//! fixture `tests/fixtures/cell_keys_pre_oversub.tsv` was recorded from
//! the presets *before* the oversubscription/reconvergence axes landed
//! (`scale<TAB>derived_seed<TAB>shard-of-4<TAB>key`, regenerate only for
//! intentional changes via `cargo run -p sweep --example dump_cell_keys`).

use std::collections::BTreeSet;

use harness::Scale;
use sweep::{presets, specfile};

const FIXTURE: &str = include_str!("fixtures/cell_keys_pre_oversub.tsv");

/// The full-pool snapshot regenerated after the LB-spec grammar landed
/// (PR 5): every preset — the new ablations included — with labels
/// derived from [`baselines::kind::LbKind::spec`]. Its overlap with the
/// pre-oversub fixture is byte-identical, proving the grammar moved zero
/// pre-existing cells; future PRs diff against the wider pin.
const FIXTURE_LBSPEC: &str = include_str!("fixtures/cell_keys_with_lbspec.tsv");

fn rows_of(fixture: &'static str) -> Vec<(&'static str, u64, u64, &'static str)> {
    fixture
        .lines()
        .map(|l| {
            let mut f = l.splitn(4, '\t');
            let scale = f.next().expect("scale column");
            let seed = u64::from_str_radix(f.next().expect("seed column"), 16).expect("hex seed");
            let shard: u64 = f.next().expect("shard column").parse().expect("shard");
            let key = f.next().expect("key column");
            (scale, seed, shard, key)
        })
        .collect()
}

fn fixture_rows() -> Vec<(&'static str, u64, u64, &'static str)> {
    rows_of(FIXTURE)
}

/// Current `(derived_seed, key)` pairs for the presets named in the
/// fixture, in expansion order.
fn current_rows(scale: Scale, preset_names: &BTreeSet<&str>) -> Vec<(u64, String)> {
    presets::all(scale)
        .into_iter()
        .filter(|m| preset_names.contains(m.name.as_str()))
        .flat_map(|m| m.expand())
        .map(|c| (c.derived_seed(), c.key()))
        .collect()
}

#[test]
fn pre_existing_presets_kept_every_key_seed_and_shard() {
    let rows = fixture_rows();
    assert_eq!(rows.len(), 522, "fixture shape changed unexpectedly");
    let fixture_presets: BTreeSet<&str> = rows
        .iter()
        .map(|(_, _, _, key)| key.split('/').next().expect("preset component"))
        .collect();
    for (tag, scale) in [("quick", Scale::Quick), ("full", Scale::Full)] {
        let expected: Vec<(u64, String)> = rows
            .iter()
            .filter(|(s, _, _, _)| *s == tag)
            .map(|(_, seed, _, key)| (*seed, key.to_string()))
            .collect();
        let current = current_rows(scale, &fixture_presets);
        assert_eq!(
            current, expected,
            "{tag}: a pre-existing preset's cells moved (key/seed/order drift)"
        );
        // Shard membership is derived from the seed; pin it explicitly
        // anyway so a future re-derivation cannot drift silently.
        for (_, seed, shard, key) in rows.iter().filter(|(s, _, _, _)| *s == tag) {
            assert_eq!(seed % 4, *shard, "{key}: shard-of-4 membership moved");
        }
    }
}

#[test]
fn full_pool_matches_the_regenerated_lbspec_fixture() {
    // The wider pin: the whole current pool (spec-derived LB labels, the
    // ablation presets) in expansion order, seeds and shard membership
    // included. Together with the pre-oversub fixture test above this
    // proves the grammar refactor moved zero pre-existing cells while the
    // new presets only extended the suite.
    let rows = rows_of(FIXTURE_LBSPEC);
    assert_eq!(rows.len(), 660, "lbspec fixture shape changed unexpectedly");
    let pre: BTreeSet<(u64, &str)> = fixture_rows()
        .iter()
        .map(|(_, seed, _, key)| (*seed, *key))
        .collect();
    let post: BTreeSet<(u64, &str)> = rows.iter().map(|(_, seed, _, key)| (*seed, *key)).collect();
    assert!(
        pre.is_subset(&post),
        "a pre-oversub cell is missing from the regenerated fixture"
    );
    for (tag, scale) in [("quick", Scale::Quick), ("full", Scale::Full)] {
        let expected: Vec<(u64, String)> = rows
            .iter()
            .filter(|(s, _, _, _)| *s == tag)
            .map(|(_, seed, _, key)| (*seed, key.to_string()))
            .collect();
        let current: Vec<(u64, String)> = presets::all(scale)
            .into_iter()
            .flat_map(|m| m.expand())
            .map(|c| (c.derived_seed(), c.key()))
            .collect();
        assert_eq!(
            current, expected,
            "{tag}: the current pool drifted from the regenerated fixture"
        );
        for (_, seed, shard, key) in rows.iter().filter(|(s, _, _, _)| *s == tag) {
            assert_eq!(seed % 4, *shard, "{key}: shard-of-4 membership moved");
        }
    }
}

#[test]
fn new_presets_extend_rather_than_perturb_the_suite() {
    let fixture_presets: BTreeSet<&str> = fixture_rows()
        .iter()
        .map(|(_, _, _, key)| key.split('/').next().expect("preset component"))
        .collect();
    let now: BTreeSet<String> = presets::all(Scale::Quick)
        .into_iter()
        .map(|m| m.name)
        .collect();
    for name in &fixture_presets {
        assert!(now.contains(*name), "pre-existing preset {name} vanished");
    }
    for new in [
        "oversub-asym",
        "reconv-delay",
        "evs-sensitivity",
        "flowlet-gap",
        "gray-failures",
        "flap-reconv",
        "hybrid-scale",
    ] {
        assert!(now.contains(new), "new preset {new} missing");
        assert!(
            !fixture_presets.contains(new),
            "{new} must postdate the fixture"
        );
    }
}

/// The suite-wide uniqueness contract, spec files included: quick-scale
/// and full-scale expansions of the whole pool are non-empty per preset,
/// globally collision-free, and disjoint from each other — and a spec file
/// cannot smuggle in a colliding matrix by shadowing a built-in name
/// (`presets::ensure_unique_names` is the gate the CLI applies).
#[test]
fn preset_pools_expand_to_disjoint_unique_nonempty_cell_sets() {
    let mut per_scale: Vec<BTreeSet<String>> = Vec::new();
    for scale in [Scale::Quick, Scale::Full] {
        let pool = presets::all(scale);
        presets::ensure_unique_names(&pool).expect("built-in names are unique");
        let mut keys: BTreeSet<String> = BTreeSet::new();
        for m in &pool {
            let cells = m.expand();
            assert!(!cells.is_empty(), "{}: empty preset", m.name);
            for c in cells {
                assert!(
                    keys.insert(c.key()),
                    "{}: key {} collides across the {scale:?} pool",
                    m.name,
                    c.key()
                );
            }
        }
        per_scale.push(keys);
    }
    assert!(
        per_scale[0].is_disjoint(&per_scale[1]),
        "a quick-scale cell key reappears at full scale: {:?}",
        per_scale[0].intersection(&per_scale[1]).next()
    );

    // A spec file shadowing a built-in name is rejected before it can
    // alias cell keys; under a fresh name the same grid coexists.
    let grid = "[fig02-tornado-micro]\nlb = OPS\n";
    let mut pool = presets::all(Scale::Quick);
    pool.extend(specfile::parse(grid).expect("grid parses"));
    presets::ensure_unique_names(&pool).expect_err("shadowing must be rejected");

    let mut pool = presets::all(Scale::Quick);
    pool.extend(specfile::parse("[my-tornado]\nlb = OPS\n").expect("grid parses"));
    presets::ensure_unique_names(&pool).expect("fresh names are fine");
    let mut keys: BTreeSet<String> = BTreeSet::new();
    for m in &pool {
        for c in m.expand() {
            assert!(keys.insert(c.key()), "spec-file cell key collided");
        }
    }
}

#[test]
fn fixture_preset_keys_still_lack_the_reconv_component() {
    // The axis addition is invisible to every pre-existing cell: no `rc=`
    // component may appear in any fixture preset's current keys.
    let fixture_presets: BTreeSet<&str> = fixture_rows()
        .iter()
        .map(|(_, _, _, key)| key.split('/').next().expect("preset component"))
        .collect();
    for scale in [Scale::Quick, Scale::Full] {
        for (_, key) in current_rows(scale, &fixture_presets) {
            assert!(!key.contains("/rc="), "{key}: default reconv leaked");
        }
    }
}

#[test]
fn fixture_preset_keys_still_lack_the_fault_component() {
    // Same contract for the fault axis: `ft=` is keyed only when a cell
    // actually injects a fault, so every pre-existing cell's key, seed,
    // shard and cache address is untouched by the axis existing.
    let fixture_presets: BTreeSet<&str> = fixture_rows()
        .iter()
        .map(|(_, _, _, key)| key.split('/').next().expect("preset component"))
        .collect();
    for scale in [Scale::Quick, Scale::Full] {
        for (_, key) in current_rows(scale, &fixture_presets) {
            assert!(!key.contains("/ft="), "{key}: default fault leaked");
        }
    }
}

#[test]
fn fixture_preset_keys_still_lack_the_fidelity_component() {
    // Same contract again for the fidelity axis: `fi=` is keyed only for
    // hybrid cells, so `fidelity=pkt` — every pre-existing cell — keeps
    // its key, derived seed, shard and cache address bit-for-bit.
    let fixture_presets: BTreeSet<&str> = fixture_rows()
        .iter()
        .map(|(_, _, _, key)| key.split('/').next().expect("preset component"))
        .collect();
    for scale in [Scale::Quick, Scale::Full] {
        for (_, key) in current_rows(scale, &fixture_presets) {
            assert!(!key.contains("/fi="), "{key}: default fidelity leaked");
        }
    }
}
