//! `--series` composition contract: per-cell series documents are pure
//! functions of cell keys, so the series directory is identical across
//! thread counts and shard splits, results stay byte-identical with the
//! sink on or off, and the cache only answers a cell when its series
//! document already exists.

use std::collections::BTreeMap;
use std::path::Path;

use sweep::matrix::ScenarioMatrix;
use sweep::spec::{FailureSpec, WorkloadSpec};
use sweep::{run_cells, run_cells_sinked, to_jsonl, CellCache, SeriesSink, Shard};

fn grid() -> ScenarioMatrix {
    ScenarioMatrix::new("series-it")
        .workloads([
            WorkloadSpec::Tornado { bytes: 24 << 10 },
            WorkloadSpec::Permutation { bytes: 24 << 10 },
        ])
        .failures([
            FailureSpec::None,
            FailureSpec::OneCable {
                at: netsim::time::Time::from_us(5),
                duration: None,
            },
        ])
        .seeds(2)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("reps-series-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Every series document in `dir`, keyed by file name.
fn dir_contents(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("series dir exists") {
        let entry = entry.expect("readable entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(
            name,
            std::fs::read_to_string(entry.path()).expect("readable doc"),
        );
    }
    out
}

#[test]
fn series_dir_is_identical_across_threads_and_shards() {
    let cells = grid().expand();
    let base = tmpdir("determinism");

    // Unsharded reference at 1 thread.
    let ref_dir = base.join("ref");
    let sink = SeriesSink::create(&ref_dir).unwrap();
    let one = run_cells_sinked(&cells, 1, None, Some(&sink));
    assert_eq!(one.series_errors, 0);
    let reference = dir_contents(&ref_dir);
    assert_eq!(reference.len(), cells.len(), "one document per cell");

    // More threads: same directory contents, byte for byte.
    let par_dir = base.join("par");
    let sink = SeriesSink::create(&par_dir).unwrap();
    let par = run_cells_sinked(&cells, 4, None, Some(&sink));
    assert_eq!(dir_contents(&par_dir), reference);

    // Results are byte-identical with the sink on or off, at any split.
    let plain = to_jsonl(&run_cells(&cells, 2));
    assert_eq!(to_jsonl(&one.results), plain);
    assert_eq!(to_jsonl(&par.results), plain);

    // Two shards writing into one directory reproduce it exactly.
    let shard_dir = base.join("sharded");
    let sink = SeriesSink::create(&shard_dir).unwrap();
    let mut owned_total = 0;
    for index in 1..=2 {
        let shard = Shard { index, count: 2 };
        let owned = shard.select(cells.clone());
        owned_total += owned.len();
        let run = run_cells_sinked(&owned, 2, None, Some(&sink));
        assert_eq!(run.series_errors, 0);
    }
    assert_eq!(owned_total, cells.len());
    assert_eq!(dir_contents(&shard_dir), reference);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn cache_hits_require_an_existing_series_document() {
    let cells = grid().expand();
    let base = tmpdir("cache");
    let cache = CellCache::open(base.join("cache"), "series-test").unwrap();

    // Warm the cache without a series sink...
    let cold = run_cells_sinked(&cells, 2, Some(&cache), None);
    assert_eq!((cold.hits, cold.misses), (0, cells.len()));

    // ...then ask for series: the warm cache must NOT satisfy the run,
    // because no documents exist yet.
    let series_dir = base.join("series");
    let sink = SeriesSink::create(&series_dir).unwrap();
    let fill = run_cells_sinked(&cells, 2, Some(&cache), Some(&sink));
    assert_eq!(
        (fill.hits, fill.misses),
        (0, cells.len()),
        "missing series documents must force execution"
    );
    assert_eq!(dir_contents(&series_dir).len(), cells.len());
    assert_eq!(to_jsonl(&fill.results), to_jsonl(&cold.results));

    // With both cache and series warm, nothing executes and the bytes and
    // documents are unchanged.
    let before = dir_contents(&series_dir);
    let warm = run_cells_sinked(&cells, 2, Some(&cache), Some(&sink));
    assert_eq!((warm.hits, warm.misses), (cells.len(), 0));
    assert!(warm.executed.is_empty());
    assert_eq!(to_jsonl(&warm.results), to_jsonl(&cold.results));
    assert_eq!(dir_contents(&series_dir), before);

    // A single deleted document re-runs exactly that cell.
    let victim = &cells[3];
    std::fs::remove_file(sink.path_for(victim.derived_seed())).unwrap();
    let partial = run_cells_sinked(&cells, 2, Some(&cache), Some(&sink));
    assert_eq!((partial.hits, partial.misses), (cells.len() - 1, 1));
    assert_eq!(dir_contents(&series_dir), before, "document restored");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn documents_are_addressed_by_derived_seed() {
    let cells = grid().expand();
    let dir = tmpdir("addressing");
    let sink = SeriesSink::create(&dir).unwrap();
    let run = run_cells_sinked(&cells, 2, None, Some(&sink));
    assert_eq!(run.series_errors, 0);
    for cell in &cells {
        assert!(sink.has(cell), "{} lacks its document", cell.key());
        let path = sink.path_for(cell.derived_seed());
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            format!("{:016x}.series.jsonl", cell.derived_seed())
        );
        let header = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        let v = harness::json::Value::parse(&header).expect("header parses");
        assert_eq!(v.get("key").unwrap().as_str(), Some(cell.key().as_str()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
