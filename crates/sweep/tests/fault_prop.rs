//! Property tests for the adversarial-fault axis:
//!
//! 1. the fault grammar is a true parse/render pair — `parse ∘ label` is
//!    the identity on every representable spec, and labels are already
//!    canonical (`label ∘ parse` is stable), so any spelling of one
//!    configuration shares one cell key, one derived seed, one shard and
//!    one cache address;
//! 2. plan expansion is a pure function of the cell — the same cell key
//!    installs byte-for-byte the same control-event sequence no matter
//!    which thread or shard materializes it, so faulted grids stay
//!    deterministic and cacheable like healthy ones.

use proptest::prelude::*;

use baselines::kind::LbKind;
use netsim::time::Time;
use sweep::matrix::{LabeledLb, ScenarioMatrix};
use sweep::spec::{FabricSpec, WorkloadSpec};
use sweep::{run_cells, to_jsonl, FaultSpec, Shard};

fn us(v: u64) -> Time {
    Time::from_us(v)
}

/// Maps independently-sampled knobs onto one fault family; every field of
/// every variant is reachable. `heal_us == 0` means "permanent" (a zero
/// heal delay is not representable in the grammar, so the strategy uses it
/// as the `None` marker rather than wasting a sampled case).
fn spec_from(
    family: u8,
    p_ppm: u32,
    at_us: u64,
    heal_us: u64,
    n: u32,
    period_us: u64,
    duty_ppm: u32,
) -> FaultSpec {
    let at = us(at_us);
    let heal = (heal_us > 0).then(|| us(heal_us));
    match family % 4 {
        0 => FaultSpec::Gray { p_ppm, at, heal, n },
        1 => FaultSpec::Corrupt { p_ppm, at, heal, n },
        2 => FaultSpec::Flap {
            period: us(period_us),
            duty_ppm,
            at,
            n,
        },
        _ => FaultSpec::Unidir { n, at, heal },
    }
}

/// A one-fault micro matrix: 1 lb × 1 workload × `seeds`, small enough to
/// simulate inside a property loop.
fn faulted_matrix(fault: FaultSpec, seeds: u32) -> ScenarioMatrix {
    ScenarioMatrix::new("fault-prop")
        .fabrics([FabricSpec::two_tier(4, 1)])
        .lbs([LabeledLb::plain(LbKind::Ops { evs_size: 1 << 16 })])
        .workloads([WorkloadSpec::Permutation { bytes: 16 << 10 }])
        .faults([fault])
        .seeds(seeds)
}

proptest! {
    /// Grammar round-trip: `parse(label(spec)) == spec` exactly (ppm
    /// probabilities and ps-exact durations, no float formatting), and the
    /// label is already canonical.
    #[test]
    fn label_and_parse_are_exact_inverses(
        family in 0u8..4,
        p_ppm in 1u32..=1_000_000,
        at_us in 0u64..500,
        heal_us in 0u64..500,
        n in 1u32..4,
        period_us in 1u64..500,
        duty_ppm in 0u32..=1_000_000,
    ) {
        let spec = spec_from(family, p_ppm, at_us, heal_us, n, period_us, duty_ppm);
        let label = spec.label();
        let reparsed = FaultSpec::parse(&label).expect(&label);
        prop_assert_eq!(&reparsed, &spec, "label {} does not round-trip", label);
        prop_assert_eq!(reparsed.label(), label);
    }

    /// Plan expansion is a pure function of the cell: re-materializing the
    /// same cell yields an identical failure plan (same cables, same
    /// onsets, same bounded flap schedule), and a 2-way shard split hands
    /// every cell to exactly one shard with its plan unchanged — what a
    /// fleet run relies on.
    #[test]
    fn installed_plan_is_a_pure_function_of_the_cell_key(
        family in 0u8..4,
        heal_us in 0u64..100,
        n in 1u32..3,
        period_us in 5u64..80,
    ) {
        let spec = spec_from(family, 50_000, 10, heal_us, n, period_us, 500_000);
        let cells = faulted_matrix(spec, 3).expand();
        let plans: Vec<String> = cells
            .iter()
            .map(|c| format!("{:?}", c.experiment().failures))
            .collect();
        for (c, plan) in cells.iter().zip(&plans) {
            prop_assert_eq!(&format!("{:?}", c.experiment().failures), plan);
        }
        // Shard membership is a pure function of the key: the two shards
        // partition the cells, and each cell's plan is the one the full
        // expansion computed.
        let shard1 = Shard { index: 1, count: 2 }.select(cells.clone());
        let shard2 = Shard { index: 2, count: 2 }.select(cells.clone());
        prop_assert_eq!(shard1.len() + shard2.len(), cells.len());
        let by_key = |key: &str| {
            cells
                .iter()
                .position(|c| c.key() == key)
                .expect("shard cell came from the expansion")
        };
        for c in shard1.iter().chain(&shard2) {
            let i = by_key(&c.key());
            prop_assert_eq!(&format!("{:?}", c.experiment().failures), &plans[i]);
        }
    }
}

/// End-to-end: a faulted grid's JSONL is byte-identical between 1 thread
/// and 8, and a 2-shard split reproduces exactly the unsharded records —
/// the fault axis never leaks scheduling into result bytes.
#[test]
fn faulted_grid_bytes_survive_threads_and_shard_splits() {
    let faults = [
        FaultSpec::parse("gray{p=0.05}").unwrap(),
        FaultSpec::parse("flap{period=20us}").unwrap(),
        FaultSpec::parse("unidir{for=100us}").unwrap(),
    ];
    for fault in faults {
        let cells = faulted_matrix(fault, 2).expand();
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 8);
        assert_eq!(to_jsonl(&serial), to_jsonl(&parallel));
        // 2-shard split: the union of per-shard records is the full set.
        let mut full: Vec<String> = serial.iter().map(sweep::sink::jsonl_record).collect();
        let mut sharded: Vec<String> = Vec::new();
        for index in 1..=2 {
            let shard = Shard { index, count: 2 }.select(cells.clone());
            sharded.extend(run_cells(&shard, 4).iter().map(sweep::sink::jsonl_record));
        }
        full.sort();
        sharded.sort();
        assert_eq!(full, sharded);
    }
}
