//! Property tests for the fidelity axis:
//!
//! 1. the fidelity grammar is a true parse/render pair — `parse ∘ label`
//!    is the identity and every spelling of one configuration
//!    canonicalizes to one label, so it shares one cell key, one derived
//!    seed, one shard and one cache address;
//! 2. hybrid cells stay inside the determinism contract — a grid whose
//!    background runs on the fluid model produces byte-identical JSONL
//!    across thread counts, and a 2-shard split reproduces exactly the
//!    unsharded records.

use proptest::prelude::*;

use baselines::kind::LbKind;
use sweep::fidelity::FidelitySpec;
use sweep::matrix::{LabeledLb, ScenarioMatrix};
use sweep::spec::{FabricSpec, WorkloadSpec};
use sweep::{run_cells, to_jsonl, Shard};

proptest! {
    /// Grammar round-trip under arbitrary spacing and the optional
    /// `{bg=fluid}` parameter block: every generated spelling parses to
    /// the spec it spells, and its canonical label is stable under
    /// re-parsing.
    #[test]
    fn every_spelling_canonicalizes_to_one_label(
        hybrid in any::<bool>(),
        braced in any::<bool>(),
        pad in 0usize..3,
        inner_pad in 0usize..3,
    ) {
        let ws = " ".repeat(pad);
        let iws = " ".repeat(inner_pad);
        let spelling = match (hybrid, braced) {
            (false, _) => format!("{ws}pkt{ws}"),
            (true, false) => format!("{ws}hybrid{ws}"),
            (true, true) => format!("{ws}hybrid{{{iws}bg={iws}fluid{iws}}}{ws}"),
        };
        let spec = FidelitySpec::parse(&spelling).expect(&spelling);
        let expected = if hybrid { FidelitySpec::Hybrid } else { FidelitySpec::Pkt };
        prop_assert_eq!(spec, expected, "{} parsed wrong", spelling);
        // The label is already canonical: parse ∘ label == id.
        prop_assert_eq!(FidelitySpec::parse(spec.label()), Ok(spec));
    }
}

/// A small background-loaded grid crossed with the fidelity axis.
fn hybrid_matrix(seeds: u32) -> ScenarioMatrix {
    ScenarioMatrix::new("fidelity-prop")
        .fabrics([FabricSpec::two_tier(4, 1)])
        .lbs([LabeledLb::plain(LbKind::Ops { evs_size: 1 << 16 })])
        .workloads([WorkloadSpec::Permutation { bytes: 16 << 10 }])
        .background(WorkloadSpec::Tornado { bytes: 8 << 10 }, LbKind::Ecmp)
        .fidelities([FidelitySpec::Pkt, FidelitySpec::Hybrid])
        .seeds(seeds)
}

/// End-to-end: a hybrid grid's JSONL is byte-identical between 1 thread
/// and 8, and a 2-shard split reproduces exactly the unsharded records —
/// the fluid model never leaks scheduling into result bytes.
#[test]
fn hybrid_grid_bytes_survive_threads_and_shard_splits() {
    let cells = hybrid_matrix(2).expand();
    assert!(
        cells.iter().any(|c| c.key().contains("/fi=hybrid/")),
        "the grid must contain hybrid cells"
    );
    let serial = run_cells(&cells, 1);
    let parallel = run_cells(&cells, 8);
    assert_eq!(to_jsonl(&serial), to_jsonl(&parallel));
    assert!(serial.iter().all(|r| r.summary.completed));
    // 2-shard split: the union of per-shard records is the full set.
    let mut full: Vec<String> = serial.iter().map(sweep::sink::jsonl_record).collect();
    let mut sharded: Vec<String> = Vec::new();
    for index in 1..=2 {
        let shard = Shard { index, count: 2 }.select(cells.clone());
        sharded.extend(run_cells(&shard, 4).iter().map(sweep::sink::jsonl_record));
    }
    full.sort();
    sharded.sort();
    assert_eq!(full, sharded);
}

/// The hybrid must keep the foreground close to the packet-level truth:
/// on the same background-loaded cell, the pkt and hybrid foreground FCT
/// distributions (mean and p99) agree within a factor of two. The hybrid
/// models background pressure analytically — residual link capacity plus
/// an M/D/1 queue-wait term — so it cannot be exact, but an
/// order-of-magnitude split would mean the residual coupling is wired
/// wrong.
#[test]
fn hybrid_foreground_fct_tracks_the_packet_level_truth() {
    let cells = hybrid_matrix(1).expand();
    let results = run_cells(&cells, 2);
    assert_eq!(results.len(), 2);
    let fct = |want_hybrid: bool| {
        let r = results
            .iter()
            .find(|r| r.key.contains("/fi=hybrid/") == want_hybrid)
            .expect("both fidelities present");
        assert!(r.summary.completed, "cell must complete");
        (
            r.summary.avg_fct.as_ps() as f64,
            r.summary.p99_fct.as_ps() as f64,
        )
    };
    let (pkt_mean, pkt_p99) = fct(false);
    let (hyb_mean, hyb_p99) = fct(true);
    assert!(pkt_mean > 0.0 && hyb_mean > 0.0);
    let ratio = |a: f64, b: f64| if a > b { a / b } else { b / a };
    assert!(
        ratio(pkt_mean, hyb_mean) < 2.0,
        "foreground mean FCT diverged: pkt {pkt_mean}ps vs hybrid {hyb_mean}ps"
    );
    assert!(
        ratio(pkt_p99, hyb_p99) < 2.0,
        "foreground p99 FCT diverged: pkt {pkt_p99}ps vs hybrid {hyb_p99}ps"
    );
}
