//! The sweep engine's determinism contract, as properties:
//!
//! 1. a matrix run with 1 thread and with N threads produces byte-identical
//!    JSONL output,
//! 2. per-cell derived seeds are stable across filter order — selecting a
//!    subset of cells, reordering them or running them alongside other
//!    presets never changes what any one cell computes.

use proptest::prelude::*;

use baselines::kind::LbKind;
use reps::reps::RepsConfig;
use sweep::matrix::{LabeledLb, ScenarioMatrix};
use sweep::spec::{FabricSpec, FailureSpec, WorkloadSpec};
use sweep::{glob, presets, run_cells, to_jsonl};

/// A small but non-trivial grid: 2 lbs × 2 workloads × 2 failures × seeds.
fn small_matrix(seeds: u32) -> ScenarioMatrix {
    ScenarioMatrix::new("det-test")
        .fabrics([FabricSpec::two_tier(4, 1)])
        .lbs([
            LabeledLb::plain(LbKind::Ops { evs_size: 1 << 16 }),
            LabeledLb::plain(LbKind::Reps(RepsConfig::default())),
        ])
        .workloads([
            WorkloadSpec::Tornado { bytes: 32 << 10 },
            WorkloadSpec::Permutation { bytes: 32 << 10 },
        ])
        .failures([
            FailureSpec::None,
            FailureSpec::OneCable {
                at: netsim::time::Time::from_us(5),
                duration: None,
            },
        ])
        .seeds(seeds)
}

proptest! {
    /// 1 thread vs N threads: byte-identical JSONL.
    #[test]
    fn thread_count_never_changes_jsonl(threads in 2usize..12) {
        let cells = small_matrix(1).expand();
        let serial = to_jsonl(&run_cells(&cells, 1));
        let parallel = to_jsonl(&run_cells(&cells, threads));
        prop_assert_eq!(serial, parallel);
    }

    /// Running a filtered subset yields exactly the matching lines of the
    /// full run: no cell's result depends on which other cells ran.
    #[test]
    fn filtered_subset_is_a_sublist_of_the_full_run(
        threads in 1usize..8,
        pick in any::<(bool, bool, bool)>(),
    ) {
        let all_cells = small_matrix(1).expand();
        let full: Vec<String> = run_cells(&all_cells, threads)
            .iter()
            .map(sweep::sink::jsonl_record)
            .collect();
        // Filter by an arbitrary subset of the lb/workload axes (keep at
        // least one cell).
        let subset: Vec<_> = all_cells
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                (pick.0 || c.lb.label == "REPS")
                    && (pick.1 || c.workload.label().starts_with("tornado"))
                    && (pick.2 || i % 2 == 0)
            })
            .map(|(_, c)| c.clone())
            .collect();
        prop_assume!(!subset.is_empty());
        let sub_lines: Vec<String> = run_cells(&subset, threads)
            .iter()
            .map(sweep::sink::jsonl_record)
            .collect();
        for line in &sub_lines {
            prop_assert!(full.contains(line), "subset line missing from full run: {line}");
        }
    }

    /// Derived seeds are a pure function of the cell key: permuting the
    /// cell list changes nothing about any cell.
    #[test]
    fn cell_order_never_changes_results(swap_seed in any::<u64>()) {
        let mut cells = small_matrix(2).expand();
        let baseline = to_jsonl(&run_cells(&cells, 4));
        // Deterministic pseudo-shuffle of the cell order.
        let mut rng = netsim::rng::Rng64::new(swap_seed);
        rng.shuffle(&mut cells);
        let shuffled = to_jsonl(&run_cells(&cells, 4));
        prop_assert_eq!(baseline, shuffled);
    }
}

#[test]
fn derived_seeds_are_stable_across_preset_selection() {
    use std::collections::BTreeMap;
    let scale = harness::Scale::Quick;
    // Seeds recorded while expanding everything...
    let mut seeds: BTreeMap<String, u64> = BTreeMap::new();
    for m in presets::all(scale) {
        for c in m.expand() {
            seeds.insert(c.key(), c.derived_seed());
        }
    }
    // ...must match seeds observed when expanding a filtered selection.
    for m in presets::all(scale)
        .into_iter()
        .filter(|m| glob::matches("fig0*", &m.name))
    {
        for c in m.expand() {
            assert_eq!(
                seeds[&c.key()],
                c.derived_seed(),
                "seed drift for {}",
                c.key()
            );
        }
    }
}

#[test]
fn quick_macro_figures_run_in_parallel_and_match_serial() {
    // The acceptance scenario, shrunk to stay test-suite-fast: a slice of
    // the fig0* presets at quick scale, 8 threads vs 1 thread.
    let cells: Vec<_> = presets::all(harness::Scale::Quick)
        .into_iter()
        .filter(|m| glob::matches("fig03*", &m.name) || glob::matches("fig09*", &m.name))
        .flat_map(|m| m.expand())
        .collect();
    assert!(cells.len() > 20, "slice too small: {}", cells.len());
    let serial = to_jsonl(&run_cells(&cells, 1));
    let parallel = to_jsonl(&run_cells(&cells, 8));
    assert_eq!(serial, parallel);
    assert_eq!(serial.lines().count(), cells.len());
}
