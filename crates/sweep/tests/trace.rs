//! `--trace` / `--diagnostics` composition contract: per-cell trace
//! documents are pure functions of cell keys (identical across thread
//! counts and shard splits), results stay byte-identical with tracing on
//! or off, the cache only answers a cell when its trace document exists
//! and its diagnostics presence matches the request, and a REPS cell
//! under the fig07 rolling-failure scenario explains into the paper's
//! failure-reaction story.

use std::collections::BTreeMap;
use std::path::Path;

use harness::Scale;
use sweep::matrix::{Instrument, ScenarioMatrix};
use sweep::spec::{FailureSpec, WorkloadSpec};
use sweep::{
    explain_doc, presets, run_cells, run_cells_instrumented, to_jsonl, CellCache, RunSinks, Shard,
    TraceStore,
};

fn grid() -> ScenarioMatrix {
    ScenarioMatrix::new("trace-it")
        .workloads([
            WorkloadSpec::Tornado { bytes: 24 << 10 },
            WorkloadSpec::Permutation { bytes: 24 << 10 },
        ])
        .failures([
            FailureSpec::None,
            FailureSpec::OneCable {
                at: netsim::time::Time::from_us(5),
                duration: None,
            },
        ])
        .seeds(2)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("reps-trace-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Every trace document in `dir`, keyed by file name.
fn dir_contents(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("trace dir exists") {
        let entry = entry.expect("readable entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(
            name,
            std::fs::read_to_string(entry.path()).expect("readable doc"),
        );
    }
    out
}

fn traced(trace: &TraceStore) -> RunSinks<'_> {
    RunSinks {
        trace: Some(trace),
        ..RunSinks::default()
    }
}

#[test]
fn trace_dir_is_identical_across_threads_and_shards() {
    let cells = grid().expand();
    let base = tmpdir("determinism");

    // Unsharded reference at 1 thread.
    let ref_dir = base.join("ref");
    let store = TraceStore::create(&ref_dir).unwrap();
    let one = run_cells_instrumented(&cells, 1, traced(&store));
    assert_eq!(one.trace_errors, 0);
    let reference = dir_contents(&ref_dir);
    assert_eq!(reference.len(), cells.len(), "one document per cell");
    // Failure cells must actually have recorded the failure.
    for cell in &cells {
        let doc = &reference[&format!("{:016x}.trace.jsonl", cell.derived_seed())];
        assert_eq!(
            doc.contains("\"kind\":\"link_down\""),
            !matches!(cell.failures, FailureSpec::None),
            "{}",
            cell.key()
        );
    }

    // More threads: same directory contents, byte for byte.
    let par_dir = base.join("par");
    let store = TraceStore::create(&par_dir).unwrap();
    let par = run_cells_instrumented(&cells, 4, traced(&store));
    assert_eq!(dir_contents(&par_dir), reference);

    // Results are byte-identical with tracing on or off, at any split.
    let plain = to_jsonl(&run_cells(&cells, 2));
    assert_eq!(to_jsonl(&one.results), plain);
    assert_eq!(to_jsonl(&par.results), plain);

    // Two shards writing into one directory reproduce it exactly.
    let shard_dir = base.join("sharded");
    let store = TraceStore::create(&shard_dir).unwrap();
    let mut owned_total = 0;
    for index in 1..=2 {
        let shard = Shard { index, count: 2 };
        let owned = shard.select(cells.clone());
        owned_total += owned.len();
        let run = run_cells_instrumented(&owned, 2, traced(&store));
        assert_eq!(run.trace_errors, 0);
    }
    assert_eq!(owned_total, cells.len());
    assert_eq!(dir_contents(&shard_dir), reference);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn cache_hits_require_trace_documents_and_matching_diagnostics() {
    let cells = grid().expand();
    let base = tmpdir("cache");
    let cache = CellCache::open(base.join("cache"), "trace-test").unwrap();
    let cached = RunSinks {
        cache: Some(&cache),
        ..RunSinks::default()
    };
    let cached_diag = RunSinks {
        diagnostics: true,
        ..cached
    };

    // Warm the cache without a trace store...
    let cold = run_cells_instrumented(&cells, 2, cached);
    assert_eq!((cold.hits, cold.misses), (0, cells.len()));

    // ...then ask for traces: the warm cache must NOT satisfy the run,
    // because no trace documents exist yet.
    let trace_dir = base.join("trace");
    let store = TraceStore::create(&trace_dir).unwrap();
    let cached_traced = RunSinks {
        trace: Some(&store),
        ..cached
    };
    let fill = run_cells_instrumented(&cells, 2, cached_traced);
    assert_eq!(
        (fill.hits, fill.misses),
        (0, cells.len()),
        "missing trace documents must force execution"
    );
    assert_eq!(dir_contents(&trace_dir).len(), cells.len());
    assert_eq!(to_jsonl(&fill.results), to_jsonl(&cold.results));

    // With both cache and trace warm, nothing executes.
    let before = dir_contents(&trace_dir);
    let warm = run_cells_instrumented(&cells, 2, cached_traced);
    assert_eq!((warm.hits, warm.misses), (cells.len(), 0));
    assert!(warm.executed.is_empty());
    assert_eq!(dir_contents(&trace_dir), before);

    // A single deleted document re-runs exactly that cell.
    let victim = &cells[3];
    std::fs::remove_file(store.path_for(victim.derived_seed())).unwrap();
    let partial = run_cells_instrumented(&cells, 2, cached_traced);
    assert_eq!((partial.hits, partial.misses), (cells.len() - 1, 1));
    assert_eq!(dir_contents(&trace_dir), before, "document restored");

    // Diagnostics partition cache hits: the warm diagnostics-free cache
    // must not answer a --diagnostics run (the bytes would lack the
    // block), and the refreshed entries then serve diagnostics runs only.
    let diag = run_cells_instrumented(&cells, 2, cached_diag);
    assert_eq!(
        (diag.hits, diag.misses),
        (0, cells.len()),
        "diagnostics-free entries must not answer a diagnostics run"
    );
    assert!(to_jsonl(&diag.results).contains("\"diagnostics\":{"));
    let diag_warm = run_cells_instrumented(&cells, 2, cached_diag);
    assert_eq!((diag_warm.hits, diag_warm.misses), (cells.len(), 0));
    assert_eq!(to_jsonl(&diag_warm.results), to_jsonl(&diag.results));
    let plain_again = run_cells_instrumented(&cells, 2, cached);
    assert_eq!(
        (plain_again.hits, plain_again.misses),
        (0, cells.len()),
        "diagnostics entries must not answer a plain run"
    );
    assert_eq!(to_jsonl(&plain_again.results), to_jsonl(&cold.results));

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn diagnostics_are_opt_in_and_summed_per_scheme() {
    let cells = grid().expand();
    // Without the flag the bytes carry no diagnostics block at all.
    let plain = to_jsonl(&run_cells(&cells, 2));
    assert!(!plain.contains("diagnostics"));
    // With it, every record carries its scheme's counters.
    let run = run_cells_instrumented(
        &cells,
        2,
        RunSinks {
            diagnostics: true,
            ..RunSinks::default()
        },
    );
    for r in &run.results {
        let diag = r.summary.diagnostics.as_ref().expect("diagnostics on");
        let get = |k: &str| diag.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        match r.lb.as_str() {
            "REPS" => {
                assert!(get("reps_fresh_draws").unwrap() > 0.0, "{}", r.key);
                assert!(get("reps_recycled_draws").is_some(), "{}", r.key);
            }
            "OPS" => assert!(diag.is_empty(), "OPS has no counters: {:?}", diag),
            other => panic!("unexpected lb {other}"),
        }
    }
}

#[test]
fn fig07_reps_cell_explains_the_failure_reaction() {
    // The acceptance scenario: one REPS cell of the fig07 rolling-failure
    // preset, traced and explained. The report must carry a nonzero EV
    // recycle rate, the reorder-depth histogram and the failure timeline.
    // Full scale: quick-scale flows (2 MiB) drain before the first rolling
    // failure at 100us, so only the full-size cell exercises the reaction.
    let fig07 = presets::all(Scale::Full)
        .into_iter()
        .find(|m| m.name == "fig07-failure-micro")
        .expect("fig07 preset exists");
    let cell = fig07
        .expand()
        .into_iter()
        .find(|c| c.lb.label == "REPS")
        .expect("REPS cell");
    let out = cell.run_instrumented(Instrument {
        trace: true,
        diagnostics: true,
        ..Instrument::default()
    });
    let doc = out.trace_doc.expect("trace requested");
    let report = explain_doc(&doc).expect("trace explains");
    assert!(report.contains(&cell.key()), "{report}");
    assert!(report.contains("recycled"), "{report}");
    assert!(!report.contains("reuse rate 0.0%"), "{report}");
    assert!(report.contains("depth histogram"), "{report}");
    assert!(report.contains("link_down"), "{report}");
    assert!(report.contains("freeze"), "{report}");

    // The trace and the diagnostics agree on the recycle count: the
    // summed per-LB counter equals the recycled ev_choice events.
    let recycled_events = doc
        .lines()
        .filter(|l| l.contains("\"decision\":\"recycled\""))
        .count() as f64;
    let diag = out.result.summary.diagnostics.expect("diagnostics on");
    let counter = diag
        .iter()
        .find(|(n, _)| n == "reps_recycled_draws")
        .map(|(_, v)| *v)
        .expect("reps counter");
    assert_eq!(counter, recycled_events, "trace and diagnostics disagree");
}
