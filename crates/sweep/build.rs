//! Embeds a code-version fingerprint for the incremental sweep cache.
//!
//! The cache (`repsbench run --cache DIR`) namespaces entries by this
//! fingerprint so results recorded by one version of the simulator are
//! never replayed by another. `git describe --always --dirty` is the
//! source of truth when building from a checkout; source tarballs fall
//! back to the package version (best-effort: a fallback fingerprint only
//! changes across releases, not commits).
//!
//! Granularity is the commit: successive *uncommitted* edits all describe
//! to the same `...-dirty` fingerprint, so wipe the cache directory (or
//! commit) when iterating on uncommitted simulator changes.

use std::process::Command;

fn git_describe() -> Option<String> {
    let out = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let desc = String::from_utf8(out.stdout).ok()?;
    let desc = desc.trim();
    if desc.is_empty() {
        return None;
    }
    Some(desc.to_string())
}

fn main() {
    // Track branch switches (HEAD) *and* commits: HEAD is usually the
    // symbolic `ref: refs/heads/<branch>` and does not change on commit —
    // only the resolved ref file (or packed-refs) does, so watch those
    // too. Skip the watches entirely when building without a .git (a
    // missing watch path would force a rebuild on every invocation).
    let git_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../.git");
    let head = git_dir.join("HEAD");
    if head.exists() {
        println!("cargo:rerun-if-changed={}", head.display());
        if let Ok(contents) = std::fs::read_to_string(&head) {
            if let Some(r) = contents.strip_prefix("ref: ") {
                let ref_file = git_dir.join(r.trim());
                if ref_file.exists() {
                    println!("cargo:rerun-if-changed={}", ref_file.display());
                }
            }
        }
        let packed = git_dir.join("packed-refs");
        if packed.exists() {
            println!("cargo:rerun-if-changed={}", packed.display());
        }
    } else {
        println!("cargo:rerun-if-changed=build.rs");
    }
    let raw = git_describe()
        .unwrap_or_else(|| format!("pkg-{}", std::env::var("CARGO_PKG_VERSION").unwrap()));
    // The fingerprint becomes a cache directory name; keep it path-safe.
    let fp: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    println!("cargo:rustc-env=REPS_BUILD_FINGERPRINT={fp}");
}
