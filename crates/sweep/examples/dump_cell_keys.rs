//! Dumps every built-in preset cell as `derived_seed<TAB>shard-of-4<TAB>key`,
//! one line per cell, quick scale first and then full scale.
//!
//! This is the generator for the `tests/fixtures/cell_keys_*.tsv`
//! snapshots `tests/key_stability.rs` diffs against —
//! `cell_keys_pre_oversub.tsv` (frozen before the oversubscription axis)
//! and `cell_keys_with_lbspec.tsv` (the full pool after the LB-spec
//! grammar): derived seeds decide RNG streams, cache addresses and shard
//! membership, so an accidental key change silently invalidates warm
//! caches and moves cells between fleet shards. Regenerate the *latest*
//! fixture ONLY when a key change is intentional (never the frozen
//! historical one):
//!
//! ```text
//! cargo run -p sweep --example dump_cell_keys \
//!     > crates/sweep/tests/fixtures/cell_keys_with_lbspec.tsv
//! ```

use harness::Scale;
use sweep::presets;

fn main() {
    for (tag, scale) in [("quick", Scale::Quick), ("full", Scale::Full)] {
        for m in presets::all(scale) {
            for cell in m.expand() {
                let seed = cell.derived_seed();
                println!("{tag}\t{seed:016x}\t{}\t{}", seed % 4, cell.key());
            }
        }
    }
}
