//! Content-addressed per-cell result cache for incremental sweeps
//! (`repsbench run --cache DIR`).
//!
//! Cells are pure functions of their keys (the derived RNG seed is the
//! key's FNV-1a hash), so a cell's result can be reused for as long as the
//! simulator code is unchanged. The cache stores one canonical JSONL
//! record per cell at
//!
//! ```text
//! DIR/<fingerprint>/<derived_seed as 16 hex digits>.json
//! ```
//!
//! where `<fingerprint>` is the compiled-in code version
//! ([`build_fingerprint`], `git describe` at build time) — a new commit
//! lands in a fresh namespace, so results from older commits are never
//! replayed. Granularity is the commit: successive *uncommitted* edits
//! share one `...-dirty` namespace, so wipe the cache directory (or
//! commit) when iterating on uncommitted simulator changes. The stored
//! record embeds the full cell key; a lookup whose key does not match (a
//! 64-bit hash collision, or a foreign file) is treated as a miss rather
//! than trusted.
//!
//! Hits are byte-identical to fresh runs: the stored bytes are the
//! canonical record, and [`crate::sink::parse_record`] /
//! [`crate::sink::jsonl_record`] are exact inverses (pinned by tests).

use std::io;
use std::path::{Path, PathBuf};

use crate::matrix::{Cell, CellResult, Instrument};
use crate::progress::Progress;
use crate::runner::run_indexed;
use crate::series::SeriesSink;
use crate::sink::{jsonl_record, parse_record};
use crate::trace::TraceStore;

/// The compiled-in code-version fingerprint (`git describe --always
/// --dirty` at build time; `pkg-<version>` when building without git).
pub fn build_fingerprint() -> &'static str {
    env!("REPS_BUILD_FINGERPRINT")
}

/// An open (created) cache namespace: one directory per code version.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// Opens `dir` under namespace `fingerprint`, creating it if needed.
    pub fn open(dir: impl AsRef<Path>, fingerprint: &str) -> io::Result<CellCache> {
        let dir = dir.as_ref().join(fingerprint);
        std::fs::create_dir_all(&dir)?;
        Ok(CellCache { dir })
    }

    /// Opens `dir` under the compiled-in [`build_fingerprint`].
    pub fn open_versioned(dir: impl AsRef<Path>) -> io::Result<CellCache> {
        CellCache::open(dir, build_fingerprint())
    }

    /// The namespace directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, derived_seed: u64) -> PathBuf {
        self.dir.join(format!("{derived_seed:016x}.json"))
    }

    /// Looks `cell` up; `None` on absence, unreadable/unparsable entries,
    /// or a key mismatch (hash collision / foreign file) — never an error,
    /// a miss just re-runs the cell.
    pub fn lookup(&self, cell: &Cell) -> Option<CellResult> {
        let bytes = std::fs::read_to_string(self.path_for(cell.derived_seed())).ok()?;
        let record = parse_record(bytes.trim_end_matches('\n')).ok()?;
        if record.key != cell.key() {
            return None;
        }
        Some(record)
    }

    /// Stores one result as its canonical record (atomically: write to a
    /// temp file in the same directory, then rename, so a concurrent
    /// reader never sees a torn entry).
    pub fn store(&self, result: &CellResult) -> io::Result<()> {
        let path = self.path_for(result.derived_seed);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, format!("{}\n", jsonl_record(result)))?;
        std::fs::rename(&tmp, &path)
    }
}

/// The outcome of a cached sweep run.
#[derive(Debug)]
pub struct CachedRun {
    /// All results (cache hits + fresh runs), sorted by cell key — the
    /// same canonical order `run_cells` returns.
    pub results: Vec<CellResult>,
    /// Indices into `results` of the freshly executed cells (ascending):
    /// the cells whose perf counters are real. Cache hits carry
    /// `events == wall_ns == 0`.
    pub executed: Vec<usize>,
    /// Cells answered from the cache.
    pub hits: usize,
    /// Cells that had to run.
    pub misses: usize,
    /// Fresh results that could not be written back to the cache (the
    /// sweep's results are unaffected — stores are best-effort so a full
    /// disk can never discard hours of simulation).
    pub store_errors: usize,
    /// Series documents that could not be written (best-effort, like cache
    /// stores; always 0 when no series sink was given).
    pub series_errors: usize,
    /// Trace documents that could not be written (best-effort; always 0
    /// when no trace store was given).
    pub trace_errors: usize,
}

impl CachedRun {
    /// The freshly executed results, in key order.
    pub fn executed_results(&self) -> impl Iterator<Item = &CellResult> {
        self.executed.iter().map(move |&i| &self.results[i])
    }
}

/// Runs `cells` on `threads` workers, answering from `cache` where
/// possible and storing every fresh result back (best-effort — store
/// failures are counted, not fatal). With `cache == None` this is exactly
/// [`crate::runner::run_cells`].
pub fn run_cells_cached(cells: &[Cell], threads: usize, cache: Option<&CellCache>) -> CachedRun {
    run_cells_sinked(cells, threads, cache, None)
}

/// [`run_cells_cached`] with an optional per-cell time-series sink
/// ([`crate::series`]): executed cells additionally write their series
/// document into `series` (best-effort, counted in
/// [`CachedRun::series_errors`]).
///
/// The sink *gates* cache hits: a cached result only stands in for an
/// execution when its series document already exists in `series`, so
/// pairing a warm cache with a fresh series directory re-runs the cells
/// instead of silently omitting their series. Results are byte-identical
/// either way — series instrumentation never perturbs the result stream.
pub fn run_cells_sinked(
    cells: &[Cell],
    threads: usize,
    cache: Option<&CellCache>,
    series: Option<&SeriesSink>,
) -> CachedRun {
    run_cells_instrumented(
        cells,
        threads,
        RunSinks {
            cache,
            series,
            ..RunSinks::default()
        },
    )
}

/// Everything a `repsbench run` invocation can attach to a sweep: the
/// cell cache, the opt-in series / trace sinks, the diagnostics flag and
/// a progress reporter.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunSinks<'a> {
    /// Result cache (`--cache DIR`).
    pub cache: Option<&'a CellCache>,
    /// Per-cell time-series sink (`--series DIR`).
    pub series: Option<&'a SeriesSink>,
    /// Per-cell flight-recorder sink (`--trace DIR`).
    pub trace: Option<&'a TraceStore>,
    /// Collect per-LB decision counters into the summaries
    /// (`--diagnostics`; changes the result JSONL bytes, so it also
    /// partitions cache hits — see [`run_cells_instrumented`]).
    pub diagnostics: bool,
    /// Live progress reporter (ticked per finished cell).
    pub progress: Option<&'a Progress>,
}

/// [`run_cells_cached`] with the full sink set ([`RunSinks`]): executed
/// cells additionally write their series / trace documents (best-effort,
/// counted in [`CachedRun::series_errors`] / [`CachedRun::trace_errors`])
/// and collect diagnostics when asked.
///
/// The sinks *gate* cache hits: a cached result only stands in for an
/// execution when its series document (if a series sink is given) and its
/// trace document (if a trace store is given) already exist, and when its
/// recorded diagnostics presence matches the request — a diagnostics run
/// must not replay diagnostics-free bytes, and vice versa. Results are
/// byte-identical to an uninstrumented run except for the opt-in
/// diagnostics block.
pub fn run_cells_instrumented(cells: &[Cell], threads: usize, sinks: RunSinks<'_>) -> CachedRun {
    let inst = Instrument {
        series: sinks.series.is_some(),
        trace: sinks.trace.is_some(),
        diagnostics: sinks.diagnostics,
    };
    let mut cached: Vec<CellResult> = Vec::new();
    let mut to_run: Vec<Cell> = Vec::new();
    for cell in cells {
        let hit = sinks
            .cache
            .and_then(|c| c.lookup(cell))
            .filter(|r| r.summary.diagnostics.is_some() == sinks.diagnostics)
            .filter(|_| sinks.series.is_none_or(|s| s.has(cell)))
            .filter(|_| sinks.trace.is_none_or(|t| t.has(cell)));
        match hit {
            Some(r) => {
                if let Some(p) = sinks.progress {
                    p.tick_hit();
                }
                cached.push(r);
            }
            None => to_run.push(cell.clone()),
        }
    }
    let fresh: Vec<(CellResult, bool, bool)> = run_indexed(&to_run, threads, |cell| {
        let out = cell.run_instrumented(inst);
        let series_ok = match (sinks.series, &out.series_doc) {
            (Some(sink), Some(doc)) => sink.store(out.result.derived_seed, doc).is_ok(),
            _ => true,
        };
        let trace_ok = match (sinks.trace, &out.trace_doc) {
            (Some(store), Some(doc)) => store.store(out.result.derived_seed, doc).is_ok(),
            _ => true,
        };
        if let Some(p) = sinks.progress {
            p.tick_executed(out.result.events);
        }
        (out.result, series_ok, trace_ok)
    });
    let series_errors = fresh.iter().filter(|(_, s, _)| !s).count();
    let trace_errors = fresh.iter().filter(|(_, _, t)| !t).count();
    let store_errors = match sinks.cache {
        Some(cache) => fresh
            .iter()
            .filter(|(r, _, _)| cache.store(r).is_err())
            .count(),
        None => 0,
    };
    let hits = cached.len();
    let misses = fresh.len();
    let mut tagged: Vec<(CellResult, bool)> = cached
        .into_iter()
        .map(|r| (r, false))
        .chain(fresh.into_iter().map(|(r, _, _)| (r, true)))
        .collect();
    tagged.sort_by(|a, b| a.0.key.cmp(&b.0.key));
    let executed = tagged
        .iter()
        .enumerate()
        .filter_map(|(i, (_, fresh))| fresh.then_some(i))
        .collect();
    CachedRun {
        results: tagged.into_iter().map(|(r, _)| r).collect(),
        executed,
        hits,
        misses,
        store_errors,
        series_errors,
        trace_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ScenarioMatrix;
    use crate::runner::run_cells;
    use crate::sink::to_jsonl;
    use crate::spec::WorkloadSpec;

    fn matrix() -> ScenarioMatrix {
        ScenarioMatrix::new("cache-test")
            .workloads([WorkloadSpec::Tornado { bytes: 32 << 10 }])
            .seeds(3)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("reps-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn warm_cache_executes_nothing_and_is_byte_identical() {
        let dir = tmpdir("warm");
        let cells = matrix().expand();
        let cache = CellCache::open(&dir, "v-test").unwrap();
        let cold = run_cells_cached(&cells, 2, Some(&cache));
        assert_eq!((cold.hits, cold.misses), (0, cells.len()));
        assert_eq!(cold.store_errors, 0);
        assert_eq!(cold.executed_results().count(), cells.len());
        let warm = run_cells_cached(&cells, 2, Some(&cache));
        assert_eq!((warm.hits, warm.misses), (cells.len(), 0));
        assert!(warm.executed.is_empty());
        assert_eq!(to_jsonl(&warm.results), to_jsonl(&cold.results));
        assert_eq!(
            to_jsonl(&warm.results),
            to_jsonl(&run_cells(&cells, 2)),
            "cache hits must be byte-identical to a fresh run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_change_invalidates_everything() {
        let dir = tmpdir("fp");
        let cells = matrix().expand();
        let v1 = CellCache::open(&dir, "v1").unwrap();
        run_cells_cached(&cells, 2, Some(&v1));
        let v2 = CellCache::open(&dir, "v2").unwrap();
        let run = run_cells_cached(&cells, 2, Some(&v2));
        assert_eq!((run.hits, run.misses), (0, cells.len()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_and_corruption_degrade_to_misses() {
        let dir = tmpdir("corrupt");
        let cells = matrix().expand();
        let cache = CellCache::open(&dir, "v").unwrap();
        run_cells_cached(&cells, 2, Some(&cache));
        // Corrupt one entry, swap another cell's entry into a wrong slot.
        let a = cells[0].derived_seed();
        let b = cells[1].derived_seed();
        std::fs::write(cache.dir().join(format!("{a:016x}.json")), "garbage").unwrap();
        let b_bytes = std::fs::read(cache.dir().join(format!("{b:016x}.json"))).unwrap();
        std::fs::write(
            cache
                .dir()
                .join(format!("{:016x}.json", cells[2].derived_seed())),
            b_bytes,
        )
        .unwrap();
        let run = run_cells_cached(&cells, 2, Some(&cache));
        assert_eq!((run.hits, run.misses), (cells.len() - 2, 2));
        // The damaged entries were repaired by the re-run.
        let again = run_cells_cached(&cells, 2, Some(&cache));
        assert_eq!((again.hits, again.misses), (cells.len(), 0));
        assert_eq!(to_jsonl(&run.results), to_jsonl(&again.results));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_failures_do_not_discard_results() {
        let dir = tmpdir("storefail");
        let cells = matrix().expand();
        let cache = CellCache::open(&dir, "v").unwrap();
        // Sabotage the namespace: replace the directory with a plain file
        // so every store (and lookup) fails.
        std::fs::remove_dir_all(cache.dir()).unwrap();
        std::fs::write(cache.dir(), b"not a directory").unwrap();
        let run = run_cells_cached(&cells, 2, Some(&cache));
        assert_eq!(run.store_errors, cells.len(), "stores must fail");
        assert_eq!((run.hits, run.misses), (0, cells.len()));
        assert_eq!(
            to_jsonl(&run.results),
            to_jsonl(&run_cells(&cells, 2)),
            "an unusable cache must not affect the sweep's results"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_fingerprint_is_nonempty_and_path_safe() {
        let fp = build_fingerprint();
        assert!(!fp.is_empty());
        assert!(
            fp.chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')),
            "{fp:?}"
        );
    }
}
