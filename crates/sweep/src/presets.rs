//! Named scenario presets: one [`ScenarioMatrix`] per simulation figure of
//! the paper, plus new scenarios beyond it.
//!
//! Presets cover every figure that runs fabric simulations (Figs. 2–13,
//! 15, 16, 19, 21–23). The theory figures (14, 17, 18, 20, 24 and
//! Table 1) evaluate closed-form balls-into-bins models, not experiments,
//! and stay in the `bench` crate. Preset grids are *representative*
//! slices of each figure — the figure binaries remain the full-fidelity
//! reproduction — sized so the whole quick-scale suite runs in minutes.
//!
//! New scenarios beyond the paper:
//!
//! * `incast-sweep` — incast degree sweep across the lineup,
//! * `permutation-sweep` — message-size sweep, multi-seed,
//! * `rolling-failures` — a rolling maintenance wave of transient cable
//!   outages (the fabric is never healthy, never badly broken),
//! * `mixed-collectives` — AI collectives with background AllToAll,
//! * `oversub-asym` — REPS vs. OPS across oversubscription ratios
//!   (`o ∈ {1, 2, 4}` leaf/spine plus a 2:1 three-tier), healthy and with
//!   degraded uplinks — the entropy-recycling-under-asymmetry claim on
//!   constrained fabrics,
//! * `reconv-delay` — the routing-reconvergence axis: how quickly must
//!   switches withdraw a cut path before spraying stops paying for it?
//! * `evs-sensitivity` — the §4.5.2 parameter ablation: OPS vs. REPS at
//!   EVS sizes 64 … 64K, every axis value a plain LB-spec string
//!   (`OPS{evs=64}`, `REPS{evs=64}`, …),
//! * `flowlet-gap` — flowlet inactivity-gap sweep (`Flowlet{gap=...}`)
//!   around the paper's RTT/2 default, under degraded uplinks,
//! * `gray-failures` — the adversarial-fault axis: gray (silent) loss at
//!   two severities, payload corruption and a unidirectional blackhole,
//!   none of which give routing a link-down signal to react to,
//! * `flap-reconv` — flapping links crossed with the reconvergence axis:
//!   does reconvergence help or hurt when the path keeps coming back?
//! * `hybrid-scale` — the fidelity axis: the same background-loaded cell
//!   at full packet fidelity and with the fluid background model, so the
//!   foreground FCT error the hybrid introduces is itself a measured,
//!   golden-pinned quantity.

use baselines::kind::LbKind;
use baselines::plb::PlbConfig;
use harness::Scale;
use netsim::time::Time;
use reps::reps::RepsConfig;
use transport::cc::CcKind;
use transport::config::{CoalesceConfig, CoalesceVariant};

use crate::fault::FaultSpec;
use crate::fidelity::FidelitySpec;
use crate::matrix::{labeled_lineup, LabeledLb, ScenarioMatrix};
use crate::spec::{FabricSpec, FailureSpec, SimProfile, WorkloadSpec};

/// Parses a static fault-spec string; presets only use literals, so a
/// failure here is a bug caught by the preset tests.
fn fault(s: &str) -> FaultSpec {
    FaultSpec::parse(s).expect(s)
}

fn ops() -> LbKind {
    LbKind::Ops { evs_size: 1 << 16 }
}

fn reps() -> LbKind {
    LbKind::Reps(RepsConfig::default())
}

fn ops_vs_reps() -> Vec<LabeledLb> {
    vec![LabeledLb::plain(ops()), LabeledLb::plain(reps())]
}

/// The macro comparison fabric (32 hosts quick, 128 full).
fn macro_fabric(scale: Scale) -> FabricSpec {
    FabricSpec::two_tier(scale.pick(8, 16), 1)
}

/// Macro message bytes scaled from the paper's MiB figure (1/16 quick).
fn macro_bytes(scale: Scale, full_mib: u64) -> u64 {
    scale.pick((full_mib << 20) / 16, full_mib << 20)
}

/// Micro message bytes (1/4 of paper scale when quick).
fn micro_bytes(scale: Scale, full_mib: u64) -> u64 {
    scale.pick((full_mib << 20) / 4, full_mib << 20)
}

fn rtt() -> Time {
    netsim::config::SimConfig::paper_default().base_rtt(3)
}

/// All built-in presets at the given scale, in figure order.
pub fn all(scale: Scale) -> Vec<ScenarioMatrix> {
    let lineup = labeled_lineup(&LbKind::paper_lineup(rtt()));
    let failure_lineup = labeled_lineup(&LbKind::failure_lineup(rtt()));
    let synthetic = |mib: u64| {
        vec![
            WorkloadSpec::Incast {
                degree: 8,
                bytes: macro_bytes(scale, mib),
            },
            WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, mib),
            },
            WorkloadSpec::Tornado {
                bytes: macro_bytes(scale, mib),
            },
        ]
    };
    let fail_at = scale.pick(Time::from_us(8), Time::from_us(30));

    vec![
        // === Paper figures ==============================================
        ScenarioMatrix::new("fig02-tornado-micro")
            .fabrics([FabricSpec::two_tier(16, 1)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Tornado {
                bytes: micro_bytes(scale, 16),
            }]),
        ScenarioMatrix::new("fig03-symmetric-macro")
            .fabrics([macro_fabric(scale)])
            .lbs(lineup.clone())
            .workloads(synthetic(8)),
        ScenarioMatrix::new("fig04-asymmetric-micro")
            .fabrics([FabricSpec::two_tier(16, 1)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Tornado {
                bytes: micro_bytes(scale, 32),
            }])
            .failures([FailureSpec::DegradedUplinks { pct: 1, gbps: 200 }]),
        ScenarioMatrix::new("fig05-asymmetric-macro")
            .fabrics([macro_fabric(scale)])
            .lbs(lineup.clone())
            .workloads(synthetic(8))
            .failures([FailureSpec::DegradedUplinks { pct: 3, gbps: 200 }]),
        ScenarioMatrix::new("fig06-mixed-traffic")
            .fabrics([macro_fabric(scale)])
            .lbs(lineup.clone())
            .workloads([
                WorkloadSpec::Permutation {
                    bytes: macro_bytes(scale, 8),
                },
                WorkloadSpec::Tornado {
                    bytes: macro_bytes(scale, 8),
                },
            ])
            .background(
                WorkloadSpec::Permutation {
                    bytes: macro_bytes(scale, 8) / 9,
                },
                LbKind::Ecmp,
            ),
        ScenarioMatrix::new("fig07-failure-micro")
            .fabrics([FabricSpec::two_tier(16, 1)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Permutation {
                bytes: micro_bytes(scale, 8),
            }])
            .failures([FailureSpec::Rolling {
                count: 2,
                period: Time::from_us(100),
                down_for: Time::from_us(100),
            }]),
        ScenarioMatrix::new("fig08-failure-macro")
            .fabrics([macro_fabric(scale)])
            .lbs(failure_lineup.clone())
            .workloads([WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, 8),
            }])
            .failures([
                FailureSpec::OneCable {
                    at: fail_at,
                    duration: None,
                },
                FailureSpec::OneSwitch {
                    at: fail_at,
                    duration: None,
                },
                FailureSpec::RandomCables {
                    pct: 5,
                    at: fail_at,
                    duration: None,
                },
                FailureSpec::RandomSwitches {
                    pct: 5,
                    at: fail_at,
                    duration: None,
                },
                FailureSpec::BitErrorCable {
                    ber_millis: 10,
                    at: fail_at,
                },
            ]),
        ScenarioMatrix::new("fig09-extreme-failures")
            .fabrics([macro_fabric(scale)])
            .lbs([
                LabeledLb::plain(reps()),
                LabeledLb::plain(LbKind::Plb(PlbConfig::default())),
            ])
            .workloads([WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, 8),
            }])
            .failures(
                [0u32, 10, 20, 30, 40, 50]
                    .into_iter()
                    .map(|pct| FailureSpec::RandomCables {
                        pct,
                        at: Time::from_us(10),
                        duration: None,
                    })
                    .collect::<Vec<_>>(),
            ),
        ScenarioMatrix::new("fig10-fpga-goodput")
            .sim(SimProfile::FpgaTestbed)
            .fabrics([FabricSpec::custom(2, 32, 8)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::RingAllreduce {
                bytes: scale.pick(64u64 * (256 << 10), 64 * (4 << 20)),
            }])
            .deadline(Time::from_secs(5)),
        ScenarioMatrix::new("fig11-fpga-fct-drops")
            .sim(SimProfile::FpgaTestbed)
            .fabrics([FabricSpec::custom(2, 8, 4)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Permutation {
                bytes: scale.pick(1 << 20, 4 << 20),
            }])
            .failures([FailureSpec::OneCable {
                at: Time::from_us(50),
                duration: None,
            }])
            .deadline(Time::from_secs(5)),
        ScenarioMatrix::new("fig12-ack-coalescing")
            .fabrics([macro_fabric(scale)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Tornado {
                bytes: macro_bytes(scale, 8),
            }])
            .coalesce([1u32, 4, 16].into_iter().map(|ratio| {
                (
                    format!("plain{ratio}"),
                    CoalesceConfig::ratio(ratio, CoalesceVariant::Plain),
                )
            })),
        ScenarioMatrix::new("fig13-coalescing-variants")
            .fabrics([macro_fabric(scale)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Tornado {
                bytes: macro_bytes(scale, 8),
            }])
            .coalesce([
                (
                    "plain16".to_string(),
                    CoalesceConfig::ratio(16, CoalesceVariant::Plain),
                ),
                (
                    "carry16".to_string(),
                    CoalesceConfig::ratio(16, CoalesceVariant::CarryEvs),
                ),
                (
                    "reuse16".to_string(),
                    CoalesceConfig::ratio(16, CoalesceVariant::ReuseEvs),
                ),
            ]),
        ScenarioMatrix::new("fig15-evs-and-cc")
            .fabrics([macro_fabric(scale)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Tornado {
                bytes: macro_bytes(scale, 8),
            }])
            .ccs([CcKind::Dctcp, CcKind::Eqds, CcKind::Internal]),
        ScenarioMatrix::new("fig16-topology-scaling")
            .fabrics([
                FabricSpec::two_tier(8, 1),
                FabricSpec::two_tier(16, 1),
                FabricSpec::three_tier(4, 1),
            ])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, 8),
            }]),
        ScenarioMatrix::new("fig19-forced-freezing")
            .fabrics([FabricSpec::two_tier(16, 1)])
            .lbs([
                LabeledLb::plain(ops()),
                LabeledLb::plain(reps()),
                // Canonical spec label: `REPS+freeze@50us`.
                LabeledLb::plain(LbKind::Reps(RepsConfig {
                    force_freezing_at: Some(Time::from_us(50)),
                    ..RepsConfig::default()
                })),
            ])
            .workloads([WorkloadSpec::Tornado {
                bytes: micro_bytes(scale, 16),
            }]),
        ScenarioMatrix::new("fig21-three-tier")
            .fabrics([FabricSpec::three_tier(scale.pick(4, 8), 1)])
            .lbs(lineup.clone())
            .workloads(synthetic(4)),
        ScenarioMatrix::new("fig22-incremental-failures")
            .fabrics([FabricSpec::two_tier(8, 1)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Permutation {
                bytes: micro_bytes(scale, 8),
            }])
            .failures([FailureSpec::IncrementalTorUplinks {
                count: 3,
                period: scale.pick(Time::from_us(50), Time::from_us(200)),
            }])
            .deadline(Time::from_secs(5)),
        ScenarioMatrix::new("fig23-freezing-ablation")
            .fabrics([macro_fabric(scale)])
            .lbs([
                LabeledLb::plain(ops()),
                LabeledLb::plain(reps()),
                // Canonical spec label: `REPS-nofreeze`.
                LabeledLb::plain(LbKind::Reps(RepsConfig::default().without_freezing())),
            ])
            .workloads([WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, 8),
            }])
            .failures([FailureSpec::OneCable {
                at: fail_at,
                duration: None,
            }]),
        // === New scenarios beyond the paper =============================
        ScenarioMatrix::new("incast-sweep")
            .fabrics([macro_fabric(scale)])
            .lbs([
                LabeledLb::plain(LbKind::Ecmp),
                LabeledLb::plain(ops()),
                LabeledLb::plain(LbKind::Plb(PlbConfig::default())),
                LabeledLb::plain(reps()),
            ])
            .workloads(
                [4u32, 8, 16]
                    .into_iter()
                    .map(|degree| WorkloadSpec::Incast {
                        degree,
                        bytes: macro_bytes(scale, 4),
                    })
                    .collect::<Vec<_>>(),
            )
            .seeds(3),
        ScenarioMatrix::new("permutation-sweep")
            .fabrics([macro_fabric(scale)])
            .lbs([
                LabeledLb::plain(LbKind::Ecmp),
                LabeledLb::plain(ops()),
                LabeledLb::plain(reps()),
            ])
            .workloads(
                [1u64, 4, 16]
                    .into_iter()
                    .map(|mib| WorkloadSpec::Permutation {
                        bytes: macro_bytes(scale, mib),
                    })
                    .collect::<Vec<_>>(),
            )
            .seeds(3),
        ScenarioMatrix::new("rolling-failures")
            .fabrics([macro_fabric(scale)])
            .lbs([
                LabeledLb::plain(ops()),
                LabeledLb::plain(LbKind::Plb(PlbConfig::default())),
                LabeledLb::plain(reps()),
            ])
            .workloads([WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, 8),
            }])
            .failures([FailureSpec::Rolling {
                count: 4,
                period: Time::from_us(40),
                down_for: Time::from_us(80),
            }])
            .seeds(3),
        ScenarioMatrix::new("mixed-collectives")
            .fabrics([macro_fabric(scale)])
            .lbs(ops_vs_reps())
            .workloads([
                WorkloadSpec::RingAllreduce {
                    bytes: macro_bytes(scale, 16),
                },
                WorkloadSpec::ButterflyAllreduce {
                    bytes: macro_bytes(scale, 16),
                },
                WorkloadSpec::AllToAll {
                    bytes: scale.pick(16 << 10, 256 << 10),
                    window: 4,
                },
            ])
            .background(
                WorkloadSpec::AllToAll {
                    bytes: scale.pick(4 << 10, 64 << 10),
                    window: 2,
                },
                LbKind::Ecmp,
            )
            .deadline(Time::from_secs(5)),
        ScenarioMatrix::new("oversub-asym")
            .fabrics({
                let (tors, hosts) = scale.pick((8, 8), (16, 16));
                vec![
                    FabricSpec::leaf_spine(tors, hosts, 1),
                    FabricSpec::leaf_spine(tors, hosts, 2),
                    FabricSpec::leaf_spine(tors, hosts, 4),
                    FabricSpec::three_tier(scale.pick(6, 12), 2),
                ]
            })
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, 2),
            }])
            .failures([
                FailureSpec::None,
                FailureSpec::DegradedUplinks { pct: 10, gbps: 200 },
            ]),
        ScenarioMatrix::new("reconv-delay")
            .fabrics([FabricSpec::two_tier(8, 1)])
            .lbs([
                LabeledLb::plain(LbKind::Ecmp),
                LabeledLb::plain(ops()),
                LabeledLb::plain(reps()),
            ])
            .workloads([WorkloadSpec::Permutation {
                bytes: micro_bytes(scale, 2),
            }])
            .failures([FailureSpec::OneCable {
                at: fail_at,
                duration: None,
            }])
            .reconv([
                None,
                Some(Time::from_us(10)),
                Some(Time::from_us(50)),
                Some(Time::from_us(200)),
            ]),
        // The §4.5.2 sensitivity claim as a sweep: REPS keeps its win down
        // to tiny entropy spaces while OPS degrades, because recycling
        // needs only *some* good entropies, not a large space of them.
        // Every axis value is a plain LB-spec string — the grid this
        // expands to is exactly what `examples/ablation.grid` spells.
        ScenarioMatrix::new("evs-sensitivity")
            .fabrics([FabricSpec::two_tier(8, 1)])
            .lbs(
                [64u32, 256, 4096, 1 << 16]
                    .into_iter()
                    .flat_map(|evs| {
                        [
                            LbKind::Ops { evs_size: evs },
                            LbKind::Reps(RepsConfig::default().with_evs_size(evs)),
                        ]
                    })
                    .map(LabeledLb::plain)
                    .collect::<Vec<_>>(),
            )
            .workloads([WorkloadSpec::Tornado {
                bytes: micro_bytes(scale, 2),
            }]),
        // How aggressive must flowlet switching be before it competes with
        // per-packet spraying? A gap sweep around the paper's RTT/2
        // default, under the asymmetry that makes path choice matter.
        ScenarioMatrix::new("flowlet-gap")
            .fabrics([FabricSpec::two_tier(8, 1)])
            .lbs(
                [
                    LbKind::Ops { evs_size: 1 << 16 },
                    LbKind::Reps(RepsConfig::default()),
                    LbKind::Flowlet {
                        gap: Time::from_us(1),
                    },
                    LbKind::Flowlet { gap: rtt() / 2 },
                    LbKind::Flowlet {
                        gap: Time::from_us(20),
                    },
                    LbKind::Flowlet {
                        gap: Time::from_us(100),
                    },
                ]
                .into_iter()
                .map(LabeledLb::plain)
                .collect::<Vec<_>>(),
            )
            .workloads([WorkloadSpec::Tornado {
                bytes: micro_bytes(scale, 2),
            }])
            .failures([FailureSpec::DegradedUplinks { pct: 10, gbps: 200 }]),
        // Gray failures drop packets silently: the link stays up, routing
        // sees nothing, and only end-to-end loss detection can route
        // around it. Corruption and a one-direction blackhole complete the
        // adversarial set the failure axis (which always signals) misses.
        ScenarioMatrix::new("gray-failures")
            .fabrics([FabricSpec::two_tier(8, 1)])
            .lbs([
                LabeledLb::plain(LbKind::Ecmp),
                LabeledLb::plain(ops()),
                LabeledLb::plain(reps()),
            ])
            .workloads([WorkloadSpec::Permutation {
                bytes: micro_bytes(scale, 2),
            }])
            .faults([
                FaultSpec::None,
                fault("gray{p=0.01}"),
                fault("gray{p=0.05,n=2}"),
                fault("corrupt{p=0.001}"),
                fault("unidir"),
            ]),
        // Flap period crossed with the reconvergence delay: when the dead
        // path keeps coming back, slow reconvergence never catches up and
        // fast reconvergence thrashes — entropy recycling reacts per
        // round-trip instead.
        ScenarioMatrix::new("flap-reconv")
            .fabrics([FabricSpec::two_tier(8, 1)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Permutation {
                bytes: micro_bytes(scale, 2),
            }])
            .faults([fault("flap{period=20us}"), fault("flap{period=100us}")])
            .reconv([None, Some(Time::from_us(25))]),
        // The same background-loaded cell, packet-accurate everywhere vs.
        // fluid background: the hybrid must reproduce the foreground FCT
        // distribution (the paper's quantity) while skipping every
        // background packet — the speedup that makes O(10k)-host cells
        // affordable. Pinned by goldens so the fidelity gap is a tracked
        // number, not a hope.
        ScenarioMatrix::new("hybrid-scale")
            .fabrics([macro_fabric(scale)])
            .lbs(ops_vs_reps())
            .workloads([WorkloadSpec::Permutation {
                bytes: macro_bytes(scale, 4),
            }])
            .background(
                WorkloadSpec::Tornado {
                    bytes: macro_bytes(scale, 4) / 8,
                },
                LbKind::Ecmp,
            )
            .fidelities([FidelitySpec::Pkt, FidelitySpec::Hybrid]),
    ]
}

/// Validates that every matrix name in a combined pool (built-in presets
/// plus `--spec-file` grids) is unique: name lookups and per-preset
/// filters take the first match, so a shadowed name would silently prefer
/// the built-in instead of the user's grid.
pub fn ensure_unique_names<'a>(
    matrices: impl IntoIterator<Item = &'a ScenarioMatrix>,
) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    for m in matrices {
        if !seen.insert(m.name.as_str()) {
            return Err(format!(
                "matrix name {:?} is defined twice (a spec file must not shadow a built-in \
                 preset or repeat a name)",
                m.name
            ));
        }
    }
    Ok(())
}

/// Looks up one preset by exact name.
pub fn by_name(name: &str, scale: Scale) -> Option<ScenarioMatrix> {
    all(scale).into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expand_without_panicking() {
        for m in all(Scale::Quick) {
            let cells = m.expand();
            assert_eq!(cells.len(), m.len(), "{}", m.name);
            let keys: std::collections::BTreeSet<String> = cells.iter().map(|c| c.key()).collect();
            assert_eq!(keys.len(), cells.len(), "{}: duplicate keys", m.name);
        }
    }

    #[test]
    fn preset_names_are_unique_and_cover_new_scenarios() {
        let names: Vec<String> = all(Scale::Quick).into_iter().map(|m| m.name).collect();
        let set: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        for required in [
            "fig03-symmetric-macro",
            "fig08-failure-macro",
            "incast-sweep",
            "permutation-sweep",
            "rolling-failures",
            "mixed-collectives",
            "oversub-asym",
            "reconv-delay",
            "evs-sensitivity",
            "flowlet-gap",
            "gray-failures",
            "flap-reconv",
            "hybrid-scale",
        ] {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
    }

    #[test]
    fn oversub_preset_sweeps_o_at_fixed_hosts() {
        let m = by_name("oversub-asym", Scale::Quick).expect("preset exists");
        let hosts: Vec<u32> = m.fabrics.iter().map(|f| f.config.n_hosts()).collect();
        assert_eq!(
            &hosts[..3],
            &[64, 64, 64],
            "leaf/spine hosts fixed across o"
        );
        let uplinks: Vec<u32> = m.fabrics.iter().map(|f| f.config.tor_uplinks).collect();
        assert_eq!(&uplinks[..3], &[8, 4, 2], "uplinks shrink with o");
        assert_eq!(m.fabrics[3].config.tiers, 3);
    }

    #[test]
    fn reconv_preset_sweeps_the_reconvergence_axis() {
        let m = by_name("reconv-delay", Scale::Quick).expect("preset exists");
        assert_eq!(m.reconv.len(), 4);
        assert_eq!(m.reconv[0], None);
        let keys: Vec<String> = m.expand().iter().map(|c| c.key()).collect();
        assert!(keys.iter().any(|k| k.contains("/rc=50us/")), "{keys:?}");
        assert!(
            keys.iter().filter(|k| k.contains("rc=")).count() == keys.len() / 4 * 3,
            "exactly the non-default reconv cells carry the rc= component"
        );
    }

    #[test]
    fn evs_sensitivity_sweeps_both_schemes_through_the_grammar() {
        let m = by_name("evs-sensitivity", Scale::Quick).expect("preset exists");
        let labels: Vec<&str> = m.lbs.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "OPS{evs=64}",
                "REPS{evs=64}",
                "OPS{evs=256}",
                "REPS{evs=256}",
                "OPS{evs=4096}",
                "REPS{evs=4096}",
                "OPS",
                "REPS",
            ]
        );
        for lb in &m.lbs {
            assert_eq!(LbKind::parse(&lb.label).unwrap(), lb.kind, "{}", lb.label);
        }
    }

    #[test]
    fn flowlet_gap_sweeps_around_the_default() {
        let m = by_name("flowlet-gap", Scale::Quick).expect("preset exists");
        let labels: Vec<&str> = m.lbs.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "OPS",
                "REPS",
                "Flowlet{gap=1us}",
                "Flowlet",
                "Flowlet{gap=20us}",
                "Flowlet{gap=100us}",
            ]
        );
    }

    #[test]
    fn every_preset_lb_label_is_its_canonical_spec() {
        for scale in [Scale::Quick, Scale::Full] {
            for m in all(scale) {
                for lb in &m.lbs {
                    assert_eq!(
                        lb.label,
                        lb.kind.spec(),
                        "{}: non-canonical lb label",
                        m.name
                    );
                    assert_eq!(
                        LbKind::parse(&lb.label).unwrap(),
                        lb.kind,
                        "{}: label does not reparse to its kind",
                        m.name
                    );
                }
            }
        }
    }

    #[test]
    fn gray_failures_preset_spans_the_fault_families() {
        let m = by_name("gray-failures", Scale::Quick).expect("preset exists");
        let labels: Vec<String> = m.faults.iter().map(FaultSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "none",
                "gray",
                "gray{p=0.05,n=2}",
                "corrupt{p=0.001}",
                "unidir",
            ]
        );
        let keys: Vec<String> = m.expand().iter().map(|c| c.key()).collect();
        // Exactly the non-default fault cells carry the ft= component.
        assert_eq!(
            keys.iter().filter(|k| k.contains("/ft=")).count(),
            keys.len() / 5 * 4,
        );
        assert!(keys.iter().any(|k| k.contains("/ft=gray{p=0.05,n=2}/")));
    }

    #[test]
    fn flap_reconv_preset_crosses_flapping_with_reconvergence() {
        let m = by_name("flap-reconv", Scale::Quick).expect("preset exists");
        assert_eq!(m.faults.len(), 2);
        assert_eq!(m.reconv, vec![None, Some(Time::from_us(25))]);
        let keys: Vec<String> = m.expand().iter().map(|c| c.key()).collect();
        assert!(
            keys.iter()
                .any(|k| k.contains("/rc=25us/ft=flap{period=20us}/")),
            "{keys:?}"
        );
        // Every cell is faulted; half also reconverge.
        assert!(keys.iter().all(|k| k.contains("/ft=flap")));
        assert_eq!(
            keys.iter().filter(|k| k.contains("/rc=")).count(),
            keys.len() / 2
        );
    }

    #[test]
    fn hybrid_scale_preset_crosses_the_fidelity_axis() {
        let m = by_name("hybrid-scale", Scale::Quick).expect("preset exists");
        assert_eq!(m.fidelities, vec![FidelitySpec::Pkt, FidelitySpec::Hybrid]);
        assert!(m.background.is_some(), "needs background traffic to model");
        let keys: Vec<String> = m.expand().iter().map(|c| c.key()).collect();
        // Exactly the hybrid half of the grid carries the fi= component;
        // the pkt half keys exactly like a pre-fidelity-axis cell.
        assert_eq!(
            keys.iter().filter(|k| k.contains("/fi=hybrid/")).count(),
            keys.len() / 2,
            "{keys:?}"
        );
        assert!(keys.iter().all(|k| !k.contains("fi=pkt")), "{keys:?}");
    }

    #[test]
    fn ensure_unique_names_rejects_shadowing() {
        let pool = all(Scale::Quick);
        ensure_unique_names(&pool).expect("built-ins are collision-free");
        let mut shadowed = pool;
        shadowed.push(ScenarioMatrix::new("fig02-tornado-micro"));
        let err = ensure_unique_names(&shadowed).expect_err("shadowing must fail");
        assert!(err.contains("fig02-tornado-micro"), "{err}");
    }

    #[test]
    fn full_scale_presets_expand_too() {
        let total: usize = all(Scale::Full).iter().map(|m| m.len()).sum();
        assert!(total > 100, "suite unexpectedly small: {total}");
    }

    #[test]
    fn by_name_finds_presets() {
        assert!(by_name("fig09-extreme-failures", Scale::Quick).is_some());
        assert!(by_name("no-such-preset", Scale::Quick).is_none());
    }
}
