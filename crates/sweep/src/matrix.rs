//! Declarative scenario grids and their expansion into runnable cells.
//!
//! A [`ScenarioMatrix`] is the cartesian product of labeled axes
//! (`LbKind × fabric × workload × failure plan × seed`, plus optional
//! congestion-control and ACK-coalescing axes). [`ScenarioMatrix::expand`]
//! flattens it into independent [`Cell`]s; each cell's RNG seed is derived
//! by hashing its *key* (the `/`-joined axis labels), so results depend
//! only on what the cell *is* — never on thread count, completion order or
//! which other cells a filter selected.

use baselines::kind::LbKind;
use harness::experiment::{Experiment, Summary};
use netsim::time::Time;
use reps::reps::RepsConfig;
use transport::cc::CcKind;
use transport::config::CoalesceConfig;

use crate::fault::FaultSpec;
use crate::fidelity::FidelitySpec;
use crate::spec::{FabricSpec, FailureSpec, SimProfile, WorkloadSpec};

/// FNV-1a 64-bit: the stable cell-key hash. Never change these constants —
/// every recorded per-cell seed depends on them.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An [`LbKind`] with a stable axis label. Labels are derived from the
/// LB-spec grammar ([`LbKind::spec`]): a default configuration labels as
/// its bare family name, a tuned one as `Family{key=value,...}` — unique
/// per distinct configuration by construction, so parameter ablations need
/// no hand-rolled label strings.
#[derive(Debug, Clone)]
pub struct LabeledLb {
    /// Stable label used in cell keys (the canonical spec string).
    pub label: String,
    /// The scheme.
    pub kind: LbKind,
}

impl LabeledLb {
    /// Labels a scheme with its canonical spec string ([`LbKind::spec`]).
    pub fn plain(kind: LbKind) -> LabeledLb {
        LabeledLb {
            label: kind.spec(),
            kind,
        }
    }

    /// Labels a scheme with an explicit, non-canonical label. Prefer
    /// [`LabeledLb::plain`] — the canonical label is what spec files,
    /// `--lb` filters and cache addresses agree on.
    pub fn named(label: impl Into<String>, kind: LbKind) -> LabeledLb {
        LabeledLb {
            label: label.into(),
            kind,
        }
    }
}

/// Converts a lineup into labeled axis entries: canonical spec labels,
/// with `#n` suffixes on (pathological) exact duplicates so every axis
/// label stays unique.
pub fn labeled_lineup(lineup: &[LbKind]) -> Vec<LabeledLb> {
    let mut seen = std::collections::BTreeMap::new();
    lineup
        .iter()
        .map(|kind| {
            let spec = kind.spec();
            let n = seen.entry(spec.clone()).or_insert(0u32);
            *n += 1;
            if *n == 1 {
                LabeledLb::plain(kind.clone())
            } else {
                LabeledLb::named(format!("{spec}#{n}"), kind.clone())
            }
        })
        .collect()
}

/// The stable label of one reconvergence-axis value: `none` for the
/// paper's pessimistic no-reconvergence default, otherwise the delay in
/// the coarsest exact unit ([`Time::label`]: `25us`, `500ns`, `77ps`) so
/// distinct delays always get distinct labels.
pub fn reconv_label(delay: Option<Time>) -> String {
    match delay {
        None => "none".to_string(),
        Some(t) => t.label(),
    }
}

/// A declarative scenario grid.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Preset name; the first component of every cell key.
    pub name: String,
    /// Fabric axis.
    pub fabrics: Vec<FabricSpec>,
    /// Load-balancer axis.
    pub lbs: Vec<LabeledLb>,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Failure-plan axis.
    pub failures: Vec<FailureSpec>,
    /// Seed axis (logical seed indices).
    pub seeds: Vec<u32>,
    /// Congestion-controller axis (default `[Dctcp]`).
    pub ccs: Vec<CcKind>,
    /// ACK-coalescing axis as `(label, config)` (default per-packet).
    pub coalesce: Vec<(String, CoalesceConfig)>,
    /// Routing-reconvergence axis: how long after a failure switches keep
    /// spraying onto the dead path (`None` = never reconverge, the paper's
    /// pessimistic default). The default single-`None` axis is *omitted*
    /// from cell keys so pre-existing derived seeds, shard membership and
    /// cache addresses survive the axis addition.
    pub reconv: Vec<Option<Time>>,
    /// Series vantage-point axis: which ToR's uplinks `--series` tracks
    /// (per-cell, so one grid can record several vantage points). The
    /// default ToR 0 is *omitted* from cell keys — like `reconv`, the axis
    /// addition is invisible to every pre-existing cell.
    pub track: Vec<u32>,
    /// Adversarial-fault axis ([`FaultSpec`]): gray failures, payload
    /// corruption, flapping, unidirectional blackholes. The default
    /// single-`None` axis is *omitted* from cell keys — like `reconv` and
    /// `track`, the axis addition is invisible to every pre-existing cell.
    pub faults: Vec<FaultSpec>,
    /// Fidelity axis ([`FidelitySpec`]): full packet fidelity or fluid
    /// background over packet foreground. The default single-`Pkt` axis is
    /// *omitted* from cell keys — like `reconv`, `track` and `faults`, the
    /// axis addition is invisible to every pre-existing cell.
    pub fidelities: Vec<FidelitySpec>,
    /// Simulator profile for every cell.
    pub sim: SimProfile,
    /// Optional background traffic applied to every cell.
    pub background: Option<(WorkloadSpec, LbKind)>,
    /// Per-cell simulated-time deadline.
    pub deadline: Time,
}

impl ScenarioMatrix {
    /// A matrix with single-element default axes; chain the builder methods
    /// to widen the axes you sweep.
    pub fn new(name: impl Into<String>) -> ScenarioMatrix {
        ScenarioMatrix {
            name: name.into(),
            fabrics: vec![FabricSpec::two_tier(8, 1)],
            lbs: vec![
                LabeledLb::plain(LbKind::Ops { evs_size: 1 << 16 }),
                LabeledLb::plain(LbKind::Reps(RepsConfig::default())),
            ],
            workloads: vec![WorkloadSpec::Tornado { bytes: 256 << 10 }],
            failures: vec![FailureSpec::None],
            seeds: vec![0],
            ccs: vec![CcKind::Dctcp],
            coalesce: vec![("pp".to_string(), CoalesceConfig::per_packet())],
            reconv: vec![None],
            track: vec![0],
            faults: vec![FaultSpec::None],
            fidelities: vec![FidelitySpec::Pkt],
            sim: SimProfile::PaperDefault,
            background: None,
            deadline: Time::from_secs(2),
        }
    }

    /// Replaces the fabric axis.
    pub fn fabrics(mut self, fabrics: impl IntoIterator<Item = FabricSpec>) -> Self {
        self.fabrics = fabrics.into_iter().collect();
        self
    }

    /// Replaces the load-balancer axis.
    pub fn lbs(mut self, lbs: impl IntoIterator<Item = LabeledLb>) -> Self {
        self.lbs = lbs.into_iter().collect();
        self
    }

    /// Replaces the workload axis.
    pub fn workloads(mut self, w: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = w.into_iter().collect();
        self
    }

    /// Replaces the failure axis.
    pub fn failures(mut self, f: impl IntoIterator<Item = FailureSpec>) -> Self {
        self.failures = f.into_iter().collect();
        self
    }

    /// Replaces the seed axis with `0..n`.
    pub fn seeds(mut self, n: u32) -> Self {
        self.seeds = (0..n.max(1)).collect();
        self
    }

    /// Replaces the congestion-controller axis.
    pub fn ccs(mut self, ccs: impl IntoIterator<Item = CcKind>) -> Self {
        self.ccs = ccs.into_iter().collect();
        self
    }

    /// Replaces the ACK-coalescing axis.
    pub fn coalesce(mut self, co: impl IntoIterator<Item = (String, CoalesceConfig)>) -> Self {
        self.coalesce = co.into_iter().collect();
        self
    }

    /// Replaces the routing-reconvergence axis (`None` = never).
    pub fn reconv(mut self, delays: impl IntoIterator<Item = Option<Time>>) -> Self {
        self.reconv = delays.into_iter().collect();
        self
    }

    /// Replaces the series vantage-point axis (tracked ToR indices).
    pub fn track(mut self, tors: impl IntoIterator<Item = u32>) -> Self {
        self.track = tors.into_iter().collect();
        self
    }

    /// Replaces the adversarial-fault axis.
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Replaces the fidelity axis.
    pub fn fidelities(mut self, f: impl IntoIterator<Item = FidelitySpec>) -> Self {
        self.fidelities = f.into_iter().collect();
        self
    }

    /// Sets the simulator profile.
    pub fn sim(mut self, sim: SimProfile) -> Self {
        self.sim = sim;
        self
    }

    /// Adds background traffic to every cell.
    pub fn background(mut self, w: WorkloadSpec, lb: LbKind) -> Self {
        self.background = Some((w, lb));
        self
    }

    /// Sets the per-cell deadline.
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = deadline;
        self
    }

    /// Number of cells the matrix expands to.
    pub fn len(&self) -> usize {
        self.fabrics.len()
            * self.lbs.len()
            * self.workloads.len()
            * self.failures.len()
            * self.seeds.len()
            * self.ccs.len()
            * self.coalesce.len()
            * self.reconv.len()
            * self.track.len()
            * self.faults.len()
            * self.fidelities.len()
    }

    /// Whether any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian grid into independent cells (deterministic
    /// order: fabrics, workloads, failures, ccs, coalesce, reconv, track,
    /// faults, lbs, seeds).
    ///
    /// # Panics
    ///
    /// Panics if an axis is empty or an axis label repeats — duplicate
    /// labels would collide in the cell key and silently share seeds.
    pub fn expand(&self) -> Vec<Cell> {
        assert!(!self.is_empty(), "matrix {:?} has an empty axis", self.name);
        let unique = |labels: Vec<String>, axis: &str| {
            let mut seen = std::collections::BTreeSet::new();
            for l in &labels {
                assert!(
                    seen.insert(l.clone()),
                    "duplicate {axis} label {l:?} in matrix {:?}",
                    self.name
                );
            }
        };
        unique(
            self.fabrics.iter().map(|f| f.label.clone()).collect(),
            "fabric",
        );
        unique(self.lbs.iter().map(|l| l.label.clone()).collect(), "lb");
        unique(
            self.workloads.iter().map(|w| w.label()).collect(),
            "workload",
        );
        unique(self.failures.iter().map(|f| f.label()).collect(), "failure");
        unique(
            self.coalesce.iter().map(|(l, _)| l.clone()).collect(),
            "coalesce",
        );
        unique(
            self.ccs.iter().map(|c| c.label().to_string()).collect(),
            "cc",
        );
        unique(
            self.reconv.iter().map(|r| reconv_label(*r)).collect(),
            "reconv",
        );
        unique(self.track.iter().map(u32::to_string).collect(), "track");
        unique(self.faults.iter().map(FaultSpec::label).collect(), "fault");
        unique(
            self.fidelities
                .iter()
                .map(|f| f.label().to_string())
                .collect(),
            "fidelity",
        );
        unique(self.seeds.iter().map(|s| s.to_string()).collect(), "seed");
        for fabric in &self.fabrics {
            for &tor in &self.track {
                assert!(
                    tor < fabric.config.n_tors(),
                    "matrix {:?}: tracked ToR {tor} does not exist in fabric {} \
                     ({} ToRs)",
                    self.name,
                    fabric.label,
                    fabric.config.n_tors()
                );
            }
        }

        let mut cells = Vec::with_capacity(self.len());
        for fabric in &self.fabrics {
            for workload in &self.workloads {
                for failure in &self.failures {
                    for cc in &self.ccs {
                        for (co_label, co) in &self.coalesce {
                            for &reconv in &self.reconv {
                                for &track in &self.track {
                                    for fault in &self.faults {
                                        for &fidelity in &self.fidelities {
                                            for lb in &self.lbs {
                                                for &seed in &self.seeds {
                                                    cells.push(Cell {
                                                        preset: self.name.clone(),
                                                        fabric: fabric.clone(),
                                                        lb: lb.clone(),
                                                        workload: workload.clone(),
                                                        failures: failure.clone(),
                                                        cc: *cc,
                                                        coalesce_label: co_label.clone(),
                                                        coalesce: *co,
                                                        reconv,
                                                        track,
                                                        fault: fault.clone(),
                                                        fidelity,
                                                        sim: self.sim,
                                                        background: self.background.clone(),
                                                        seed,
                                                        deadline: self.deadline,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One fully-specified point of a matrix: everything needed to build and
/// run a [`harness::Experiment`], independent of every other cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Owning preset name.
    pub preset: String,
    /// Fabric shape.
    pub fabric: FabricSpec,
    /// Load balancer.
    pub lb: LabeledLb,
    /// Workload description.
    pub workload: WorkloadSpec,
    /// Failure description.
    pub failures: FailureSpec,
    /// Congestion controller.
    pub cc: CcKind,
    /// Coalescing axis label.
    pub coalesce_label: String,
    /// Coalescing policy.
    pub coalesce: CoalesceConfig,
    /// Routing-reconvergence delay (`None` = never reconverge).
    pub reconv: Option<Time>,
    /// ToR whose uplinks the series sink tracks (0 = the default vantage).
    pub track: u32,
    /// Adversarial fault injected into the cell (`None` = healthy).
    pub fault: FaultSpec,
    /// Modelling fidelity (`Pkt` = everything packet-level).
    pub fidelity: FidelitySpec,
    /// Simulator profile.
    pub sim: SimProfile,
    /// Optional background traffic.
    pub background: Option<(WorkloadSpec, LbKind)>,
    /// Logical seed index (the seed-axis value, not the RNG seed).
    pub seed: u32,
    /// Simulated-time deadline.
    pub deadline: Time,
}

impl Cell {
    /// The stable, fully self-describing cell key. Everything that affects
    /// the cell's outcome appears here — including the simulator profile,
    /// background traffic and deadline — so equal keys imply equal results
    /// and the derived RNG seed can be the key's hash.
    pub fn key(&self) -> String {
        format!("{}/lb={}/s={}", self.scenario(), self.lb.label, self.seed)
    }

    /// The scenario key: the cell key minus the load-balancer and seed
    /// components. Cells sharing a scenario key form one comparison row
    /// group in reports.
    ///
    /// The reconvergence (`rc=...`), vantage (`tk=...`), fault (`ft=...`)
    /// and fidelity (`fi=...`) components are only present when their axes
    /// are set: the defaults (`None` = never reconverge, ToR 0, no fault,
    /// packet fidelity) render exactly the pre-axis key, so derived seeds,
    /// shard membership and cache addresses of every pre-existing cell are
    /// unchanged (pinned by `tests/key_stability.rs`).
    ///
    /// The background's load balancer renders as its canonical spec
    /// ([`LbKind::spec`]) — the family name for default configurations
    /// (every pre-existing key), the parameterized form otherwise.
    pub fn scenario(&self) -> String {
        let background = match &self.background {
            None => "none".to_string(),
            Some((w, lb)) => format!("{}+{}", w.label(), lb.spec()),
        };
        let rc = match self.reconv {
            None => String::new(),
            Some(t) => format!("/rc={}", reconv_label(Some(t))),
        };
        let tk = match self.track {
            0 => String::new(),
            tor => format!("/tk={tor}"),
        };
        let ft = if self.fault.is_none() {
            String::new()
        } else {
            format!("/ft={}", self.fault.label())
        };
        let fi = if self.fidelity.is_pkt() {
            String::new()
        } else {
            format!("/fi={}", self.fidelity.label())
        };
        format!(
            "{}/{}/{}/{}/sim={}/cc={}/co={}{rc}{tk}{ft}{fi}/bg={}/dl={}us",
            self.preset,
            self.fabric.label,
            self.workload.label(),
            self.failures.label(),
            self.sim.label(),
            self.cc.label(),
            self.coalesce_label,
            background,
            self.deadline.as_ps() / 1_000_000
        )
    }

    /// The cell's RNG seed, derived from [`Cell::key`] alone — byte-stable
    /// across thread counts, run orders and filter sets.
    pub fn derived_seed(&self) -> u64 {
        fnv1a64(&self.key())
    }

    /// Builds the experiment for this cell.
    pub fn experiment(&self) -> Experiment {
        let seed = self.derived_seed();
        let mut sim = self.sim.config();
        if self.reconv.is_some() {
            sim.ecmp_failover = self.reconv;
        }
        let n = self.fabric.config.n_hosts();
        // Distinct derived streams per role so adding an axis value never
        // perturbs an existing cell's draws.
        let mut wl_rng = netsim::rng::Rng64::new(seed ^ 0x5741_4c4f_4144_5f31);
        let workload = self.workload.build(n, sim.link_bps, &mut wl_rng);
        let mut failures =
            self.failures
                .build(&self.fabric.config, seed, seed ^ 0x4641_494c_5f32_5f32);
        // The fault plan draws from its own derived stream and appends
        // after the failure plan, so a `fault=none` cell builds exactly
        // the pre-axis plan and a faulted cell perturbs nothing else.
        failures.extend(self.fault.build(
            &self.fabric.config,
            seed,
            seed ^ 0x4641_554c_5f34_5f34,
            self.deadline,
        ));
        let mut exp = Experiment::new(
            self.key(),
            self.fabric.config.clone(),
            self.lb.kind.clone(),
            workload,
        );
        exp.sim = sim;
        exp.cc = self.cc;
        exp.coalesce = self.coalesce;
        exp.failures = failures;
        exp.seed = seed;
        exp.deadline = self.deadline;
        if let Some((bg_spec, bg_lb)) = &self.background {
            let mut bg_rng = netsim::rng::Rng64::new(seed ^ 0x4247_5f33_4247_5f33);
            let bg = bg_spec.build(n, exp.sim.link_bps, &mut bg_rng);
            exp.background = Some((bg, bg_lb.clone()));
        }
        // Hybrid fidelity swaps the background to the fluid model; with no
        // background workload it is a no-op (but still keyed, so the cell
        // is honest about what it asked for).
        exp.fluid_background = !self.fidelity.is_pkt();
        exp
    }

    /// Runs the cell to completion.
    pub fn run(&self) -> CellResult {
        self.result_from(self.experiment().run())
    }

    /// Runs the cell with series instrumentation enabled (the uplinks of
    /// the [`Cell::track`] ToR tracked, queue sampling on up to
    /// [`crate::series::SAMPLE_HORIZON`]) and returns the result plus the
    /// canonical per-cell series document (see [`crate::series`]).
    /// Instrumentation only *reads* fabric state, so the byte-stable
    /// result record is identical to [`Cell::run`]'s (pinned by
    /// `tests/series.rs`).
    pub fn run_with_series(&self) -> (CellResult, String) {
        let out = self.run_instrumented(Instrument {
            series: true,
            ..Instrument::default()
        });
        (out.result, out.series_doc.expect("series requested"))
    }

    /// Runs the cell with any combination of opt-in instrumentation:
    /// per-link time series ([`crate::series`]), the flight-recorder trace
    /// ([`crate::trace`]) and per-LB decision diagnostics
    /// ([`harness::experiment::Summary::diagnostics`]).
    ///
    /// Series and trace instrumentation only *read* simulation state, so
    /// the byte-stable result record is identical to [`Cell::run`]'s;
    /// diagnostics add an extra block to the summary JSON, which is why
    /// they are a separate opt-in (pinned by `tests/trace.rs`).
    pub fn run_instrumented(&self, inst: Instrument) -> InstrumentedRun {
        let mut exp = self.experiment();
        exp.diagnostics = inst.diagnostics;
        if inst.series {
            exp.track = harness::experiment::TrackLinks::TorUplinks(self.track);
            exp.sample_until = self.deadline.min(crate::series::SAMPLE_HORIZON);
        }
        if inst.trace {
            let res = exp.run_traced(netsim::trace::Recorder::new());
            InstrumentedRun {
                series_doc: inst
                    .series
                    .then(|| crate::series::series_doc(self, &res.engine)),
                trace_doc: Some(crate::trace::trace_doc(self, &res.engine.trace.events)),
                result: self.result_from(res),
            }
        } else {
            let res = exp.run();
            InstrumentedRun {
                series_doc: inst
                    .series
                    .then(|| crate::series::series_doc(self, &res.engine)),
                trace_doc: None,
                result: self.result_from(res),
            }
        }
    }

    fn result_from<S: netsim::trace::TraceSink>(
        &self,
        res: harness::experiment::RunResult<S>,
    ) -> CellResult {
        CellResult {
            key: self.key(),
            scenario: self.scenario(),
            lb: self.lb.label.clone(),
            seed: self.seed,
            derived_seed: self.derived_seed(),
            events: res.engine.events_processed,
            wall_ns: res.wall_ns,
            batches: res.engine.batch_stats.batches,
            max_batch: res.engine.batch_stats.max_batch,
            chained_services: res.engine.batch_stats.chained_services,
            summary: res.summary,
        }
    }
}

/// Which opt-in instrumentation an instrumented cell run collects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Instrument {
    /// Track the vantage ToR's uplinks and emit the series document.
    pub series: bool,
    /// Record the flight-recorder trace and emit the trace document.
    pub trace: bool,
    /// Collect per-LB decision counters into the summary's diagnostics
    /// block (changes the result JSONL bytes — see
    /// [`harness::experiment::Experiment::diagnostics`]).
    pub diagnostics: bool,
}

impl Instrument {
    /// Whether any instrumentation is requested at all.
    pub fn any(&self) -> bool {
        self.series || self.trace || self.diagnostics
    }
}

/// The outputs of [`Cell::run_instrumented`].
#[derive(Debug, Clone)]
pub struct InstrumentedRun {
    /// The cell outcome (summary carries diagnostics when requested).
    pub result: CellResult,
    /// The canonical series document, when requested.
    pub series_doc: Option<String>,
    /// The canonical trace document, when requested.
    pub trace_doc: Option<String>,
}

/// The outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell key.
    pub key: String,
    /// The scenario (comparison-group) key.
    pub scenario: String,
    /// Load-balancer axis label.
    pub lb: String,
    /// Logical seed index.
    pub seed: u32,
    /// The RNG seed the cell actually ran with.
    pub derived_seed: u64,
    /// Simulator events processed (deterministic for a fixed key).
    pub events: u64,
    /// Wall-clock nanoseconds in the event loop (nondeterministic; kept
    /// out of the byte-stable result JSONL — see [`crate::sink`]).
    pub wall_ns: u64,
    /// Same-timestamp batches the engine drained (deterministic for a
    /// fixed key; perf-stream only, like `events`).
    pub batches: u64,
    /// Largest same-timestamp batch observed (perf-stream only).
    pub max_batch: u64,
    /// Link services chained without a calendar round-trip
    /// (perf-stream only).
    pub chained_services: u64,
    /// Aggregate run metrics.
    pub summary: Summary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_full_cartesian_product() {
        let m = ScenarioMatrix::new("t")
            .fabrics([FabricSpec::two_tier(8, 1)])
            .workloads([
                WorkloadSpec::Tornado { bytes: 1 << 16 },
                WorkloadSpec::Permutation { bytes: 1 << 16 },
            ])
            .failures([FailureSpec::None])
            .seeds(3);
        assert_eq!(m.len(), 2 * 2 * 3);
        let cells = m.expand();
        assert_eq!(cells.len(), 12);
        let keys: std::collections::BTreeSet<String> = cells.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), 12, "cell keys must be unique");
    }

    #[test]
    fn derived_seed_depends_only_on_the_key() {
        let m = ScenarioMatrix::new("t").seeds(2);
        let a = m.expand();
        let b = m.expand();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.derived_seed(), y.derived_seed());
        }
        // Different seed-axis values give different derived seeds.
        assert_ne!(a[0].derived_seed(), a[1].derived_seed());
    }

    #[test]
    #[should_panic(expected = "duplicate lb label")]
    fn duplicate_lb_labels_are_rejected() {
        ScenarioMatrix::new("t")
            .lbs([
                LabeledLb::named("REPS", LbKind::Reps(RepsConfig::default())),
                LabeledLb::named("REPS", LbKind::Reps(RepsConfig::default())),
            ])
            .expand();
    }

    #[test]
    #[should_panic(expected = "duplicate cc label")]
    fn duplicate_cc_axis_is_rejected() {
        ScenarioMatrix::new("t")
            .ccs([CcKind::Dctcp, CcKind::Dctcp])
            .expand();
    }

    #[test]
    fn key_encodes_sim_background_and_deadline() {
        let key = |m: ScenarioMatrix| m.expand()[0].key();
        let base = key(ScenarioMatrix::new("t"));
        let fpga = key(ScenarioMatrix::new("t").sim(SimProfile::FpgaTestbed));
        let bg = key(ScenarioMatrix::new("t")
            .background(WorkloadSpec::Tornado { bytes: 1 << 10 }, LbKind::Ecmp));
        let dl = key(ScenarioMatrix::new("t").deadline(Time::from_secs(5)));
        let keys = [&base, &fpga, &bg, &dl];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "axis change must change the key");
            }
        }
        assert!(base.contains("/sim=paper/"), "{base}");
        assert!(fpga.contains("/sim=fpga/"), "{fpga}");
        assert!(bg.contains("/bg=tornado-1024B+ECMP/"), "{bg}");
        assert!(
            dl.ends_with("us/lb=OPS/s=0") && dl.contains("/dl=5000000us/"),
            "{dl}"
        );
    }

    #[test]
    fn labeled_lineup_uses_spec_labels_and_disambiguates_exact_duplicates() {
        let lbs = labeled_lineup(&[
            LbKind::Reps(RepsConfig::default()),
            LbKind::Reps(RepsConfig::default().with_evs_size(64)),
            LbKind::Reps(RepsConfig::default()),
            LbKind::Ecmp,
        ]);
        let labels: Vec<&str> = lbs.iter().map(|l| l.label.as_str()).collect();
        // Distinct configurations get distinct spec labels; only an exact
        // duplicate needs the #n suffix.
        assert_eq!(labels, vec!["REPS", "REPS{evs=64}", "REPS#2", "ECMP"]);
    }

    #[test]
    fn parameterized_lbs_label_cells_with_their_spec() {
        let m = ScenarioMatrix::new("t").lbs([
            LabeledLb::plain(LbKind::Ops { evs_size: 64 }),
            LabeledLb::plain(LbKind::Reps(RepsConfig::default().without_freezing())),
        ]);
        let keys: Vec<String> = m.expand().iter().map(|c| c.key()).collect();
        assert!(keys[0].ends_with("/lb=OPS{evs=64}/s=0"), "{}", keys[0]);
        assert!(keys[1].ends_with("/lb=REPS-nofreeze/s=0"), "{}", keys[1]);
    }

    #[test]
    fn default_track_axis_leaves_keys_untouched() {
        let key = ScenarioMatrix::new("t").expand()[0].key();
        assert!(!key.contains("tk="), "{key}");
    }

    #[test]
    fn track_axis_is_keyed_and_reaches_the_series_vantage() {
        let m = ScenarioMatrix::new("t")
            .workloads([WorkloadSpec::Tornado { bytes: 16 << 10 }])
            .track([0, 3]);
        assert_eq!(m.len(), 2 * 2);
        let cells = m.expand();
        assert_eq!(cells[0].track, 0);
        assert!(!cells[0].key().contains("tk="), "{}", cells[0].key());
        assert_eq!(cells[2].track, 3);
        assert!(
            cells[2].key().contains("/co=pp/tk=3/bg="),
            "{}",
            cells[2].key()
        );
        assert_ne!(cells[0].derived_seed(), cells[2].derived_seed());
        // The vantage point reaches the series document: ToR 3's uplinks
        // are tracked instead of ToR 0's.
        let (_, doc_t0) = cells[0].run_with_series();
        let (_, doc_t3) = cells[2].run_with_series();
        let links = |doc: &str| -> Vec<String> {
            doc.lines()
                .skip(1)
                .map(|l| {
                    harness::json::Value::parse(l)
                        .expect("record parses")
                        .get("link")
                        .expect("link field")
                        .render()
                })
                .collect()
        };
        assert_eq!(links(&doc_t0).len(), links(&doc_t3).len());
        assert_ne!(links(&doc_t0), links(&doc_t3));
    }

    #[test]
    #[should_panic(expected = "tracked ToR 9 does not exist")]
    fn out_of_range_track_vantage_is_rejected_at_expansion() {
        ScenarioMatrix::new("t").track([9]).expand();
    }

    #[test]
    fn parameterized_background_lb_is_keyed_by_its_spec() {
        let key = ScenarioMatrix::new("t")
            .background(
                WorkloadSpec::Tornado { bytes: 1 << 10 },
                LbKind::Ops { evs_size: 128 },
            )
            .expand()[0]
            .key();
        assert!(key.contains("/bg=tornado-1024B+OPS{evs=128}/"), "{key}");
    }

    #[test]
    fn fnv_is_the_reference_implementation() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn default_reconv_axis_leaves_keys_untouched() {
        // The exact pre-axis key shape: no `rc=` component anywhere. This
        // is what keeps every previously recorded derived seed, shard
        // assignment and cache address valid.
        let key = ScenarioMatrix::new("t").expand()[0].key();
        assert!(!key.contains("rc="), "{key}");
        assert_eq!(
            key,
            "t/2t-k8-o1/tornado-262144B/none/sim=paper/cc=DCTCP/co=pp/bg=none/dl=2000000us/lb=OPS/s=0"
        );
    }

    #[test]
    fn reconv_axis_is_keyed_and_seeded() {
        let m = ScenarioMatrix::new("t").reconv([None, Some(Time::from_us(25))]);
        assert_eq!(m.len(), 2 * 2);
        let cells = m.expand();
        let none = &cells[0];
        let some = &cells[2];
        assert_eq!(none.reconv, None);
        assert!(!none.key().contains("rc="), "{}", none.key());
        assert!(some.key().contains("/co=pp/rc=25us/bg="), "{}", some.key());
        assert_ne!(none.derived_seed(), some.derived_seed());
        // The delay reaches the simulator config; the default does not
        // override the profile.
        assert_eq!(none.experiment().sim.ecmp_failover, None);
        assert_eq!(some.experiment().sim.ecmp_failover, Some(Time::from_us(25)));
    }

    #[test]
    fn reconv_labels_pick_the_coarsest_exact_unit() {
        assert_eq!(reconv_label(None), "none");
        assert_eq!(reconv_label(Some(Time::from_us(25))), "25us");
        assert_eq!(reconv_label(Some(Time::from_ns(500))), "500ns");
        assert_eq!(reconv_label(Some(Time(1_500_077))), "1500077ps");
    }

    #[test]
    #[should_panic(expected = "duplicate reconv label")]
    fn duplicate_reconv_axis_is_rejected() {
        ScenarioMatrix::new("t")
            .reconv([Some(Time::from_us(10)), Some(Time::from_us(10))])
            .expand();
    }

    #[test]
    fn default_fault_axis_leaves_keys_untouched() {
        // Same contract as `rc=`/`tk=`: `fault=none` renders the exact
        // pre-axis key, keeping recorded seeds and cache addresses valid.
        let key = ScenarioMatrix::new("t").expand()[0].key();
        assert!(!key.contains("ft="), "{key}");
    }

    #[test]
    fn fault_axis_is_keyed_and_installs_the_plan() {
        let m = ScenarioMatrix::new("t").faults([
            FaultSpec::None,
            FaultSpec::parse("gray{p=0.05,n=2}").unwrap(),
        ]);
        assert_eq!(m.len(), 2 * 2);
        let cells = m.expand();
        let none = &cells[0];
        let gray = &cells[2];
        assert!(none.fault.is_none());
        assert!(!none.key().contains("ft="), "{}", none.key());
        assert!(
            gray.key().contains("/co=pp/ft=gray{p=0.05,n=2}/bg="),
            "{}",
            gray.key()
        );
        assert_ne!(none.derived_seed(), gray.derived_seed());
        // The plan reaches the experiment: two extra failures, appended
        // after the (here empty) failure-axis plan.
        assert!(none.experiment().failures.is_empty());
        assert_eq!(gray.experiment().failures.len(), 2);
    }

    #[test]
    fn fault_plan_expansion_is_deterministic() {
        let m = ScenarioMatrix::new("t").faults([FaultSpec::parse("flap{period=40us}").unwrap()]);
        let cell = &m.expand()[0];
        let dump = |c: &Cell| -> Vec<String> {
            c.experiment()
                .failures
                .failures
                .iter()
                .map(|f| format!("{f:?}"))
                .collect()
        };
        assert_eq!(dump(cell), dump(cell));
    }

    #[test]
    #[should_panic(expected = "duplicate fault label")]
    fn duplicate_fault_axis_is_rejected() {
        // Two spellings of the same fault share a canonical label, so they
        // must collide rather than silently share a cell key.
        ScenarioMatrix::new("t")
            .faults([
                FaultSpec::parse("gray").unwrap(),
                FaultSpec::parse("gray{p=0.01,at=10us}").unwrap(),
            ])
            .expand();
    }

    #[test]
    fn default_fidelity_axis_leaves_keys_untouched() {
        // Same contract as `rc=`/`tk=`/`ft=`: `fidelity=pkt` renders the
        // exact pre-axis key, keeping recorded seeds and cache addresses
        // valid.
        let key = ScenarioMatrix::new("t").expand()[0].key();
        assert!(!key.contains("fi="), "{key}");
    }

    #[test]
    fn fidelity_axis_is_keyed_and_reaches_the_experiment() {
        let m = ScenarioMatrix::new("t")
            .workloads([WorkloadSpec::Tornado { bytes: 16 << 10 }])
            .background(WorkloadSpec::Tornado { bytes: 8 << 10 }, LbKind::Ecmp)
            .fidelities([FidelitySpec::Pkt, FidelitySpec::Hybrid]);
        assert_eq!(m.len(), 2 * 2);
        let cells = m.expand();
        let pkt = &cells[0];
        let hybrid = &cells[2];
        assert!(pkt.fidelity.is_pkt());
        assert!(!pkt.key().contains("fi="), "{}", pkt.key());
        assert!(
            hybrid.key().contains("/co=pp/fi=hybrid/bg="),
            "{}",
            hybrid.key()
        );
        assert_ne!(pkt.derived_seed(), hybrid.derived_seed());
        assert!(!pkt.experiment().fluid_background);
        assert!(hybrid.experiment().fluid_background);
        // Hybrid cells run, complete, and stay deterministic.
        let a = hybrid.run();
        let b = hybrid.run();
        assert!(a.summary.completed);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
    }

    #[test]
    fn cell_runs_and_summarizes() {
        let m = ScenarioMatrix::new("smoke").workloads([WorkloadSpec::Tornado { bytes: 64 << 10 }]);
        let cell = &m.expand()[0];
        let res = cell.run();
        assert!(res.summary.completed);
        assert_eq!(res.key, cell.key());
        assert_eq!(res.derived_seed, cell.derived_seed());
    }
}
