//! Deterministic parallel scenario sweeps for the REPS reproduction.
//!
//! The paper's evaluation is a grid of scenarios — load balancer × fabric
//! × workload × failure plan × seed. This crate turns that grid into data:
//!
//! * [`matrix::ScenarioMatrix`] declares the grid and expands it into
//!   independent [`matrix::Cell`]s; each cell's RNG seed is derived by
//!   hashing the cell's stable key, so results never depend on thread
//!   count, completion order or which other cells a filter selected;
//! * [`runner`] executes cells on a work-stealing std-thread pool and
//!   returns results in canonical (key-sorted) order;
//! * [`sink`] emits one JSON Lines record per cell and renders cross-seed
//!   aggregates through [`harness::report`];
//! * [`presets`] names a matrix for every simulation figure of the paper
//!   plus new scenarios (incast/permutation sweeps, rolling link failures,
//!   mixed AI collectives, oversubscription/asymmetry,
//!   reconvergence-delay and parameter-ablation sweeps);
//! * [`specfile`] parses user-defined grids from a line-oriented text
//!   format (`repsbench run --spec-file grid.txt`) — new scenarios are a
//!   text file, not a code change — with canonical rendering as its exact
//!   inverse; the `lb` axis speaks the typed LB-spec grammar
//!   ([`baselines::kind::LbKind::parse`]: `REPS{evs=256,freeze=off}`,
//!   `Flowlet{gap=80us}`, ...), so parameter ablations are text edits
//!   too;
//! * [`shard`] deterministically partitions a cell list by key hash so a
//!   fleet can split one sweep (`repsbench run --shard i/n`), [`merge`]
//!   unions the shard outputs back into the unsharded bytes, and [`cache`]
//!   reuses per-cell results across runs of the same code version
//!   (`--cache DIR`);
//! * [`fault`] adds an adversarial-fault axis (`fault=gray{p=0.01}`,
//!   `flap{period=10ms,duty=0.5}`, `unidir{n=1}`, `corrupt{...}`) with
//!   the same parse/render discipline: gray failures, payload
//!   corruption, flapping and unidirectional blackholes as
//!   deterministic, cacheable grid values keyed only when not `none`;
//! * [`series`] streams per-cell link-utilization and queue-occupancy
//!   series as canonical JSONL (`--series DIR`), fully separate from the
//!   byte-stable result stream;
//! * [`trace`] streams per-cell flight-recorder traces (`--trace DIR`) —
//!   every per-hop path choice, every EV decision and why, every reorder
//!   and failure reaction — and [`explain`] renders one trace into a
//!   human-readable report (`repsbench explain FILE`); [`progress`] keeps
//!   a live cells-done/ETA line on stderr while a sweep runs;
//! * the `repsbench` binary exposes all of it on the command line
//!   (`repsbench list`, `repsbench run --filter 'fig0*' --threads 8`,
//!   `repsbench merge merged.jsonl shard*.jsonl`).
//!
//! # Determinism contract
//!
//! A sweep's JSONL output is byte-identical for any `--threads` value:
//! cells are pure functions of their keys, and output is sorted by key.
//! Sharding and caching stay inside the contract: shard membership and
//! cache addresses are functions of the cell key alone, so
//! `merge`d shards and warm-cache re-runs reproduce the unsharded,
//! uncached bytes exactly. Series documents are pure functions of cell
//! keys too, and enabling the series sink changes no result byte.
//!
//! # Examples
//!
//! ```
//! use sweep::matrix::ScenarioMatrix;
//! use sweep::runner::run_cells;
//! use sweep::spec::WorkloadSpec;
//!
//! let matrix = ScenarioMatrix::new("demo")
//!     .workloads([WorkloadSpec::Tornado { bytes: 64 << 10 }])
//!     .seeds(2);
//! let results = run_cells(&matrix.expand(), 4);
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.summary.completed));
//! ```

pub mod cache;
pub mod explain;
pub mod fault;
pub mod fidelity;
pub mod glob;
pub mod matrix;
pub mod merge;
pub mod presets;
pub mod progress;
pub mod runner;
pub mod series;
pub mod shard;
pub mod sink;
pub mod spec;
pub mod specfile;
pub mod trace;

pub use cache::{
    build_fingerprint, run_cells_cached, run_cells_instrumented, run_cells_sinked, CachedRun,
    CellCache, RunSinks,
};
pub use explain::explain_doc;
pub use fault::FaultSpec;
pub use matrix::{Cell, CellResult, Instrument, InstrumentedRun, LabeledLb, ScenarioMatrix};
pub use merge::{merge_contents, merge_files, MergedSweep};
pub use progress::Progress;
pub use runner::{default_threads, run_cells, run_experiments, threads_from_env};
pub use series::{series_doc, SeriesSink};
pub use shard::Shard;
pub use sink::{
    aggregate, events_per_sec, parse_record, perf_record, render_aggregates, to_jsonl, write_jsonl,
    write_perf_jsonl,
};
pub use spec::{FabricSpec, FailureSpec, SimProfile, WorkloadSpec};
pub use specfile::SpecError;
pub use trace::{trace_doc, TraceStore};
