//! Structured result output: JSON Lines per cell and cross-seed
//! aggregation rendered through [`harness::report`].
//!
//! JSONL output is byte-deterministic: [`crate::runner::run_cells`] sorts
//! results by cell key and every record's field order is fixed, so a sweep
//! produces identical bytes regardless of thread count.
//!
//! Per-cell *performance* records (events processed, wall-clock
//! nanoseconds, events/sec) are deliberately a separate stream
//! ([`perf_record`], `repsbench run --perf`): wall time varies run to run,
//! so folding it into the result records would break the byte-determinism
//! contract the CI smoke test and golden tests pin.

use std::collections::BTreeMap;
use std::io::Write;

use harness::experiment::Summary;
use harness::json::Object;
use harness::report::{comparison_table, speedup_table};
use netsim::time::Time;

use crate::matrix::CellResult;

/// Renders one cell result as a single JSONL record (no trailing newline).
pub fn jsonl_record(r: &CellResult) -> String {
    Object::new()
        .str("key", &r.key)
        .str("scenario", &r.scenario)
        .str("lb", &r.lb)
        .u64("seed", r.seed as u64)
        .u64("derived_seed", r.derived_seed)
        .raw("summary", r.summary.to_json())
        .render()
}

/// Parses one JSONL record back into a [`CellResult`] — the exact inverse
/// of [`jsonl_record`]: `jsonl_record(&parse_record(line)?) == line` for
/// any line this crate wrote. Used by `repsbench merge` and the sweep cell
/// cache.
///
/// The perf-only fields (`events`, `wall_ns`) are not part of the
/// byte-stable record and come back as 0.
pub fn parse_record(line: &str) -> Result<CellResult, String> {
    let v = harness::json::Value::parse(line).map_err(|e| format!("bad JSONL record: {e}"))?;
    let field = |k: &str| v.get(k).ok_or_else(|| format!("record missing {k:?}"));
    let text = |k: &str| -> Result<String, String> {
        field(k)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("record field {k:?} is not a string"))
    };
    let seed = field("seed")?
        .as_u64()
        .filter(|&s| s <= u32::MAX as u64)
        .ok_or("record field \"seed\" is not a u32")?;
    Ok(CellResult {
        key: text("key")?,
        scenario: text("scenario")?,
        lb: text("lb")?,
        seed: seed as u32,
        derived_seed: field("derived_seed")?
            .as_u64()
            .ok_or("record field \"derived_seed\" is not a u64")?,
        events: 0,
        wall_ns: 0,
        batches: 0,
        max_batch: 0,
        chained_services: 0,
        summary: Summary::from_json(field("summary")?)?,
    })
}

/// Writes results (already sorted by key) as JSON Lines.
pub fn write_jsonl(out: &mut dyn Write, results: &[CellResult]) -> std::io::Result<()> {
    for r in results {
        writeln!(out, "{}", jsonl_record(r))?;
    }
    Ok(())
}

/// Renders all results to one JSONL string (tests, `--out -`).
pub fn to_jsonl(results: &[CellResult]) -> String {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, results).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("records are valid UTF-8")
}

/// Renders one cell's performance counters as a JSONL record
/// (no trailing newline). Wall time is nondeterministic, which is why
/// this is not part of [`jsonl_record`]; the batch-shape counters
/// (same-timestamp batches drained, average/max batch size, chained
/// link services) ride along so sweeps show how much the engine's
/// batched execution amortizes per cell.
pub fn perf_record(r: &CellResult) -> String {
    let events_per_sec = if r.wall_ns > 0 {
        r.events as f64 * 1e9 / r.wall_ns as f64
    } else {
        0.0
    };
    let avg_batch = if r.batches > 0 {
        r.events as f64 / r.batches as f64
    } else {
        0.0
    };
    Object::new()
        .str("key", &r.key)
        .u64("events", r.events)
        .u64("wall_ns", r.wall_ns)
        .f64("events_per_sec", events_per_sec)
        .u64("batches", r.batches)
        .f64("avg_batch", avg_batch)
        .u64("max_batch", r.max_batch)
        .u64("chained_services", r.chained_services)
        .render()
}

/// Writes per-cell perf records (same order as the results) as JSON Lines.
pub fn write_perf_jsonl(out: &mut dyn Write, results: &[CellResult]) -> std::io::Result<()> {
    for r in results {
        writeln!(out, "{}", perf_record(r))?;
    }
    Ok(())
}

/// Aggregate events/sec over a result set: total events divided by the
/// *sum* of per-cell wall time (i.e. single-core simulation throughput,
/// independent of how many workers ran the sweep). Takes any borrowing
/// iterator so callers can feed a subset (e.g. only the freshly executed
/// cells of a cached run) without cloning.
pub fn events_per_sec<'a>(results: impl IntoIterator<Item = &'a CellResult>) -> (u64, f64) {
    let (mut events, mut wall_ns) = (0u64, 0u64);
    for r in results {
        events += r.events;
        wall_ns += r.wall_ns;
    }
    let rate = if wall_ns > 0 {
        events as f64 * 1e9 / wall_ns as f64
    } else {
        0.0
    };
    (events, rate)
}

/// Cross-seed aggregate of one `(scenario, lb)` group.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Scenario key the group belongs to.
    pub scenario: String,
    /// Load-balancer axis label.
    pub lb: String,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Mean of the per-seed summaries, shaped as a [`Summary`] so the
    /// shared report helpers render it.
    pub mean: Summary,
}

fn mean_time(values: impl Iterator<Item = Time>, n: usize) -> Time {
    if n == 0 {
        return Time::ZERO;
    }
    Time((values.map(|t| t.as_ps() as u128).sum::<u128>() / n as u128) as u64)
}

/// Groups results by `(scenario, lb)` and averages each group across its
/// seeds. Output is sorted by scenario then by the first-seen lb order of
/// the sorted input, so it is as deterministic as the input.
pub fn aggregate(results: &[CellResult]) -> Vec<Aggregate> {
    let mut groups: BTreeMap<(String, String), Vec<&CellResult>> = BTreeMap::new();
    for r in results {
        groups
            .entry((r.scenario.clone(), r.lb.clone()))
            .or_default()
            .push(r);
    }
    groups
        .into_iter()
        .map(|((scenario, lb), rs)| {
            let n = rs.len();
            let mut mean = rs[0].summary.clone();
            mean.name = scenario.clone();
            mean.lb = lb.clone();
            mean.completed = rs.iter().all(|r| r.summary.completed);
            mean.fg_flows =
                (rs.iter().map(|r| r.summary.fg_flows as u128).sum::<u128>() / n as u128) as usize;
            mean.max_fct = mean_time(rs.iter().map(|r| r.summary.max_fct), n);
            mean.avg_fct = mean_time(rs.iter().map(|r| r.summary.avg_fct), n);
            mean.p99_fct = mean_time(rs.iter().map(|r| r.summary.p99_fct), n);
            mean.makespan = mean_time(rs.iter().map(|r| r.summary.makespan), n);
            mean.avg_goodput_gbps =
                rs.iter().map(|r| r.summary.avg_goodput_gbps).sum::<f64>() / n as f64;
            // Mixed-traffic scenarios report a background FCT per seed;
            // average the seeds that have one instead of dropping them all.
            let bg: Vec<Time> = rs.iter().filter_map(|r| r.summary.bg_max_fct).collect();
            mean.bg_max_fct = if bg.is_empty() {
                None
            } else {
                Some(mean_time(bg.iter().copied(), bg.len()))
            };
            // Sum across seeds first, divide once: per-element flooring
            // would erase counters rarer than one event per seed (exactly
            // the drop/timeout tallies failure scenarios measure).
            let mean_of = |field: fn(&netsim::stats::Counters) -> u64| {
                (rs.iter()
                    .map(|r| field(&r.summary.counters) as u128)
                    .sum::<u128>()
                    / n as u128) as u64
            };
            mean.counters = netsim::stats::Counters {
                drops_queue_full: mean_of(|c| c.drops_queue_full),
                drops_link_down: mean_of(|c| c.drops_link_down),
                drops_bit_error: mean_of(|c| c.drops_bit_error),
                drops_gray: mean_of(|c| c.drops_gray),
                drops_corrupt: mean_of(|c| c.drops_corrupt),
                trims: mean_of(|c| c.trims),
                ecn_marks: mean_of(|c| c.ecn_marks),
                data_tx: mean_of(|c| c.data_tx),
                ctrl_tx: mean_of(|c| c.ctrl_tx),
                retransmissions: mean_of(|c| c.retransmissions),
                timeouts: mean_of(|c| c.timeouts),
            };
            // Diagnostics: fieldwise mean over the seeds carrying the block
            // (mirrors bg_max_fct — a missing block on one seed must not
            // erase the others'). Names keep first-appearance order.
            let with_diag: Vec<&Vec<(String, f64)>> = rs
                .iter()
                .filter_map(|r| r.summary.diagnostics.as_ref())
                .collect();
            mean.diagnostics = if with_diag.is_empty() {
                None
            } else {
                let mut names: Vec<&String> = Vec::new();
                for d in &with_diag {
                    for (k, _) in d.iter() {
                        if !names.contains(&k) {
                            names.push(k);
                        }
                    }
                }
                Some(
                    names
                        .into_iter()
                        .map(|name| {
                            let sum: f64 = with_diag
                                .iter()
                                .filter_map(|d| d.iter().find(|(k, _)| k == name).map(|(_, v)| *v))
                                .sum();
                            (name.clone(), sum / with_diag.len() as f64)
                        })
                        .collect(),
                )
            };
            Aggregate {
                scenario,
                lb,
                runs: n,
                mean,
            }
        })
        .collect()
}

/// Renders the cross-seed aggregation as per-scenario comparison and
/// speedup tables (via [`harness::report`]). `baseline` picks the speedup
/// denominator; when the scenario lacks that label the first row is used.
pub fn render_aggregates(results: &[CellResult], baseline: &str) -> String {
    let aggs = aggregate(results);
    // Scenario insertion order: sorted (BTreeMap), stable.
    let mut scenarios: Vec<String> = Vec::new();
    let mut by_scenario: BTreeMap<String, Vec<&Aggregate>> = BTreeMap::new();
    for a in &aggs {
        if !by_scenario.contains_key(&a.scenario) {
            scenarios.push(a.scenario.clone());
        }
        by_scenario.entry(a.scenario.clone()).or_default().push(a);
    }
    let mut out = String::new();
    for scenario in scenarios {
        let group = &by_scenario[&scenario];
        let runs = group.iter().map(|a| a.runs).max().unwrap_or(0);
        let rows: Vec<Summary> = group.iter().map(|a| a.mean.clone()).collect();
        let title = format!("{scenario} (mean of {runs} seed(s))");
        out.push_str(&comparison_table(&title, &rows));
        let base = if rows.iter().any(|s| s.lb == baseline) {
            baseline.to_string()
        } else {
            rows[0].lb.clone()
        };
        out.push_str(&speedup_table(&scenario, &rows, &base));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{LabeledLb, ScenarioMatrix};
    use crate::runner::run_cells;
    use crate::spec::WorkloadSpec;
    use baselines::kind::LbKind;
    use reps::reps::RepsConfig;

    fn small_results() -> Vec<CellResult> {
        let m = ScenarioMatrix::new("sink-test")
            .lbs([
                LabeledLb::plain(LbKind::Ops { evs_size: 1 << 16 }),
                LabeledLb::plain(LbKind::Reps(RepsConfig::default())),
            ])
            .workloads([WorkloadSpec::Tornado { bytes: 32 << 10 }])
            .seeds(2);
        run_cells(&m.expand(), 2)
    }

    #[test]
    fn jsonl_is_sorted_and_parseable_shape() {
        let results = small_results();
        let text = to_jsonl(&results);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let mut keys: Vec<&str> = lines
            .iter()
            .map(|l| {
                assert!(l.starts_with("{\"key\":"), "line shape: {l}");
                assert!(l.ends_with('}'), "line shape: {l}");
                &l[8..l[8..].find('"').unwrap() + 8]
            })
            .collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted, "records are key-sorted");
        keys.dedup();
        assert_eq!(keys.len(), 4, "keys are unique");
    }

    #[test]
    fn parse_record_inverts_jsonl_record_byte_exactly() {
        let mut results = small_results();
        // Cover the mixed-traffic shape too (bg_max_fct: Some).
        results.push({
            let m = ScenarioMatrix::new("sink-bg")
                .workloads([WorkloadSpec::Tornado { bytes: 32 << 10 }])
                .background(WorkloadSpec::Tornado { bytes: 8 << 10 }, LbKind::Ecmp);
            m.expand()[0].run()
        });
        for r in &results {
            let line = jsonl_record(r);
            let parsed = parse_record(&line).expect("canonical record parses");
            assert_eq!(jsonl_record(&parsed), line, "round trip must be exact");
            assert_eq!(parsed.key, r.key);
            assert_eq!(parsed.seed, r.seed);
            assert_eq!(parsed.derived_seed, r.derived_seed);
            assert_eq!(parsed.events, 0, "perf fields are not in the record");
        }
        for bad in [
            "",
            "not json",
            "{\"key\":\"x\"}",
            "{\"key\":\"x\",\"scenario\":\"s\",\"lb\":\"L\",\"seed\":-1,\"derived_seed\":0,\"summary\":{}}",
        ] {
            assert!(parse_record(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn perf_records_report_events_and_rate() {
        let results = small_results();
        for r in &results {
            assert!(r.events > 0, "cells must count events");
            assert!(r.wall_ns > 0, "cells must measure wall time");
            assert!(r.batches > 0, "cells must count drained batches");
            assert!(
                r.max_batch >= 1 && r.batches <= r.events,
                "batch counters must be consistent: {} batches, max {}, {} events",
                r.batches,
                r.max_batch,
                r.events
            );
            let line = perf_record(r);
            assert!(line.starts_with("{\"key\":"), "{line}");
            assert!(line.contains("\"events\":"), "{line}");
            assert!(line.contains("\"events_per_sec\":"), "{line}");
            assert!(line.contains("\"batches\":"), "{line}");
            assert!(line.contains("\"avg_batch\":"), "{line}");
            assert!(line.contains("\"max_batch\":"), "{line}");
            assert!(line.contains("\"chained_services\":"), "{line}");
        }
        let (events, rate) = events_per_sec(&results);
        assert_eq!(events, results.iter().map(|r| r.events).sum::<u64>());
        assert!(rate > 0.0);
        // The deterministic fields must not leak into the result records.
        let record = jsonl_record(&results[0]);
        assert!(!record.contains("wall_ns"), "{record}");
        assert!(!record.contains("batches"), "{record}");
    }

    /// A synthetic cell result whose every numeric summary field is
    /// `base * scale`, so seeds are numerically distinguishable.
    fn synthetic_result(seed: u32, scale: u64, completed: bool) -> CellResult {
        use harness::experiment::Summary;
        let t = |base: u64| Time(base * scale);
        let summary = Summary {
            name: format!("synthetic/lb=X/s={seed}"),
            lb: "X".to_string(),
            completed,
            fg_flows: (10 * scale) as usize,
            max_fct: t(1_000),
            avg_fct: t(700),
            p99_fct: t(950),
            makespan: t(1_100),
            avg_goodput_gbps: 1.5 * scale as f64,
            bg_max_fct: Some(t(2_000)),
            counters: netsim::stats::Counters {
                drops_queue_full: scale,
                drops_link_down: 2 * scale,
                drops_bit_error: 3 * scale,
                drops_gray: 13 * scale,
                drops_corrupt: 14 * scale,
                trims: 4 * scale,
                ecn_marks: 5 * scale,
                data_tx: 6 * scale,
                ctrl_tx: 7 * scale,
                retransmissions: 8 * scale,
                timeouts: 9 * scale,
            },
            diagnostics: Some(vec![
                ("reps_recycled_draws".to_string(), (11 * scale) as f64),
                ("reps_freezes".to_string(), (12 * scale) as f64),
            ]),
        };
        CellResult {
            key: format!("synthetic/lb=X/s={seed}"),
            scenario: "synthetic".to_string(),
            lb: "X".to_string(),
            seed,
            derived_seed: seed as u64,
            events: 0,
            wall_ns: 0,
            batches: 0,
            max_batch: 0,
            chained_services: 0,
            summary,
        }
    }

    /// Walks two seed summaries and their aggregate as generic JSON, so a
    /// future `Summary` field that `aggregate()` forgets to average fails
    /// here without being named: every numeric field must equal the mean
    /// of the seeds (±1 for integer flooring), every boolean must be the
    /// conjunction, and the seeds are constructed so that for every
    /// numeric field the mean differs from either seed's value.
    fn assert_fieldwise_mean(
        path: &str,
        a: &harness::json::Value,
        b: &harness::json::Value,
        mean: &harness::json::Value,
    ) {
        use harness::json::Value;
        match (a, b, mean) {
            (Value::Obj(fa), Value::Obj(fb), Value::Obj(fm)) => {
                let keys = |f: &[(String, Value)]| -> Vec<String> {
                    f.iter().map(|(k, _)| k.clone()).collect()
                };
                assert_eq!(keys(fa), keys(fb), "{path}: seed field sets differ");
                assert_eq!(keys(fa), keys(fm), "{path}: aggregate field set drifted");
                for (k, va) in fa {
                    let vb = b.get(k).unwrap();
                    let vm = mean.get(k).unwrap();
                    assert_fieldwise_mean(&format!("{path}.{k}"), va, vb, vm);
                }
            }
            (Value::Num(_), Value::Num(_), Value::Num(_)) => {
                let (na, nb, nm) = (
                    a.as_f64().unwrap(),
                    b.as_f64().unwrap(),
                    mean.as_f64().unwrap(),
                );
                assert_ne!(na, nb, "{path}: seeds must differ for the test to bite");
                let expected = (na + nb) / 2.0;
                assert!(
                    (nm - expected).abs() <= 1.0,
                    "{path}: aggregate {nm} is not the mean of {na} and {nb} — un-averaged Summary field?"
                );
            }
            (Value::Bool(ba), Value::Bool(bb), Value::Bool(bm)) => {
                assert_eq!(
                    *bm,
                    *ba && *bb,
                    "{path}: boolean aggregate must be the conjunction"
                );
            }
            (Value::Str(_), Value::Str(_), Value::Str(_)) => {
                // Identity fields (name/lb); the aggregate rewrites them.
            }
            _ => panic!("{path}: mismatched shapes {a:?} / {b:?} / {mean:?}"),
        }
    }

    #[test]
    fn aggregate_means_every_summary_field() {
        use harness::json::Value;
        let results = vec![synthetic_result(0, 1, true), synthetic_result(1, 3, false)];
        let aggs = aggregate(&results);
        assert_eq!(aggs.len(), 1);
        let a = Value::parse(&results[0].summary.to_json()).unwrap();
        let b = Value::parse(&results[1].summary.to_json()).unwrap();
        let mean = Value::parse(&aggs[0].mean.to_json()).unwrap();
        assert_fieldwise_mean("summary", &a, &b, &mean);
        // The regressions this guards, stated directly: no seed-0 leakage
        // in fg_flows, and a preserved background FCT.
        assert_eq!(aggs[0].mean.fg_flows, 20);
        assert_eq!(aggs[0].mean.bg_max_fct, Some(Time(4_000)));
        assert!(!aggs[0].mean.completed);
    }

    #[test]
    fn aggregate_keeps_bg_fct_when_a_seed_lacks_it() {
        let mut partial = synthetic_result(1, 3, true);
        partial.summary.bg_max_fct = None;
        let results = vec![synthetic_result(0, 1, true), partial];
        let aggs = aggregate(&results);
        assert_eq!(aggs[0].mean.bg_max_fct, Some(Time(2_000)));
        // All-None stays None.
        let none = |seed, scale| {
            let mut r = synthetic_result(seed, scale, true);
            r.summary.bg_max_fct = None;
            r
        };
        assert_eq!(
            aggregate(&[none(0, 1), none(1, 3)])[0].mean.bg_max_fct,
            None
        );
    }

    #[test]
    fn aggregation_averages_across_seeds() {
        let results = small_results();
        let aggs = aggregate(&results);
        assert_eq!(aggs.len(), 2, "one group per lb");
        for a in &aggs {
            assert_eq!(a.runs, 2);
            assert!(a.mean.max_fct > Time::ZERO);
        }
        let rendered = render_aggregates(&results, "OPS");
        assert!(rendered.contains("REPS"), "{rendered}");
        assert!(rendered.contains("speedup vs OPS"), "{rendered}");
        assert!(rendered.contains("mean of 2 seed(s)"), "{rendered}");
    }
}
