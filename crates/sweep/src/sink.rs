//! Structured result output: JSON Lines per cell and cross-seed
//! aggregation rendered through [`harness::report`].
//!
//! JSONL output is byte-deterministic: [`crate::runner::run_cells`] sorts
//! results by cell key and every record's field order is fixed, so a sweep
//! produces identical bytes regardless of thread count.
//!
//! Per-cell *performance* records (events processed, wall-clock
//! nanoseconds, events/sec) are deliberately a separate stream
//! ([`perf_record`], `repsbench run --perf`): wall time varies run to run,
//! so folding it into the result records would break the byte-determinism
//! contract the CI smoke test and golden tests pin.

use std::collections::BTreeMap;
use std::io::Write;

use harness::experiment::Summary;
use harness::json::Object;
use harness::report::{comparison_table, speedup_table};
use netsim::time::Time;

use crate::matrix::CellResult;

/// Renders one cell result as a single JSONL record (no trailing newline).
pub fn jsonl_record(r: &CellResult) -> String {
    Object::new()
        .str("key", &r.key)
        .str("scenario", &r.scenario)
        .str("lb", &r.lb)
        .u64("seed", r.seed as u64)
        .u64("derived_seed", r.derived_seed)
        .raw("summary", r.summary.to_json())
        .render()
}

/// Writes results (already sorted by key) as JSON Lines.
pub fn write_jsonl(out: &mut dyn Write, results: &[CellResult]) -> std::io::Result<()> {
    for r in results {
        writeln!(out, "{}", jsonl_record(r))?;
    }
    Ok(())
}

/// Renders all results to one JSONL string (tests, `--out -`).
pub fn to_jsonl(results: &[CellResult]) -> String {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, results).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("records are valid UTF-8")
}

/// Renders one cell's performance counters as a JSONL record
/// (no trailing newline). Wall time is nondeterministic, which is why
/// this is not part of [`jsonl_record`].
pub fn perf_record(r: &CellResult) -> String {
    let events_per_sec = if r.wall_ns > 0 {
        r.events as f64 * 1e9 / r.wall_ns as f64
    } else {
        0.0
    };
    Object::new()
        .str("key", &r.key)
        .u64("events", r.events)
        .u64("wall_ns", r.wall_ns)
        .f64("events_per_sec", events_per_sec)
        .render()
}

/// Writes per-cell perf records (same order as the results) as JSON Lines.
pub fn write_perf_jsonl(out: &mut dyn Write, results: &[CellResult]) -> std::io::Result<()> {
    for r in results {
        writeln!(out, "{}", perf_record(r))?;
    }
    Ok(())
}

/// Aggregate events/sec over a result set: total events divided by the
/// *sum* of per-cell wall time (i.e. single-core simulation throughput,
/// independent of how many workers ran the sweep).
pub fn events_per_sec(results: &[CellResult]) -> (u64, f64) {
    let events: u64 = results.iter().map(|r| r.events).sum();
    let wall_ns: u64 = results.iter().map(|r| r.wall_ns).sum();
    let rate = if wall_ns > 0 {
        events as f64 * 1e9 / wall_ns as f64
    } else {
        0.0
    };
    (events, rate)
}

/// Cross-seed aggregate of one `(scenario, lb)` group.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Scenario key the group belongs to.
    pub scenario: String,
    /// Load-balancer axis label.
    pub lb: String,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Mean of the per-seed summaries, shaped as a [`Summary`] so the
    /// shared report helpers render it.
    pub mean: Summary,
}

fn mean_time(values: impl Iterator<Item = Time>, n: usize) -> Time {
    if n == 0 {
        return Time::ZERO;
    }
    Time((values.map(|t| t.as_ps() as u128).sum::<u128>() / n as u128) as u64)
}

/// Groups results by `(scenario, lb)` and averages each group across its
/// seeds. Output is sorted by scenario then by the first-seen lb order of
/// the sorted input, so it is as deterministic as the input.
pub fn aggregate(results: &[CellResult]) -> Vec<Aggregate> {
    let mut groups: BTreeMap<(String, String), Vec<&CellResult>> = BTreeMap::new();
    for r in results {
        groups
            .entry((r.scenario.clone(), r.lb.clone()))
            .or_default()
            .push(r);
    }
    groups
        .into_iter()
        .map(|((scenario, lb), rs)| {
            let n = rs.len();
            let mut mean = rs[0].summary.clone();
            mean.name = scenario.clone();
            mean.lb = lb.clone();
            mean.completed = rs.iter().all(|r| r.summary.completed);
            mean.max_fct = mean_time(rs.iter().map(|r| r.summary.max_fct), n);
            mean.avg_fct = mean_time(rs.iter().map(|r| r.summary.avg_fct), n);
            mean.p99_fct = mean_time(rs.iter().map(|r| r.summary.p99_fct), n);
            mean.makespan = mean_time(rs.iter().map(|r| r.summary.makespan), n);
            mean.avg_goodput_gbps =
                rs.iter().map(|r| r.summary.avg_goodput_gbps).sum::<f64>() / n as f64;
            mean.bg_max_fct = None;
            // Sum across seeds first, divide once: per-element flooring
            // would erase counters rarer than one event per seed (exactly
            // the drop/timeout tallies failure scenarios measure).
            let mean_of = |field: fn(&netsim::stats::Counters) -> u64| {
                (rs.iter()
                    .map(|r| field(&r.summary.counters) as u128)
                    .sum::<u128>()
                    / n as u128) as u64
            };
            mean.counters = netsim::stats::Counters {
                drops_queue_full: mean_of(|c| c.drops_queue_full),
                drops_link_down: mean_of(|c| c.drops_link_down),
                drops_bit_error: mean_of(|c| c.drops_bit_error),
                trims: mean_of(|c| c.trims),
                ecn_marks: mean_of(|c| c.ecn_marks),
                data_tx: mean_of(|c| c.data_tx),
                ctrl_tx: mean_of(|c| c.ctrl_tx),
                retransmissions: mean_of(|c| c.retransmissions),
                timeouts: mean_of(|c| c.timeouts),
            };
            Aggregate {
                scenario,
                lb,
                runs: n,
                mean,
            }
        })
        .collect()
}

/// Renders the cross-seed aggregation as per-scenario comparison and
/// speedup tables (via [`harness::report`]). `baseline` picks the speedup
/// denominator; when the scenario lacks that label the first row is used.
pub fn render_aggregates(results: &[CellResult], baseline: &str) -> String {
    let aggs = aggregate(results);
    // Scenario insertion order: sorted (BTreeMap), stable.
    let mut scenarios: Vec<String> = Vec::new();
    let mut by_scenario: BTreeMap<String, Vec<&Aggregate>> = BTreeMap::new();
    for a in &aggs {
        if !by_scenario.contains_key(&a.scenario) {
            scenarios.push(a.scenario.clone());
        }
        by_scenario.entry(a.scenario.clone()).or_default().push(a);
    }
    let mut out = String::new();
    for scenario in scenarios {
        let group = &by_scenario[&scenario];
        let runs = group.iter().map(|a| a.runs).max().unwrap_or(0);
        let rows: Vec<Summary> = group.iter().map(|a| a.mean.clone()).collect();
        let title = format!("{scenario} (mean of {runs} seed(s))");
        out.push_str(&comparison_table(&title, &rows));
        let base = if rows.iter().any(|s| s.lb == baseline) {
            baseline.to_string()
        } else {
            rows[0].lb.clone()
        };
        out.push_str(&speedup_table(&scenario, &rows, &base));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{LabeledLb, ScenarioMatrix};
    use crate::runner::run_cells;
    use crate::spec::WorkloadSpec;
    use baselines::kind::LbKind;
    use reps::reps::RepsConfig;

    fn small_results() -> Vec<CellResult> {
        let m = ScenarioMatrix::new("sink-test")
            .lbs([
                LabeledLb::plain(LbKind::Ops { evs_size: 1 << 16 }),
                LabeledLb::plain(LbKind::Reps(RepsConfig::default())),
            ])
            .workloads([WorkloadSpec::Tornado { bytes: 32 << 10 }])
            .seeds(2);
        run_cells(&m.expand(), 2)
    }

    #[test]
    fn jsonl_is_sorted_and_parseable_shape() {
        let results = small_results();
        let text = to_jsonl(&results);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let mut keys: Vec<&str> = lines
            .iter()
            .map(|l| {
                assert!(l.starts_with("{\"key\":"), "line shape: {l}");
                assert!(l.ends_with('}'), "line shape: {l}");
                &l[8..l[8..].find('"').unwrap() + 8]
            })
            .collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted, "records are key-sorted");
        keys.dedup();
        assert_eq!(keys.len(), 4, "keys are unique");
    }

    #[test]
    fn perf_records_report_events_and_rate() {
        let results = small_results();
        for r in &results {
            assert!(r.events > 0, "cells must count events");
            assert!(r.wall_ns > 0, "cells must measure wall time");
            let line = perf_record(r);
            assert!(line.starts_with("{\"key\":"), "{line}");
            assert!(line.contains("\"events\":"), "{line}");
            assert!(line.contains("\"events_per_sec\":"), "{line}");
        }
        let (events, rate) = events_per_sec(&results);
        assert_eq!(events, results.iter().map(|r| r.events).sum::<u64>());
        assert!(rate > 0.0);
        // The deterministic fields must not leak into the result records.
        let record = jsonl_record(&results[0]);
        assert!(!record.contains("wall_ns"), "{record}");
    }

    #[test]
    fn aggregation_averages_across_seeds() {
        let results = small_results();
        let aggs = aggregate(&results);
        assert_eq!(aggs.len(), 2, "one group per lb");
        for a in &aggs {
            assert_eq!(a.runs, 2);
            assert!(a.mean.max_fct > Time::ZERO);
        }
        let rendered = render_aggregates(&results, "OPS");
        assert!(rendered.contains("REPS"), "{rendered}");
        assert!(rendered.contains("speedup vs OPS"), "{rendered}");
        assert!(rendered.contains("mean of 2 seed(s)"), "{rendered}");
    }
}
